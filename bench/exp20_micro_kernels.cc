// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// experiments: dot products, matrix multiply, the transformer-layer
// forward, tokenization, string similarities, exact vs HNSW queries, and
// Unique Mapping Clustering.

#include <benchmark/benchmark.h>

#include <utility>

#include "cluster/bipartite_clustering.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "embed/embedding_model.h"
#include "index/exact_index.h"
#include "index/hnsw_index.h"
#include "index/lsh_index.h"
#include "la/matrix.h"
#include "la/vector_ops.h"
#include "nn/transformer.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace {

using namespace ember;

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

void BM_Dot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const la::Matrix m = RandomMatrix(2, dim, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Dot(m.Row(0), m.Row(1), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_Dot)->Arg(300)->Arg(384)->Arg(768);

void BM_GemmBt(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const la::Matrix a = RandomMatrix(n, 128, 2);
  const la::Matrix b = RandomMatrix(n, 128, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::GemmBt(a, b));
  }
}
BENCHMARK(BM_GemmBt)->Arg(64)->Arg(256);

void BM_TransformerLayer(benchmark::State& state) {
  nn::TransformerConfig config;
  config.dim = 64;
  config.num_heads = 4;
  config.num_layers = 1;
  config.ffn_dim = 128;
  const nn::TransformerEncoder encoder(config);
  const la::Matrix tokens =
      RandomMatrix(static_cast<size_t>(state.range(0)), 64, 4);
  // Reused workspace, as in the production encode path: after the first
  // iteration warms it up, Forward performs no heap allocation.
  nn::TransformerEncoder::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(tokens, ws));
  }
}
BENCHMARK(BM_TransformerLayer)->Arg(16)->Arg(64)->Arg(100);

// Full multi-layer forward at the sentence-encoder scale used by the BERT
// family models in exp12: the whole-sequence GEMM path end to end.
void BM_TransformerForward(benchmark::State& state) {
  nn::TransformerConfig config;
  config.dim = 64;
  config.num_heads = 4;
  config.num_layers = 4;
  config.ffn_dim = 128;
  const nn::TransformerEncoder encoder(config);
  const la::Matrix tokens =
      RandomMatrix(static_cast<size_t>(state.range(0)), 64, 4);
  nn::TransformerEncoder::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(tokens, ws));
  }
  state.SetItemsProcessed(state.iterations() * tokens.rows());
}
BENCHMARK(BM_TransformerForward)->Arg(16)->Arg(64)->Arg(128);

void BM_Tokenize(benchmark::State& state) {
  const std::string sentence =
      "acme deluxe wireless headset xk2400 with noise cancelling microphone "
      "and 20 hour battery life premium comfort design";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Tokenize(sentence));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "hierarchical navigable small world graphs";
  const std::string b = "hierarchicl navigble smal world grphs";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinSimilarity(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_ExactQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const la::Matrix data = RandomMatrix(n, 300, 5);
  index::ExactIndex idx;
  idx.Build(data);
  const la::Matrix queries = RandomMatrix(16, 300, 6);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Query(queries.Row(q++ % 16), 10));
  }
}
BENCHMARK(BM_ExactQuery)->Arg(1000)->Arg(10000);

void BM_HnswBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const la::Matrix data = RandomMatrix(n, 300, 7);
  for (auto _ : state) {
    state.PauseTiming();
    la::Matrix copy = data;  // moved into the index; rebuilt every iteration
    state.ResumeTiming();
    index::HnswIndex idx;
    idx.Build(std::move(copy));
    benchmark::DoNotOptimize(idx.data().rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HnswBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_HnswQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const la::Matrix data = RandomMatrix(n, 300, 7);
  index::HnswIndex idx;
  idx.Build(data);
  const la::Matrix queries = RandomMatrix(16, 300, 8);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Query(queries.Row(q++ % 16), 10));
  }
}
BENCHMARK(BM_HnswQuery)->Arg(1000)->Arg(10000);

void BM_LshQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const la::Matrix data = RandomMatrix(n, 300, 7);
  index::LshIndex idx;
  idx.Build(data);
  const la::Matrix queries = RandomMatrix(16, 300, 8);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Query(queries.Row(q++ % 16), 10));
  }
}
BENCHMARK(BM_LshQuery)->Arg(1000)->Arg(10000);

void BM_Umc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<cluster::ScoredPair> pairs;
  pairs.reserve(n * 20);
  for (uint32_t l = 0; l < n; ++l) {
    for (int j = 0; j < 20; ++j) {
      pairs.push_back({l, static_cast<uint32_t>(rng.Below(n)),
                       static_cast<float>(rng.Uniform())});
    }
  }
  cluster::SortPairsDescending(pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::UniqueMappingClustering(pairs, n, n, 0.3f));
  }
}
BENCHMARK(BM_Umc)->Arg(1000)->Arg(10000);

// --- Thread scaling (PR: deterministic thread pool) --------------------
// Arg = thread count. Outputs are bit-identical across settings; only the
// wall clock should move. On a single-core machine expect flat numbers.

std::vector<std::string> ScalingSentences(size_t n) {
  Rng rng(0xca11);
  const char* words[] = {"acme",    "deluxe", "wireless", "headset",
                         "premium", "noise",  "battery",  "comfort",
                         "design",  "stereo", "adapter",  "charger"};
  std::vector<std::string> sentences(n);
  for (std::string& sentence : sentences) {
    for (int w = 0; w < 12; ++w) {
      if (w) sentence += ' ';
      sentence += words[rng.Below(12)];
    }
  }
  return sentences;
}

void BM_BatchTransformThreads(benchmark::State& state) {
  SetThreads(static_cast<int>(state.range(0)));
  auto model = embed::CreateModel(embed::ModelId::kSMiniLm);
  model->Initialize();
  const std::vector<std::string> sentences = ScalingSentences(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->VectorizeAll(sentences));
  }
  state.SetItemsProcessed(state.iterations() * sentences.size());
  SetThreads(0);
}
BENCHMARK(BM_BatchTransformThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BatchQueryThreads(benchmark::State& state) {
  SetThreads(static_cast<int>(state.range(0)));
  const la::Matrix data = RandomMatrix(20000, 300, 10);
  index::ExactIndex idx;
  idx.Build(data);
  const la::Matrix queries = RandomMatrix(2000, 300, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.QueryBatch(queries, 10));
  }
  state.SetItemsProcessed(state.iterations() * queries.rows());
  SetThreads(0);
}
BENCHMARK(BM_BatchQueryThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
