// Figure 11: supervised matching F1 per model across DSM1-DSM5
// (EMTransformer-style training with validation early stopping for dynamic
// models, DeepMatcher-style hybrid features for static ones), plus panel
// (d): DITTO-like and DeepMatcher+ baselines.

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp11 / Figure 11",
                     "Supervised matching F1, 10 models x DSM1-DSM5 + DITTO "
                     "and DeepMatcher+");

  const bench::SupStudy study = bench::RunSupStudy(env);
  const std::vector<std::string> dsm_ids = {"DSM1", "DSM2", "DSM3", "DSM4",
                                            "DSM5"};

  eval::Table table("Figure 11 — supervised matching F1");
  std::vector<std::string> header = {"model"};
  for (const auto& d : dsm_ids) header.push_back(d);
  table.SetHeader(header);
  for (const std::string& code : bench::SupervisedModelCodes()) {
    std::vector<std::string> row = {code};
    for (const auto& d : dsm_ids) {
      row.push_back(eval::Table::Num(study.cells.at(code).at(d).f1, 3));
    }
    table.AddRow(row);
  }
  table.Print();

  eval::Table sota("Figure 11(d) — SotA supervised matchers (F1)");
  std::vector<std::string> sota_header = {"method"};
  for (const auto& d : dsm_ids) sota_header.push_back(d);
  sota.SetHeader(sota_header);
  for (const std::string& method : {std::string("DITTO"), std::string("DM+")}) {
    std::vector<std::string> row = {method};
    for (const auto& d : dsm_ids) {
      row.push_back(eval::Table::Num(study.cells.at(method).at(d).f1, 3));
    }
    sota.AddRow(row);
  }
  sota.Print();
  return 0;
}
