// Ablation benches for the design choices DESIGN.md calls out, run on the
// D2 analogue (the paraphrase-heavy dataset where each mechanism matters):
//
//   (a) position-robust pooling: SBERT-style encoders with the BERT-scale
//       positional-encoding amplitude — isolates why sentence encoders
//       survive token drops/inserts;
//   (b) encoder calibration: the same sentence encoder with un-calibrated
//       (BERT-scale) weight gain — isolates the anisotropy mechanism;
//   (c) subword robustness: FastText with the character-n-gram component
//       disabled — isolates what n-grams buy under misspellings (D8);
//   (d) HNSW beam width: recall/latency across efSearch.

#include "bench_common.h"
#include "core/blocking.h"
#include "core/pipeline.h"
#include "datagen/febrl.h"
#include "embed/model_registry.h"
#include "embed/static_model.h"
#include "embed/token_encoder.h"
#include "index/exact_index.h"
#include "index/hnsw_index.h"
#include "la/vector_ops.h"
#include "nn/transformer.h"
#include "text/tokenizer.h"

namespace {

using namespace ember;

/// A configurable sentence encoder mirroring SentenceEmbeddingModel's
/// pipeline, exposed here so the ablation can vary pos_scale / weight_gain /
/// ngram_weight independently of the registry models.
la::Matrix EncodeCollection(const std::vector<std::string>& sentences,
                            const embed::TokenEncoderParams& token_params,
                            const nn::TransformerConfig& encoder_config) {
  const embed::TokenEncoder token_encoder(token_params);
  const nn::TransformerEncoder encoder(encoder_config);
  la::Matrix out(sentences.size(), encoder_config.dim);
  for (size_t i = 0; i < sentences.size(); ++i) {
    const std::vector<std::string> tokens = text::Tokenize(sentences[i]);
    if (tokens.empty()) continue;
    la::Matrix embeds(tokens.size(), encoder_config.dim);
    for (size_t t = 0; t < tokens.size(); ++t) {
      token_encoder.Encode(tokens[t], embeds.Row(t));
    }
    const la::Matrix states = encoder.Forward(embeds);
    float* row = out.Row(i);
    float total = 0.f;
    for (size_t t = 0; t < tokens.size(); ++t) {
      const float w = token_encoder.Idf(tokens[t]);
      la::Axpy(w, states.Row(t + 1), row, encoder_config.dim);
      total += w;
    }
    if (total > 0.f) la::Scale(1.f / total, row, encoder_config.dim);
    la::NormalizeInPlace(row, encoder_config.dim);
  }
  return out;
}

double RecallAt10(const la::Matrix& left, const la::Matrix& right,
                  const eval::GroundTruth& truth) {
  core::BlockingOptions options;
  options.k = 10;
  const core::BlockingResult blocked =
      core::BlockCleanClean(left, right, options);
  return eval::EvaluateCleanCleanCandidates(blocked.candidates, truth).recall;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp21 / ablations",
                     "Design-choice ablations: positional robustness, "
                     "encoder calibration, subword n-grams, HNSW efSearch");

  const datagen::CleanCleanDataset& d2 = bench::GetDataset("D2", env);
  const datagen::CleanCleanDataset& d8 = bench::GetDataset("D8", env);
  const eval::GroundTruth truth2 = bench::TruthOf(d2);
  const eval::GroundTruth truth8 = bench::TruthOf(d8);
  const std::vector<std::string> left2 = d2.left.AllSentences();
  const std::vector<std::string> right2 = d2.right.AllSentences();

  // --- (a) + (b): sentence-encoder ablations on D2 ---
  {
    embed::TokenEncoderParams tp;
    tp.dim = 80;
    tp.seed = 0x5b3a7ULL;
    tp.vocab_coverage = 0.97;
    tp.synonym_coverage = 0.88;
    tp.surface_weight = 0.18f;
    tp.ngram_weight = 0.30f;
    tp.ngram_min = 4;
    tp.ngram_max = 5;
    nn::TransformerConfig cfg;
    cfg.dim = 80;
    cfg.num_heads = 4;
    cfg.num_layers = 12;
    cfg.ffn_dim = 160;
    cfg.weight_gain = 0.06f;
    cfg.pos_scale = 0.015f;
    cfg.seed = 0x5b3a7ULL ^ 0x5e2cULL;

    eval::Table table("Ablation (a)/(b) — sentence encoder on D2, "
                      "blocking recall (k=10)");
    table.SetHeader({"variant", "pos_scale", "weight_gain", "recall"});
    struct Variant {
      const char* name;
      float pos_scale;
      float gain;
    };
    for (const Variant& v :
         {Variant{"calibrated (S-MPNet-like)", 0.015f, 0.06f},
          Variant{"BERT-scale positions", 0.10f, 0.06f},
          Variant{"un-calibrated weights", 0.015f, 1.05f},
          Variant{"both (BERT-like)", 0.10f, 1.05f}}) {
      nn::TransformerConfig variant_cfg = cfg;
      variant_cfg.pos_scale = v.pos_scale;
      variant_cfg.weight_gain = v.gain;
      const la::Matrix left = EncodeCollection(left2, tp, variant_cfg);
      const la::Matrix right = EncodeCollection(right2, tp, variant_cfg);
      table.AddRow({v.name, eval::Table::Num(v.pos_scale, 3),
                    eval::Table::Num(v.gain, 2),
                    eval::Table::Num(RecallAt10(left, right, truth2), 3)});
    }
    table.Print();
  }

  // --- (c): FastText n-gram ablation on D8 (misspelling-heavy) ---
  {
    eval::Table table("Ablation (c) — FastText subword n-grams on D8, "
                      "blocking recall (k=10)");
    table.SetHeader({"variant", "ngram_weight", "recall"});
    for (const float ngram_weight : {0.55f, 0.30f, 0.0f}) {
      embed::TokenEncoderParams tp;
      tp.dim = 300;
      tp.seed = 0x57a71cULL + 0x9e37ULL;  // FastText's stream
      tp.vocab_coverage = 0.90;
      tp.synonym_coverage = 0.30;
      tp.surface_weight = 0.20f;
      tp.ngram_weight = ngram_weight;
      tp.ngram_min = 3;
      tp.ngram_max = 5;
      const embed::TokenEncoder encoder(tp);
      const auto vectorize = [&](const datagen::EntityCollection& side) {
        la::Matrix m(side.size(), tp.dim);
        std::vector<float> token_vec(tp.dim);
        for (size_t i = 0; i < side.size(); ++i) {
          const auto tokens = text::Tokenize(side.SentenceOf(i));
          float* row = m.Row(i);
          for (const auto& token : tokens) {
            if (encoder.Encode(token, token_vec.data())) {
              la::Axpy(1.f, token_vec.data(), row, tp.dim);
            }
          }
          la::NormalizeInPlace(row, tp.dim);
        }
        return m;
      };
      const la::Matrix left = vectorize(d8.left);
      const la::Matrix right = vectorize(d8.right);
      table.AddRow({ngram_weight > 0.5f   ? "fastText (3-5 grams, w=0.55)"
                    : ngram_weight > 0.1f ? "halved n-gram weight"
                                          : "no n-grams (word2vec-like)",
                    eval::Table::Num(ngram_weight, 2),
                    eval::Table::Num(RecallAt10(left, right, truth8), 3)});
    }
    table.Print();
  }

  // --- (c2): idf-weighted pooling for a static model (how much of the
  // sentence models' edge is informativeness weighting alone?) ---
  {
    eval::Table table("Ablation (c2) — GloVe pooling on D2, blocking recall "
                      "(k=10)");
    table.SetHeader({"variant", "recall"});
    for (const bool idf : {false, true}) {
      embed::StaticEmbeddingModel glove(embed::ModelId::kGloVe, idf);
      glove.Initialize();
      const la::Matrix left = glove.VectorizeAll(left2);
      const la::Matrix right = glove.VectorizeAll(right2);
      table.AddRow({idf ? "idf-weighted mean" : "plain mean (real GloVe)",
                    eval::Table::Num(RecallAt10(left, right, truth2), 3)});
    }
    table.Print();
  }

  // --- (e): data-driven threshold (Section 7 future work) vs the fixed
  // default 0.5 for the end-to-end pipeline ---
  {
    eval::Table table("Ablation (e) — end-to-end S-GTR-T5: fixed delta=0.5 "
                      "vs Otsu auto-threshold (F1)");
    table.SetHeader({"dataset", "fixed F1", "auto F1", "auto delta"});
    auto model = embed::CreateModel(embed::ModelId::kSGtrT5);
    for (const char* dataset_id : {"D2", "D4", "D8"}) {
      const datagen::CleanCleanDataset& dataset =
          bench::GetDataset(dataset_id, env);
      const eval::GroundTruth truth = bench::TruthOf(dataset);
      const la::Matrix left = bench::Vectors(*model, dataset, true, env);
      const la::Matrix right = bench::Vectors(*model, dataset, false, env);
      double f1_fixed = 0, f1_auto = 0;
      float delta_auto = 0;
      for (const bool use_auto : {false, true}) {
        core::PipelineOptions options;
        options.auto_threshold = use_auto;
        core::ErPipeline pipeline(options);
        const core::PipelineResult result =
            pipeline.RunOnVectors(left, right);
        std::vector<std::pair<uint32_t, uint32_t>> predicted;
        for (const auto& m : result.matches) {
          predicted.emplace_back(m.left, m.right);
        }
        const double f1 =
            eval::EvaluateCleanCleanMatches(predicted, truth).f1;
        if (use_auto) {
          f1_auto = f1;
          delta_auto = result.threshold_used;
        } else {
          f1_fixed = f1;
        }
      }
      table.AddRow({dataset_id, eval::Table::Num(f1_fixed, 3),
                    eval::Table::Num(f1_auto, 3),
                    eval::Table::Num(delta_auto, 3)});
    }
    table.Print();
  }

  // --- (d): HNSW efSearch sweep on a Febrl collection ---
  {
    datagen::FebrlOptions options;
    options.n_records = std::max<size_t>(2000,
                                         static_cast<size_t>(20000 * env.scale));
    options.seed = env.seed;
    const datagen::DirtyDataset dirty = datagen::GenerateFebrl(options);
    eval::GroundTruth truth;
    for (const auto& [a, b] : dirty.matches) truth.AddDirtyPair(a, b);
    auto model = embed::CreateModel(embed::ModelId::kSGtrT5);
    const la::Matrix vectors = bench::VectorsKeyed(
        *model, "ablation_febrl_" + std::to_string(options.n_records),
        dirty.records.AllSentences(), env);

    eval::Table table("Ablation (d) — HNSW efSearch on Febrl-" +
                      std::to_string(options.n_records) +
                      " (S-GTR-T5 vectors, k=10)");
    table.SetHeader({"efSearch", "recall", "query_s", "exact_recall",
                     "exact_query_s"});
    // Exact reference.
    core::BlockingOptions exact;
    exact.k = 10;
    const core::BlockingResult exact_blocked =
        core::BlockDirty(vectors, exact);
    const double exact_recall =
        eval::EvaluateDirtyCandidates(exact_blocked.candidates, truth).recall;
    for (const size_t ef : {16, 32, 64, 128, 256}) {
      core::BlockingOptions options_hnsw;
      options_hnsw.k = 10;
      options_hnsw.use_hnsw = true;
      options_hnsw.hnsw.ef_search = ef;
      options_hnsw.hnsw.seed = env.seed;
      const core::BlockingResult blocked =
          core::BlockDirty(vectors, options_hnsw);
      table.AddRow({std::to_string(ef),
                    eval::Table::Num(eval::EvaluateDirtyCandidates(
                                         blocked.candidates, truth)
                                         .recall,
                                     3),
                    eval::Table::Num(blocked.query_seconds, 3),
                    eval::Table::Num(exact_recall, 3),
                    eval::Table::Num(exact_blocked.query_seconds, 3)});
    }
    table.Print();
  }
  return 0;
}
