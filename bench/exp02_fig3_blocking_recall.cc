// Figure 3: blocking recall per model across D1-D10 for k in {1, 5, 10},
// with the rightmost-column comparison of S-GTR-T5 against DeepBlocker
// (Auto-Encoder + fastText).

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp02 / Figure 3",
                     "Blocking recall (pairs completeness), exact NNS, "
                     "12 models x D1-D10 x k in {1,5,10} + DeepBlocker");

  const bench::BlockingStudy study = bench::RunBlockingStudy(env);

  for (const int k : {1, 5, 10}) {
    eval::Table table("Figure 3 — blocking recall, k=" + std::to_string(k));
    std::vector<std::string> header = {"model"};
    for (const auto& d : bench::AllDatasetIds()) header.push_back(d);
    table.SetHeader(header);
    for (const embed::ModelId id : embed::AllModels()) {
      const std::string code = embed::GetModelInfo(id).code;
      std::vector<std::string> row = {std::string(
          embed::GetModelInfo(id).name)};
      for (const auto& d : bench::AllDatasetIds()) {
        row.push_back(eval::Table::Num(
            study.recall.at(code).at(d).at(k), 3));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  eval::Table sota("Figure 3 (rightmost) — S-GTR-T5 vs DeepBlocker recall");
  sota.SetHeader({"dataset", "S5 k=1", "DB k=1", "S5 k=5", "DB k=5",
                  "S5 k=10", "DB k=10"});
  for (const auto& d : bench::AllDatasetIds()) {
    sota.AddRow({d, eval::Table::Num(study.recall.at("S5").at(d).at(1), 3),
                 eval::Table::Num(study.deepblocker_recall.at(d).at(1), 3),
                 eval::Table::Num(study.recall.at("S5").at(d).at(5), 3),
                 eval::Table::Num(study.deepblocker_recall.at(d).at(5), 3),
                 eval::Table::Num(study.recall.at("S5").at(d).at(10), 3),
                 eval::Table::Num(study.deepblocker_recall.at(d).at(10), 3)});
  }
  sota.Print();
  return 0;
}
