// Table 4: vectorization time (initialization + transformation) per model
// and dataset. Always measures fresh compute; as a side effect it fills the
// shared vector cache, so the rest of the bench suite reuses these vectors.

#include "bench_common.h"
#include "common/timer.h"
#include "core/vector_cache.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp01 / Table 4",
                     "Vectorization time (s): init row + transform per "
                     "dataset, 12 models x D1-D10");

  eval::Table table("Table 4 — vectorization time in seconds");
  std::vector<std::string> header = {"dataset"};
  for (const embed::ModelId id : embed::AllModels()) {
    header.push_back(embed::GetModelInfo(id).code);
  }
  table.SetHeader(header);

  std::vector<std::string> init_row = {"Init"};
  std::vector<std::vector<std::string>> transform_rows;
  for (const std::string& dataset_id : bench::AllDatasetIds()) {
    transform_rows.push_back({dataset_id});
  }

  for (const embed::ModelId id : embed::AllModels()) {
    auto model = embed::CreateModel(id);
    const double init_seconds = model->Initialize();
    init_row.push_back(eval::Table::Num(init_seconds, 2));
    size_t row = 0;
    for (const std::string& dataset_id : bench::AllDatasetIds()) {
      const datagen::CleanCleanDataset& dataset =
          bench::GetDataset(dataset_id, env);
      // Vectorize through the shared cache: a cold run measures fresh
      // compute and warms the cache for the whole suite; a warm rerun
      // reports the recorded fresh timings (--no-cache forces remeasuring).
      double vec_left = 0, vec_right = 0;
      bench::Vectors(*model, dataset, true, env, &vec_left);
      bench::Vectors(*model, dataset, false, env, &vec_right);
      const double seconds =
          vec_left >= 0 && vec_right >= 0 ? vec_left + vec_right : -1e9;
      transform_rows[row++].push_back(eval::Table::Num(seconds, 2));
    }
    std::fprintf(stderr, "[table4] %s done\n", model->info().code);
  }

  table.AddRow(init_row);
  for (auto& row : transform_rows) table.AddRow(std::move(row));
  table.Print();
  bench::SaveArtifact(env, "table4", table);
  return 0;
}
