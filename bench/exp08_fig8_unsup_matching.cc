// Figure 8: unsupervised matching precision / recall / F1 per model across
// D1-D10 (UMC at the best threshold of the delta sweep), plus panel (d):
// the end-to-end S-GTR-T5 pipeline (k=10, delta=0.5) against ZeroER.

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp08 / Figure 8",
                     "Unsupervised matching P/R/F1 (UMC, best delta) "
                     "+ S-GTR-T5 end-to-end vs ZeroER");

  const bench::UnsupStudy study = bench::RunUnsupStudy(env);

  for (const char* metric : {"precision", "recall", "f1"}) {
    eval::Table table(std::string("Figure 8 — unsupervised matching ") +
                      metric);
    std::vector<std::string> header = {"model"};
    for (const auto& d : bench::AllDatasetIds()) header.push_back(d);
    table.SetHeader(header);
    for (const embed::ModelId id : embed::AllModels()) {
      const std::string code = embed::GetModelInfo(id).code;
      std::vector<std::string> row = {
          std::string(embed::GetModelInfo(id).name)};
      for (const auto& d : bench::AllDatasetIds()) {
        const bench::UnsupStudy::Cell& cell =
            study.cells.at("UMC").at(code).at(d);
        const double value = metric == std::string("precision")
                                 ? cell.precision
                                 : metric == std::string("recall")
                                       ? cell.recall
                                       : cell.f1;
        row.push_back(eval::Table::Num(value, 3));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  eval::Table sota("Figure 8(d) — end-to-end S-GTR-T5 vs ZeroER (F1)");
  sota.SetHeader({"dataset", "S5-e2e P", "S5-e2e R", "S5-e2e F1", "ZeroER P",
                  "ZeroER R", "ZeroER F1"});
  for (const auto& d : bench::AllDatasetIds()) {
    const auto& pipe = study.pipeline.at(d);
    const auto& zero = study.zeroer.at(d);
    sota.AddRow({d, eval::Table::Num(pipe.precision, 3),
                 eval::Table::Num(pipe.recall, 3),
                 eval::Table::Num(pipe.f1, 3),
                 zero.timed_out ? "-" : eval::Table::Num(zero.precision, 3),
                 zero.timed_out ? "-" : eval::Table::Num(zero.recall, 3),
                 zero.timed_out ? "-" : eval::Table::Num(zero.f1, 3)});
  }
  sota.Print();
  return 0;
}
