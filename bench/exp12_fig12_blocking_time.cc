// Figure 12: blocking time per model and dataset (vectorization time
// excluded here — the indexing+querying cost of exact NNS), plus the
// S-GTR-T5 vs DeepBlocker end-to-end times of Table 5(a) context.

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp12 / Figure 12",
                     "Blocking (index+query) time in seconds per model and "
                     "dataset, exact NNS, k=10");

  const bench::BlockingStudy study = bench::RunBlockingStudy(env);

  eval::Table table("Figure 12 — blocking time (s), exact NNS k=10");
  std::vector<std::string> header = {"model"};
  for (const auto& d : bench::AllDatasetIds()) header.push_back(d);
  table.SetHeader(header);
  for (const embed::ModelId id : embed::AllModels()) {
    const std::string code = embed::GetModelInfo(id).code;
    std::vector<std::string> row = {std::string(embed::GetModelInfo(id).name)};
    for (const auto& d : bench::AllDatasetIds()) {
      row.push_back(eval::Table::Num(study.block_seconds.at(code).at(d), 3));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::SaveArtifact(env, "fig12", table);
  return 0;
}
