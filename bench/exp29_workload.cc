// Workload-realism benchmark (beyond the paper; DESIGN.md §16): exercises
// the deterministic trace harness and the SLO-aware admission stack on a
// live engine:
//
//   (a) trace determinism — the same seed must produce byte-identical
//       trace artifacts (generate twice, compare Serialize(); save + load
//       and compare again), EMBER_CHECKed hard;
//   (b) fail-closed container — every single-byte flip and every prefix
//       truncation of a trace file must be refused by LoadFrom (full
//       sweep, EMBER_CHECKed hard);
//   (c) SLO isolation under a 2x Zipfian burst — an in-quota "paid" tenant
//       with a tight deadline shares one engine with an over-quota
//       "scavenger" aggressor. The same trace replays in timed mode twice:
//       FIFO without quotas (baseline) and EDF with the trace's token
//       buckets. The table records per-tenant p99 and SLO attainment;
//       EDF+quotas should hold the paid tenant's SLO while the baseline
//       lets the aggressor trample it. Timing-dependent, so the contrast
//       is reported (and sanity-printed), not hard-asserted.
//
// Artifacts: exp29_determinism.csv, exp29_slo.csv under bench_artifacts/.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "load/generator.h"
#include "load/replayer.h"
#include "load/trace.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr size_t kK = 5;
constexpr uint64_t kRows = 192;          // shared base corpus
constexpr int64_t kPaidDeadlineMicros = 20'000;  // the paid tenant's SLO

load::GeneratorOptions WorkloadOptions(uint64_t seed, double seconds) {
  load::GeneratorOptions options;
  options.seed = seed;
  options.notes = "exp29: paid tenant vs 2x Zipfian burst aggressor";

  load::TenantSpec paid;
  paid.name = "paid";
  paid.corpus_rows = kRows;
  paid.zipf_s = 1.0;
  paid.weight = 1.0;
  paid.upsert_fraction = 0.05;
  paid.deadline_micros = kPaidDeadlineMicros;
  paid.quota_rate_per_sec = 20000;  // ample: the paid tenant is in quota
  paid.quota_burst = 1024;
  options.tenants.push_back(paid);

  load::TenantSpec scavenger;
  scavenger.name = "scav";
  scavenger.corpus_rows = kRows;
  scavenger.zipf_s = 1.2;
  scavenger.weight = 7.0;  // the aggressor dominates the merged stream
  scavenger.quota_rate_per_sec = 300;  // tight: the bucket throttles it
  scavenger.quota_burst = 16;
  options.tenants.push_back(scavenger);

  load::PhaseSpec burst;
  burst.arrival = load::PhaseSpec::Arrival::kBurst;
  burst.rate_per_sec = 4000;  // saturates the single-worker engine
  burst.burst_factor = 2.0;   // the 2x open-loop burst from the issue
  burst.burst_duty = 0.5;
  burst.period_micros = 250'000;
  burst.duration_micros = static_cast<int64_t>(seconds * 1e6);
  options.phases.push_back(burst);
  return options;
}

std::unique_ptr<serve::Engine> MakeEngine(
    std::shared_ptr<embed::EmbeddingModel> model, const la::Matrix& corpus,
    serve::QueuePolicy policy, std::vector<serve::TenantQuota> quotas) {
  serve::SnapshotManifest manifest;
  manifest.model_code = model->info().code;
  manifest.default_k = kK;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "exp29";
  serve::Snapshot snapshot =
      serve::Snapshot::Build(std::move(manifest), corpus);  // copies
  serve::EngineOptions options;
  options.k = kK;
  options.live = true;
  options.workers = 1;  // one worker: queueing pressure makes order matter
  options.max_batch = 8;
  options.max_wait_micros = 500;
  options.max_queue = 512;
  options.queue_policy = policy;
  options.quotas = std::move(quotas);
  auto engine = serve::Engine::Create(std::move(snapshot), model, options);
  EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                  engine.status().ToString().c_str());
  return std::move(engine).value();
}

struct SloRow {
  std::string config;
  std::string tenant;
  uint64_t submitted = 0;
  uint64_t throttled = 0;
  uint64_t completed = 0;
  uint64_t late = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double attainment = 1.0;  // completed-in-deadline / (completed + expired)
};

std::vector<SloRow> ReplayConfig(const std::string& config,
                                 const load::Trace& trace,
                                 std::shared_ptr<embed::EmbeddingModel> model,
                                 const la::Matrix& corpus,
                                 serve::QueuePolicy policy, bool with_quotas) {
  auto engine = MakeEngine(
      model, corpus, policy,
      with_quotas ? load::QuotasFromTrace(trace)
                  : std::vector<serve::TenantQuota>{});
  load::ReplayOptions replay;
  replay.mode = load::ReplayOptions::Mode::kTimed;
  replay.max_outstanding = 256;
  const auto report = load::Replay(trace, {engine.get()}, replay);
  EMBER_CHECK_MSG(report.ok(), "replay(%s): %s", config.c_str(),
                  report.status().ToString().c_str());
  engine->Stop();
  std::vector<SloRow> rows;
  for (const serve::TenantCounters& tenant : engine->Metrics().tenants) {
    SloRow row;
    row.config = config;
    row.tenant = tenant.tenant;
    row.submitted = tenant.submitted;
    row.throttled = tenant.throttled;
    row.completed = tenant.completed;
    row.late = tenant.deadline_misses;
    row.p50_ms = tenant.total_micros.Percentile(0.5) / 1e3;
    row.p99_ms = tenant.total_micros.Percentile(0.99) / 1e3;
    const uint64_t finished = tenant.completed + tenant.expired;
    row.attainment =
        finished == 0
            ? 1.0
            : static_cast<double>(tenant.completed - tenant.deadline_misses) /
                  static_cast<double>(finished);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp29_workload",
                     "deterministic traces + SLO-aware admission (EDF vs "
                     "FIFO under a 2x Zipfian burst)");

  // --- (a) determinism: same seed => byte-identical artifact ------------
  const double trace_seconds = env.full ? 4.0 : 1.5;
  const load::GeneratorOptions options = WorkloadOptions(env.seed, trace_seconds);
  WallTimer timer;
  const load::Trace trace = load::GenerateTrace(options);
  const double generate_seconds = timer.Restart();
  const load::Trace again = load::GenerateTrace(options);
  EMBER_CHECK_MSG(trace.Serialize() == again.Serialize(),
                  "same seed must generate byte-identical traces");

  const std::string trace_path = env.artifacts_dir + "/exp29.trace";
  EMBER_CHECK(trace.SaveTo(trace_path).ok());
  auto reloaded = load::Trace::LoadFrom(trace_path);
  EMBER_CHECK_MSG(reloaded.ok(), "round-trip: %s",
                  reloaded.status().ToString().c_str());
  EMBER_CHECK_MSG(reloaded.value().Serialize() == trace.Serialize(),
                  "save/load round-trip must be byte-identical");
  std::printf("determinism: %zu events, checksum %016llx, generated twice "
              "identically in %.1f ms\n",
              trace.events.size(),
              static_cast<unsigned long long>(trace.Checksum()),
              generate_seconds * 1e3);

  // --- (b) fail-closed: every byte flip and truncation refused ----------
  // Sweep a compact trace so the byte loop stays fast at any scale.
  load::GeneratorOptions small_options = WorkloadOptions(env.seed, 0.02);
  const load::Trace small = load::GenerateTrace(small_options);
  const std::string corrupt_path = env.artifacts_dir + "/exp29_corrupt.trace";
  EMBER_CHECK(small.SaveTo(corrupt_path).ok());
  auto pristine = load::Trace::LoadFrom(corrupt_path);
  EMBER_CHECK(pristine.ok());
  std::string bytes;
  {
    std::FILE* file = std::fopen(corrupt_path.c_str(), "rb");
    EMBER_CHECK(file != nullptr);
    char buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
      bytes.append(buffer, got);
    }
    std::fclose(file);
  }
  timer.Restart();
  size_t flips_refused = 0, truncations_refused = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::FILE* file = std::fopen(corrupt_path.c_str(), "wb");
    EMBER_CHECK(file != nullptr);
    EMBER_CHECK(std::fwrite(mutated.data(), 1, mutated.size(), file) ==
                mutated.size());
    std::fclose(file);
    EMBER_CHECK_MSG(!load::Trace::LoadFrom(corrupt_path).ok(),
                    "byte flip at offset %zu must be refused", i);
    ++flips_refused;
  }
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::FILE* file = std::fopen(corrupt_path.c_str(), "wb");
    EMBER_CHECK(file != nullptr);
    EMBER_CHECK(std::fwrite(bytes.data(), 1, len, file) == len);
    std::fclose(file);
    EMBER_CHECK_MSG(!load::Trace::LoadFrom(corrupt_path).ok(),
                    "truncation to %zu bytes must be refused", len);
    ++truncations_refused;
  }
  std::printf("fail-closed: %zu byte flips + %zu truncations of a %zu-byte "
              "container all refused in %.2f s\n",
              flips_refused, truncations_refused, bytes.size(),
              timer.Restart());
  std::remove(corrupt_path.c_str());

  eval::Table determinism("exp29(a/b): trace artifact determinism");
  determinism.SetHeader({"check", "value"});
  determinism.AddRow({"events", std::to_string(trace.events.size())});
  char checksum[32];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(trace.Checksum()));
  determinism.AddRow({"checksum", checksum});
  determinism.AddRow({"regenerate_identical", "yes"});
  determinism.AddRow({"roundtrip_identical", "yes"});
  determinism.AddRow({"byte_flips_refused", std::to_string(flips_refused)});
  determinism.AddRow(
      {"truncations_refused", std::to_string(truncations_refused)});
  determinism.Print();
  EMBER_CHECK(bench::SaveArtifact(env, "exp29_determinism", determinism).ok());

  // --- (c) SLO isolation: FIFO/no-quota baseline vs EDF+token buckets ---
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  std::vector<std::string> sentences;
  sentences.reserve(kRows);
  for (uint64_t r = 0; r < kRows; ++r) {
    sentences.push_back("exp29 corpus row " + std::to_string(r));
  }
  const la::Matrix corpus = model->VectorizeAll(sentences);

  std::vector<SloRow> rows = ReplayConfig("fifo_noquota", trace, model,
                                          corpus, serve::QueuePolicy::kFifo,
                                          /*with_quotas=*/false);
  const std::vector<SloRow> edf_rows =
      ReplayConfig("edf_quota", trace, model, corpus,
                   serve::QueuePolicy::kEdf, /*with_quotas=*/true);
  rows.insert(rows.end(), edf_rows.begin(), edf_rows.end());

  eval::Table slo("exp29(c): per-tenant SLO under a 2x Zipfian burst");
  slo.SetHeader({"config", "tenant", "submitted", "throttled", "completed",
                 "late", "p50_ms", "p99_ms", "slo_attainment"});
  const SloRow* fifo_paid = nullptr;
  const SloRow* edf_paid = nullptr;
  for (const SloRow& row : rows) {
    slo.AddRow({row.config, row.tenant, std::to_string(row.submitted),
                std::to_string(row.throttled), std::to_string(row.completed),
                std::to_string(row.late), eval::Table::Num(row.p50_ms, 2),
                eval::Table::Num(row.p99_ms, 2),
                eval::Table::Num(row.attainment, 4)});
    if (row.tenant == "paid") {
      if (row.config == "fifo_noquota") fifo_paid = &row;
      if (row.config == "edf_quota") edf_paid = &row;
    }
  }
  slo.Print();
  EMBER_CHECK(bench::SaveArtifact(env, "exp29_slo", slo).ok());

  EMBER_CHECK_MSG(fifo_paid != nullptr && edf_paid != nullptr,
                  "both configs must report the paid tenant");
  // Structural invariants that hold regardless of machine speed: the
  // baseline has no buckets (nothing throttled), the quota config
  // throttles the aggressor, and the paid tenant stays in quota.
  for (const SloRow& row : rows) {
    if (row.config == "fifo_noquota") EMBER_CHECK(row.throttled == 0);
    if (row.config == "edf_quota" && row.tenant == "paid") {
      EMBER_CHECK(row.throttled == 0);
    }
    if (row.config == "edf_quota" && row.tenant == "scav") {
      EMBER_CHECK_MSG(row.throttled > 0,
                      "the aggressor must be throttled under its quota");
    }
  }
  std::printf("\npaid tenant SLO (%.0f ms deadline): fifo_noquota "
              "attainment=%.4f p99=%.2f ms -> edf_quota attainment=%.4f "
              "p99=%.2f ms\n",
              kPaidDeadlineMicros / 1e3, fifo_paid->attainment,
              fifo_paid->p99_ms, edf_paid->attainment, edf_paid->p99_ms);
  if (edf_paid->attainment + 1e-9 < fifo_paid->attainment) {
    std::printf("WARNING: EDF+quota attainment below the FIFO baseline — "
                "timing noise on this machine; rerun or raise the load\n");
  }
  std::printf("exp29: OK\n");
  return 0;
}
