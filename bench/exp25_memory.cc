// Memory & cold-start benchmark (beyond the paper; DESIGN.md §12): measures
// what the EMBS0002 mmap container and the int8 scan tier buy over the
// EMBS0001 heap loader on synthetic S-GTR-T5-shaped corpora (dim 768):
//
//   (a) cold-start: LoadFrom wall time and the RSS the load itself adds,
//       for heap (v1), mmap+checksum (v2) and mmap trusted (v2, verify
//       off), across growing corpus sizes. The trusted mmap open must stay
//       flat (O(1): header + section table only) while the heap load grows
//       linearly with the corpus.
//   (b) scan throughput: float GemmBt scan vs int8 GemmBtI8Strided scan +
//       float rescore, same snapshot, same queries, k=10.
//   (c) quality: recall@10 of the rescored int8 scan against the float
//       oracle (BruteForceTopK), which the rescore must keep ~1.0.
//
// Artifacts: exp25_cold_start.csv and exp25_quantized_scan.csv under
// bench_artifacts/.

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/exact_index.h"
#include "la/vector_ops.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr size_t kDim = 768;
constexpr size_t kQueries = 256;
constexpr size_t kTopK = 10;

la::Matrix RandomUnitRows(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

// VmRSS in kilobytes from /proc/self/status (Linux-only, like the rest of
// the serving stack's /proc probes).
long RssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return -1;
}

serve::Snapshot BuildExact(const la::Matrix& corpus) {
  serve::SnapshotManifest manifest;
  manifest.model_code = "BM";
  manifest.default_k = kTopK;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "exp25-synthetic";
  return serve::Snapshot::Build(manifest, corpus, index::HnswOptions{},
                                index::LshOptions{});
}

struct LoadPoint {
  double millis = 0;
  long rss_delta_kb = 0;
  uint64_t bytes_mapped = 0;
};

LoadPoint MeasureLoad(const std::string& path,
                      const serve::LoadOptions& options) {
  const long rss_before = RssKb();
  WallTimer timer;
  auto loaded = serve::Snapshot::LoadFrom(path, options);
  EMBER_CHECK(loaded.ok());
  LoadPoint point;
  point.millis = timer.Seconds() * 1e3;
  point.rss_delta_kb = RssKb() - rss_before;
  point.bytes_mapped = loaded.value().bytes_mapped();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp25",
                     "memory: mmap cold start + int8 quantized scan");

  // Corpus sizes scale with --scale (default 0.25 -> 1k/4k/16k rows); the
  // point is the TREND across a 16x size span, not the absolute values.
  std::vector<size_t> sizes;
  for (const size_t base : {4000, 16000, 64000}) {
    sizes.push_back(static_cast<size_t>(static_cast<double>(base) *
                                        (env.full ? 1.0 : env.scale)));
  }

  std::printf("\n-- cold start: heap (EMBS0001) vs mmap (EMBS0002), dim %zu "
              "--\n",
              kDim);
  std::printf("%8s %12s %14s %14s %16s %14s %14s\n", "rows", "heap_ms",
              "heap_rss_kb", "mmap_ck_ms", "mmap_ck_rss_kb", "mmap_ms",
              "mmap_rss_kb");
  eval::Table cold("exp25 cold start");
  cold.SetHeader({"rows", "file_bytes", "heap_ms", "heap_rss_kb",
                  "mmap_verify_ms", "mmap_verify_rss_kb", "mmap_ms",
                  "mmap_rss_kb"});
  for (const size_t rows : sizes) {
    const la::Matrix corpus = RandomUnitRows(rows, kDim, env.seed + rows);
    const serve::Snapshot built = BuildExact(corpus);
    const std::string v1_path = env.artifacts_dir + "/exp25_snap_v1.bin";
    const std::string v2_path = env.artifacts_dir + "/exp25_snap_v2.bin";
    EMBER_CHECK(built.SaveTo(v1_path, serve::SnapshotFormat::kV1).ok());
    EMBER_CHECK(built.SaveTo(v2_path, serve::SnapshotFormat::kV2).ok());

    const LoadPoint heap = MeasureLoad(v1_path, serve::LoadOptions{});
    serve::LoadOptions verify;
    const LoadPoint mmap_ck = MeasureLoad(v2_path, verify);
    serve::LoadOptions trusted;
    trusted.verify_checksum = false;
    const LoadPoint mmap = MeasureLoad(v2_path, trusted);
    EMBER_CHECK(mmap.bytes_mapped > 0 && heap.bytes_mapped == 0);

    std::printf("%8zu %12.2f %14ld %14.2f %16ld %14.3f %14ld\n", rows,
                heap.millis, heap.rss_delta_kb, mmap_ck.millis,
                mmap_ck.rss_delta_kb, mmap.millis, mmap.rss_delta_kb);
    cold.AddRow({std::to_string(rows), std::to_string(mmap.bytes_mapped),
                 eval::Table::Num(heap.millis, 3),
                 std::to_string(heap.rss_delta_kb),
                 eval::Table::Num(mmap_ck.millis, 3),
                 std::to_string(mmap_ck.rss_delta_kb),
                 eval::Table::Num(mmap.millis, 4),
                 std::to_string(mmap.rss_delta_kb)});
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  }
  EMBER_CHECK(bench::SaveArtifact(env, "exp25_cold_start", cold).ok());

  // -- quantized scan: throughput + recall against the float oracle --
  const size_t rows = sizes.back();
  const la::Matrix corpus = RandomUnitRows(rows, kDim, env.seed);
  const la::Matrix queries = RandomUnitRows(kQueries, kDim, env.seed + 1);

  index::ExactIndex fp32;
  fp32.Build(corpus);
  WallTimer timer;
  const auto float_results = fp32.QueryBatch(queries, kTopK);
  const double float_seconds = timer.Restart();

  fp32.Quantize();
  timer.Restart();
  const auto i8_results = fp32.QueryBatch(queries, kTopK);
  const double i8_seconds = timer.Seconds();

  size_t hits = 0, total = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    std::set<uint32_t> truth;
    for (const index::Neighbor& n : float_results[q]) truth.insert(n.id);
    for (const index::Neighbor& n : i8_results[q]) hits += truth.count(n.id);
    total += float_results[q].size();
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(total);
  const double float_qps = kQueries / float_seconds;
  const double i8_qps = kQueries / i8_seconds;
  const double vec_bytes_f32 = static_cast<double>(rows) * kDim * 4;
  const double vec_bytes_i8 =
      static_cast<double>(rows) * (kDim + sizeof(la::QuantParams));

  std::printf("\n-- quantized scan vs float scan (%zu rows, %zu queries, "
              "k=%zu) --\n",
              rows, kQueries, kTopK);
  std::printf("float:  %8.1f q/s\n", float_qps);
  std::printf("int8:   %8.1f q/s  (%.2fx, scan tier %.1fx smaller)\n", i8_qps,
              i8_qps / float_qps, vec_bytes_f32 / vec_bytes_i8);
  std::printf("recall@%zu vs float oracle: %.4f\n", kTopK, recall);

  eval::Table scan("exp25 quantized scan");
  scan.SetHeader({"rows", "float_qps", "int8_qps", "speedup", "storage_ratio",
                  "recall_at_10"});
  scan.AddRow({std::to_string(rows), eval::Table::Num(float_qps, 1),
               eval::Table::Num(i8_qps, 1),
               eval::Table::Num(i8_qps / float_qps, 2),
               eval::Table::Num(vec_bytes_f32 / vec_bytes_i8, 2),
               eval::Table::Num(recall, 4)});
  EMBER_CHECK(bench::SaveArtifact(env, "exp25_quantized_scan", scan).ok());
  return 0;
}
