// Figure 5: Pearson correlation between every pair of models with respect
// to blocking recall (k=10) across the ten datasets.

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp04 / Figure 5",
                     "Pearson correlation of models wrt blocking recall "
                     "(k=10)");

  const bench::BlockingStudy study = bench::RunBlockingStudy(env);

  std::vector<std::string> codes;
  std::vector<std::vector<double>> series;
  for (const embed::ModelId id : embed::AllModels()) {
    const std::string code = embed::GetModelInfo(id).code;
    codes.push_back(code);
    std::vector<double> row;
    for (const auto& d : bench::AllDatasetIds()) {
      row.push_back(study.recall.at(code).at(d).at(10));
    }
    series.push_back(std::move(row));
  }

  eval::Table table("Figure 5 — Pearson correlation wrt blocking recall");
  std::vector<std::string> header = {"model"};
  for (const auto& c : codes) header.push_back(c);
  table.SetHeader(header);
  for (size_t a = 0; a < codes.size(); ++a) {
    std::vector<std::string> row = {codes[a]};
    for (size_t b = 0; b < codes.size(); ++b) {
      row.push_back(eval::Table::Num(
          eval::PearsonCorrelation(series[a], series[b]), 2));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::SaveArtifact(env, "fig5", table);
  return 0;
}
