// Figure 6: discriminativeness — the distribution of similarity scores of
// matching (positive) vs non-matching (negative) pairs on D2 and D4 per
// model. Rendered as per-class mean/stddev plus a 10-bin text histogram.

#include <cmath>

#include "bench_common.h"
#include "embed/model_registry.h"
#include "match/unsupervised.h"

namespace {

struct ClassStats {
  double mean = 0, stddev = 0;
  std::vector<size_t> histogram = std::vector<size_t>(10, 0);
  size_t count = 0;

  void Add(double sim) {
    mean += sim;
    stddev += sim * sim;
    const size_t bin =
        std::min<size_t>(9, static_cast<size_t>(sim * 10.0));
    ++histogram[bin];
    ++count;
  }
  void Finalize() {
    if (count == 0) return;
    mean /= static_cast<double>(count);
    stddev = std::sqrt(
        std::max(0.0, stddev / static_cast<double>(count) - mean * mean));
  }
  std::string Sparkline() const {
    static const char* kLevels = " .:-=+*#%@";
    size_t max = 1;
    for (const size_t h : histogram) max = std::max(max, h);
    std::string out;
    for (const size_t h : histogram) {
      out.push_back(kLevels[h * 9 / max]);
    }
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp05 / Figure 6",
                     "Similarity-score distributions for match vs non-match "
                     "pairs (D2, D4); histogram bins cover [0,1]");

  for (const std::string& dataset_id : {std::string("D2"), std::string("D4")}) {
    const datagen::CleanCleanDataset& dataset =
        bench::GetDataset(dataset_id, env);
    const eval::GroundTruth truth = bench::TruthOf(dataset);

    eval::Table table("Figure 6 — " + dataset_id +
                      " similarity distributions (bins 0.0..1.0)");
    table.SetHeader({"model", "pos_mean", "pos_sd", "pos_hist", "neg_mean",
                     "neg_sd", "neg_hist", "separation"});
    for (const embed::ModelId id : embed::AllModels()) {
      auto model = embed::CreateModel(id);
      const la::Matrix left = bench::Vectors(*model, dataset, true, env);
      const la::Matrix right = bench::Vectors(*model, dataset, false, env);
      const std::vector<cluster::ScoredPair> pairs =
          match::UnsupervisedMatcher::AllPairSimilarities(left, right);
      ClassStats positive, negative;
      for (const auto& pair : pairs) {
        if (truth.ContainsCleanClean(pair.left, pair.right)) {
          positive.Add(pair.sim);
        } else {
          negative.Add(pair.sim);
        }
      }
      positive.Finalize();
      negative.Finalize();
      // Separation: distance between class means in pooled-stddev units.
      const double pooled =
          std::sqrt((positive.stddev * positive.stddev +
                     negative.stddev * negative.stddev) /
                    2.0);
      const double separation =
          pooled > 0 ? (positive.mean - negative.mean) / pooled : 0.0;
      table.AddRow({model->info().name, eval::Table::Num(positive.mean, 3),
                    eval::Table::Num(positive.stddev, 3),
                    positive.Sparkline(), eval::Table::Num(negative.mean, 3),
                    eval::Table::Num(negative.stddev, 3),
                    negative.Sparkline(), eval::Table::Num(separation, 2)});
    }
    table.Print();
    bench::SaveArtifact(env, "fig6_" + dataset_id, table);
  }
  return 0;
}
