// Resilience benchmark (beyond the paper; DESIGN.md §10): drives the
// serve::Engine open-loop while failpoints inject embed/query faults, and
// measures what the resilience machinery buys:
//
//   (a) a fault-rate sweep on the embed stage (0/1/5/20/100% per-attempt
//       failure probability) recording availability, p99, retry counts,
//       breaker short-circuits, and the exact counter reconciliation
//       submitted == completed + expired + failed;
//   (b) a degraded-mode point (5% query-stage faults answered by the exact
//       fallback scan instead of failing); and
//   (c) hot snapshot reloads under load — one good swap and one corrupt
//       rejection mid-run — demonstrating zero swap-attributable failures.
//
// Requires a build with EMBER_FAILPOINTS_ENABLED=ON for (a) and (b); the
// reload experiment (c) runs in any build. Artifacts: exp23_faults.csv and
// exp23_reload.csv under bench_artifacts/.

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr double kPointSeconds = 2.0;
constexpr double kOfferedQps = 300.0;
constexpr double kDeadlineMs = 100.0;
constexpr size_t kK = 10;

serve::Snapshot BuildSnapshot(const la::Matrix& corpus,
                              const std::string& model_code,
                              const std::string& dataset) {
  serve::SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = kK;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = dataset;
  return serve::Snapshot::Build(std::move(manifest), corpus);
}

serve::EngineOptions ResilientOptions() {
  serve::EngineOptions options;
  options.max_batch = 64;
  options.max_wait_micros = 2000;
  options.max_queue = 256;
  options.embed_retry.max_attempts = 3;
  options.embed_retry.initial_backoff_micros = 200;
  options.embed_retry.max_backoff_micros = 5'000;
  options.breaker.window = 32;
  options.breaker.min_samples = 8;
  options.breaker.trip_ratio = 0.5;
  options.breaker.open_micros = 100'000;
  return options;
}

struct RunResult {
  double availability_pct = 0;  // completed / offered
  double p50_ms = 0, p99_ms = 0;
  serve::EngineMetrics metrics;
  uint64_t offered = 0;
  uint64_t submit_refused = 0;  // queue-full rejections + breaker sheds
  bool reconciled = false;
};

/// Open-loop run against `engine`: fires on schedule regardless of engine
/// health, drains every future, then reconciles engine counters against the
/// generator's books (in-flight is zero once all futures resolved).
RunResult DriveOpenLoop(serve::Engine& engine,
                        const std::vector<std::string>& queries,
                        double seconds = kPointSeconds) {
  RunResult result;
  const auto total = static_cast<size_t>(kOfferedQps * seconds + 0.5);
  result.offered = total;
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  futures.reserve(total);
  const SteadyTime start = SteadyNow();
  for (size_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(
        AfterMicros(start, static_cast<int64_t>(i * 1e6 / kOfferedQps)));
    auto submitted =
        engine.Submit(queries[i % queries.size()],
                      AfterMicros(SteadyNow(),
                                  static_cast<int64_t>(kDeadlineMs * 1e3)));
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
    } else {
      ++result.submit_refused;
    }
  }
  uint64_t ok = 0;
  for (auto& future : futures) ok += future.get().ok() ? 1 : 0;

  result.metrics = engine.Metrics();
  result.availability_pct =
      100.0 * static_cast<double>(ok) / static_cast<double>(total);
  result.p50_ms = result.metrics.total_micros.Percentile(0.5) / 1e3;
  result.p99_ms = result.metrics.total_micros.Percentile(0.99) / 1e3;
  result.reconciled =
      result.metrics.completed + result.metrics.expired +
          result.metrics.failed ==
      result.metrics.submitted;
  return result;
}

void AddRunRow(eval::Table& table, const std::string& label,
               const RunResult& r) {
  table.AddRow({label, eval::Table::Num(r.availability_pct, 1),
                eval::Table::Num(r.p50_ms, 2), eval::Table::Num(r.p99_ms, 2),
                std::to_string(r.metrics.completed),
                std::to_string(r.metrics.failed),
                std::to_string(r.metrics.retries),
                std::to_string(r.metrics.fallbacks),
                std::to_string(r.metrics.breaker_trips),
                std::to_string(r.metrics.short_circuits +
                               r.metrics.rejected),
                r.reconciled ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp23 / resilience",
                     "Serving under injected faults: embed fault-rate sweep, "
                     "degraded mode, hot snapshot reload under load");

  const datagen::CleanCleanDataset& d2 = bench::GetDataset("D2", env);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  la::Matrix corpus = bench::Vectors(*model, d2, /*left_side=*/false, env);
  const std::vector<std::string> queries = d2.left.AllSentences();
  const serve::Snapshot snapshot =
      BuildSnapshot(corpus, model->info().code, "D2");

  // --- (a)+(b): fault-rate sweep (needs a failpoint-enabled build). ---
  eval::Table fault_table(
      "exp23: open-loop " + eval::Table::Num(kOfferedQps, 0) +
      " qps for " + eval::Table::Num(kPointSeconds, 0) +
      " s, embed retry x3, breaker 50%/32");
  fault_table.SetHeader({"fault", "avail_pct", "p50_ms", "p99_ms",
                         "completed", "failed", "retries", "fallbacks",
                         "trips", "refused", "reconciled"});
  if (fail::kEnabled) {
    for (const double rate : {0.0, 0.01, 0.05, 0.20, 1.0}) {
      fail::DisarmAll();
      if (rate > 0.0) {
        const std::string spec =
            rate >= 1.0 ? "error:unavailable"
                        : "error:unavailable,p=" + eval::Table::Num(rate, 2) +
                              ",seed=" + std::to_string(env.seed);
        const Status armed = fail::ConfigureSpec("engine/embed", spec);
        EMBER_CHECK_MSG(armed.ok(), "arm: %s", armed.ToString().c_str());
      }
      auto engine =
          serve::Engine::Create(snapshot, model, ResilientOptions());
      EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                      engine.status().ToString().c_str());
      const RunResult r = DriveOpenLoop(*engine.value(), queries);
      engine.value()->Stop();
      AddRunRow(fault_table,
                "embed " + eval::Table::Num(100.0 * rate, 0) + "%", r);
    }
    // Degraded mode: query-stage faults answered by the exact fallback.
    fail::DisarmAll();
    const Status armed = fail::ConfigureSpec(
        "engine/query", "error:io,p=0.05,seed=" + std::to_string(env.seed));
    EMBER_CHECK_MSG(armed.ok(), "arm: %s", armed.ToString().c_str());
    auto engine = serve::Engine::Create(snapshot, model, ResilientOptions());
    EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                    engine.status().ToString().c_str());
    const RunResult r = DriveOpenLoop(*engine.value(), queries);
    engine.value()->Stop();
    AddRunRow(fault_table, "query 5%", r);
    fail::DisarmAll();
  } else {
    std::printf("(failpoints compiled out: skipping the fault sweep; build "
                "with -DEMBER_FAILPOINTS_ENABLED=ON)\n");
  }
  fault_table.Print();
  bench::SaveArtifact(env, "exp23_faults", fault_table);

  // --- (c): hot reload under load (works in any build). ---
  const std::string good_path = env.artifacts_dir + "/exp23_reload.snap";
  const std::string corrupt_path =
      env.artifacts_dir + "/exp23_reload_corrupt.snap";
  const Status saved = snapshot.SaveTo(good_path);
  EMBER_CHECK_MSG(saved.ok(), "save: %s", saved.ToString().c_str());
  {
    // The corrupt replacement: a truncated copy of the real container, so
    // it passes no-such-file checks and fails only at verification.
    std::ifstream in(good_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string image = buffer.str();
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size() / 2));
  }

  auto engine = serve::Engine::Create(snapshot, model, ResilientOptions());
  EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                  engine.status().ToString().c_str());

  Status good_reload, corrupt_reload;
  std::thread reloader([&] {
    // Mid-run: one good swap, then one corrupt replacement that must be
    // rejected while the old snapshot keeps serving.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kPointSeconds * 0.4));
    good_reload = engine.value()->ReloadSnapshot(good_path);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kPointSeconds * 0.2));
    corrupt_reload = engine.value()->ReloadSnapshot(corrupt_path);
  });
  const RunResult r = DriveOpenLoop(*engine.value(), queries);
  reloader.join();
  engine.value()->Stop();
  EMBER_CHECK_MSG(good_reload.ok(), "good reload failed: %s",
                  good_reload.ToString().c_str());
  EMBER_CHECK_MSG(!corrupt_reload.ok(),
                  "corrupt reload was accepted — validation hole");

  eval::Table reload_table("exp23: hot reload under load (good swap + "
                           "corrupt rejection mid-run)");
  reload_table.SetHeader({"avail_pct", "p50_ms", "p99_ms", "completed",
                          "failed", "reloads", "reload_failures",
                          "reconciled"});
  reload_table.AddRow({eval::Table::Num(r.availability_pct, 1),
                       eval::Table::Num(r.p50_ms, 2),
                       eval::Table::Num(r.p99_ms, 2),
                       std::to_string(r.metrics.completed),
                       std::to_string(r.metrics.failed),
                       std::to_string(r.metrics.reloads),
                       std::to_string(r.metrics.reload_failures),
                       r.reconciled ? "yes" : "NO"});
  reload_table.Print();
  bench::SaveArtifact(env, "exp23_reload", reload_table);

  EMBER_CHECK_MSG(r.metrics.failed == 0,
                  "reload run saw %llu failed requests",
                  static_cast<unsigned long long>(r.metrics.failed));
  std::printf("\nreload under load: %llu completed, 0 failed, good swap "
              "applied, corrupt replacement rejected (rollback)\n",
              static_cast<unsigned long long>(r.metrics.completed));
  return 0;
}
