// Figure 4: per-dataset ranking of the 12 models with respect to blocking
// recall (k=10), plus the average ranking position (lower is better).

#include "bench_common.h"
#include "embed/model_registry.h"
#include "eval/significance.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp03 / Figure 4",
                     "Model ranking wrt blocking recall (k=10); lower is "
                     "better");

  const bench::BlockingStudy study = bench::RunBlockingStudy(env);

  std::vector<std::vector<double>> scores;
  for (const embed::ModelId id : embed::AllModels()) {
    const std::string code = embed::GetModelInfo(id).code;
    std::vector<double> row;
    for (const auto& d : bench::AllDatasetIds()) {
      row.push_back(study.recall.at(code).at(d).at(10));
    }
    scores.push_back(std::move(row));
  }
  const std::vector<std::vector<double>> ranks = eval::RankMatrix(scores);

  eval::Table table("Figure 4 — blocking recall ranking (k=10)");
  std::vector<std::string> header = {"model"};
  for (const auto& d : bench::AllDatasetIds()) header.push_back(d);
  header.push_back("avg");
  table.SetHeader(header);
  size_t m = 0;
  for (const embed::ModelId id : embed::AllModels()) {
    std::vector<std::string> row = {std::string(embed::GetModelInfo(id).name)};
    for (size_t c = 0; c < ranks[m].size(); ++c) {
      row.push_back(eval::Table::Num(ranks[m][c], c + 1 == ranks[m].size()
                                                      ? 2
                                                      : 0));
    }
    table.AddRow(row);
    ++m;
  }
  table.Print();
  bench::SaveArtifact(env, "fig4", table);

  // Is the headline ordering robust to the dataset sample? Paired bootstrap
  // and Wilcoxon over the ten datasets for the key cross-family contrasts.
  const auto series_of = [&](const char* code) {
    std::vector<double> values;
    for (const auto& d : bench::AllDatasetIds()) {
      values.push_back(study.recall.at(code).at(d).at(10));
    }
    return values;
  };
  eval::Table significance("Ranking robustness (paired bootstrap / "
                           "Wilcoxon over datasets)");
  significance.SetHeader({"contrast", "P(A>=B)", "wilcoxon_p"});
  const std::pair<const char*, const char*> contrasts[] = {
      {"S5", "GE"}, {"S5", "FT"}, {"GE", "BT"}, {"DT", "AT"}};
  for (const auto& [a, b] : contrasts) {
    const auto sa = series_of(a);
    const auto sb = series_of(b);
    significance.AddRow(
        {std::string(a) + " vs " + b,
         eval::Table::Num(eval::BootstrapProbabilityBetter(sa, sb), 3),
         eval::Table::Num(eval::WilcoxonSignedRankPValue(sa, sb), 4)});
  }
  significance.Print();
  return 0;
}
