// Figure 14: unsupervised matching time per model and dataset — the UMC
// clustering time at the best-F1 threshold (blue in the paper) and the
// total time of the full delta sweep (orange).

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp14 / Figure 14",
                     "Unsupervised matching time (s): UMC at best delta "
                     "(best_s) and full sweep (sweep_s)");

  const bench::UnsupStudy study = bench::RunUnsupStudy(env);

  eval::Table table("Figure 14 — UMC matching time (s)");
  std::vector<std::string> header = {"model"};
  for (const auto& d : bench::AllDatasetIds()) {
    header.push_back(d + " best");
    header.push_back(d + " sweep");
  }
  table.SetHeader(header);
  for (const embed::ModelId id : embed::AllModels()) {
    const std::string code = embed::GetModelInfo(id).code;
    std::vector<std::string> row = {std::string(embed::GetModelInfo(id).name)};
    for (const auto& d : bench::AllDatasetIds()) {
      const auto& cell = study.cells.at("UMC").at(code).at(d);
      row.push_back(eval::Table::Num(cell.match_seconds, 4));
      row.push_back(eval::Table::Num(cell.sweep_seconds, 3));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::SaveArtifact(env, "fig14", table);
  return 0;
}
