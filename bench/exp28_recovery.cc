// Recovery benchmark (beyond the paper; DESIGN.md §15): measures what the
// replica-recovery machinery costs and buys on a live sharded fleet:
//
//   (a) catch-up lag vs missed mutations — kill one replica, stream M
//       mutations past it, rejoin, and time until Converged(); run each M
//       once with a log that holds the whole suffix (replay) and once with
//       a 2-entry log (forced snapshot resync), exposing the crossover
//       between the two heal paths;
//   (b) availability and p99 across a full kill/rejoin cycle under open-
//       loop query load with a live write stream — the availability number
//       is EMBER_CHECKed at 100%: an outage of one replica must never cost
//       a query while its sibling serves; and
//   (c) anti-entropy detection lag — fabricate silent divergence on one
//       replica and time until the digest probe quarantines and heals it.
//
// Artifacts: exp28_catchup.csv, exp28_cycle.csv, exp28_antientropy.csv
// under bench_artifacts/.

#include <future>
#include <thread>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr size_t kK = 10;
constexpr int64_t kRecoverTickMicros = 500;

std::unique_ptr<serve::Router> MakeFleet(
    const la::Matrix& corpus, std::shared_ptr<embed::EmbeddingModel> model,
    uint32_t shards, size_t replicas, size_t log_capacity) {
  serve::SnapshotManifest base;
  base.model_code = model->info().code;
  base.default_k = kK;
  base.kind = serve::IndexKind::kExact;
  base.dataset = "D2";
  auto built = serve::BuildShardSnapshots(base, corpus, shards);
  EMBER_CHECK_MSG(built.ok(), "shards: %s",
                  built.status().ToString().c_str());
  serve::EngineOptions engine_options;
  engine_options.k = kK;
  engine_options.live = true;
  std::vector<std::unique_ptr<serve::Engine>> engines;
  for (size_t r = 0; r < replicas; ++r) {
    for (const serve::Snapshot& shard : built.value()) {
      auto engine = serve::Engine::Create(shard, model, engine_options);
      EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                      engine.status().ToString().c_str());
      engines.push_back(std::move(engine).value());
    }
  }
  serve::RouterOptions options;
  options.k = kK;
  options.recover_tick_micros = kRecoverTickMicros;
  options.log_capacity = log_capacity;
  auto router = serve::Router::Create(std::move(engines), model, options);
  EMBER_CHECK_MSG(router.ok(), "router: %s",
                  router.status().ToString().c_str());
  return std::move(router).value();
}

/// Waits for Converged() with a fine poll; returns the wait in ms (negative
/// if the deadline passed without convergence).
double TimeToConverge(serve::Router& router, double timeout_seconds = 30) {
  const SteadyTime start = SteadyNow();
  const SteadyTime deadline =
      AfterMicros(start, static_cast<int64_t>(timeout_seconds * 1e6));
  while (!router.Converged()) {
    if (MicrosBetween(SteadyNow(), deadline) <= 0) return -1;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return MicrosBetween(start, SteadyNow()) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp28 / recovery",
                     "Replica recovery: catch-up lag vs missed mutations, "
                     "replay/resync crossover, availability across a "
                     "kill/rejoin cycle, anti-entropy detection lag");

  const datagen::CleanCleanDataset& d2 = bench::GetDataset("D2", env);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  const la::Matrix corpus =
      bench::Vectors(*model, d2, /*left_side=*/false, env);
  const std::vector<std::string> queries = d2.left.AllSentences();
  EMBER_CHECK(!queries.empty());

  // --- (a) catch-up lag vs missed mutations: replay vs forced resync. ---
  eval::Table catchup(
      "exp28(a): heal time after M missed mutations (1 shard x 2 replicas, "
      "recovery tick " + std::to_string(kRecoverTickMicros) + " us)");
  catchup.SetHeader({"missed", "path", "heal_ms", "replayed", "resyncs",
                     "converged"});
  for (const size_t missed : {64ul, 256ul, 1024ul}) {
    for (const bool force_resync : {false, true}) {
      auto router = MakeFleet(corpus, model, /*shards=*/1, /*replicas=*/2,
                              force_resync ? 2 : 4096);
      EMBER_CHECK(router->KillReplica(0, 1).ok());
      for (size_t m = 0; m < missed; ++m) {
        const auto admitted = router->Upsert(
            "missed " + std::to_string(m) + " " +
            queries[m % queries.size()]);
        EMBER_CHECK_MSG(admitted.ok(), "upsert: %s",
                        admitted.status().ToString().c_str());
      }
      EMBER_CHECK(router->RejoinReplica(0, 1).ok());
      const double heal_ms = TimeToConverge(*router);
      router->Stop();
      const serve::RouterMetrics metrics = router->Metrics();
      catchup.AddRow({std::to_string(missed),
                      force_resync ? "resync" : "replay",
                      eval::Table::Num(heal_ms, 1),
                      std::to_string(metrics.replayed_mutations),
                      std::to_string(metrics.resyncs),
                      heal_ms >= 0 ? "yes" : "NO"});
      EMBER_CHECK_MSG(heal_ms >= 0, "fleet never converged (M=%zu)",
                      missed);
    }
  }
  catchup.Print();
  bench::SaveArtifact(env, "exp28_catchup", catchup);

  // --- (b) availability + p99 across one kill/rejoin cycle under load. ---
  eval::Table cycle(
      "exp28(b): open-loop 300 qps with a live write stream; kill one "
      "replica at t/3, rejoin at 2t/3 (2 shards x 2 replicas)");
  cycle.SetHeader({"phase", "offered", "answered", "partial",
                   "availability_pct", "p50_ms", "p99_ms"});
  {
    constexpr double kQps = 300.0, kSeconds = 4.0;
    auto router = MakeFleet(corpus, model, /*shards=*/2, /*replicas=*/2,
                            /*log_capacity=*/4096);
    const auto total = static_cast<size_t>(kQps * kSeconds + 0.5);
    const size_t kill_at = total / 3, rejoin_at = (2 * total) / 3;
    std::vector<std::future<Result<serve::RouterReply>>> futures;
    futures.reserve(total);
    const SteadyTime start = SteadyNow();
    for (size_t i = 0; i < total; ++i) {
      std::this_thread::sleep_until(
          AfterMicros(start, static_cast<int64_t>(i * 1e6 / kQps)));
      if (i == kill_at) EMBER_CHECK(router->KillReplica(0, 1).ok());
      if (i == rejoin_at) EMBER_CHECK(router->RejoinReplica(0, 1).ok());
      if (i % 8 == 0) {
        const auto admitted = router->Upsert(
            "cycle upsert " + std::to_string(i));
        EMBER_CHECK(admitted.ok());
      }
      auto submitted = router->Submit(queries[i % queries.size()]);
      EMBER_CHECK(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    size_t answered = 0, partial = 0;
    for (auto& future : futures) {
      auto reply = future.get();
      if (reply.ok()) {
        ++answered;
        partial += reply.value().partial ? 1 : 0;
      }
    }
    const double heal_ms = TimeToConverge(*router);
    router->Stop();
    const serve::RouterMetrics metrics = router->Metrics();
    const double availability =
        100.0 * static_cast<double>(answered - partial) /
        static_cast<double>(total);
    cycle.AddRow({"kill/rejoin cycle", std::to_string(total),
                  std::to_string(answered), std::to_string(partial),
                  eval::Table::Num(availability, 2),
                  eval::Table::Num(
                      metrics.total_micros.Percentile(0.5) / 1e3, 2),
                  eval::Table::Num(
                      metrics.total_micros.Percentile(0.99) / 1e3, 2)});
    // The acceptance bar: one replica down must cost ZERO queries — full
    // (non-partial) answers for every submitted query, and the rejoiner
    // converges afterwards.
    EMBER_CHECK_MSG(answered == total && partial == 0,
                    "availability broke: %zu/%zu answered, %zu partial",
                    answered, total, partial);
    EMBER_CHECK_MSG(heal_ms >= 0, "rejoined replica never converged");
    EMBER_CHECK_MSG(metrics.catchups + metrics.resyncs >= 1,
                    "no heal recorded");
  }
  cycle.Print();
  bench::SaveArtifact(env, "exp28_cycle", cycle);

  // --- (c) anti-entropy: silent divergence -> detection -> heal. ---
  eval::Table anti("exp28(c): fabricated silent divergence on one replica");
  anti.SetHeader({"metric", "value"});
  {
    auto router = MakeFleet(corpus, model, /*shards=*/1, /*replicas=*/2,
                            /*log_capacity=*/4096);
    auto direct = router->replicas(0)[1]->Upsert("fabricated row");
    EMBER_CHECK(direct.ok() && direct.value().get().ok());
    const SteadyTime t0 = SteadyNow();
    while (router->Metrics().digest_mismatches == 0) {
      EMBER_CHECK_MSG(MicrosBetween(t0, SteadyNow()) < 30e6,
                      "digest probe never fired");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const double detect_ms = MicrosBetween(t0, SteadyNow()) / 1e3;
    const double heal_ms = TimeToConverge(*router);
    EMBER_CHECK_MSG(heal_ms >= 0, "diverged replica never healed");
    router->Stop();
    const serve::RouterMetrics metrics = router->Metrics();
    anti.AddRow({"detect_ms", eval::Table::Num(detect_ms, 2)});
    anti.AddRow({"heal_ms (detect -> converged)",
                 eval::Table::Num(heal_ms, 2)});
    anti.AddRow({"digest_mismatches",
                 std::to_string(metrics.digest_mismatches)});
    anti.AddRow({"resyncs", std::to_string(metrics.resyncs)});
  }
  anti.Print();
  bench::SaveArtifact(env, "exp28_antientropy", anti);

  std::printf("\nexp28 done: recovery heals are measured, availability "
              "held at 100%% through the cycle.\n");
  return 0;
}
