// Figure 2: Pearson correlation between the best-F1 scores of Unique
// Mapping Clustering (UMC), Exact Clustering (EXC) and Kiraly Clustering
// (KRC), computed over all (model, dataset) combinations — the robustness
// check that justifies reporting only UMC in the matching experiments.

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp07 / Figure 2",
                     "Pearson correlation between UMC, EXC and KRC best F1 "
                     "across all models and datasets");

  const bench::UnsupStudy study = bench::RunUnsupStudy(env);

  const std::vector<std::string> algorithms = {"UMC", "EXC", "KRC"};
  std::map<std::string, std::vector<double>> series;
  for (const std::string& algorithm : algorithms) {
    for (const embed::ModelId id : embed::AllModels()) {
      const std::string code = embed::GetModelInfo(id).code;
      for (const auto& d : bench::AllDatasetIds()) {
        series[algorithm].push_back(
            study.cells.at(algorithm).at(code).at(d).f1);
      }
    }
  }

  eval::Table table("Figure 2 — Pearson correlation of clustering "
                    "algorithms (best F1)");
  table.SetHeader({"", "UMC", "EXC", "KRC"});
  for (const std::string& a : algorithms) {
    std::vector<std::string> row = {a};
    for (const std::string& b : algorithms) {
      row.push_back(eval::Table::Num(
          eval::PearsonCorrelation(series[a], series[b]), 3));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::SaveArtifact(env, "fig2", table);
  return 0;
}
