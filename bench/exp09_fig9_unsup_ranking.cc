// Figure 9: per-dataset ranking of the 12 models with respect to
// unsupervised matching F1 (lower is better), with the average position.

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp09 / Figure 9",
                     "Model ranking wrt unsupervised matching F1; lower is "
                     "better");

  const bench::UnsupStudy study = bench::RunUnsupStudy(env);

  std::vector<std::vector<double>> scores;
  for (const embed::ModelId id : embed::AllModels()) {
    const std::string code = embed::GetModelInfo(id).code;
    std::vector<double> row;
    for (const auto& d : bench::AllDatasetIds()) {
      row.push_back(study.cells.at("UMC").at(code).at(d).f1);
    }
    scores.push_back(std::move(row));
  }
  const std::vector<std::vector<double>> ranks = eval::RankMatrix(scores);

  eval::Table table("Figure 9 — unsupervised matching F1 ranking");
  std::vector<std::string> header = {"model"};
  for (const auto& d : bench::AllDatasetIds()) header.push_back(d);
  header.push_back("avg");
  table.SetHeader(header);
  size_t m = 0;
  for (const embed::ModelId id : embed::AllModels()) {
    std::vector<std::string> row = {std::string(embed::GetModelInfo(id).name)};
    for (size_t c = 0; c < ranks[m].size(); ++c) {
      row.push_back(
          eval::Table::Num(ranks[m][c], c + 1 == ranks[m].size() ? 2 : 0));
    }
    table.AddRow(row);
    ++m;
  }
  table.Print();
  bench::SaveArtifact(env, "fig9", table);
  return 0;
}
