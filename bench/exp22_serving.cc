// Online serving benchmark (beyond the paper; DESIGN.md §9): freezes the
// S-GTR-T5 blocking pipeline into a snapshot for each index kind, verifies
// the save/load round trip answers bit-identically, then drives the
// serve::Engine micro-batcher with
//
//   (a) a closed-loop capacity probe (P producers, each submitting the
//       next record when the previous one completes), and
//   (b) an open-loop sweep of offered QPS x batch window, where the
//       generator fires on schedule regardless of engine health, so
//       overload surfaces as rejections and deadline misses.
//
// Artifacts: exp22_snapshot_*.csv (startup costs) and exp22_serving_*.csv
// (latency percentiles per operating point), both under bench_artifacts/.

#include <atomic>
#include <fstream>
#include <thread>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr double kProbeSeconds = 2.0;
constexpr double kPointSeconds = 2.0;
constexpr double kDeadlineMs = 50.0;

serve::Snapshot BuildSnapshot(serve::IndexKind kind, const la::Matrix& corpus,
                              const std::string& model_code,
                              const std::string& dataset, uint64_t seed) {
  serve::SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = 10;
  manifest.kind = kind;
  manifest.dataset = dataset;
  index::HnswOptions hnsw_options;
  hnsw_options.seed = seed;
  index::LshOptions lsh_options;
  lsh_options.seed = seed;
  return serve::Snapshot::Build(std::move(manifest), corpus, hnsw_options,
                                lsh_options);
}

bool SameResults(const std::vector<std::vector<index::Neighbor>>& a,
                 const std::vector<std::vector<index::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id ||
          a[q][i].distance != b[q][i].distance) {
        return false;
      }
    }
  }
  return true;
}

/// Closed-loop probe: `producers` threads each keep exactly one request in
/// flight. Returns achieved QPS — the engine's capacity under this policy.
double ClosedLoopCapacity(serve::Engine& engine,
                          const std::vector<std::string>& queries,
                          size_t producers) {
  std::atomic<uint64_t> done{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  const SteadyTime start = SteadyNow();
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      size_t i = p;
      while (!stop.load(std::memory_order_relaxed)) {
        auto submitted = engine.Submit(queries[i % queries.size()]);
        i += producers;
        if (!submitted.ok()) continue;  // backpressure: retry immediately
        if (submitted.value().get().ok()) {
          done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kProbeSeconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  return static_cast<double>(done.load()) /
         MicrosBetween(start, SteadyNow()) * 1e6;
}

struct OpenLoopPoint {
  double offered_qps = 0;
  int64_t window_micros = 0;
  double achieved_qps = 0;
  double p50_ms = 0, p99_ms = 0;
  double reject_pct = 0;
  uint64_t expired = 0, late = 0;
  double mean_batch = 0;
};

OpenLoopPoint OpenLoop(serve::Engine& engine,
                       const std::vector<std::string>& queries,
                       double offered_qps) {
  OpenLoopPoint point;
  point.offered_qps = offered_qps;
  point.window_micros = engine.options().max_wait_micros;
  const auto total = static_cast<size_t>(offered_qps * kPointSeconds + 0.5);
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  futures.reserve(total);
  size_t rejected = 0;
  const SteadyTime start = SteadyNow();
  for (size_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(
        AfterMicros(start, static_cast<int64_t>(i * 1e6 / offered_qps)));
    auto submitted =
        engine.Submit(queries[i % queries.size()],
                      AfterMicros(SteadyNow(),
                                  static_cast<int64_t>(kDeadlineMs * 1e3)));
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
    } else {
      ++rejected;
    }
  }
  size_t ok = 0;
  for (auto& future : futures) ok += future.get().ok() ? 1 : 0;
  const double wall_seconds = MicrosBetween(start, SteadyNow()) / 1e6;

  const serve::EngineMetrics metrics = engine.Metrics();
  point.achieved_qps = static_cast<double>(ok) / wall_seconds;
  point.p50_ms = metrics.total_micros.Percentile(0.5) / 1e3;
  point.p99_ms = metrics.total_micros.Percentile(0.99) / 1e3;
  point.reject_pct = 100.0 * static_cast<double>(rejected) /
                     static_cast<double>(total == 0 ? 1 : total);
  point.expired = metrics.expired;
  point.late = metrics.deadline_misses;
  point.mean_batch = metrics.batch_size.Mean();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp22 / serving",
                     "Online ER serving: snapshot startup, closed-loop "
                     "capacity, open-loop QPS x batch-window sweep");

  const datagen::CleanCleanDataset& d2 = bench::GetDataset("D2", env);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  la::Matrix corpus = bench::Vectors(*model, d2, /*left_side=*/false, env);
  const std::vector<std::string> queries = d2.left.AllSentences();
  const la::Matrix query_vectors =
      bench::Vectors(*model, d2, /*left_side=*/true, env);

  // --- Snapshot startup: build vs save+load, with round-trip identity. ---
  eval::Table snapshot_table("exp22: snapshot persistence (D2, " +
                             std::to_string(corpus.rows()) + " rows)");
  snapshot_table.SetHeader({"index", "build_ms", "save_ms", "load_ms",
                            "file_kb", "roundtrip_identical"});
  std::vector<std::pair<serve::IndexKind, serve::Snapshot>> snapshots;
  for (const serve::IndexKind kind :
       {serve::IndexKind::kExact, serve::IndexKind::kHnsw,
        serve::IndexKind::kLsh}) {
    WallTimer timer;
    serve::Snapshot built =
        BuildSnapshot(kind, corpus, model->info().code, "D2", env.seed);
    const double build_ms = timer.Restart() * 1e3;
    const std::string path = env.artifacts_dir + "/exp22_" +
                             serve::IndexKindName(kind) + ".snap";
    const Status saved = built.SaveTo(path);
    EMBER_CHECK_MSG(saved.ok(), "snapshot save: %s",
                    saved.ToString().c_str());
    const double save_ms = timer.Restart() * 1e3;
    auto loaded = serve::Snapshot::LoadFrom(path);
    EMBER_CHECK_MSG(loaded.ok(), "snapshot load: %s",
                    loaded.status().ToString().c_str());
    const double load_ms = timer.Restart() * 1e3;
    const bool identical =
        SameResults(built.QueryBatch(query_vectors, 10),
                    loaded.value().QueryBatch(query_vectors, 10));
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    const double file_kb = static_cast<double>(file.tellg()) / 1024.0;
    snapshot_table.AddRow({serve::IndexKindName(kind),
                           eval::Table::Num(build_ms, 1),
                           eval::Table::Num(save_ms, 1),
                           eval::Table::Num(load_ms, 1),
                           eval::Table::Num(file_kb, 1),
                           identical ? "yes" : "NO"});
    snapshots.emplace_back(kind, std::move(built));
  }
  snapshot_table.Print();
  bench::SaveArtifact(env, "exp22_snapshot", snapshot_table);

  // --- Closed-loop capacity probe on the exact index. ---
  serve::EngineOptions probe_options;
  probe_options.max_batch = 64;
  probe_options.max_wait_micros = 500;
  probe_options.max_queue = 512;
  auto probe_engine =
      serve::Engine::Create(snapshots[0].second, model, probe_options);
  EMBER_CHECK_MSG(probe_engine.ok(), "engine: %s",
                  probe_engine.status().ToString().c_str());
  const double capacity =
      ClosedLoopCapacity(*probe_engine.value(), queries, /*producers=*/8);
  probe_engine.value()->Stop();
  std::printf("\nclosed-loop capacity (exact, 8 producers): %.0f qps\n\n",
              capacity);

  // --- Open-loop sweep: offered QPS x batch window. ---
  eval::Table sweep_table("exp22: open-loop sweep (exact index, deadline " +
                          eval::Table::Num(kDeadlineMs, 0) + " ms)");
  sweep_table.SetHeader({"offered_qps", "window_us", "achieved_qps", "p50_ms",
                         "p99_ms", "reject_pct", "expired", "late",
                         "mean_batch"});
  for (const int64_t window_micros : {int64_t{500}, int64_t{4000}}) {
    for (const double fraction : {0.5, 1.0, 2.0, 4.0}) {
      const double offered = std::max(20.0, capacity * fraction);
      serve::EngineOptions options;
      options.max_batch = 64;
      options.max_wait_micros = window_micros;
      // Sized so sustained overload actually fills the queue (and shows up
      // as rejections) instead of hiding behind deadline shedding alone.
      options.max_queue = 64;
      auto engine = serve::Engine::Create(snapshots[0].second, model, options);
      EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                      engine.status().ToString().c_str());
      const OpenLoopPoint point =
          OpenLoop(*engine.value(), queries, offered);
      engine.value()->Stop();
      sweep_table.AddRow(
          {eval::Table::Num(point.offered_qps, 0),
           std::to_string(point.window_micros),
           eval::Table::Num(point.achieved_qps, 0),
           eval::Table::Num(point.p50_ms, 2), eval::Table::Num(point.p99_ms, 2),
           eval::Table::Num(point.reject_pct, 1),
           std::to_string(point.expired), std::to_string(point.late),
           eval::Table::Num(point.mean_batch, 1)});
    }
  }
  sweep_table.Print();
  bench::SaveArtifact(env, "exp22_serving", sweep_table);
  return 0;
}
