// Table 5: (a) end-to-end blocking time of DeepBlocker vs S-GTR-T5 for k in
// {1, 5, 10}; (b) preprocessing (t_p) and matching (t_m) time of ZeroER vs
// the end-to-end S-GTR-T5 pipeline.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp17 / Table 5",
                     "SotA comparison times: DeepBlocker vs S-GTR-T5 "
                     "(blocking) and ZeroER vs S-GTR-T5 (unsup. matching)");

  const bench::BlockingStudy blocking = bench::RunBlockingStudy(env);
  const bench::UnsupStudy unsup = bench::RunUnsupStudy(env);

  eval::Table a("Table 5(a) — blocking time (s): DeepBlocker | S-GTR-T5");
  a.SetHeader({"dataset", "DB k=1", "DB k=5", "DB k=10", "S5 k=1", "S5 k=5",
               "S5 k=10"});
  for (const auto& d : bench::AllDatasetIds()) {
    // S-GTR-T5 end-to-end blocking time = vectorization + NNS; its NNS time
    // barely depends on k for exact search (Section 6.2), matching the
    // paper's near-constant columns.
    const double s5_time = blocking.vectorize_seconds.at("S5").at(d) +
                           blocking.block_seconds.at("S5").at(d);
    a.AddRow({d, eval::Table::Num(blocking.deepblocker_seconds.at(d).at(1), 2),
              eval::Table::Num(blocking.deepblocker_seconds.at(d).at(5), 2),
              eval::Table::Num(blocking.deepblocker_seconds.at(d).at(10), 2),
              eval::Table::Num(s5_time, 2), eval::Table::Num(s5_time, 2),
              eval::Table::Num(s5_time, 2)});
  }
  a.Print();

  eval::Table b("Table 5(b) — unsup. matching time (s): ZeroER | S-GTR-T5 "
                "end-to-end");
  b.SetHeader({"dataset", "ZeroER t_p", "ZeroER t_m", "S5 t_p", "S5 t_m"});
  for (const auto& d : bench::AllDatasetIds()) {
    const auto& zero = unsup.zeroer.at(d);
    const auto& pipe = unsup.pipeline.at(d);
    b.AddRow({d,
              zero.timed_out ? "-" : eval::Table::Num(zero.prep_seconds, 2),
              zero.timed_out ? "-" : eval::Table::Num(zero.match_seconds, 3),
              eval::Table::Num(pipe.prep_seconds, 2),
              eval::Table::Num(pipe.match_seconds, 4)});
  }
  b.Print();
  return 0;
}
