// Sharded scatter-gather scaling benchmark (beyond the paper; DESIGN.md
// §13): partitions the D2 corpus round-robin into N shard snapshots, fronts
// them with the serve::Router, and measures
//
//   (a) closed-loop capacity and latency vs shard count {1,2,4,8} — each
//       shard engine owns a worker thread, so on a multi-core host the
//       per-query scan cost drops ~1/N while the embed-once and merge
//       stages stay constant (on a single-core host the curve is flat:
//       same total work, no parallelism to buy),
//   (b) the router's per-stage overhead (embed / fanout / gather / merge)
//       so the merge tax of sharding is visible next to the scan win, and
//   (c) availability under replica outage at N=2, R=2: with one replica of
//       a shard stopped the sibling must keep answers at 100% with zero
//       partials; with BOTH replicas stopped the router degrades to
//       partial results instead of failing.
//
// Every routed operating point is spot-checked bit-identical to the
// unsharded oracle before timing starts (exact shards only claim exactness
// because of that invariant).
//
// Artifacts: exp26_scaling.csv and exp26_availability.csv.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr double kProbeSeconds = 2.0;
constexpr size_t kProducers = 4;
constexpr size_t kK = 10;

serve::SnapshotManifest BaseManifest(const std::string& model_code) {
  serve::SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = kK;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "D2";
  return manifest;
}

std::unique_ptr<serve::Router> MakeRouter(
    const std::vector<serve::Snapshot>& shards,
    std::shared_ptr<embed::EmbeddingModel> model, size_t replicas) {
  std::vector<std::unique_ptr<serve::Engine>> engines;
  serve::EngineOptions engine_options;
  engine_options.k = kK;
  for (size_t r = 0; r < replicas; ++r) {
    for (const serve::Snapshot& shard : shards) {
      auto engine = serve::Engine::Create(shard, model, engine_options);
      EMBER_CHECK_MSG(engine.ok(), "engine create: %s",
                      engine.status().ToString().c_str());
      engines.push_back(std::move(engine).value());
    }
  }
  serve::RouterOptions options;
  options.k = kK;
  auto router = serve::Router::Create(std::move(engines), model, options);
  EMBER_CHECK_MSG(router.ok(), "router create: %s",
                  router.status().ToString().c_str());
  return std::move(router).value();
}

bool RoutedMatchesOracle(serve::Router& router, const serve::Snapshot& oracle,
                         const la::Matrix& query_vectors,
                         const std::vector<std::string>& queries,
                         size_t sample) {
  const size_t n = std::min(sample, queries.size());
  la::Matrix probe(n, query_vectors.cols());
  for (size_t q = 0; q < n; ++q) {
    std::copy(query_vectors.Row(q), query_vectors.Row(q) + probe.cols(),
              probe.Row(q));
  }
  const auto expect = oracle.QueryBatch(probe, kK);
  for (size_t q = 0; q < n; ++q) {
    auto submitted = router.Submit(queries[q]);
    if (!submitted.ok()) return false;
    auto reply = submitted.value().get();
    if (!reply.ok() || reply.value().partial) return false;
    const auto& got = reply.value().neighbors;
    if (got.size() != expect[q].size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].id != expect[q][i].id ||
          got[i].distance != expect[q][i].distance) {
        return false;
      }
    }
  }
  return true;
}

/// Closed-loop probe (exp22 policy): kProducers threads, one request in
/// flight each. Returns achieved QPS.
double ClosedLoopCapacity(serve::Router& router,
                          const std::vector<std::string>& queries) {
  std::atomic<uint64_t> done{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  const SteadyTime start = SteadyNow();
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      size_t i = p;
      while (!stop.load(std::memory_order_relaxed)) {
        auto submitted = router.Submit(queries[i % queries.size()]);
        i += kProducers;
        if (!submitted.ok()) continue;  // backpressure: retry immediately
        if (submitted.value().get().ok()) {
          done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kProbeSeconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  return static_cast<double>(done.load()) /
         MicrosBetween(start, SteadyNow()) * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp26 / sharded scaling",
                     "Scatter-gather serving: capacity vs shard count, "
                     "router stage overhead, replica-outage availability");

  const datagen::CleanCleanDataset& d2 = bench::GetDataset("D2", env);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  const la::Matrix corpus = bench::Vectors(*model, d2, /*left_side=*/false,
                                           env);
  const la::Matrix query_vectors =
      bench::Vectors(*model, d2, /*left_side=*/true, env);
  const std::vector<std::string> queries = d2.left.AllSentences();
  const serve::Snapshot oracle =
      serve::Snapshot::Build(BaseManifest(model->info().code), corpus);

  // --- (a)+(b): capacity and stage breakdown vs shard count. ---
  eval::Table scaling("exp26: closed-loop capacity vs shard count (D2, " +
                      std::to_string(corpus.rows()) + " rows, " +
                      std::to_string(kProducers) + " producers, R=1)");
  scaling.SetHeader({"shards", "qps", "p50_ms", "p99_ms", "embed_us",
                     "fanout_us", "gather_us", "merge_us", "oracle_identical"});
  for (const uint32_t shard_count : {1u, 2u, 4u, 8u}) {
    auto shards = serve::BuildShardSnapshots(BaseManifest(model->info().code),
                                             corpus, shard_count);
    EMBER_CHECK_MSG(shards.ok(), "shard build: %s",
                    shards.status().ToString().c_str());
    auto router = MakeRouter(shards.value(), model, /*replicas=*/1);
    const bool identical =
        RoutedMatchesOracle(*router, oracle, query_vectors, queries, 32);
    const double qps = ClosedLoopCapacity(*router, queries);
    router->Stop();
    const serve::RouterMetrics metrics = router->Metrics();
    scaling.AddRow({std::to_string(shard_count), eval::Table::Num(qps, 0),
                    eval::Table::Num(metrics.total_micros.Percentile(0.5) /
                                         1e3, 2),
                    eval::Table::Num(metrics.total_micros.Percentile(0.99) /
                                         1e3, 2),
                    eval::Table::Num(metrics.embed_micros.Mean(), 0),
                    eval::Table::Num(metrics.fanout_micros.Mean(), 0),
                    eval::Table::Num(metrics.gather_micros.Mean(), 0),
                    eval::Table::Num(metrics.merge_micros.Mean(), 0),
                    identical ? "yes" : "NO"});
    EMBER_CHECK_MSG(identical, "sharded results diverged from the oracle");
  }
  scaling.Print();
  bench::SaveArtifact(env, "exp26_scaling", scaling);

  // --- (c): availability through replica outage at N=2, R=2. ---
  eval::Table availability(
      "exp26: availability under outage (N=2, R=2, 200 requests)");
  availability.SetHeader({"outage", "ok_pct", "full_pct", "partial",
                          "degraded_shards", "sibling_retries"});
  auto shards2 = serve::BuildShardSnapshots(BaseManifest(model->info().code),
                                            corpus, 2);
  EMBER_CHECK_MSG(shards2.ok(), "shard build: %s",
                  shards2.status().ToString().c_str());
  const struct {
    const char* name;
    size_t stop_replicas;  // replicas of shard 0 to stop before driving
  } outages[] = {
      {"none", 0},
      {"one replica of shard 0", 1},
      {"ALL replicas of shard 0", 2},
  };
  for (const auto& outage : outages) {
    auto router = MakeRouter(shards2.value(), model, /*replicas=*/2);
    for (size_t r = 0; r < outage.stop_replicas; ++r) {
      router->replicas(0)[r]->Stop();
    }
    constexpr size_t kRequests = 200;
    std::vector<std::future<Result<serve::RouterReply>>> futures;
    size_t refused = 0;
    for (size_t i = 0; i < kRequests; ++i) {
      auto submitted = router->Submit(queries[i % queries.size()]);
      if (submitted.ok()) {
        futures.push_back(std::move(submitted).value());
      } else {
        ++refused;
      }
    }
    size_t ok = 0, full = 0;
    for (auto& future : futures) {
      auto reply = future.get();
      if (!reply.ok()) continue;
      ++ok;
      if (!reply.value().partial) ++full;
    }
    router->Stop();
    const serve::RouterMetrics metrics = router->Metrics();
    availability.AddRow(
        {outage.name,
         eval::Table::Num(100.0 * static_cast<double>(ok) / kRequests, 1),
         eval::Table::Num(100.0 * static_cast<double>(full) / kRequests, 1),
         std::to_string(metrics.partial),
         std::to_string(metrics.shards_degraded),
         std::to_string(metrics.sibling_retries)});
    if (outage.stop_replicas == 0 || outage.stop_replicas == 1) {
      // The acceptance bar: a single-replica outage is invisible.
      EMBER_CHECK_MSG(ok == kRequests && full == kRequests && refused == 0,
                      "availability dropped under outage '%s': ok=%zu "
                      "full=%zu refused=%zu",
                      outage.name, ok, full, refused);
    } else {
      EMBER_CHECK_MSG(ok == kRequests && full == 0,
                      "whole-group outage must degrade to partial, not "
                      "fail: ok=%zu full=%zu",
                      ok, full);
    }
  }
  availability.Print();
  bench::SaveArtifact(env, "exp26_availability", availability);
  return 0;
}
