// Observability overhead and per-stage attribution (beyond the paper;
// DESIGN.md §11): quantifies what the obs layer costs and what it buys.
//
//   (a) span-site microbenchmark: ns per would-be span while the tracer is
//       disabled (the always-on price every instrumented call site pays —
//       one relaxed atomic load) and ns per recorded span while enabled;
//   (b) serving overhead: the same fixed closed-loop serve workload run
//       twice with tracing OFF (establishing the run-to-run noise floor)
//       and once with tracing ON. Criterion: the traced run stays within
//       max(5%, 2x noise) of the untraced one;
//   (c) per-stage latency attribution: the traced run's spans, rolled up by
//       StageBreakdown into the paper-style "where does a request's time
//       go" table, cross-checked against the engine's own stage histograms
//       (two independent clocks over the same run must agree).
//
// Artifacts: exp24_overhead.csv and exp24_stages.csv under bench_artifacts/,
// plus exp24_trace.json — a Chrome trace_event file; open it at
// https://ui.perfetto.dev to see the run's span forest.

#include <algorithm>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr size_t kK = 10;

serve::Snapshot BuildSnapshot(const la::Matrix& corpus,
                              const std::string& model_code) {
  serve::SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = kK;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "D2";
  return serve::Snapshot::Build(std::move(manifest), corpus);
}

serve::EngineOptions ServeOptions() {
  serve::EngineOptions options;
  options.max_batch = 32;
  options.max_wait_micros = 1000;
  options.max_queue = 512;
  return options;
}

/// Submits `n` requests as fast as backpressure admits them, then drains
/// every future. Returns the wall seconds for the whole fixed workload, so
/// OFF/ON runs are comparable request-for-request.
double RunFixedLoad(serve::Engine& engine,
                    const std::vector<std::string>& queries, size_t n) {
  WallTimer timer;
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    for (;;) {
      auto submitted = engine.Submit(queries[i % queries.size()]);
      if (submitted.ok()) {
        futures.push_back(std::move(submitted).value());
        break;
      }
      // Queue full: yield to the batcher instead of spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (auto& f : futures) {
    const auto reply = f.get();
    EMBER_CHECK_MSG(reply.ok(), "request failed: %s",
                    reply.status().ToString().c_str());
  }
  return timer.Seconds();
}

/// Sum of recorded durations for one span name, in milliseconds.
double SpanTotalMs(const std::vector<obs::SpanRecord>& records,
                   const char* name) {
  double total = 0;
  for (const auto& r : records) {
    if (std::strcmp(r.name, name) == 0) total += r.duration_micros;
  }
  return total / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp24 / observability",
                     "Tracing/metrics overhead (span-site micro + serve "
                     "closed loop OFF vs ON) and per-stage attribution");

  obs::Tracer& tracer = obs::Tracer::Global();

  // --- (a) span-site microbenchmark. ---
  tracer.SetEnabled(false);
  tracer.Clear();
  constexpr size_t kDisabledIters = 4'000'000;
  WallTimer micro;
  for (size_t i = 0; i < kDisabledIters; ++i) {
    obs::Span span("exp24/micro_off");
  }
  const double disabled_ns = micro.Seconds() / kDisabledIters * 1e9;

  constexpr size_t kEnabledIters = 400'000;
  tracer.SetEnabled(true);
  tracer.Clear();
  micro.Restart();
  for (size_t i = 0; i < kEnabledIters; ++i) {
    obs::Span span("exp24/micro_on");
    span.AddCount("i", i);
  }
  const double enabled_ns = micro.Seconds() / kEnabledIters * 1e9;
  tracer.SetEnabled(false);
  tracer.Clear();
  std::printf("span site: disabled %.1f ns, enabled+counter %.1f ns\n\n",
              disabled_ns, enabled_ns);

  // --- Workload: the exp22 serving setup (D2, S-GTR-T5, exact index). ---
  const datagen::CleanCleanDataset& d2 = bench::GetDataset("D2", env);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  la::Matrix corpus = bench::Vectors(*model, d2, /*left_side=*/false, env);
  const std::vector<std::string> queries = d2.left.AllSentences();
  serve::Snapshot snapshot = BuildSnapshot(corpus, model->info().code);
  const size_t requests = std::clamp(queries.size(), size_t{64}, size_t{512});

  // --- (b) fixed workload OFF / OFF / ON. Fresh engine per run so queue
  // and histogram state never leak across measurements. ---
  double seconds[3] = {0, 0, 0};
  serve::EngineMetrics traced_metrics;
  std::vector<obs::SpanRecord> records;
  for (int run = 0; run < 3; ++run) {
    const bool traced = run == 2;
    tracer.Clear();
    tracer.SetEnabled(traced);
    auto engine = serve::Engine::Create(snapshot, model, ServeOptions());
    EMBER_CHECK_MSG(engine.ok(), "engine: %s",
                    engine.status().ToString().c_str());
    seconds[run] = RunFixedLoad(*engine.value(), queries, requests);
    if (traced) traced_metrics = engine.value()->Metrics();
    // Join the workers BEFORE disabling/draining: the last batch's spans
    // close on the worker thread after its futures are already fulfilled.
    engine.value()->Stop();
    tracer.SetEnabled(false);
    if (traced) records = tracer.Drain();
  }
  const double off = std::min(seconds[0], seconds[1]);
  const double noise_pct =
      (std::max(seconds[0], seconds[1]) - off) / off * 100.0;
  const double overhead_pct = (seconds[2] - off) / off * 100.0;
  const double budget_pct = std::max(5.0, 2.0 * noise_pct);
  const bool within_budget = overhead_pct <= budget_pct;

  eval::Table overhead_table("exp24: tracing overhead (" +
                             std::to_string(requests) + " requests, D2)");
  overhead_table.SetHeader({"metric", "value"});
  overhead_table.AddRow({"span_site_disabled_ns",
                         eval::Table::Num(disabled_ns, 1)});
  overhead_table.AddRow({"span_site_enabled_ns",
                         eval::Table::Num(enabled_ns, 1)});
  overhead_table.AddRow({"serve_off_s", eval::Table::Num(off, 3)});
  overhead_table.AddRow({"serve_off_noise_pct",
                         eval::Table::Num(noise_pct, 1)});
  overhead_table.AddRow({"serve_on_s", eval::Table::Num(seconds[2], 3)});
  overhead_table.AddRow({"serve_on_overhead_pct",
                         eval::Table::Num(overhead_pct, 1)});
  overhead_table.AddRow({"overhead_budget_pct",
                         eval::Table::Num(budget_pct, 1)});
  overhead_table.AddRow({"within_budget", within_budget ? "yes" : "NO"});
  overhead_table.Print();
  bench::SaveArtifact(env, "exp24_overhead", overhead_table);
  if (!within_budget) {
    std::printf("WARNING: traced run exceeded the overhead budget "
                "(%.1f%% > %.1f%%)\n",
                overhead_pct, budget_pct);
  }

  // --- (c) per-stage attribution from the traced run. ---
  EMBER_CHECK_MSG(!records.empty(), "traced run recorded no spans");
  const auto breakdown = obs::StageBreakdown(records);
  eval::Table stage_table("exp24: per-stage latency attribution (traced run)");
  stage_table.SetHeader({"stage", "spans", "total_ms", "self_ms"});
  for (const auto& row : breakdown) {
    stage_table.AddRow({row.name, std::to_string(row.spans),
                        eval::Table::Num(row.total_micros / 1e3, 2),
                        eval::Table::Num(row.self_micros / 1e3, 2)});
  }
  stage_table.Print();
  bench::SaveArtifact(env, "exp24_stages", stage_table);

  // Cross-check: the spans and the engine's own histograms timed the same
  // stages with independent clocks; their totals must tell the same story.
  std::printf("\nstage totals, spans vs engine histograms (ms):\n");
  std::printf("  embed  %.2f vs %.2f\n", SpanTotalMs(records, "serve/embed"),
              traced_metrics.embed_micros.sum / 1e3);
  std::printf("  query  %.2f vs %.2f\n", SpanTotalMs(records, "serve/query"),
              traced_metrics.query_micros.sum / 1e3);

  const std::string trace_path = env.artifacts_dir + "/exp24_trace.json";
  const Status written = obs::WriteChromeTrace(records, trace_path);
  EMBER_CHECK_MSG(written.ok(), "trace write: %s",
                  written.ToString().c_str());
  std::printf("\nwrote %zu spans to %s (open at https://ui.perfetto.dev)\n",
              records.size(), trace_path.c_str());
  return 0;
}
