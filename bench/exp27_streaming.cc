// Streaming / live-corpus benchmark (beyond the paper; DESIGN.md §14):
// turns the frozen D2 snapshot into a live corpus and measures the three
// costs the mutable tier introduces:
//
//   (a) mutation throughput — closed-loop upserts (full path: embed through
//       the micro-batcher, then the delta append) and deletes (tombstone
//       publication) with P producers;
//   (b) the delta tax — query latency (p50/p99) as the brute-force delta
//       tier grows from 0 to 4096 rows on top of the indexed base, i.e.
//       what you pay for freshness between compactions;
//   (c) availability across compaction — a closed-loop query+upsert load
//       runs while the base is repeatedly rewritten and hot-swapped;
//       reports availability (must be 100%), latency with and without
//       concurrent compaction, and the compaction durations themselves.
//
// Every phase EMBER_CHECKs the engine's counter identity (submitted ==
// completed + expired + failed) after draining, so lost-request bugs fail
// the bench rather than skewing it.
//
// Artifacts: exp27_mutation.csv, exp27_delta_tax.csv, exp27_compaction.csv.

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/vector_ops.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using namespace ember;

constexpr double kPhaseSeconds = 2.0;
constexpr size_t kProducers = 4;
constexpr size_t kK = 10;

serve::SnapshotManifest BaseManifest(const std::string& model_code) {
  serve::SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = kK;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "D2";
  return manifest;
}

std::unique_ptr<serve::Engine> MakeLiveEngine(
    const serve::Snapshot& snapshot,
    std::shared_ptr<embed::EmbeddingModel> model) {
  serve::EngineOptions options;
  options.k = kK;
  options.live = true;
  auto engine = serve::Engine::Create(snapshot, std::move(model), options);
  EMBER_CHECK_MSG(engine.ok(), "engine create: %s",
                  engine.status().ToString().c_str());
  return std::move(engine).value();
}

void CheckIdentity(const serve::Engine& engine, const char* phase) {
  const serve::EngineMetrics m = engine.Metrics();
  EMBER_CHECK_MSG(m.submitted == m.completed + m.expired + m.failed,
                  "%s: counter identity broken (submitted=%llu completed=%llu "
                  "expired=%llu failed=%llu)",
                  phase, static_cast<unsigned long long>(m.submitted),
                  static_cast<unsigned long long>(m.completed),
                  static_cast<unsigned long long>(m.expired),
                  static_cast<unsigned long long>(m.failed));
}

std::vector<float> RandomUnit(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.Uniform()) - 0.5f;
  la::NormalizeInPlace(v.data(), dim);
  return v;
}

double Percentile(std::vector<double>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0;
  const size_t at = std::min(
      sorted_micros.size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(
                                          sorted_micros.size() - 1) +
                          0.5));
  return sorted_micros[at];
}

// ---------------------------------------------------------------------------
// (a) Mutation throughput
// ---------------------------------------------------------------------------

struct MutationPoint {
  double upserts_per_sec = 0;
  double embedded_upserts_per_sec = 0;
  double deletes_per_sec = 0;
};

MutationPoint MutationThroughput(const serve::Snapshot& base,
                                 std::shared_ptr<embed::EmbeddingModel> model,
                                 const std::vector<std::string>& records) {
  MutationPoint point;
  const size_t dim = model->info().dim;
  {
    // Full-path upserts: the record is embedded inside the batcher.
    auto engine = MakeLiveEngine(base, model);
    std::atomic<uint64_t> done{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    const SteadyTime start = SteadyNow();
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        size_t i = p;
        while (!stop.load(std::memory_order_relaxed)) {
          auto submitted = engine->Upsert(
              records[i % records.size()] + " streamed " + std::to_string(i));
          i += kProducers;
          if (!submitted.ok()) continue;
          if (submitted.value().get().ok()) {
            done.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kPhaseSeconds));
    stop.store(true);
    for (auto& t : producers) t.join();
    point.upserts_per_sec = static_cast<double>(done.load()) /
                            MicrosBetween(start, SteadyNow()) * 1e6;
    engine->Stop();
    CheckIdentity(*engine, "upsert throughput");
  }
  {
    // Pre-embedded upserts isolate the delta append + batcher from the
    // embed cost (the router's fan-out path).
    auto engine = MakeLiveEngine(base, model);
    std::atomic<uint64_t> done{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    const SteadyTime start = SteadyNow();
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(0x27a + p);
        while (!stop.load(std::memory_order_relaxed)) {
          auto submitted = engine->UpsertEmbedded(RandomUnit(rng, dim));
          if (!submitted.ok()) continue;
          if (submitted.value().get().ok()) {
            done.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kPhaseSeconds));
    stop.store(true);
    for (auto& t : producers) t.join();
    point.embedded_upserts_per_sec = static_cast<double>(done.load()) /
                                     MicrosBetween(start, SteadyNow()) * 1e6;

    // Deletes against everything just admitted: each publishes one
    // tombstone through the same batcher.
    const uint64_t admitted = engine->LiveStats().delta_rows;
    std::atomic<uint64_t> deleted{0};
    std::atomic<uint64_t> next{base.manifest().rows};
    std::vector<std::thread> deleters;
    const SteadyTime delete_start = SteadyNow();
    const uint64_t last = base.manifest().rows + admitted;
    for (size_t p = 0; p < kProducers; ++p) {
      deleters.emplace_back([&] {
        while (true) {
          const uint64_t id =
              next.fetch_add(1, std::memory_order_relaxed);
          if (id >= last) break;
          auto submitted = engine->Delete(id);
          if (!submitted.ok()) continue;
          if (submitted.value().get().ok()) {
            deleted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : deleters) t.join();
    point.deletes_per_sec = static_cast<double>(deleted.load()) /
                            MicrosBetween(delete_start, SteadyNow()) * 1e6;
    engine->Stop();
    CheckIdentity(*engine, "delete throughput");
  }
  return point;
}

// ---------------------------------------------------------------------------
// (b) Query latency vs delta size
// ---------------------------------------------------------------------------

struct DeltaTaxPoint {
  size_t delta_rows = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

DeltaTaxPoint DeltaTax(const serve::Snapshot& base,
                       std::shared_ptr<embed::EmbeddingModel> model,
                       const std::vector<std::string>& queries,
                       size_t delta_rows) {
  auto engine = MakeLiveEngine(base, model);
  const size_t dim = model->info().dim;
  Rng rng(0x27b);
  for (size_t i = 0; i < delta_rows; ++i) {
    auto submitted = engine->UpsertEmbedded(RandomUnit(rng, dim));
    EMBER_CHECK(submitted.ok());
    EMBER_CHECK(submitted.value().get().ok());
  }
  EMBER_CHECK(engine->LiveStats().delta_rows == delta_rows);

  // Single closed-loop producer: per-request latency is the full
  // submit -> future path, so the delta scan rides inside real batches.
  std::vector<double> latencies;
  const SteadyTime start = SteadyNow();
  size_t i = 0;
  while (MicrosBetween(start, SteadyNow()) < kPhaseSeconds * 1e6) {
    const SteadyTime t0 = SteadyNow();
    auto submitted = engine->Submit(queries[i++ % queries.size()]);
    if (!submitted.ok()) continue;
    if (submitted.value().get().ok()) {
      latencies.push_back(MicrosBetween(t0, SteadyNow()));
    }
  }
  engine->Stop();
  CheckIdentity(*engine, "delta tax");

  DeltaTaxPoint point;
  point.delta_rows = delta_rows;
  point.qps = static_cast<double>(latencies.size()) /
              MicrosBetween(start, SteadyNow()) * 1e6;
  std::sort(latencies.begin(), latencies.end());
  point.p50_ms = Percentile(latencies, 50) / 1e3;
  point.p99_ms = Percentile(latencies, 99) / 1e3;
  return point;
}

// ---------------------------------------------------------------------------
// (c) Availability across compaction hot-swaps
// ---------------------------------------------------------------------------

struct CompactionRun {
  uint64_t answered = 0;
  uint64_t failed = 0;
  double query_p50_ms = 0;
  double query_p99_ms = 0;
  double query_max_ms = 0;
  uint64_t compactions = 0;
  double compact_mean_ms = 0;
  double compact_max_ms = 0;
  uint64_t final_base_rows = 0;
  uint64_t final_generation = 0;
};

CompactionRun CompactionAvailability(
    const serve::Snapshot& base, std::shared_ptr<embed::EmbeddingModel> model,
    const std::vector<std::string>& queries, const bench::BenchEnv& env) {
  auto engine = MakeLiveEngine(base, model);
  const size_t dim = model->info().dim;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failed{0};
  std::vector<double> latencies;

  std::thread querier([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const SteadyTime t0 = SteadyNow();
      auto submitted = engine->Submit(queries[i++ % queries.size()]);
      if (!submitted.ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (submitted.value().get().ok()) {
        latencies.push_back(MicrosBetween(t0, SteadyNow()));
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread upserter([&] {
    Rng rng(0x27c);
    while (!stop.load(std::memory_order_relaxed)) {
      auto submitted = engine->UpsertEmbedded(RandomUnit(rng, dim));
      if (submitted.ok()) submitted.value().get();
    }
  });

  // Compact as often as the corpus allows for the whole window: every
  // cycle rewrites base+delta and hot-swaps the result in under load.
  const std::string path = env.artifacts_dir + "/exp27_compacted.snap";
  std::vector<double> compact_ms;
  const SteadyTime start = SteadyNow();
  while (MicrosBetween(start, SteadyNow()) < kPhaseSeconds * 1e6) {
    const SteadyTime t0 = SteadyNow();
    const Status compacted = engine->Compact(path);
    if (compacted.ok()) {
      compact_ms.push_back(MicrosBetween(t0, SteadyNow()) / 1e3);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  querier.join();
  upserter.join();
  engine->Stop();
  CheckIdentity(*engine, "compaction availability");
  std::remove(path.c_str());

  CompactionRun run;
  run.answered = latencies.size();
  run.failed = failed.load();
  std::sort(latencies.begin(), latencies.end());
  run.query_p50_ms = Percentile(latencies, 50) / 1e3;
  run.query_p99_ms = Percentile(latencies, 99) / 1e3;
  run.query_max_ms = latencies.empty() ? 0 : latencies.back() / 1e3;
  run.compactions = compact_ms.size();
  for (const double ms : compact_ms) run.compact_mean_ms += ms;
  if (!compact_ms.empty()) {
    run.compact_mean_ms /= static_cast<double>(compact_ms.size());
    run.compact_max_ms =
        *std::max_element(compact_ms.begin(), compact_ms.end());
  }
  const stream::LiveStats stats = engine->LiveStats();
  run.final_base_rows = stats.base_rows;
  run.final_generation = stats.base_generation;
  return run;
}

std::string Fixed(double value, int digits = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp27_streaming",
                     "live corpus: mutation throughput, delta tax, "
                     "availability across compaction hot-swaps (D2, "
                     "S-GTR-T5, exact base)");

  const datagen::CleanCleanDataset& dataset = bench::GetDataset("D2", env);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  const la::Matrix corpus =
      bench::Vectors(*model, dataset, /*left_side=*/false, env);
  const std::vector<std::string> queries = dataset.left.AllSentences();
  const serve::Snapshot base =
      serve::Snapshot::Build(BaseManifest(model->info().code), corpus);

  // (a) Mutation throughput.
  const MutationPoint mutation =
      MutationThroughput(base, model, dataset.left.AllSentences());
  eval::Table mutation_table("exp27: mutation throughput (closed loop, " +
                             std::to_string(kProducers) + " producers)");
  mutation_table.SetHeader(
      {"path", "ops_per_sec"});
  mutation_table.AddRow(
      {"upsert (embed in batcher)", Fixed(mutation.upserts_per_sec, 0)});
  mutation_table.AddRow({"upsert (pre-embedded)",
                         Fixed(mutation.embedded_upserts_per_sec, 0)});
  mutation_table.AddRow(
      {"delete (tombstone)", Fixed(mutation.deletes_per_sec, 0)});
  mutation_table.Print();
  EMBER_CHECK(bench::SaveArtifact(env, "exp27_mutation", mutation_table).ok());

  // (b) Delta tax.
  eval::Table tax_table("exp27: query latency vs delta size (base " +
                        std::to_string(corpus.rows()) + " rows)");
  tax_table.SetHeader({"delta_rows", "qps", "p50_ms", "p99_ms"});
  for (const size_t delta_rows : {size_t{0}, size_t{256}, size_t{1024},
                                  size_t{4096}}) {
    const DeltaTaxPoint point = DeltaTax(base, model, queries, delta_rows);
    tax_table.AddRow({std::to_string(point.delta_rows), Fixed(point.qps, 0),
                      Fixed(point.p50_ms), Fixed(point.p99_ms)});
  }
  tax_table.Print();
  EMBER_CHECK(bench::SaveArtifact(env, "exp27_delta_tax", tax_table).ok());

  // (c) Availability across compaction.
  const CompactionRun run =
      CompactionAvailability(base, model, queries, env);
  const double availability =
      run.answered + run.failed == 0
          ? 0
          : 100.0 * static_cast<double>(run.answered) /
                static_cast<double>(run.answered + run.failed);
  eval::Table compact_table("exp27: availability across compaction swaps");
  compact_table.SetHeader({"metric", "value"});
  compact_table.AddRow({"queries answered", std::to_string(run.answered)});
  compact_table.AddRow({"queries failed", std::to_string(run.failed)});
  compact_table.AddRow({"availability_pct", Fixed(availability)});
  compact_table.AddRow({"query p50 ms", Fixed(run.query_p50_ms)});
  compact_table.AddRow({"query p99 ms", Fixed(run.query_p99_ms)});
  compact_table.AddRow({"query max ms", Fixed(run.query_max_ms)});
  compact_table.AddRow({"compactions", std::to_string(run.compactions)});
  compact_table.AddRow({"compact mean ms", Fixed(run.compact_mean_ms)});
  compact_table.AddRow({"compact max ms", Fixed(run.compact_max_ms)});
  compact_table.AddRow(
      {"final base rows", std::to_string(run.final_base_rows)});
  compact_table.AddRow(
      {"final base generation", std::to_string(run.final_generation)});
  compact_table.Print();
  EMBER_CHECK(bench::SaveArtifact(env, "exp27_compaction", compact_table).ok());

  EMBER_CHECK_MSG(run.failed == 0,
                  "availability across compaction swaps must be 100%%");
  std::printf("\nexp27 done: %llu compactions under load, availability "
              "%.2f%%\n",
              static_cast<unsigned long long>(run.compactions), availability);
  return 0;
}
