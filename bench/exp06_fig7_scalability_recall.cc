// Figure 7: blocking scalability (recall and precision) over the synthetic
// Febrl dirty-ER datasets of Table 2(b), using HNSW with k=10 as in
// Section 4.3. Also records the timing series rendered by exp13 (Figure 13).
//
// Default sizes are the first four of Table 2(b) scaled by --scale; --full
// runs all seven at paper scale.

#include <cstdlib>
#include <utility>

#include "bench_common.h"
#include "common/timer.h"
#include "core/blocking.h"
#include "datagen/febrl.h"
#include "embed/model_registry.h"
#include "eval/ascii_chart.h"

namespace {

std::vector<size_t> ScalabilitySizes(const ember::bench::BenchEnv& env) {
  using ember::datagen::FebrlScalabilitySizes;
  std::vector<size_t> sizes;
  const size_t count = env.full ? FebrlScalabilitySizes().size() : 3;
  for (size_t i = 0; i < count; ++i) {
    const double scaled =
        static_cast<double>(FebrlScalabilitySizes()[i]) * env.scale;
    sizes.push_back(std::max<size_t>(500, static_cast<size_t>(scaled)));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp06 / Figure 7",
                     "Scalability over Febrl dirty-ER data: recall & "
                     "precision, HNSW, k=10");

  const std::vector<size_t> sizes = ScalabilitySizes(env);

  eval::Table recall_table("Figure 7(a) — recall vs input size");
  eval::Table precision_table("Figure 7(b) — precision vs input size");
  eval::Table times("Figure 13 data — vectorization / blocking seconds");
  std::vector<std::string> header = {"model"};
  for (const size_t n : sizes) header.push_back(std::to_string(n));
  recall_table.SetHeader(header);
  precision_table.SetHeader(header);
  {
    std::vector<std::string> time_header = {"model", "size", "vec_s",
                                            "index_s", "query_s"};
    times.SetHeader(time_header);
  }

  // Generate each dataset once, shared across models.
  std::vector<datagen::DirtyDataset> datasets;
  for (const size_t n : sizes) {
    datagen::FebrlOptions options;
    options.n_records = n;
    options.seed = env.seed ^ (n * 2654435761ULL);
    datasets.push_back(datagen::GenerateFebrl(options));
    std::fprintf(stderr, "[fig7] febrl %zu: %zu duplicate pairs\n", n,
                 datasets.back().matches.size());
  }

  for (const embed::ModelId id : embed::AllModels()) {
    auto model = embed::CreateModel(id);
    std::vector<std::string> recall_row = {
        std::string(model->info().name)};
    std::vector<std::string> precision_row = recall_row;
    for (size_t s = 0; s < sizes.size(); ++s) {
      const datagen::DirtyDataset& dataset = datasets[s];
      eval::GroundTruth truth;
      for (const auto& [a, b] : dataset.matches) truth.AddDirtyPair(a, b);

      const std::string key = "febrl_" + std::to_string(sizes[s]) + "_" +
                              std::to_string(env.seed);
      double vec_seconds = 0;
      la::Matrix vectors = bench::VectorsKeyed(
          *model, key, dataset.records.AllSentences(), env, &vec_seconds);

      core::BlockingOptions options;
      options.k = 10;
      options.use_hnsw = true;
      options.hnsw.seed = env.seed;
      // Move the vectors into the index: at the largest Febrl sizes keeping
      // a second copy alive doubles peak memory for no benefit.
      const core::BlockingResult blocked =
          core::BlockDirty(std::move(vectors), options);
      const eval::PrfMetrics prf =
          eval::EvaluateDirtyCandidates(blocked.candidates, truth);
      recall_row.push_back(eval::Table::Num(prf.recall, 3));
      precision_row.push_back(eval::Table::Num(prf.precision, 4));
      times.AddRow({model->info().code, std::to_string(sizes[s]),
                    eval::Table::Num(vec_seconds, 3),
                    eval::Table::Num(blocked.index_seconds, 3),
                    eval::Table::Num(blocked.query_seconds, 3)});
      std::fprintf(stderr, "[fig7] %s n=%zu recall=%.3f\n",
                   model->info().code, sizes[s], prf.recall);
    }
    recall_table.AddRow(recall_row);
    precision_table.AddRow(precision_row);
  }

  recall_table.Print();
  precision_table.Print();

  // Render the figure itself: recall lines for a representative subset.
  {
    std::vector<std::string> labels;
    for (const size_t n : sizes) labels.push_back(std::to_string(n / 1000) + "K");
    eval::AsciiChart chart("Figure 7(a) — blocking recall vs input size",
                           labels);
    const std::vector<std::string> highlight = {"S5", "FT", "GE", "WC",
                                                "DT", "SM"};
    for (const auto& code : highlight) {
      for (const auto& row : recall_table.rows()) {
        const auto id = embed::ModelIdFromString(row[0]);
        if (!id.ok() || embed::GetModelInfo(id.value()).code != code) {
          continue;
        }
        eval::ChartSeries series;
        series.label = code;
        for (size_t c = 1; c < row.size(); ++c) {
          series.values.push_back(std::atof(row[c].c_str()));
        }
        chart.AddSeries(std::move(series));
        break;
      }
    }
    chart.Print();
  }
  bench::SaveArtifact(env, "fig7_recall", recall_table);
  bench::SaveArtifact(env, "fig7_precision", precision_table);
  bench::SaveArtifact(env, "scalability_times", times);
  return 0;
}
