// Figure 13: scalability of (a) blocking time (HNSW index + query) and (b)
// vectorization time over the Febrl datasets. Renders the timing series
// recorded by exp06 (Figure 7); run exp06 first (the suite is ordered).

#include <algorithm>
#include <cstdlib>

#include "bench_common.h"
#include "eval/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp13 / Figure 13",
                     "Scalability of blocking and vectorization time over "
                     "Febrl data (from the exp06 run)");

  const auto rows = bench::LoadArtifact(env, "scalability_times");
  if (!rows.ok()) {
    std::printf("scalability_times artifact missing — run exp06 first "
                "(%s)\n", rows.status().ToString().c_str());
    return 0;
  }
  // rows: model, size, vec_s, index_s, query_s
  std::map<std::string, std::map<size_t, std::pair<double, double>>> series;
  std::vector<size_t> sizes;
  std::vector<std::string> models;
  for (size_t i = 1; i < rows.value().size(); ++i) {
    const auto& row = rows.value()[i];
    if (row.size() < 5) continue;
    const size_t n = std::strtoull(row[1].c_str(), nullptr, 10);
    const double vec = std::atof(row[2].c_str());
    const double block = std::atof(row[3].c_str()) + std::atof(row[4].c_str());
    if (series.find(row[0]) == series.end()) models.push_back(row[0]);
    series[row[0]][n] = {block, vec};
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  std::sort(sizes.begin(), sizes.end());

  for (const bool blocking : {true, false}) {
    eval::Table table(blocking
                          ? "Figure 13(a) — blocking time (s), HNSW"
                          : "Figure 13(b) — vectorization time (s)");
    std::vector<std::string> header = {"model"};
    for (const size_t n : sizes) header.push_back(std::to_string(n));
    table.SetHeader(header);
    for (const auto& model : models) {
      std::vector<std::string> row = {model};
      for (const size_t n : sizes) {
        const auto it = series[model].find(n);
        row.push_back(it == series[model].end()
                          ? "-"
                          : eval::Table::Num(
                                blocking ? it->second.first
                                         : it->second.second,
                                3));
      }
      table.AddRow(row);
    }
    table.Print();

    // Figure rendering: log-scale time lines for a representative subset.
    std::vector<std::string> labels;
    for (const size_t n : sizes) {
      labels.push_back(std::to_string(n / 1000) + "K");
    }
    eval::AsciiChart chart(blocking
                               ? "Figure 13(a) — blocking time"
                               : "Figure 13(b) — vectorization time",
                           labels);
    chart.set_log_y(true);
    for (const std::string& code : {"S5", "FT", "GE", "WC", "XT", "SM"}) {
      if (series.find(code) == series.end()) continue;
      eval::ChartSeries line;
      line.label = code;
      for (const size_t n : sizes) {
        const auto it = series[code].find(n);
        if (it != series[code].end()) {
          line.values.push_back(blocking ? it->second.first
                                         : it->second.second);
        }
      }
      chart.AddSeries(std::move(line));
    }
    chart.Print();
  }
  return 0;
}
