// Appendix I (Figures 17-22): schema-based experiments. Instead of one
// schema-agnostic sentence per entity, every attribute value is vectorized
// separately and the entity embeds as the normalized mean of its attribute
// vectors. Reports blocking recall (k=10) and unsupervised matching best F1
// per model, plus the per-family averages that summarize Figures 17-22.
//
// Default covers D1-D6; --full adds the four largest datasets.

#include <cstdlib>

#include "bench_common.h"
#include "core/blocking.h"
#include "core/schema_vectorizer.h"
#include "core/vector_cache.h"
#include "embed/model_registry.h"
#include "la/vector_ops.h"
#include "match/unsupervised.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp19 / Appendix Figures 17-22",
                     "Schema-based variant: per-attribute vectorization, "
                     "blocking recall (k=10) and unsupervised best F1");

  std::vector<std::string> dataset_ids = {"D1", "D2", "D3",
                                          "D4", "D5", "D6"};
  if (env.full) {
    for (const char* id : {"D7", "D8", "D9", "D10"}) {
      dataset_ids.push_back(id);
    }
  }

  // Reuse a previous run's artifacts if present (per-attribute vectorization
  // is not served by the vector cache, so recomputing is expensive).
  const auto cached_recall = bench::LoadArtifact(env, "schema_based_recall");
  const auto cached_f1 = bench::LoadArtifact(env, "schema_based_f1");
  if (cached_recall.ok() && cached_f1.ok()) {
    for (const auto& [rows, title] :
         {std::pair{&cached_recall.value(),
                    "Figure 17/21 — schema-based blocking recall (k=10)"},
          std::pair{&cached_f1.value(),
                    "Figure 19/22 — schema-based unsupervised best F1"}}) {
      eval::Table table(title);
      table.SetHeader((*rows)[0]);
      std::vector<std::vector<double>> scores;
      for (size_t r = 1; r < rows->size(); ++r) {
        table.AddRow((*rows)[r]);
        std::vector<double> row_scores;
        for (size_t c = 1; c < (*rows)[r].size(); ++c) {
          row_scores.push_back(std::atof((*rows)[r][c].c_str()));
        }
        scores.push_back(std::move(row_scores));
      }
      table.Print();
      const auto ranks = eval::RankMatrix(scores);
      eval::Table summary(std::string(title) + " — avg rank");
      summary.SetHeader({"model", "avg_rank"});
      for (size_t r = 1; r < rows->size(); ++r) {
        summary.AddRow({(*rows)[r][0],
                        eval::Table::Num(ranks[r - 1].back(), 2)});
      }
      summary.Print();
    }
    return 0;
  }

  eval::Table recall_table("Figure 17/21 — schema-based blocking recall "
                           "(k=10)");
  eval::Table f1_table("Figure 19/22 — schema-based unsupervised best F1");
  std::vector<std::string> header = {"model"};
  for (const auto& d : dataset_ids) header.push_back(d);
  recall_table.SetHeader(header);
  f1_table.SetHeader(header);

  std::vector<std::vector<double>> recall_scores;
  std::vector<std::vector<double>> f1_scores;

  for (const embed::ModelId id : embed::AllModels()) {
    auto model = embed::CreateModel(id);
    model->Initialize();
    std::vector<std::string> recall_row = {
        std::string(model->info().name)};
    std::vector<std::string> f1_row = recall_row;
    std::vector<double> recalls, f1s;
    for (const auto& dataset_id : dataset_ids) {
      const datagen::CleanCleanDataset& dataset =
          bench::GetDataset(dataset_id, env);
      const eval::GroundTruth truth = bench::TruthOf(dataset);

      const la::Matrix left = core::SchemaBasedVectorize(*model,
                                                          dataset.left);
      const la::Matrix right = core::SchemaBasedVectorize(*model,
                                                          dataset.right);

      core::BlockingOptions options;
      options.k = 10;
      const core::BlockingResult blocked =
          core::BlockCleanClean(left, right, options);
      const double recall =
          eval::EvaluateCleanCleanCandidates(blocked.candidates, truth)
              .recall;

      std::vector<cluster::ScoredPair> pairs =
          match::UnsupervisedMatcher::AllPairSimilarities(left, right);
      const match::SweepResult sweep = match::UnsupervisedMatcher::Sweep(
          pairs, left.rows(), right.rows(), truth);

      recall_row.push_back(eval::Table::Num(recall, 3));
      f1_row.push_back(eval::Table::Num(sweep.best.metrics.f1, 3));
      recalls.push_back(recall);
      f1s.push_back(sweep.best.metrics.f1);
      std::fprintf(stderr, "[schema-based] %s %s recall=%.3f f1=%.3f\n",
                   model->info().code, dataset_id.c_str(), recall,
                   sweep.best.metrics.f1);
    }
    recall_table.AddRow(recall_row);
    f1_table.AddRow(f1_row);
    recall_scores.push_back(std::move(recalls));
    f1_scores.push_back(std::move(f1s));
  }
  recall_table.Print();
  f1_table.Print();

  // Figures 18/20 condensed: average rank per model (schema-based).
  for (const bool use_f1 : {false, true}) {
    const auto ranks =
        eval::RankMatrix(use_f1 ? f1_scores : recall_scores);
    eval::Table table(use_f1 ? "Figure 20 summary — schema-based F1 avg rank"
                             : "Figure 18 summary — schema-based recall avg "
                               "rank");
    table.SetHeader({"model", "avg_rank"});
    size_t m = 0;
    for (const embed::ModelId id : embed::AllModels()) {
      table.AddRow({embed::GetModelInfo(id).name,
                    eval::Table::Num(ranks[m].back(), 2)});
      ++m;
    }
    table.Print();
  }
  bench::SaveArtifact(env, "schema_based_recall", recall_table);
  bench::SaveArtifact(env, "schema_based_f1", f1_table);
  return 0;
}
