// Figure 16: the effectiveness / time-efficiency trade-off per task —
// average effectiveness across datasets on the x axis, run-time normalized
// by the fastest model on the y axis (1 = fastest, lower-right corner is
// the ideal (1,1) point).

#include "bench_common.h"
#include "embed/model_registry.h"

namespace {

void PrintTradeoff(const std::string& title,
                   const std::vector<std::string>& models,
                   const std::vector<double>& effectiveness,
                   const std::vector<double>& seconds) {
  double fastest = 1e300;
  for (const double s : seconds) fastest = std::min(fastest, s);
  if (fastest <= 0) fastest = 1e-9;
  ember::eval::Table table(title);
  table.SetHeader({"model", "effectiveness", "normalized_time"});
  for (size_t i = 0; i < models.size(); ++i) {
    table.AddRow({models[i], ember::eval::Table::Num(effectiveness[i], 3),
                  ember::eval::Table::Num(seconds[i] / fastest, 2)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp16 / Figure 16",
                     "Effectiveness vs normalized run-time per task "
                     "(averages across datasets)");

  const bench::BlockingStudy blocking = bench::RunBlockingStudy(env);
  const bench::UnsupStudy unsup = bench::RunUnsupStudy(env);
  const bench::SupStudy sup = bench::RunSupStudy(env);

  // (a) Blocking, k=10: recall vs vectorization+blocking time.
  {
    std::vector<std::string> models;
    std::vector<double> eff, secs;
    for (const embed::ModelId id : embed::AllModels()) {
      const std::string code = embed::GetModelInfo(id).code;
      double recall = 0, time = 0;
      for (const auto& d : bench::AllDatasetIds()) {
        recall += blocking.recall.at(code).at(d).at(10);
        time += blocking.vectorize_seconds.at(code).at(d) +
                blocking.block_seconds.at(code).at(d);
      }
      models.push_back(embed::GetModelInfo(id).name);
      eff.push_back(recall / bench::AllDatasetIds().size());
      secs.push_back(time / bench::AllDatasetIds().size());
    }
    PrintTradeoff("Figure 16(a) — blocking (k=10)", models, eff, secs);
  }

  // (b) Unsupervised matching: best F1 vs end-to-end time (vectorization +
  // sweep).
  {
    std::vector<std::string> models;
    std::vector<double> eff, secs;
    for (const embed::ModelId id : embed::AllModels()) {
      const std::string code = embed::GetModelInfo(id).code;
      double f1 = 0, time = 0;
      for (const auto& d : bench::AllDatasetIds()) {
        const auto& cell = unsup.cells.at("UMC").at(code).at(d);
        f1 += cell.f1;
        time += blocking.vectorize_seconds.at(code).at(d) +
                cell.sweep_seconds;
      }
      models.push_back(embed::GetModelInfo(id).name);
      eff.push_back(f1 / bench::AllDatasetIds().size());
      secs.push_back(time / bench::AllDatasetIds().size());
    }
    PrintTradeoff("Figure 16(b) — unsupervised matching", models, eff, secs);
  }

  // (c) Supervised matching: F1 vs prediction time (training is a one-off
  // cost, Section 7).
  {
    const std::vector<std::string> dsm_ids = {"DSM1", "DSM2", "DSM3", "DSM4",
                                              "DSM5"};
    std::vector<std::string> models;
    std::vector<double> eff, secs;
    for (const std::string& code : bench::SupervisedModelCodes()) {
      double f1 = 0, time = 0;
      for (const auto& d : dsm_ids) {
        f1 += sup.cells.at(code).at(d).f1;
        time += sup.cells.at(code).at(d).test_seconds;
      }
      models.push_back(code);
      eff.push_back(f1 / dsm_ids.size());
      secs.push_back(time / dsm_ids.size());
    }
    PrintTradeoff("Figure 16(c) — supervised matching", models, eff, secs);
  }
  return 0;
}
