#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/deep_blocker.h"
#include "baselines/supervised_baselines.h"
#include "baselines/zero_er.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/blocking.h"
#include "core/pipeline.h"
#include "core/vector_cache.h"
#include "datagen/csv.h"
#include "datagen/dsm_datasets.h"
#include "embed/model_registry.h"
#include "match/supervised.h"
#include "match/unsupervised.h"

namespace ember::bench {

namespace {

std::string ScaleTag(const BenchEnv& env) {
  return StrFormat("s%03d", static_cast<int>(env.scale * 100 + 0.5));
}

std::string ArtifactPath(const BenchEnv& env, const std::string& name) {
  return env.artifacts_dir + "/" + name + "_" + ScaleTag(env) + ".csv";
}

double ParseDouble(const std::string& text) {
  return text.empty() || text == "-" ? 0.0 : std::atof(text.c_str());
}

}  // namespace

BenchEnv ParseArgs(int argc, char** argv) {
  BenchEnv env;
  if (const char* scale = std::getenv("EMBER_SCALE")) {
    env.scale = std::atof(scale);
  }
  if (const char* dir = std::getenv("EMBER_ARTIFACTS")) {
    env.artifacts_dir = dir;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      env.full = true;
      env.scale = 1.0;
    } else if (arg == "--no-cache") {
      env.no_cache = true;
    } else if (arg == "--scale" && i + 1 < argc) {
      env.scale = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      env.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      env.threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale f] [--full] [--no-cache] [--seed n] "
                   "[--threads n]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (env.threads > 0) SetThreads(static_cast<int>(env.threads));
  if (env.no_cache) core::VectorCache::Default().set_enabled(false);
  std::error_code ec;
  std::filesystem::create_directories(env.artifacts_dir, ec);
  return env;
}

void PrintBanner(const BenchEnv& env, const std::string& experiment,
                 const std::string& description) {
  std::printf("=== %s ===\n%s\nscale=%.2f seed=%llu cache=%s\n\n",
              experiment.c_str(), description.c_str(), env.scale,
              static_cast<unsigned long long>(env.seed),
              env.no_cache ? "off" : "on");
  std::fflush(stdout);
}

const std::vector<std::string>& AllDatasetIds() {
  static const std::vector<std::string>* const kIds =
      new std::vector<std::string>{"D1", "D2", "D3", "D4", "D5",
                                   "D6", "D7", "D8", "D9", "D10"};
  return *kIds;
}

const datagen::CleanCleanDataset& GetDataset(const std::string& id,
                                             const BenchEnv& env) {
  static std::map<std::string, datagen::CleanCleanDataset>* const kCache =
      new std::map<std::string, datagen::CleanCleanDataset>();
  const std::string key = id + "_" + ScaleTag(env);
  auto it = kCache->find(key);
  if (it == kCache->end()) {
    const auto spec = datagen::CleanCleanSpecById(id);
    EMBER_CHECK_MSG(spec.ok(), "unknown dataset %s", id.c_str());
    it = kCache
             ->emplace(key, datagen::GenerateCleanClean(spec.value(),
                                                        env.scale, env.seed))
             .first;
  }
  return it->second;
}

eval::GroundTruth TruthOf(const datagen::CleanCleanDataset& dataset) {
  eval::GroundTruth truth;
  for (const auto& [l, r] : dataset.matches) truth.AddCleanCleanPair(l, r);
  return truth;
}

la::Matrix VectorsKeyed(embed::EmbeddingModel& model, const std::string& key,
                        const std::vector<std::string>& sentences,
                        const BenchEnv& env, double* seconds) {
  core::VectorCache& cache = core::VectorCache::Default();
  double fresh = -1.0;
  la::Matrix vectors = cache.GetOrCompute(model, key, sentences, &fresh);
  // Record fresh timings next to the cache file so later (cached) runs can
  // still report an honest vectorization time.
  const std::string time_path =
      cache.dir() + "/" + model.info().code + "_" + key + ".time";
  if (fresh >= 0.0) {
    std::ofstream out(time_path);
    out << fresh << "\n";
  } else if (seconds != nullptr) {
    std::ifstream in(time_path);
    if (in) in >> fresh;
  }
  if (seconds != nullptr) *seconds = fresh;
  return vectors;
}

la::Matrix Vectors(embed::EmbeddingModel& model,
                   const datagen::CleanCleanDataset& dataset, bool left_side,
                   const BenchEnv& env, double* seconds) {
  const std::string key = dataset.id + (left_side ? "_L_" : "_R_") +
                          ScaleTag(env) + "_" + std::to_string(env.seed);
  const datagen::EntityCollection& side =
      left_side ? dataset.left : dataset.right;
  return VectorsKeyed(model, key, side.AllSentences(), env, seconds);
}

Status SaveArtifact(const BenchEnv& env, const std::string& name,
                    const eval::Table& table) {
  return table.WriteCsv(ArtifactPath(env, name));
}

Result<std::vector<std::vector<std::string>>> LoadArtifact(
    const BenchEnv& env, const std::string& name) {
  std::ifstream file(ArtifactPath(env, name));
  if (!file) return Status::NotFound(ArtifactPath(env, name));
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return datagen::ParseCsv(buffer.str());
}

const std::vector<std::string>& SupervisedModelCodes() {
  // Section 4.3: EMTransformer cannot handle S-GTR-T5's seq2seq input and
  // DeepMatcher cannot consume Word2Vec's format, so both are excluded.
  static const std::vector<std::string>* const kCodes =
      new std::vector<std::string>{"FT", "GE", "BT", "AT", "RA",
                                   "DT", "XT", "ST", "SA", "SM"};
  return *kCodes;
}

// ---------------------------------------------------------------------------
// Blocking study
// ---------------------------------------------------------------------------

namespace {

BlockingStudy ParseBlockingStudy(
    const std::vector<std::vector<std::string>>& rows) {
  BlockingStudy study;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() < 5) continue;
    const std::string& kind = row[0];
    if (kind == "recall") {
      study.recall[row[1]][row[2]][std::atoi(row[3].c_str())] =
          ParseDouble(row[4]);
    } else if (kind == "vec_s") {
      study.vectorize_seconds[row[1]][row[2]] = ParseDouble(row[4]);
    } else if (kind == "block_s") {
      study.block_seconds[row[1]][row[2]] = ParseDouble(row[4]);
    } else if (kind == "db_recall") {
      study.deepblocker_recall[row[2]][std::atoi(row[3].c_str())] =
          ParseDouble(row[4]);
    } else if (kind == "db_s") {
      study.deepblocker_seconds[row[2]][std::atoi(row[3].c_str())] =
          ParseDouble(row[4]);
    }
  }
  return study;
}

}  // namespace

BlockingStudy RunBlockingStudy(const BenchEnv& env) {
  if (auto loaded = LoadArtifact(env, "blocking_study"); loaded.ok()) {
    return ParseBlockingStudy(loaded.value());
  }
  BlockingStudy study;
  const std::vector<int> ks = {1, 5, 10};

  for (const embed::ModelId id : embed::AllModels()) {
    auto model = embed::CreateModel(id);
    const std::string code = model->info().code;
    for (const std::string& dataset_id : AllDatasetIds()) {
      const datagen::CleanCleanDataset& dataset = GetDataset(dataset_id, env);
      const eval::GroundTruth truth = TruthOf(dataset);
      double vec_left = 0, vec_right = 0;
      const la::Matrix left = Vectors(*model, dataset, true, env, &vec_left);
      const la::Matrix right = Vectors(*model, dataset, false, env,
                                       &vec_right);
      study.vectorize_seconds[code][dataset_id] =
          std::max(0.0, vec_left) + std::max(0.0, vec_right);

      core::BlockingOptions options;
      options.k = 10;
      const core::BlockingResult blocked =
          core::BlockCleanClean(left, right, options);
      study.block_seconds[code][dataset_id] = blocked.total_seconds();
      // Queries return exactly k candidates in ascending distance order, so
      // the k' < 10 candidate sets are per-query prefixes.
      for (const int k : ks) {
        std::vector<std::pair<uint32_t, uint32_t>> prefix;
        prefix.reserve(blocked.candidates.size());
        for (size_t start = 0; start < blocked.candidates.size();
             start += options.k) {
          const size_t end = std::min(start + static_cast<size_t>(k),
                                      blocked.candidates.size());
          for (size_t i = start; i < end; ++i) {
            prefix.push_back(blocked.candidates[i]);
          }
        }
        study.recall[code][dataset_id][k] =
            eval::EvaluateCleanCleanCandidates(prefix, truth).recall;
      }
      std::fprintf(stderr, "[blocking] %s %s done\n", code.c_str(),
                   dataset_id.c_str());
    }
  }

  // DeepBlocker (Auto-Encoder + fastText), per dataset and k.
  for (const std::string& dataset_id : AllDatasetIds()) {
    const datagen::CleanCleanDataset& dataset = GetDataset(dataset_id, env);
    const eval::GroundTruth truth = TruthOf(dataset);
    const std::vector<std::string> left = dataset.left.AllSentences();
    const std::vector<std::string> right = dataset.right.AllSentences();
    for (const int k : ks) {
      baselines::DeepBlockerOptions options;
      options.k = static_cast<size_t>(k);
      options.seed = env.seed ^ 0xdbULL;
      baselines::DeepBlocker blocker(options);
      const baselines::DeepBlockerResult result = blocker.Run(left, right);
      study.deepblocker_recall[dataset_id][k] =
          eval::EvaluateCleanCleanCandidates(result.candidates, truth).recall;
      study.deepblocker_seconds[dataset_id][k] = result.total_seconds();
    }
    std::fprintf(stderr, "[blocking] DeepBlocker %s done\n",
                 dataset_id.c_str());
  }

  // Persist.
  eval::Table table("blocking_study");
  table.SetHeader({"kind", "model", "dataset", "k", "value"});
  for (const auto& [model, per_dataset] : study.recall) {
    for (const auto& [dataset, per_k] : per_dataset) {
      for (const auto& [k, value] : per_k) {
        table.AddRow({"recall", model, dataset, std::to_string(k),
                      eval::Table::Num(value, 6)});
      }
    }
  }
  for (const auto& [model, per_dataset] : study.vectorize_seconds) {
    for (const auto& [dataset, value] : per_dataset) {
      table.AddRow({"vec_s", model, dataset, "0",
                    eval::Table::Num(value, 6)});
    }
  }
  for (const auto& [model, per_dataset] : study.block_seconds) {
    for (const auto& [dataset, value] : per_dataset) {
      table.AddRow({"block_s", model, dataset, "0",
                    eval::Table::Num(value, 6)});
    }
  }
  for (const auto& [dataset, per_k] : study.deepblocker_recall) {
    for (const auto& [k, value] : per_k) {
      table.AddRow({"db_recall", "DB", dataset, std::to_string(k),
                    eval::Table::Num(value, 6)});
    }
  }
  for (const auto& [dataset, per_k] : study.deepblocker_seconds) {
    for (const auto& [k, value] : per_k) {
      table.AddRow({"db_s", "DB", dataset, std::to_string(k),
                    eval::Table::Num(value, 6)});
    }
  }
  SaveArtifact(env, "blocking_study", table);
  return study;
}

// ---------------------------------------------------------------------------
// Unsupervised matching study
// ---------------------------------------------------------------------------

namespace {

UnsupStudy ParseUnsupStudy(const std::vector<std::vector<std::string>>& rows) {
  UnsupStudy study;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() < 10) continue;
    const std::string& kind = row[0];
    if (kind == "cell") {
      UnsupStudy::Cell& cell = study.cells[row[1]][row[2]][row[3]];
      cell.precision = ParseDouble(row[4]);
      cell.recall = ParseDouble(row[5]);
      cell.f1 = ParseDouble(row[6]);
      cell.best_threshold = ParseDouble(row[7]);
      cell.termination_threshold = ParseDouble(row[8]);
      cell.match_seconds = ParseDouble(row[9]);
      if (row.size() > 10) cell.sweep_seconds = ParseDouble(row[10]);
    } else if (kind == "zeroer") {
      UnsupStudy::ZeroErCell& cell = study.zeroer[row[3]];
      cell.precision = ParseDouble(row[4]);
      cell.recall = ParseDouble(row[5]);
      cell.f1 = ParseDouble(row[6]);
      cell.prep_seconds = ParseDouble(row[7]);
      cell.match_seconds = ParseDouble(row[8]);
      cell.timed_out = row[9] == "1";
    } else if (kind == "pipeline") {
      UnsupStudy::PipelineCell& cell = study.pipeline[row[3]];
      cell.precision = ParseDouble(row[4]);
      cell.recall = ParseDouble(row[5]);
      cell.f1 = ParseDouble(row[6]);
      cell.prep_seconds = ParseDouble(row[7]);
      cell.match_seconds = ParseDouble(row[8]);
    }
  }
  return study;
}

}  // namespace

UnsupStudy RunUnsupStudy(const BenchEnv& env) {
  if (auto loaded = LoadArtifact(env, "unsup_study"); loaded.ok()) {
    return ParseUnsupStudy(loaded.value());
  }
  UnsupStudy study;
  const std::vector<match::ClusteringAlgorithm> algorithms = {
      match::ClusteringAlgorithm::kUmc, match::ClusteringAlgorithm::kExact,
      match::ClusteringAlgorithm::kKiraly};

  for (const embed::ModelId id : embed::AllModels()) {
    auto model = embed::CreateModel(id);
    const std::string code = model->info().code;
    for (const std::string& dataset_id : AllDatasetIds()) {
      const datagen::CleanCleanDataset& dataset = GetDataset(dataset_id, env);
      const eval::GroundTruth truth = TruthOf(dataset);
      const la::Matrix left = Vectors(*model, dataset, true, env);
      const la::Matrix right = Vectors(*model, dataset, false, env);
      std::vector<cluster::ScoredPair> pairs =
          match::UnsupervisedMatcher::AllPairSimilarities(left, right);
      for (const match::ClusteringAlgorithm algorithm : algorithms) {
        const match::SweepResult sweep = match::UnsupervisedMatcher::Sweep(
            pairs, left.rows(), right.rows(), truth, algorithm);
        UnsupStudy::Cell& cell =
            study.cells[ClusteringAlgorithmName(algorithm)][code][dataset_id];
        cell.precision = sweep.best.metrics.precision;
        cell.recall = sweep.best.metrics.recall;
        cell.f1 = sweep.best.metrics.f1;
        cell.best_threshold = sweep.best.threshold;
        cell.termination_threshold = sweep.termination_threshold;
        cell.match_seconds = sweep.best.match_seconds;
        cell.sweep_seconds = sweep.total_sweep_seconds;
      }
      std::fprintf(stderr, "[unsup] %s %s done\n", code.c_str(),
                   dataset_id.c_str());
    }
  }

  // ZeroER per dataset.
  for (const std::string& dataset_id : AllDatasetIds()) {
    const datagen::CleanCleanDataset& dataset = GetDataset(dataset_id, env);
    const eval::GroundTruth truth = TruthOf(dataset);
    baselines::ZeroEr zeroer;
    const baselines::ZeroErResult result = zeroer.Run(dataset, truth);
    UnsupStudy::ZeroErCell& cell = study.zeroer[dataset_id];
    cell.precision = result.metrics.precision;
    cell.recall = result.metrics.recall;
    cell.f1 = result.metrics.f1;
    cell.prep_seconds = result.blocking_seconds + result.feature_seconds;
    cell.match_seconds = result.match_seconds;
    cell.timed_out = result.timed_out;
    std::fprintf(stderr, "[unsup] ZeroER %s done%s\n", dataset_id.c_str(),
                 result.timed_out ? " (timeout)" : "");
  }

  // End-to-end S-GTR-T5 pipeline (k=10, delta=0.5) per dataset.
  {
    auto model = embed::CreateModel(embed::ModelId::kSGtrT5);
    for (const std::string& dataset_id : AllDatasetIds()) {
      const datagen::CleanCleanDataset& dataset = GetDataset(dataset_id, env);
      const eval::GroundTruth truth = TruthOf(dataset);
      double vec_left = 0, vec_right = 0;
      const la::Matrix left = Vectors(*model, dataset, true, env, &vec_left);
      const la::Matrix right =
          Vectors(*model, dataset, false, env, &vec_right);
      core::ErPipeline pipeline({});
      const core::PipelineResult result = pipeline.RunOnVectors(left, right);
      std::vector<std::pair<uint32_t, uint32_t>> predicted;
      for (const auto& m : result.matches) {
        predicted.emplace_back(m.left, m.right);
      }
      const eval::PrfMetrics metrics =
          eval::EvaluateCleanCleanMatches(predicted, truth);
      UnsupStudy::PipelineCell& cell = study.pipeline[dataset_id];
      cell.precision = metrics.precision;
      cell.recall = metrics.recall;
      cell.f1 = metrics.f1;
      cell.prep_seconds = std::max(0.0, vec_left) + std::max(0.0, vec_right) +
                          result.blocking_seconds;
      cell.match_seconds = result.matching_seconds;
    }
  }

  // Persist.
  eval::Table table("unsup_study");
  table.SetHeader({"kind", "algorithm", "model", "dataset", "precision",
                   "recall", "f1", "best_t", "term_t", "match_s", "sweep_s"});
  for (const auto& [algorithm, per_model] : study.cells) {
    for (const auto& [model, per_dataset] : per_model) {
      for (const auto& [dataset, cell] : per_dataset) {
        table.AddRow({"cell", algorithm, model, dataset,
                      eval::Table::Num(cell.precision, 6),
                      eval::Table::Num(cell.recall, 6),
                      eval::Table::Num(cell.f1, 6),
                      eval::Table::Num(cell.best_threshold, 4),
                      eval::Table::Num(cell.termination_threshold, 4),
                      eval::Table::Num(cell.match_seconds, 6),
                      eval::Table::Num(cell.sweep_seconds, 6)});
      }
    }
  }
  for (const auto& [dataset, cell] : study.zeroer) {
    table.AddRow({"zeroer", "-", "ZeroER", dataset,
                  eval::Table::Num(cell.precision, 6),
                  eval::Table::Num(cell.recall, 6),
                  eval::Table::Num(cell.f1, 6),
                  eval::Table::Num(cell.prep_seconds, 6),
                  eval::Table::Num(cell.match_seconds, 6),
                  cell.timed_out ? "1" : "0", "0"});
  }
  for (const auto& [dataset, cell] : study.pipeline) {
    table.AddRow({"pipeline", "-", "S5-e2e", dataset,
                  eval::Table::Num(cell.precision, 6),
                  eval::Table::Num(cell.recall, 6),
                  eval::Table::Num(cell.f1, 6),
                  eval::Table::Num(cell.prep_seconds, 6),
                  eval::Table::Num(cell.match_seconds, 6), "0", "0"});
  }
  SaveArtifact(env, "unsup_study", table);
  return study;
}

// ---------------------------------------------------------------------------
// Supervised matching study
// ---------------------------------------------------------------------------

namespace {

SupStudy ParseSupStudy(const std::vector<std::vector<std::string>>& rows) {
  SupStudy study;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() < 7) continue;
    SupStudy::Cell& cell = study.cells[row[0]][row[1]];
    cell.f1 = ParseDouble(row[2]);
    cell.precision = ParseDouble(row[3]);
    cell.recall = ParseDouble(row[4]);
    cell.train_seconds = ParseDouble(row[5]);
    cell.test_seconds = ParseDouble(row[6]);
  }
  return study;
}

const datagen::DsmDataset& GetDsm(const std::string& id, const BenchEnv& env) {
  static std::map<std::string, datagen::DsmDataset>* const kCache =
      new std::map<std::string, datagen::DsmDataset>();
  const std::string key = id + "_" + ScaleTag(env);
  auto it = kCache->find(key);
  if (it == kCache->end()) {
    const auto spec = datagen::DsmSpecById(id);
    EMBER_CHECK(spec.ok());
    it = kCache
             ->emplace(key,
                       datagen::GenerateDsm(spec.value(), env.scale, env.seed))
             .first;
  }
  return it->second;
}

}  // namespace

SupStudy RunSupStudy(const BenchEnv& env) {
  if (auto loaded = LoadArtifact(env, "sup_study"); loaded.ok()) {
    return ParseSupStudy(loaded.value());
  }
  SupStudy study;
  const std::vector<std::string> dsm_ids = {"DSM1", "DSM2", "DSM3", "DSM4",
                                            "DSM5"};
  for (const std::string& code : SupervisedModelCodes()) {
    const auto id = embed::ModelIdFromString(code);
    EMBER_CHECK(id.ok());
    auto model = embed::CreateModel(id.value());
    for (const std::string& dsm_id : dsm_ids) {
      const datagen::DsmDataset& data = GetDsm(dsm_id, env);
      match::SupervisedOptions options =
          match::SupervisedMatcher::DefaultOptionsFor(model->info());
      options.mlp.seed = env.seed ^ 0x5afeULL;
      match::SupervisedMatcher matcher(*model, options);
      const match::SupervisedReport report = matcher.TrainAndEvaluate(data);
      SupStudy::Cell& cell = study.cells[code][dsm_id];
      cell.f1 = report.test_metrics.f1;
      cell.precision = report.test_metrics.precision;
      cell.recall = report.test_metrics.recall;
      cell.train_seconds = report.train_seconds;
      cell.test_seconds = report.test_seconds;
      std::fprintf(stderr, "[sup] %s %s f1=%.3f\n", code.c_str(),
                   dsm_id.c_str(), cell.f1);
    }
  }
  for (const std::string& dsm_id : dsm_ids) {
    const datagen::DsmDataset& data = GetDsm(dsm_id, env);
    {
      const match::SupervisedReport report =
          baselines::RunDittoLike(data, env.seed);
      SupStudy::Cell& cell = study.cells["DITTO"][dsm_id];
      cell.f1 = report.test_metrics.f1;
      cell.precision = report.test_metrics.precision;
      cell.recall = report.test_metrics.recall;
      cell.train_seconds = report.train_seconds;
      cell.test_seconds = report.test_seconds;
    }
    {
      const match::SupervisedReport report =
          baselines::RunDeepMatcherPlus(data, env.seed);
      SupStudy::Cell& cell = study.cells["DM+"][dsm_id];
      cell.f1 = report.test_metrics.f1;
      cell.precision = report.test_metrics.precision;
      cell.recall = report.test_metrics.recall;
      cell.train_seconds = report.train_seconds;
      cell.test_seconds = report.test_seconds;
    }
    std::fprintf(stderr, "[sup] baselines %s done\n", dsm_id.c_str());
  }

  eval::Table table("sup_study");
  table.SetHeader({"model", "dsm", "f1", "precision", "recall", "train_s",
                   "test_s"});
  for (const auto& [model, per_dsm] : study.cells) {
    for (const auto& [dsm, cell] : per_dsm) {
      table.AddRow({model, dsm, eval::Table::Num(cell.f1, 6),
                    eval::Table::Num(cell.precision, 6),
                    eval::Table::Num(cell.recall, 6),
                    eval::Table::Num(cell.train_seconds, 6),
                    eval::Table::Num(cell.test_seconds, 6)});
    }
  }
  SaveArtifact(env, "sup_study", table);
  return study;
}

}  // namespace ember::bench
