// Tables 1-3: the descriptive tables of the paper, regenerated from the
// library itself — Table 1 from the model registry, Table 2 from the
// generated dataset analogues (entity/attribute/duplicate counts and the
// average sentence length |S|), Table 3 from the supervised pair datasets.

#include "bench_common.h"
#include "datagen/dsm_datasets.h"
#include "datagen/febrl.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp00 / Tables 1-3",
                     "Model metadata, dataset characteristics, supervised "
                     "dataset characteristics");

  // --- Table 1: the language models ---
  {
    eval::Table table("Table 1 — language models");
    table.SetHeader({"model", "code", "family", "dim", "seq", "param_M"});
    for (const embed::ModelId id : embed::AllModels()) {
      const embed::ModelInfo& info = embed::GetModelInfo(id);
      table.AddRow({info.name, info.code,
                    embed::ModelFamilyName(info.family),
                    std::to_string(info.dim),
                    info.max_seq_tokens == 0
                        ? "-"
                        : std::to_string(info.max_seq_tokens),
                    info.param_millions < 0
                        ? "-"
                        : std::to_string(info.param_millions)});
    }
    table.Print();
  }

  // --- Table 2(a): the Clean-Clean ER datasets as generated ---
  {
    eval::Table table("Table 2(a) — Clean-Clean ER datasets (generated, "
                      "scaled)");
    table.SetHeader({"", "name", "|V1|", "|V2|", "|A1|", "|A2|", "|D|",
                     "|S|"});
    for (const auto& id : bench::AllDatasetIds()) {
      const datagen::CleanCleanDataset& dataset = bench::GetDataset(id, env);
      const double avg_len =
          (datagen::AverageSentenceLength(dataset.left) +
           datagen::AverageSentenceLength(dataset.right)) /
          2.0;
      table.AddRow({id, dataset.name, std::to_string(dataset.left.size()),
                    std::to_string(dataset.right.size()),
                    std::to_string(dataset.left.schema.size()),
                    std::to_string(dataset.right.schema.size()),
                    std::to_string(dataset.matches.size()),
                    eval::Table::Num(avg_len, 1)});
    }
    table.Print();
  }

  // --- Table 2(b): one Febrl dirty-ER sample ---
  {
    datagen::FebrlOptions options;
    options.n_records = std::max<size_t>(
        1000, static_cast<size_t>(10000 * env.scale));
    options.seed = env.seed;
    const datagen::DirtyDataset dirty = datagen::GenerateFebrl(options);
    eval::Table table("Table 2(b) — Febrl dirty-ER sample");
    table.SetHeader({"dataset", "|V|", "|A|", "|D|", "|S|"});
    table.AddRow({dirty.id, std::to_string(dirty.records.size()),
                  std::to_string(dirty.records.schema.size()),
                  std::to_string(dirty.matches.size()),
                  eval::Table::Num(
                      datagen::AverageSentenceLength(dirty.records), 1)});
    table.Print();
  }

  // --- Table 3: the supervised matching datasets ---
  {
    eval::Table table("Table 3 — supervised matching datasets (generated, "
                      "scaled)");
    table.SetHeader({"", "name", "total", "train", "valid", "test",
                     "duplicates", "attrs"});
    for (const char* id : {"DSM1", "DSM2", "DSM3", "DSM4", "DSM5"}) {
      const auto spec = datagen::DsmSpecById(id);
      const datagen::DsmDataset data =
          datagen::GenerateDsm(spec.value(), env.scale, env.seed);
      size_t positives = 0;
      for (const auto* split : {&data.train, &data.valid, &data.test}) {
        for (const auto& pair : *split) positives += pair.label;
      }
      const size_t total =
          data.train.size() + data.valid.size() + data.test.size();
      table.AddRow({id, data.name, std::to_string(total),
                    std::to_string(data.train.size()),
                    std::to_string(data.valid.size()),
                    std::to_string(data.test.size()),
                    std::to_string(positives),
                    std::to_string(spec.value().attrs)});
    }
    table.Print();
  }
  return 0;
}
