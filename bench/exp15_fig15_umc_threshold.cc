// Figure 15: the UMC similarity threshold delta per model and dataset — the
// delta achieving the best F1 (blue in the paper) and the delta at which
// the unconstrained algorithm terminates (orange).

#include "bench_common.h"
#include "embed/model_registry.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp15 / Figure 15",
                     "UMC threshold delta: best-F1 delta and termination "
                     "delta per model and dataset");

  const bench::UnsupStudy study = bench::RunUnsupStudy(env);

  eval::Table table("Figure 15 — UMC delta (best / termination)");
  std::vector<std::string> header = {"model"};
  for (const auto& d : bench::AllDatasetIds()) {
    header.push_back(d + " best");
    header.push_back(d + " term");
  }
  table.SetHeader(header);
  for (const embed::ModelId id : embed::AllModels()) {
    const std::string code = embed::GetModelInfo(id).code;
    std::vector<std::string> row = {std::string(embed::GetModelInfo(id).name)};
    for (const auto& d : bench::AllDatasetIds()) {
      const auto& cell = study.cells.at("UMC").at(code).at(d);
      row.push_back(eval::Table::Num(cell.best_threshold, 2));
      row.push_back(eval::Table::Num(cell.termination_threshold, 2));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::SaveArtifact(env, "fig15", table);
  return 0;
}
