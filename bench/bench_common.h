#ifndef EMBER_BENCH_BENCH_COMMON_H_
#define EMBER_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/benchmark_datasets.h"
#include "embed/embedding_model.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "la/matrix.h"

namespace ember::bench {

/// Shared configuration of every bench binary.
///
/// Flags: --scale <f> (default 0.25, or $EMBER_SCALE), --full (scale 1.0 and
/// the large scalability sizes), --no-cache (recompute all vectors),
/// --seed <n>, --threads <n> (thread-pool size; overrides $EMBER_THREADS —
/// results are bit-identical at any setting). Artifacts (cross-bench CSV
/// exchange) go to $EMBER_ARTIFACTS or ./bench_artifacts.
struct BenchEnv {
  double scale = 0.25;
  bool full = false;
  bool no_cache = false;
  uint64_t seed = 41;
  /// 0 = keep the pool's configured default.
  size_t threads = 0;
  std::string artifacts_dir = "bench_artifacts";
};

BenchEnv ParseArgs(int argc, char** argv);

/// Prints the standard bench banner (experiment id, scale, seed) so
/// EXPERIMENTS.md can record the effective configuration.
void PrintBanner(const BenchEnv& env, const std::string& experiment,
                 const std::string& description);

/// Dataset ids D1..D10 in Table 2(a) order.
const std::vector<std::string>& AllDatasetIds();

/// Generates (and memoizes in-process) one Clean-Clean dataset.
const datagen::CleanCleanDataset& GetDataset(const std::string& id,
                                             const BenchEnv& env);

eval::GroundTruth TruthOf(const datagen::CleanCleanDataset& dataset);

/// Vectorizes one side of a dataset through the shared disk cache,
/// recording fresh vectorization times into the artifacts dir so cached
/// reruns still report honest timings. `seconds` receives the fresh or
/// recorded vectorization time (-1 if unknown).
la::Matrix Vectors(embed::EmbeddingModel& model,
                   const datagen::CleanCleanDataset& dataset, bool left_side,
                   const BenchEnv& env, double* seconds = nullptr);

/// Same for an arbitrary keyed sentence collection (scalability benches).
la::Matrix VectorsKeyed(embed::EmbeddingModel& model, const std::string& key,
                        const std::vector<std::string>& sentences,
                        const BenchEnv& env, double* seconds = nullptr);

/// Saves a table as <artifacts>/<name>.csv.
Status SaveArtifact(const BenchEnv& env, const std::string& name,
                    const eval::Table& table);

/// Loads <artifacts>/<name>.csv (header row included).
Result<std::vector<std::vector<std::string>>> LoadArtifact(
    const BenchEnv& env, const std::string& name);

// ---------------------------------------------------------------------------
// Shared studies. Each is compute-once: it loads its artifact when present,
// otherwise runs the experiment and saves it. Several bench binaries render
// different tables/figures from the same study.
// ---------------------------------------------------------------------------

/// Blocking study (Figures 3, 4, 5, 12; Table 5(a)): recall and times for
/// all 12 models x 10 datasets x k in {1, 5, 10}, plus DeepBlocker.
struct BlockingStudy {
  // [model][dataset] -> metric; k-indexed where applicable.
  std::map<std::string, std::map<std::string, std::map<int, double>>> recall;
  std::map<std::string, std::map<std::string, double>> vectorize_seconds;
  std::map<std::string, std::map<std::string, double>> block_seconds;
  // DeepBlocker per dataset per k.
  std::map<std::string, std::map<int, double>> deepblocker_recall;
  std::map<std::string, std::map<int, double>> deepblocker_seconds;
};
BlockingStudy RunBlockingStudy(const BenchEnv& env);

/// Unsupervised matching study (Figures 2, 8, 9, 10, 14, 15): threshold
/// sweeps for UMC/EXC/KRC for all models x datasets, plus ZeroER and the
/// end-to-end S-GTR-T5 pipeline.
struct UnsupStudy {
  struct Cell {
    double precision = 0, recall = 0, f1 = 0;
    double best_threshold = 0, termination_threshold = 0;
    double match_seconds = 0, sweep_seconds = 0;
  };
  // [algorithm][model][dataset]
  std::map<std::string, std::map<std::string, std::map<std::string, Cell>>>
      cells;
  struct ZeroErCell {
    double precision = 0, recall = 0, f1 = 0;
    double prep_seconds = 0, match_seconds = 0;
    bool timed_out = false;
  };
  std::map<std::string, ZeroErCell> zeroer;  // [dataset]
  struct PipelineCell {
    double precision = 0, recall = 0, f1 = 0;
    double prep_seconds = 0, match_seconds = 0;
  };
  std::map<std::string, PipelineCell> pipeline;  // [dataset], S-GTR-T5 e2e
};
UnsupStudy RunUnsupStudy(const BenchEnv& env);

/// Supervised matching study (Figure 11, Table 6): F1 and train/test times
/// for the 10 supported models x DSM1..DSM5, plus DITTO-like and
/// DeepMatcher+.
struct SupStudy {
  struct Cell {
    double f1 = 0, precision = 0, recall = 0;
    double train_seconds = 0, test_seconds = 0;
  };
  std::map<std::string, std::map<std::string, Cell>> cells;  // [model][dsm]
};
SupStudy RunSupStudy(const BenchEnv& env);

/// Model codes evaluated in the supervised task (paper excludes Word2Vec
/// and S-GTR-T5, Section 4.3).
const std::vector<std::string>& SupervisedModelCodes();

}  // namespace ember::bench

#endif  // EMBER_BENCH_BENCH_COMMON_H_
