// Table 6: training (t_t) and testing (t_e) times of all models in the
// supervised matching task over DSM1-DSM5.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ember;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::PrintBanner(env, "exp18 / Table 6",
                     "Supervised matching training (t_t) and testing (t_e) "
                     "times in seconds");

  const bench::SupStudy study = bench::RunSupStudy(env);
  const std::vector<std::string> dsm_ids = {"DSM1", "DSM2", "DSM3", "DSM4",
                                            "DSM5"};

  eval::Table table("Table 6 — supervised matching times (s)");
  std::vector<std::string> header = {"model"};
  for (const auto& d : dsm_ids) {
    header.push_back(d + " t_t");
    header.push_back(d + " t_e");
  }
  table.SetHeader(header);
  for (const std::string& code : bench::SupervisedModelCodes()) {
    std::vector<std::string> row = {code};
    for (const auto& d : dsm_ids) {
      const auto& cell = study.cells.at(code).at(d);
      row.push_back(eval::Table::Num(cell.train_seconds, 1));
      row.push_back(eval::Table::Num(cell.test_seconds, 2));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::SaveArtifact(env, "table6", table);
  return 0;
}
