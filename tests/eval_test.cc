#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ember::eval {
namespace {

TEST(MetricsTest, CleanCleanPrf) {
  GroundTruth truth;
  truth.AddCleanCleanPair(0, 0);
  truth.AddCleanCleanPair(1, 1);
  truth.AddCleanCleanPair(2, 2);
  truth.AddCleanCleanPair(3, 3);

  // 2 true positives, 2 false positives, 2 missed.
  const std::vector<std::pair<uint32_t, uint32_t>> predicted = {
      {0, 0}, {1, 1}, {0, 1}, {5, 5}};
  const PrfMetrics m = EvaluateCleanCleanMatches(predicted, truth);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(MetricsTest, DuplicateCandidatesCountOnce) {
  GroundTruth truth;
  truth.AddCleanCleanPair(0, 0);
  const std::vector<std::pair<uint32_t, uint32_t>> predicted = {
      {0, 0}, {0, 0}, {0, 0}};
  const PrfMetrics m = EvaluateCleanCleanCandidates(predicted, truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(MetricsTest, DirtyPairsAreUnordered) {
  GroundTruth truth;
  truth.AddDirtyPair(5, 2);
  EXPECT_TRUE(truth.ContainsDirty(2, 5));
  const std::vector<std::pair<uint32_t, uint32_t>> predicted = {{5, 2}};
  EXPECT_DOUBLE_EQ(EvaluateDirtyCandidates(predicted, truth).recall, 1.0);
}

TEST(MetricsTest, EmptyPredictionsScoreZero) {
  GroundTruth truth;
  truth.AddCleanCleanPair(0, 0);
  const PrfMetrics m = EvaluateCleanCleanMatches({}, truth);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, RankMatrixAveragesTies) {
  // Two columns; second row wins column 0, ties split column 1.
  const auto ranks = RankMatrix({{0.1, 0.5}, {0.9, 0.5}});
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(ranks[0][0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[1][0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[0][1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1][1], 1.5);
  // Last element is the mean rank.
  EXPECT_DOUBLE_EQ(ranks[0].back(), (2.0 + 1.5) / 2);
}

// Regression (PR 5): ragged score rows used to index past the end of the
// short rows (RankMatrix assumed scores[0].size() everywhere). Only the
// columns every row has are ranked now.
TEST(MetricsTest, RankMatrixHandlesRaggedRows) {
  const auto ranks = RankMatrix({{0.9, 0.5, 0.7}, {0.1}});
  ASSERT_EQ(ranks.size(), 2u);
  // One common column -> one rank + the mean slot.
  ASSERT_EQ(ranks[0].size(), 2u);
  EXPECT_DOUBLE_EQ(ranks[0][0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1][0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[0].back(), 1.0);
  EXPECT_DOUBLE_EQ(ranks[1].back(), 2.0);
}

TEST(MetricsTest, RankMatrixEmptyAndZeroColumnInputs) {
  EXPECT_TRUE(RankMatrix({}).empty());
  const auto ranks = RankMatrix({{}, {}});
  ASSERT_EQ(ranks.size(), 2u);
  // No columns: only the mean slot, defined as 0.
  ASSERT_EQ(ranks[0].size(), 1u);
  EXPECT_DOUBLE_EQ(ranks[0][0], 0.0);
  EXPECT_DOUBLE_EQ(ranks[1][0], 0.0);
}

TEST(MetricsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-9);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace ember::eval
