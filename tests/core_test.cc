#include "core/blocking.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/schema_vectorizer.h"
#include "core/vector_cache.h"
#include "datagen/benchmark_datasets.h"
#include "embed/static_model.h"
#include "la/vector_ops.h"

namespace ember::core {
namespace {

la::Matrix RandomUnitRows(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

TEST(BlockingTest, ExactlyKAscendingCandidatesPerQuery) {
  const la::Matrix left = RandomUnitRows(20, 16, 1);
  const la::Matrix right = RandomUnitRows(50, 16, 2);
  BlockingOptions options;
  options.k = 5;
  const BlockingResult blocked = BlockCleanClean(left, right, options);
  ASSERT_EQ(blocked.candidates.size(), 20u * 5u);
  for (size_t q = 0; q < 20; ++q) {
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(blocked.candidates[q * 5 + i].first, q);
      EXPECT_LT(blocked.candidates[q * 5 + i].second, 50u);
    }
  }
  EXPECT_GE(blocked.total_seconds(), 0.0);
}

TEST(BlockingTest, PerfectRecallOnIdenticalCollections) {
  const la::Matrix data = RandomUnitRows(30, 16, 3);
  BlockingOptions options;
  options.k = 1;
  const BlockingResult blocked = BlockCleanClean(data, data, options);
  for (size_t q = 0; q < 30; ++q) {
    EXPECT_EQ(blocked.candidates[q].second, q);
  }
}

TEST(BlockingTest, DirtyBlockingDropsSelf) {
  const la::Matrix data = RandomUnitRows(40, 16, 4);
  BlockingOptions options;
  options.k = 3;
  const BlockingResult blocked = BlockDirty(data, options);
  ASSERT_EQ(blocked.candidates.size(), 40u * 3u);
  for (const auto& [q, n] : blocked.candidates) {
    EXPECT_NE(q, n);
  }
}

TEST(PipelineTest, RecoversPlantedMatchesWithFixedDelta) {
  la::Matrix left(8, 16), right(8, 16);
  for (size_t r = 0; r < 8; ++r) {
    left.At(r, r) = 1.f;
    right.At(r, r) = 1.f;
  }
  ErPipeline pipeline({});
  const PipelineResult result = pipeline.RunOnVectors(left, right);
  EXPECT_FLOAT_EQ(result.threshold_used, 0.5f);
  ASSERT_EQ(result.matches.size(), 8u);
  for (const PipelineMatch& m : result.matches) {
    EXPECT_EQ(m.left, m.right);
    EXPECT_NEAR(m.sim, 1.f, 1e-5f);
  }
}

TEST(PipelineTest, AutoThresholdReportsChosenDelta) {
  const la::Matrix left = RandomUnitRows(30, 16, 5);
  const la::Matrix right = RandomUnitRows(30, 16, 6);
  PipelineOptions options;
  options.auto_threshold = true;
  ErPipeline pipeline(options);
  const PipelineResult result = pipeline.RunOnVectors(left, right);
  EXPECT_GT(result.threshold_used, 0.f);
  EXPECT_LT(result.threshold_used, 1.f);
}

TEST(VectorCacheTest, MissComputesHitLoads) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ember_cache_test").string();
  std::filesystem::remove_all(dir);
  VectorCache cache(dir);

  embed::StaticEmbeddingModel model(embed::ModelId::kGloVe);
  const std::vector<std::string> sentences = {"alpha beta", "gamma delta"};
  double fresh = 0;
  const la::Matrix first = cache.GetOrCompute(model, "key1", sentences,
                                              &fresh);
  EXPECT_GE(fresh, 0.0);
  const la::Matrix second = cache.GetOrCompute(model, "key1", sentences,
                                               &fresh);
  EXPECT_EQ(fresh, -1.0);
  EXPECT_EQ(first, second);

  cache.set_enabled(false);
  const la::Matrix third = cache.GetOrCompute(model, "key1", sentences,
                                              &fresh);
  EXPECT_GE(fresh, 0.0);
  EXPECT_EQ(first, third);
  std::filesystem::remove_all(dir);
}

TEST(SchemaVectorizerTest, NormalizedRowsFromAttributes) {
  datagen::EntityCollection collection;
  collection.schema = {"name", "brand"};
  collection.Add({"deluxe headset", "acme"});
  collection.Add({"", ""});
  embed::StaticEmbeddingModel model(embed::ModelId::kFastText);
  const la::Matrix out = SchemaBasedVectorize(model, collection);
  ASSERT_EQ(out.rows(), 2u);
  EXPECT_NEAR(la::Norm(out.Row(0), out.cols()), 1.f, 1e-4f);
  EXPECT_EQ(la::Norm(out.Row(1), out.cols()), 0.f);
}

}  // namespace
}  // namespace ember::core
