#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/string_similarity.h"

namespace ember::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  const auto tokens = Tokenize("Acme DELUXE headset, 20-hour battery!");
  const std::vector<std::string> expected = {"acme",  "deluxe", "headset",
                                             "20",    "hour",   "battery"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize(" ,;- ").empty());
}

TEST(TokenizerTest, CharNgrams) {
  const auto grams = CharNgrams("abcd", 3);
  const std::vector<std::string> expected = {"abc", "bcd"};
  EXPECT_EQ(grams, expected);
  EXPECT_TRUE(CharNgrams("ab", 3).empty());
}

TEST(TokenizerTest, SynonymSurfaceRoundTrip) {
  const std::string surface = MakeSynonymSurface("battery", 2);
  EXPECT_NE(surface, "battery");
  EXPECT_EQ(CanonicalWordForm(surface), "battery");
  EXPECT_EQ(CanonicalWordForm("battery"), "battery");
}

TEST(StringSimilarityTest, LevenshteinBounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", ""), 0.0);
  EXPECT_GT(LevenshteinSimilarity("kitten", "sitten"), 0.8);
}

TEST(StringSimilarityTest, JaroWinklerFavorsSharedPrefix) {
  const double jw_prefix = JaroWinklerSimilarity("martha", "marhta");
  const double jaro = JaroSimilarity("martha", "marhta");
  EXPECT_GE(jw_prefix, jaro);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(StringSimilarityTest, TokenMeasures) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient("a b", "a b c d"), 1.0);
  EXPECT_NEAR(CosineOverTf("a b", "a c"), 0.5, 1e-9);
}

TEST(StringSimilarityTest, MongeElkanHandlesWordReorder) {
  EXPECT_GT(MongeElkanSimilarity("john smith", "smith john"), 0.9);
}

}  // namespace
}  // namespace ember::text
