// Sharded scatter-gather serving tests (DESIGN.md §13): the round-robin
// shard plan and partitioner, global-id remapping, the k-way MergeTopK
// (proptest: bit-identical to the unsharded oracle across shard counts,
// ragged sizes, and duplicate scores), fail-closed shard-set loading,
// Router fleet validation, end-to-end router-vs-oracle equality, replica
// fail-over under a tripped breaker, and partial-result degradation when a
// whole shard group is down.

#include "serve/router.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/sharding.h"
#include "la/vector_ops.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "proptest.h"
#include "recover/digest.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

#define SKIP_IF_FAILPOINTS_OFF()                               \
  do {                                                         \
    if (!::ember::fail::kEnabled) {                            \
      GTEST_SKIP() << "failpoints compiled out of this build"; \
    }                                                          \
  } while (0)

namespace ember {
namespace {

using serve::BuildShardSnapshots;
using serve::Engine;
using serve::EngineOptions;
using serve::Health;
using serve::IndexKind;
using serve::LoadShardSet;
using serve::MergeTopK;
using serve::ReplicaState;
using serve::Router;
using serve::RouterOptions;
using serve::RouterReply;
using serve::Snapshot;
using serve::SnapshotManifest;

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo(const std::string& code) {
  embed::ModelInfo info;
  info.code = code;
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

class HashModel : public embed::EmbeddingModel {
 public:
  explicit HashModel(std::string code = "HT")
      : EmbeddingModel(HashModelInfo(code)) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23) + " value" +
                  std::to_string((i * 13) % 41));
  }
  return out;
}

/// Sentences with repeats, so several corpus rows share one embedding and
/// neighbor lists carry duplicate distances (the tie-break path).
std::vector<std::string> DuplicateHeavySentences(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  const size_t distinct = n / 2 + 1;
  for (size_t i = 0; i < n; ++i) {
    out.push_back("dup record " + std::to_string(i % distinct));
  }
  return out;
}

SnapshotManifest BaseManifest(uint32_t default_k = 5,
                              const std::string& model_code = "HT") {
  SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = default_k;
  manifest.kind = IndexKind::kExact;
  manifest.dataset = "router-test";
  return manifest;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ember_router_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

/// Per-shard exact top-k, remapped to global ids and k-way merged — the
/// reference scatter-gather computation the Router must reproduce.
std::vector<std::vector<index::Neighbor>> ShardedQuery(
    const std::vector<Snapshot>& shards, const la::Matrix& queries,
    size_t k) {
  std::vector<std::vector<std::vector<index::Neighbor>>> per_shard;
  for (const Snapshot& shard : shards) {
    auto lists = shard.QueryBatch(queries, k);
    for (auto& list : lists) {
      index::RemapToGlobal(list, shard.manifest().row_offset,
                           shard.manifest().shard_count);
    }
    per_shard.push_back(std::move(lists));
  }
  std::vector<std::vector<index::Neighbor>> merged(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    std::vector<std::vector<index::Neighbor>> lists;
    for (auto& shard_lists : per_shard) {
      lists.push_back(std::move(shard_lists[q]));
    }
    merged[q] = MergeTopK(lists, k);
  }
  return merged;
}

bool SameResults(const std::vector<index::Neighbor>& a,
                 const std::vector<index::Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Shard plan + partitioner
// ---------------------------------------------------------------------------

TEST(ShardPlan, RoundTripsEveryRowAndBalancesSizes) {
  proptest::ForAll(
      "plan round trip", {.cases = 50, .min_size = 1, .max_size = 200},
      [](Rng& rng, size_t n) {
        const uint32_t count = static_cast<uint32_t>(rng.Below(9) + 1);
        const core::ShardPlan plan{count, n};
        uint64_t covered = 0;
        for (uint32_t s = 0; s < count; ++s) covered += plan.RowsInShard(s);
        if (covered != n) return false;
        for (uint64_t g = 0; g < n; ++g) {
          const uint32_t s = plan.ShardOfRow(g);
          const uint64_t local = plan.LocalIndex(g);
          if (s >= count) return false;
          if (local >= plan.RowsInShard(s)) return false;
          if (plan.GlobalId(s, local) != g) return false;
        }
        // Round-robin balance: shard sizes differ by at most one row.
        uint64_t lo = n, hi = 0;
        for (uint32_t s = 0; s < count; ++s) {
          lo = std::min(lo, plan.RowsInShard(s));
          hi = std::max(hi, plan.RowsInShard(s));
        }
        return hi - lo <= 1;
      });
}

TEST(ShardPlan, PartitionReassemblesCorpus) {
  HashModel model;
  model.Initialize();
  const la::Matrix corpus = model.VectorizeAll(Sentences(37, "corpus"));
  for (uint32_t count : {1u, 2u, 3u, 5u, 8u, 41u}) {
    const auto parts = core::PartitionRoundRobin(corpus, count);
    ASSERT_EQ(parts.size(), count);
    const core::ShardPlan plan{count, corpus.rows()};
    for (uint32_t s = 0; s < count; ++s) {
      ASSERT_EQ(parts[s].rows(), plan.RowsInShard(s));
      for (size_t local = 0; local < parts[s].rows(); ++local) {
        const uint64_t global = plan.GlobalId(s, local);
        for (size_t d = 0; d < corpus.cols(); ++d) {
          ASSERT_EQ(parts[s].Row(local)[d], corpus.Row(global)[d])
              << "shard " << s << " local " << local;
        }
      }
    }
  }
}

TEST(ShardPlan, PartitionStringsMatchesPlan) {
  const auto rows = Sentences(11, "rec");
  const auto parts = core::PartitionRoundRobin(rows, 4);
  ASSERT_EQ(parts.size(), 4u);
  const core::ShardPlan plan{4, rows.size()};
  for (uint32_t s = 0; s < 4; ++s) {
    ASSERT_EQ(parts[s].size(), plan.RowsInShard(s));
    for (size_t local = 0; local < parts[s].size(); ++local) {
      EXPECT_EQ(parts[s][local], rows[plan.GlobalId(s, local)]);
    }
  }
}

// ---------------------------------------------------------------------------
// MergeTopK: the satellite proptest — bit-identical to the unsharded
// QueryBatch across shard counts, ragged sizes, and duplicate scores.
// ---------------------------------------------------------------------------

TEST(MergeTopK, BitIdenticalToUnshardedOracleAcrossShardCounts) {
  HashModel model;
  model.Initialize();
  proptest::ForAll(
      "sharded merge == unsharded oracle",
      {.cases = 30, .min_size = 2, .max_size = 48},
      [&](Rng& rng, size_t n) {
        // Duplicate-heavy corpus: equal distances are common, so the
        // (distance, global id) tie-break is genuinely exercised.
        const la::Matrix corpus =
            model.VectorizeAll(DuplicateHeavySentences(n));
        const size_t k = rng.Below(n + 3) + 1;
        std::vector<std::string> query_sentences =
            Sentences(3, "query" + std::to_string(rng.Next() % 1000));
        query_sentences.push_back("dup record 0");  // exact-hit duplicates
        const la::Matrix queries = model.VectorizeAll(query_sentences);

        la::Matrix oracle_corpus(corpus.rows(), corpus.cols());
        std::copy(corpus.data(), corpus.data() + corpus.rows() * corpus.cols(),
                  oracle_corpus.data());
        const Snapshot oracle =
            Snapshot::Build(BaseManifest(), std::move(oracle_corpus));
        const auto expect = oracle.QueryBatch(queries, k);

        for (uint32_t count : {1u, 2u, 3u, 5u, 8u}) {
          auto shards = BuildShardSnapshots(BaseManifest(), corpus, count);
          if (!shards.ok()) return false;
          const auto merged = ShardedQuery(shards.value(), queries, k);
          for (size_t q = 0; q < queries.rows(); ++q) {
            if (!SameResults(merged[q], expect[q])) return false;
          }
        }
        return true;
      });
}

TEST(MergeTopK, EdgeCases) {
  const std::vector<std::vector<index::Neighbor>> empty_lists(3);
  EXPECT_TRUE(MergeTopK(empty_lists, 5).empty());
  EXPECT_TRUE(MergeTopK({}, 5).empty());

  // k larger than the total pool: every element comes back, in order.
  const std::vector<std::vector<index::Neighbor>> lists = {
      {{0, 0.1f}, {2, 0.3f}},
      {},
      {{1, 0.1f}, {3, 0.2f}},
  };
  const auto merged = MergeTopK(lists, 10);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 0u);  // 0.1 ties broken by id
  EXPECT_EQ(merged[1].id, 1u);
  EXPECT_EQ(merged[2].id, 3u);
  EXPECT_EQ(merged[3].id, 2u);
  EXPECT_EQ(MergeTopK(lists, 2).size(), 2u);
}

// ---------------------------------------------------------------------------
// Shard-set build / load (fail-closed)
// ---------------------------------------------------------------------------

la::Matrix TestCorpus(size_t rows) {
  HashModel model;
  model.Initialize();
  return model.VectorizeAll(Sentences(rows, "corpus"));
}

TEST(ShardSet, BuildSetsPlanManifests) {
  const la::Matrix corpus = TestCorpus(10);
  auto shards = BuildShardSnapshots(BaseManifest(), corpus, 4);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards.value().size(), 4u);
  for (uint32_t s = 0; s < 4; ++s) {
    const SnapshotManifest& m = shards.value()[s].manifest();
    EXPECT_EQ(m.shard_id, s);
    EXPECT_EQ(m.shard_count, 4u);
    EXPECT_EQ(m.row_offset, s);
    EXPECT_EQ(m.rows, (core::ShardPlan{4, 10}).RowsInShard(s));
    EXPECT_TRUE(shards.value()[s].Validate().ok());
  }
  EXPECT_FALSE(BuildShardSnapshots(BaseManifest(), corpus, 0).ok());
}

std::vector<std::string> SaveShardSet(const std::vector<Snapshot>& shards,
                                      const std::string& tag) {
  std::vector<std::string> paths;
  for (size_t s = 0; s < shards.size(); ++s) {
    paths.push_back(TempPath(tag + "_s" + std::to_string(s)));
    EXPECT_TRUE(shards[s].SaveTo(paths[s]).ok());
  }
  return paths;
}

TEST(ShardSet, RoundTripsThroughDiskSorted) {
  const la::Matrix corpus = TestCorpus(13);
  auto built = BuildShardSnapshots(BaseManifest(), corpus, 3);
  ASSERT_TRUE(built.ok());
  auto paths = SaveShardSet(built.value(), "roundtrip");
  // Shuffled path order must come back sorted by shard_id.
  std::swap(paths[0], paths[2]);
  auto loaded = LoadShardSet(paths);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(loaded.value()[s].manifest().shard_id, s);
  }
  HashModel model;
  model.Initialize();
  const la::Matrix queries = model.VectorizeAll(Sentences(5, "q"));
  for (size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_TRUE(SameResults(ShardedQuery(loaded.value(), queries, 4)[q],
                            ShardedQuery(built.value(), queries, 4)[q]));
  }
  for (const auto& path : paths) std::filesystem::remove(path);
}

TEST(ShardSet, RefusesDuplicateShardId) {
  const la::Matrix corpus = TestCorpus(9);
  auto built = BuildShardSnapshots(BaseManifest(), corpus, 3);
  ASSERT_TRUE(built.ok());
  auto paths = SaveShardSet(built.value(), "dup");
  auto loaded = LoadShardSet({paths[0], paths[1], paths[0]});
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("duplicate shard_id"),
            std::string::npos);
  for (const auto& path : paths) std::filesystem::remove(path);
}

TEST(ShardSet, RefusesWrongFileCount) {
  const la::Matrix corpus = TestCorpus(9);
  auto built = BuildShardSnapshots(BaseManifest(), corpus, 3);
  ASSERT_TRUE(built.ok());
  auto paths = SaveShardSet(built.value(), "count");
  EXPECT_FALSE(LoadShardSet({paths[0], paths[1]}).ok());
  EXPECT_FALSE(LoadShardSet(std::vector<std::string>{}).ok());
  for (const auto& path : paths) std::filesystem::remove(path);
}

TEST(ShardSet, RefusesMismatchedModelFingerprint) {
  const la::Matrix corpus = TestCorpus(9);
  auto built = BuildShardSnapshots(BaseManifest(), corpus, 3);
  ASSERT_TRUE(built.ok());
  auto paths = SaveShardSet(built.value(), "fp");
  // Same plan position, different model fingerprint.
  auto impostor =
      BuildShardSnapshots(BaseManifest(5, "HX"), corpus, 3);
  ASSERT_TRUE(impostor.ok());
  ASSERT_TRUE(impostor.value()[1].SaveTo(paths[1]).ok());
  auto loaded = LoadShardSet(paths);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("fingerprint"),
            std::string::npos);
  for (const auto& path : paths) std::filesystem::remove(path);
}

TEST(ShardSet, RefusesMixedShardCounts) {
  const la::Matrix corpus = TestCorpus(8);
  auto three = BuildShardSnapshots(BaseManifest(), corpus, 3);
  auto two = BuildShardSnapshots(BaseManifest(), corpus, 2);
  ASSERT_TRUE(three.ok());
  ASSERT_TRUE(two.ok());
  auto paths3 = SaveShardSet(three.value(), "mix3");
  auto paths2 = SaveShardSet(two.value(), "mix2");
  EXPECT_FALSE(LoadShardSet({paths3[0], paths2[1], paths3[2]}).ok());
  EXPECT_FALSE(LoadShardSet({paths2[0], paths2[1], paths3[2]}).ok());
  for (const auto& path : paths3) std::filesystem::remove(path);
  for (const auto& path : paths2) std::filesystem::remove(path);
}

TEST(ShardSet, ManifestLoadRejectsIncoherentPlan) {
  // A manifest whose plan is self-contradictory must fail at load, not
  // surface later as wrong global ids.
  const la::Matrix corpus = TestCorpus(6);
  SnapshotManifest bad = BaseManifest();
  bad.shard_id = 5;
  bad.shard_count = 2;  // shard_id >= shard_count
  bad.row_offset = 5;
  la::Matrix copy(corpus.rows(), corpus.cols());
  std::copy(corpus.data(), corpus.data() + corpus.rows() * corpus.cols(),
            copy.data());
  const Snapshot snapshot = Snapshot::Build(bad, std::move(copy));
  EXPECT_FALSE(snapshot.Validate().ok());
  const std::string path = TempPath("incoherent");
  ASSERT_TRUE(snapshot.SaveTo(path).ok());
  EXPECT_FALSE(Snapshot::LoadFrom(path).ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Router: fleet validation and end-to-end oracle equality
// ---------------------------------------------------------------------------

struct Fleet {
  std::vector<std::unique_ptr<Engine>> engines;
  std::shared_ptr<embed::EmbeddingModel> model;
  std::vector<Snapshot> shards;
};

Fleet MakeFleet(size_t rows, uint32_t shard_count, size_t replicas,
                size_t k = 5, EngineOptions engine_options = {}) {
  Fleet fleet;
  fleet.model = std::make_shared<HashModel>();
  fleet.model->Initialize();
  auto built =
      BuildShardSnapshots(BaseManifest(), TestCorpus(rows), shard_count);
  EXPECT_TRUE(built.ok());
  fleet.shards = std::move(built).value();
  engine_options.k = k;
  for (size_t r = 0; r < replicas; ++r) {
    for (const Snapshot& shard : fleet.shards) {
      auto engine = Engine::Create(shard, fleet.model, engine_options);
      EXPECT_TRUE(engine.ok()) << engine.status().ToString();
      fleet.engines.push_back(std::move(engine).value());
    }
  }
  return fleet;
}

TEST(Router, CreateFailsClosedOnIncoherentFleets) {
  RouterOptions options;
  options.k = 5;
  {
    Fleet fleet = MakeFleet(12, 2, 1);
    EXPECT_FALSE(
        Router::Create(std::move(fleet.engines), nullptr, options).ok());
  }
  {
    std::vector<std::unique_ptr<Engine>> none;
    auto model = std::make_shared<HashModel>();
    EXPECT_FALSE(Router::Create(std::move(none), model, options).ok());
  }
  {
    // Dropping shard 1's only engine shrinks the observed total, so the
    // surviving shards contradict the round-robin plan — refused.
    Fleet fleet = MakeFleet(12, 3, 1);
    fleet.engines.erase(fleet.engines.begin() + 1);
    auto created = Router::Create(std::move(fleet.engines), fleet.model,
                                  options);
    ASSERT_FALSE(created.ok());
    EXPECT_NE(created.status().ToString().find("round-robin plan"),
              std::string::npos);
  }
  {
    // A 2-row corpus over 3 shards leaves shard 2 empty, so dropping its
    // engine keeps the plan arithmetic consistent — the empty group itself
    // is what must be refused.
    Fleet fleet = MakeFleet(2, 3, 1);
    ASSERT_EQ(fleet.engines.size(), 3u);
    fleet.engines.pop_back();
    auto created = Router::Create(std::move(fleet.engines), fleet.model,
                                  options);
    ASSERT_FALSE(created.ok());
    EXPECT_NE(created.status().ToString().find("no replicas"),
              std::string::npos);
  }
  {
    // Mixed shard_count across engines.
    Fleet three = MakeFleet(12, 3, 1);
    Fleet two = MakeFleet(12, 2, 1);
    three.engines.push_back(std::move(two.engines[0]));
    EXPECT_FALSE(Router::Create(std::move(three.engines), three.model,
                                options)
                     .ok());
  }
  {
    // Engine answering a smaller top-k than the router merges.
    EngineOptions small;
    Fleet fleet = MakeFleet(12, 2, 1, /*k=*/3, small);
    RouterOptions big = options;
    big.k = 8;
    auto created =
        Router::Create(std::move(fleet.engines), fleet.model, big);
    ASSERT_FALSE(created.ok());
    EXPECT_NE(created.status().ToString().find("per-shard k"),
              std::string::npos);
  }
  {
    // Router model whose fingerprint disagrees with the shard manifests.
    Fleet fleet = MakeFleet(12, 2, 1);
    auto other = std::make_shared<HashModel>("HX");
    EXPECT_FALSE(
        Router::Create(std::move(fleet.engines), other, options).ok());
  }
}

TEST(Router, MatchesUnshardedOracleEndToEnd) {
  for (uint32_t shard_count : {1u, 3u}) {
    const size_t rows = 42, k = 7;
    Fleet fleet = MakeFleet(rows, shard_count, 1, k);
    // Unsharded oracle over the same corpus and model.
    const Snapshot oracle =
        Snapshot::Build(BaseManifest(), TestCorpus(rows));
    RouterOptions options;
    options.k = k;
    auto router =
        Router::Create(std::move(fleet.engines), fleet.model, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();

    const auto query_sentences = Sentences(24, "query");
    const la::Matrix queries = fleet.model->VectorizeAll(query_sentences);
    const auto expect = oracle.QueryBatch(queries, k);
    std::vector<std::future<Result<RouterReply>>> futures;
    for (const auto& sentence : query_sentences) {
      auto submitted = router.value()->Submit(sentence);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (size_t q = 0; q < futures.size(); ++q) {
      auto reply = futures[q].get();
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_FALSE(reply.value().partial);
      EXPECT_TRUE(SameResults(reply.value().neighbors, expect[q]))
          << "query " << q << " at shard_count " << shard_count;
    }
    router.value()->Stop();
    const auto metrics = router.value()->Metrics();
    EXPECT_EQ(metrics.submitted, query_sentences.size());
    EXPECT_EQ(metrics.completed, query_sentences.size());
    EXPECT_EQ(metrics.failed, 0u);
    EXPECT_EQ(metrics.partial, 0u);
    EXPECT_EQ(metrics.shards_degraded, 0u);
  }
}

TEST(Router, ShardHistogramsAndSpansPopulate) {
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);
  {
    const size_t k = 4;
    Fleet fleet = MakeFleet(20, 2, 1, k);
    RouterOptions options;
    options.k = k;
    auto router =
        Router::Create(std::move(fleet.engines), fleet.model, options);
    ASSERT_TRUE(router.ok());
    std::vector<std::future<Result<RouterReply>>> futures;
    for (const auto& sentence : Sentences(8, "probe")) {
      auto submitted = router.value()->Submit(sentence);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (auto& future : futures) EXPECT_TRUE(future.get().ok());
    router.value()->Stop();
    const auto metrics = router.value()->Metrics();
    ASSERT_EQ(metrics.shard_micros.size(), 2u);
    for (size_t s = 0; s < 2; ++s) {
      ASSERT_EQ(metrics.shard_micros[s].size(), 1u);
      EXPECT_EQ(metrics.shard_micros[s][0].count, 8u)
          << "every request must visit shard " << s;
    }
  }
  obs::Tracer::Global().SetEnabled(false);
  const auto spans = obs::Tracer::Global().Drain();
  bool merge_attributed = false, fanout_seen = false, gather_seen = false;
  for (const obs::StageBreakdownRow& row : obs::StageBreakdown(spans)) {
    const std::string name = row.name;
    if (name == "router/merge") merge_attributed = row.spans > 0;
    if (name == "router/fanout") fanout_seen = row.spans > 0;
    if (name == "router/gather") gather_seen = row.spans > 0;
  }
  EXPECT_TRUE(merge_attributed) << "StageBreakdown must attribute merge time";
  EXPECT_TRUE(fanout_seen);
  EXPECT_TRUE(gather_seen);
}

// ---------------------------------------------------------------------------
// Engine::SubmitEmbedded
// ---------------------------------------------------------------------------

TEST(SubmitEmbedded, MatchesSubmitBitIdentically) {
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  la::Matrix corpus = model->VectorizeAll(Sentences(30, "corpus"));
  auto engine = Engine::Create(
      Snapshot::Build(BaseManifest(), std::move(corpus)), model, {});
  ASSERT_TRUE(engine.ok());
  const auto query_sentences = Sentences(12, "query");
  const la::Matrix queries = model->VectorizeAll(query_sentences);
  // Interleave record and pre-embedded submissions so mixed batches form.
  std::vector<std::future<Result<serve::QueryReply>>> by_record;
  std::vector<std::future<Result<serve::QueryReply>>> by_vector;
  for (size_t q = 0; q < query_sentences.size(); ++q) {
    auto record = engine.value()->Submit(query_sentences[q]);
    ASSERT_TRUE(record.ok());
    by_record.push_back(std::move(record).value());
    auto vector = engine.value()->SubmitEmbedded(std::vector<float>(
        queries.Row(q), queries.Row(q) + queries.cols()));
    ASSERT_TRUE(vector.ok());
    by_vector.push_back(std::move(vector).value());
  }
  for (size_t q = 0; q < query_sentences.size(); ++q) {
    auto record = by_record[q].get();
    auto vector = by_vector[q].get();
    ASSERT_TRUE(record.ok());
    ASSERT_TRUE(vector.ok());
    EXPECT_TRUE(SameResults(record.value().neighbors,
                            vector.value().neighbors))
        << "query " << q;
  }
  engine.value()->Stop();
}

TEST(SubmitEmbedded, RejectsWrongDimensionality) {
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  la::Matrix corpus = model->VectorizeAll(Sentences(8, "corpus"));
  auto engine = Engine::Create(
      Snapshot::Build(BaseManifest(), std::move(corpus)), model, {});
  ASSERT_TRUE(engine.ok());
  auto submitted = engine.value()->SubmitEmbedded(std::vector<float>(7, 0.f));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), Status::Code::kInvalidArgument);
  engine.value()->Stop();
}

// ---------------------------------------------------------------------------
// Replica outage and partial results
// ---------------------------------------------------------------------------

/// Trips `engine`'s breaker by injecting engine/query faults with degraded
/// mode off: each submission fails a batch until the breaker opens. The
/// failpoint is disarmed before returning.
void TripBreaker(Engine& engine) {
  ASSERT_TRUE(
      fail::ConfigureSpec("engine/query", "error:io").ok());
  for (int attempt = 0; attempt < 32 && engine.health() != Health::kTripped;
       ++attempt) {
    auto submitted = engine.Submit("trip probe " + std::to_string(attempt));
    if (submitted.ok()) submitted.value().wait();
  }
  fail::Disarm("engine/query");
  ASSERT_EQ(engine.health(), Health::kTripped);
}

TEST(Router, FullAvailabilityThroughSingleReplicaOutage) {
  SKIP_IF_FAILPOINTS_OFF();
  // R=2: replica 0 of shard 0 is created breaker-fragile (no degraded
  // fallback, 1-failure trip, effectively-infinite open window) and tripped
  // before the router starts; health-aware routing must keep availability
  // at 100% on the sibling.
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  auto built = BuildShardSnapshots(BaseManifest(), TestCorpus(24), 2);
  ASSERT_TRUE(built.ok());
  EngineOptions fragile;
  fragile.k = 5;
  fragile.allow_degraded = false;
  fragile.breaker.window = 8;
  fragile.breaker.min_samples = 1;
  fragile.breaker.trip_ratio = 0.5;
  fragile.breaker.open_micros = int64_t{1} << 40;  // stays open for the test
  fragile.embed_retry.max_attempts = 1;
  EngineOptions healthy;
  healthy.k = 5;
  std::vector<std::unique_ptr<Engine>> engines;
  auto victim = Engine::Create(built.value()[0], model, fragile);
  ASSERT_TRUE(victim.ok());
  TripBreaker(*victim.value());
  engines.push_back(std::move(victim).value());
  engines.push_back(
      std::move(Engine::Create(built.value()[1], model, healthy)).value());
  engines.push_back(
      std::move(Engine::Create(built.value()[0], model, healthy)).value());
  engines.push_back(
      std::move(Engine::Create(built.value()[1], model, healthy)).value());

  RouterOptions options;
  options.k = 5;
  auto router = Router::Create(std::move(engines), model, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  EXPECT_EQ(router.value()->health(), Health::kServing);

  const Snapshot oracle = Snapshot::Build(BaseManifest(), TestCorpus(24));
  const auto query_sentences = Sentences(40, "outage");
  const la::Matrix queries = model->VectorizeAll(query_sentences);
  const auto expect = oracle.QueryBatch(queries, 5);
  std::vector<std::future<Result<RouterReply>>> futures;
  for (const auto& sentence : query_sentences) {
    auto submitted = router.value()->Submit(sentence);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    auto reply = futures[q].get();
    ASSERT_TRUE(reply.ok()) << "100% availability violated at query " << q
                            << ": " << reply.status().ToString();
    EXPECT_FALSE(reply.value().partial);
    EXPECT_TRUE(SameResults(reply.value().neighbors, expect[q]));
  }
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.completed, query_sentences.size());
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.partial, 0u);
  EXPECT_EQ(metrics.shards_degraded, 0u);
}

TEST(Router, WholeGroupDownDegradesToPartial) {
  const size_t k = 6;
  Fleet fleet = MakeFleet(20, 2, 2, k);
  RouterOptions options;
  options.k = k;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok());
  // Take out BOTH replicas of shard 1 — a whole group outage.
  for (const auto& engine : router.value()->replicas(1)) engine->Stop();

  const size_t requests = 10;
  std::vector<std::future<Result<RouterReply>>> futures;
  for (const auto& sentence : Sentences(requests, "partial")) {
    auto submitted = router.value()->Submit(sentence);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    auto reply = future.get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply.value().partial);
    for (const auto& neighbor : reply.value().neighbors) {
      // Survivors only: shard 0 of 2 owns the even global ids.
      EXPECT_EQ(neighbor.id % 2, 0u);
    }
  }
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.completed, requests);
  EXPECT_EQ(metrics.partial, requests);
  EXPECT_EQ(metrics.shards_degraded, requests);
  EXPECT_GT(metrics.sibling_retries, 0u);
}

TEST(Router, WholeGroupDownFailsWhenPartialDisallowed) {
  Fleet fleet = MakeFleet(20, 2, 1);
  RouterOptions options;
  options.k = 5;
  options.allow_partial = false;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok());
  for (const auto& engine : router.value()->replicas(0)) engine->Stop();
  auto submitted = router.value()->Submit("strict query");
  ASSERT_TRUE(submitted.ok());
  auto reply = submitted.value().get();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), Status::Code::kUnavailable);
  router.value()->Stop();
  EXPECT_EQ(router.value()->Metrics().failed, 1u);
}

TEST(Router, EmbedFailpointIsLiveAndRetried) {
  SKIP_IF_FAILPOINTS_OFF();
  Fleet fleet = MakeFleet(16, 2, 1);
  RouterOptions options;
  options.k = 5;
  options.embed_retry.max_attempts = 3;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok());
  // One transient fault: the retry inside the router absorbs it.
  ASSERT_TRUE(
      fail::ConfigureSpec("router/embed", "error:unavailable,max=1").ok());
  auto submitted = router.value()->Submit("retried query");
  ASSERT_TRUE(submitted.ok());
  EXPECT_TRUE(submitted.value().get().ok());
  EXPECT_GE(fail::Stats("router/embed").fires, 1u);
  // Persistent fault: the request fails loudly with the injected error.
  ASSERT_TRUE(fail::ConfigureSpec("router/embed", "error:io").ok());
  auto doomed = router.value()->Submit("doomed query");
  ASSERT_TRUE(doomed.ok());
  auto reply = doomed.value().get();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), Status::Code::kIoError);
  fail::Disarm("router/embed");
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_GE(metrics.retries, 1u);
  EXPECT_EQ(metrics.failed, 1u);
}

// ---------------------------------------------------------------------------
// Mutations through the router (live fleets, DESIGN.md §14)
// ---------------------------------------------------------------------------

EngineOptions LiveEngineOptions() {
  EngineOptions options;
  options.live = true;
  return options;
}

TEST(RouterMutation, UpsertRoutesRoundRobinAndIsQueryable) {
  // 12 rows over 2 shards: each shard holds 6, so the first upsert (ticket
  // 0 -> group 0, local id 6) gets global id 6*2+0 = 12 and the second
  // (group 1) gets 13 — the inverse of the query-path remap.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 2, 2, k, LiveEngineOptions());
  RouterOptions options;
  options.k = k;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto first = router.value()->Upsert("streamed record A");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value(), 12u);
  auto second = router.value()->Upsert("streamed record B");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 13u);

  // The admitted rows resolve through the normal query path, under their
  // global ids.
  auto submitted = router.value()->Submit("streamed record A");
  ASSERT_TRUE(submitted.ok());
  auto reply = submitted.value().get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply.value().neighbors.empty());
  EXPECT_EQ(reply.value().neighbors[0].id, 12u);

  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.upserts, 2u);
  EXPECT_EQ(metrics.mutation_failures, 0u);
  EXPECT_EQ(metrics.mutation_divergence, 0u);
}

TEST(RouterMutation, DeleteRemovesRowFromEveryReplica) {
  const size_t k = 6;
  Fleet fleet = MakeFleet(12, 2, 2, k, LiveEngineOptions());
  RouterOptions options;
  options.k = k;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok());

  // Global id 4 lives in shard 0 (4 % 2) at local row 2 (4 / 2). Its exact
  // sentence ranks it first before the delete; afterwards it must be gone.
  const std::string sentence = Sentences(12, "corpus")[4];
  auto before = router.value()->Submit(sentence);
  ASSERT_TRUE(before.ok());
  auto reply = before.value().get();
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply.value().neighbors.empty());
  EXPECT_EQ(reply.value().neighbors[0].id, 4u);

  ASSERT_TRUE(router.value()->Delete(4).ok());
  auto after = router.value()->Submit(sentence);
  ASSERT_TRUE(after.ok());
  auto post = after.value().get();
  ASSERT_TRUE(post.ok());
  for (const auto& neighbor : post.value().neighbors) {
    EXPECT_NE(neighbor.id, 4u);
  }

  // A second delete of the same id fails on every replica and is reported,
  // not swallowed.
  const Status twice = router.value()->Delete(4);
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.code(), Status::Code::kNotFound);

  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.deletes, 1u);
  EXPECT_EQ(metrics.mutation_failures, 1u);
  EXPECT_EQ(metrics.mutation_divergence, 0u);
}

TEST(RouterMutation, FailsClosedWhenOwningGroupFullyDown) {
  // Single-replica groups: stopping group 0's engine takes the owner of
  // ticket 0 (and of every even global id) fully down. Mutations bound for
  // it must be refused loudly — never buffered, never rerouted to a shard
  // that does not own the id — while group 1 keeps accepting.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 2, 1, k, LiveEngineOptions());
  RouterOptions options;
  options.k = k;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok());
  for (const auto& engine : router.value()->replicas(0)) engine->Stop();

  auto refused = router.value()->Upsert("doomed record");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kUnavailable);
  const Status dead_delete = router.value()->Delete(4);  // 4 % 2 -> group 0
  ASSERT_FALSE(dead_delete.ok());
  EXPECT_EQ(dead_delete.code(), Status::Code::kUnavailable);

  // The healthy group still owns its ids: ticket 1 routes to group 1.
  auto healthy = router.value()->Upsert("second record");
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy.value() % 2, 1u);
  EXPECT_TRUE(router.value()->Delete(5).ok());  // 5 % 2 -> group 1

  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.upserts, 1u);
  EXPECT_EQ(metrics.deletes, 1u);
  EXPECT_EQ(metrics.mutation_failures, 2u);
}

TEST(RouterMutation, ReplicaOutageSurfacesDivergence) {
  // R=2 with one replica of the owning group stopped: the mutation still
  // lands on the survivor (availability), but the replica sets have now
  // drifted — the router must say so.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 2, 2, k, LiveEngineOptions());
  RouterOptions options;
  options.k = k;
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model, options);
  ASSERT_TRUE(router.ok());
  router.value()->replicas(0)[0]->Stop();

  auto admitted = router.value()->Upsert("divergent record");
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(admitted.value(), 12u);

  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.upserts, 1u);
  EXPECT_EQ(metrics.mutation_failures, 0u);
  EXPECT_GE(metrics.mutation_divergence, 1u);
  // The half-measure is gone: the replica that missed the mutation was
  // quarantined, not left serving stale answers.
  EXPECT_EQ(router.value()->replica_state(0, 0), ReplicaState::kQuarantined);
  EXPECT_GE(metrics.quarantines, 1u);
}

// ---------------------------------------------------------------------------
// Replica recovery (DESIGN.md §15): quarantine, catch-up, anti-entropy
// ---------------------------------------------------------------------------

RouterOptions RecoveryRouterOptions(size_t k, int64_t tick_micros = 1000,
                                    size_t log_capacity = 4096) {
  RouterOptions options;
  options.k = k;
  options.recover_tick_micros = tick_micros;
  options.log_capacity = log_capacity;
  return options;
}

/// Polls until every replica is back in rotation (or the deadline passes).
bool WaitConverged(Router& router, int64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.Converged()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return router.Converged();
}

/// Pairwise digest agreement across every replica of every group.
::testing::AssertionResult GroupDigestsAgree(Router& router) {
  for (uint32_t s = 0; s < router.shard_count(); ++s) {
    const auto& engines = router.replicas(s);
    auto first = engines[0]->Digest();
    if (!first.ok()) {
      return ::testing::AssertionFailure()
             << "shard " << s << " replica 0 digest: "
             << first.status().ToString();
    }
    for (size_t r = 1; r < engines.size(); ++r) {
      auto other = engines[r]->Digest();
      if (!other.ok()) {
        return ::testing::AssertionFailure()
               << "shard " << s << " replica " << r << " digest: "
               << other.status().ToString();
      }
      if (!recover::SameContent(first.value(), other.value())) {
        return ::testing::AssertionFailure()
               << "shard " << s << " replica " << r << " diverged: rows "
               << other.value().rows << " vs " << first.value().rows;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(RouterRecovery, QuarantinedReplicaGetsZeroQueryTraffic) {
  // Recovery disabled (tick 0): once quarantined, the replica stays out of
  // rotation so the traffic assertion is deterministic.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k, /*tick_micros=*/0));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Fabricate id-counter drift on replica 1 behind the router's back; the
  // next broadcast sees replica 1 assign a different local id and must
  // quarantine it on the spot.
  {
    auto direct = router.value()->replicas(0)[1]->Upsert("fabricated row");
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(direct.value().get().ok());
  }
  auto admitted = router.value()->Upsert("legit record");
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(router.value()->replica_state(0, 1), ReplicaState::kQuarantined);
  EXPECT_EQ(router.value()->replica_state(0, 0), ReplicaState::kActive);
  EXPECT_EQ(router.value()->health(), Health::kServing);

  const uint64_t quarantined_before =
      router.value()->replicas(0)[1]->Metrics().submitted;
  const uint64_t active_before =
      router.value()->replicas(0)[0]->Metrics().submitted;
  const size_t queries = 24;
  std::vector<std::future<Result<RouterReply>>> futures;
  for (const auto& sentence : Sentences(queries, "quarantine probe")) {
    auto submitted = router.value()->Submit(sentence);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    auto reply = future.get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_FALSE(reply.value().partial);
  }
  // Every query landed on the healthy replica; the quarantined one saw
  // NOTHING — including the every-16th probe picks that tripped-but-active
  // replicas still receive.
  EXPECT_EQ(router.value()->replicas(0)[1]->Metrics().submitted,
            quarantined_before);
  EXPECT_EQ(router.value()->replicas(0)[0]->Metrics().submitted,
            active_before + queries);
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_EQ(metrics.completed, queries);
  EXPECT_GE(metrics.quarantines, 1u);
  EXPECT_GE(metrics.mutation_divergence, 1u);
}

TEST(RouterRecovery, KilledReplicaCatchesUpByReplay) {
  // Kill a replica mid-stream, mutate past it (including a donor-side
  // compaction), rejoin it, and require bit-identical convergence.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 2, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::vector<uint64_t> ids;
  for (const auto& sentence : Sentences(4, "pre-kill")) {
    auto admitted = router.value()->Upsert(sentence);
    ASSERT_TRUE(admitted.ok());
    ids.push_back(admitted.value());
  }
  ASSERT_TRUE(router.value()->KillReplica(0, 0).ok());
  EXPECT_EQ(router.value()->replica_state(0, 0), ReplicaState::kKilled);

  // Mutations the killed replica misses: upserts to both groups plus a
  // delete owned by group 0.
  const auto missed = Sentences(10, "missed");
  for (const auto& sentence : missed) {
    auto admitted = router.value()->Upsert(sentence);
    ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
    ids.push_back(admitted.value());
  }
  ASSERT_TRUE(router.value()->Delete(ids[0]).ok());
  // At least one compaction lands while the replica is away: the survivor
  // rewrites its base, and replay must still converge the rejoiner.
  const std::string compact_path = TempPath("catchup_compact");
  ASSERT_TRUE(router.value()->replicas(0)[1]->Compact(compact_path).ok());
  std::filesystem::remove(compact_path);

  ASSERT_TRUE(router.value()->RejoinReplica(0, 0).ok());
  ASSERT_TRUE(WaitConverged(*router.value()));
  EXPECT_EQ(router.value()->replica_state(0, 0), ReplicaState::kActive);
  EXPECT_EQ(router.value()->last_applied_seq(0, 0),
            router.value()->log_last_seq(0));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));

  // Bit-identical replica answers: the same embedded probes through each
  // group-0 replica directly.
  const la::Matrix probes =
      fleet.model->VectorizeAll(Sentences(6, "missed"));
  for (size_t q = 0; q < probes.rows(); ++q) {
    std::vector<std::vector<index::Neighbor>> per_replica;
    for (const auto& engine : router.value()->replicas(0)) {
      auto submitted = engine->SubmitEmbedded(std::vector<float>(
          probes.Row(q), probes.Row(q) + probes.cols()));
      ASSERT_TRUE(submitted.ok());
      auto reply = submitted.value().get();
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      per_replica.push_back(reply.value().neighbors);
    }
    EXPECT_TRUE(SameResults(per_replica[0], per_replica[1]))
        << "replicas disagree on probe " << q << " after catch-up";
  }
  // The rejoined replica serves router traffic again, and the record set
  // reflects every mutation it missed.
  auto lookup = router.value()->Submit(missed[3]);
  ASSERT_TRUE(lookup.ok());
  auto reply = lookup.value().get();
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply.value().neighbors.empty());
  EXPECT_EQ(reply.value().neighbors[0].id, ids[4 + 3]);
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_GE(metrics.catchups, 1u);
  EXPECT_GE(metrics.replayed_mutations, 5u);
  EXPECT_EQ(metrics.mutation_failures, 0u);
}

TEST(RouterRecovery, TruncatedLogForcesSnapshotResync) {
  // log_capacity 2 with 12 missed mutations: the ring has long dropped the
  // replica's position, so catch-up must take the snapshot-resync path.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(
      std::move(fleet.engines), fleet.model,
      RecoveryRouterOptions(k, /*tick_micros=*/1000, /*log_capacity=*/2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  ASSERT_TRUE(router.value()->KillReplica(0, 1).ok());
  std::vector<uint64_t> ids;
  for (const auto& sentence : Sentences(12, "resync")) {
    auto admitted = router.value()->Upsert(sentence);
    ASSERT_TRUE(admitted.ok());
    ids.push_back(admitted.value());
  }
  ASSERT_TRUE(router.value()->Delete(ids[1]).ok());
  ASSERT_TRUE(router.value()->RejoinReplica(0, 1).ok());
  ASSERT_TRUE(WaitConverged(*router.value()));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));
  EXPECT_EQ(router.value()->last_applied_seq(0, 1),
            router.value()->log_last_seq(0));
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_GE(metrics.resyncs, 1u);
  EXPECT_EQ(metrics.mutation_failures, 0u);
}

TEST(RouterRecovery, FabricatedDivergenceAutoDetectedAndHealed) {
  // Silent corruption: a row injected into one replica behind the router's
  // back, with NO router mutation to trip over it. Only the anti-entropy
  // digest probe can catch it — and must, quarantining and resyncing the
  // liar without the fleet serving its fabricated row afterwards.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  const std::string probe = "fabricated corruption probe";
  auto before = router.value()->Submit(probe);
  ASSERT_TRUE(before.ok());
  auto clean_reply = before.value().get();
  ASSERT_TRUE(clean_reply.ok());

  {
    auto direct = router.value()->replicas(0)[1]->Upsert(probe);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(direct.value().get().ok());
  }
  // The probe tick quarantines the liar and the resync path heals it.
  ASSERT_TRUE(WaitConverged(*router.value()));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.value()->Metrics().digest_mismatches == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(WaitConverged(*router.value()));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));
  auto healed_digest = router.value()->replicas(0)[1]->Digest();
  ASSERT_TRUE(healed_digest.ok());
  EXPECT_EQ(healed_digest.value().rows, 12u)
      << "the fabricated row must be gone after resync";

  // Post-heal answers are bit-identical to the pre-corruption ones — the
  // fabricated row never leaks into a merged answer again.
  for (int i = 0; i < 8; ++i) {
    auto after = router.value()->Submit(probe);
    ASSERT_TRUE(after.ok());
    auto reply = after.value().get();
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(SameResults(reply.value().neighbors,
                            clean_reply.value().neighbors))
        << "healed fleet disagrees with the clean oracle on probe " << i;
  }
  router.value()->Stop();
  const auto metrics = router.value()->Metrics();
  EXPECT_GE(metrics.digest_mismatches, 1u);
  EXPECT_GE(metrics.resyncs, 1u);
}

TEST(RouterRecovery, SymmetricDivergenceWithTwoReplicasGetsNoVerdict) {
  // Two replicas, same row count, different content (the bit-flip shape):
  // the digest vote ties 1-1 and expected_rows cannot break it. The probe
  // must return NO verdict — a deterministic tie-break could crown the
  // corrupted replica, quarantine the healthy one, and resync it FROM the
  // corrupted donor, propagating the corruption group-wide.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  // Slow probe tick (100ms) so the two-step fabrication below completes
  // between ticks: its intermediate state (11 vs 12 rows) WOULD earn a
  // legitimate expected_rows verdict.
  auto router =
      Router::Create(std::move(fleet.engines), fleet.model,
                     RecoveryRouterOptions(k, /*tick_micros=*/100'000));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Equal-rows corruption on replica 1 behind the router's back: drop a
  // row, fabricate a different one. Rows stay at 12 == expected_rows.
  {
    auto dropped = router.value()->replicas(0)[1]->Delete(0);
    ASSERT_TRUE(dropped.ok());
    ASSERT_TRUE(dropped.value().get().ok());
    auto added =
        router.value()->replicas(0)[1]->Upsert("fabricated replacement");
    ASSERT_TRUE(added.ok());
    ASSERT_TRUE(added.value().get().ok());
  }
  // Several probe ticks pass; with no majority and no row-count signal the
  // probe must stay silent — no quarantine on a coin flip.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_EQ(router.value()->Metrics().digest_mismatches, 0u);
  EXPECT_EQ(router.value()->replica_state(0, 0), ReplicaState::kActive);
  EXPECT_EQ(router.value()->replica_state(0, 1), ReplicaState::kActive);
  router.value()->Stop();
  EXPECT_EQ(router.value()->Metrics().quarantines, 0u);
}

TEST(RouterRecovery, MajorityOutvotesEqualRowCorruption) {
  // The same equal-rows corruption with THREE replicas: the two healthy
  // siblings form a strict majority, so the corrupted replica is caught
  // and healed even though every digest reports the same row count.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 3, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  {
    auto dropped = router.value()->replicas(0)[2]->Delete(0);
    ASSERT_TRUE(dropped.ok());
    ASSERT_TRUE(dropped.value().get().ok());
    auto added =
        router.value()->replicas(0)[2]->Upsert("fabricated replacement");
    ASSERT_TRUE(added.ok());
    ASSERT_TRUE(added.value().get().ok());
  }
  // A probe may legitimately fire on the fabrication's intermediate state
  // too (the corrupted replica heals, then the second step re-corrupts
  // it), so poll for the JOINT settled condition: every replica active AND
  // every digest in agreement.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool settled = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.value()->Converged() && GroupDigestsAgree(*router.value())) {
      settled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(settled) << "fleet never converged on an agreed corpus";
  EXPECT_GE(router.value()->Metrics().digest_mismatches, 1u);
  auto healed = router.value()->replicas(0)[2]->Digest();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value().rows, 12u);
  router.value()->Stop();
  EXPECT_GE(router.value()->Metrics().resyncs, 1u);
}

TEST(RouterRecovery, KillDuringCatchUpSticks) {
  // An admin kill racing the recovery worker must win: a replica killed
  // while kCatchingUp (or about to activate) stays out of rotation — the
  // heal's activation is a CAS that backs off, never a blind store that
  // would resurrect a killed replica.
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k, /*tick_micros=*/500));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  ASSERT_TRUE(router.value()->KillReplica(0, 1).ok());
  for (const auto& sentence : Sentences(6, "kill-race")) {
    ASSERT_TRUE(router.value()->Upsert(sentence).ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(router.value()->RejoinReplica(0, 1).ok());
    // Vary how deep into the heal the kill lands; some iterations hit the
    // kCatchingUp window, all must leave the replica killed.
    std::this_thread::sleep_for(std::chrono::microseconds(i * 300));
    ASSERT_TRUE(router.value()->KillReplica(0, 1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(router.value()->replica_state(0, 1), ReplicaState::kKilled)
        << "heal overwrote an admin kill on iteration " << i;
  }
  ASSERT_TRUE(router.value()->RejoinReplica(0, 1).ok());
  ASSERT_TRUE(WaitConverged(*router.value()));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));
  EXPECT_EQ(router.value()->last_applied_seq(0, 1),
            router.value()->log_last_seq(0));
  router.value()->Stop();
}

TEST(RouterRecovery, LogAppendFailpointRefusesMutationFailClosed) {
  SKIP_IF_FAILPOINTS_OFF();
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k));
  ASSERT_TRUE(router.ok());
  ASSERT_TRUE(fail::ConfigureSpec("recover/log_append", "error:io").ok());
  auto refused = router.value()->Upsert("unloggable record");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kIoError);
  fail::Disarm("recover/log_append");
  // Fail-closed means NOWHERE: no log entry, no replica admitted the row.
  EXPECT_EQ(router.value()->log_last_seq(0), 0u);
  for (const auto& engine : router.value()->replicas(0)) {
    auto digest = engine->Digest();
    ASSERT_TRUE(digest.ok());
    EXPECT_EQ(digest.value().rows, 12u);
  }
  auto admitted = router.value()->Upsert("loggable record");
  ASSERT_TRUE(admitted.ok());
  router.value()->Stop();
  EXPECT_EQ(router.value()->Metrics().mutation_failures, 1u);
}

TEST(RouterRecovery, ReplayFailpointKeepsReplicaQuarantined) {
  SKIP_IF_FAILPOINTS_OFF();
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k));
  ASSERT_TRUE(router.ok());
  ASSERT_TRUE(router.value()->KillReplica(0, 1).ok());
  for (const auto& sentence : Sentences(4, "replay-blocked")) {
    ASSERT_TRUE(router.value()->Upsert(sentence).ok());
  }
  ASSERT_TRUE(fail::ConfigureSpec("recover/replay", "error:io").ok());
  ASSERT_TRUE(router.value()->RejoinReplica(0, 1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Fail-closed: with replay injected to fail, not one record was
  // re-applied and the replica never rejoined rotation.
  EXPECT_NE(router.value()->replica_state(0, 1), ReplicaState::kActive);
  EXPECT_EQ(router.value()->Metrics().replayed_mutations, 0u);
  EXPECT_EQ(router.value()->Metrics().catchups, 0u);
  fail::Disarm("recover/replay");
  EXPECT_TRUE(WaitConverged(*router.value()));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));
  router.value()->Stop();
  EXPECT_GE(router.value()->Metrics().catchups, 1u);
}

TEST(RouterRecovery, ResyncFailpointKeepsReplicaQuarantined) {
  SKIP_IF_FAILPOINTS_OFF();
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(
      std::move(fleet.engines), fleet.model,
      RecoveryRouterOptions(k, /*tick_micros=*/1000, /*log_capacity=*/2));
  ASSERT_TRUE(router.ok());
  ASSERT_TRUE(router.value()->KillReplica(0, 1).ok());
  for (const auto& sentence : Sentences(10, "resync-blocked")) {
    ASSERT_TRUE(router.value()->Upsert(sentence).ok());
  }
  ASSERT_TRUE(fail::ConfigureSpec("recover/resync", "error:io").ok());
  ASSERT_TRUE(router.value()->RejoinReplica(0, 1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_NE(router.value()->replica_state(0, 1), ReplicaState::kActive);
  EXPECT_EQ(router.value()->Metrics().resyncs, 0u);
  fail::Disarm("recover/resync");
  EXPECT_TRUE(WaitConverged(*router.value()));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));
  router.value()->Stop();
  EXPECT_GE(router.value()->Metrics().resyncs, 1u);
}

TEST(RouterRecovery, DigestFailpointSkipsProbeFailClosed) {
  SKIP_IF_FAILPOINTS_OFF();
  // An armed digest failpoint must not produce verdicts: no replica gets
  // condemned on missing information (and none gets acquitted either).
  const size_t k = 5;
  Fleet fleet = MakeFleet(12, 1, 2, k, LiveEngineOptions());
  auto router = Router::Create(std::move(fleet.engines), fleet.model,
                               RecoveryRouterOptions(k));
  ASSERT_TRUE(router.ok());
  ASSERT_TRUE(fail::ConfigureSpec("recover/digest", "error:io").ok());
  {
    auto direct = router.value()->replicas(0)[1]->Upsert("silent skew");
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(direct.value().get().ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(router.value()->Metrics().digest_mismatches, 0u);
  EXPECT_EQ(router.value()->replica_state(0, 1), ReplicaState::kActive);
  fail::Disarm("recover/digest");
  // With the probe restored, detection and healing proceed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.value()->Metrics().digest_mismatches == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(router.value()->Metrics().digest_mismatches, 1u);
  EXPECT_TRUE(WaitConverged(*router.value()));
  EXPECT_TRUE(GroupDigestsAgree(*router.value()));
  router.value()->Stop();
}

// ---------------------------------------------------------------------------
// The recovery proptest: random interleavings of
// {upsert, delete, outage, rejoin, compact, query} against a sequential
// oracle — converged replicas must answer bit-identically.
// ---------------------------------------------------------------------------

TEST(RouterRecovery, RandomInterleavingsConvergeToSequentialOracle) {
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  proptest::ForAll(
      "recovery interleavings == sequential oracle",
      {.cases = 6, .min_size = 10, .max_size = 28},
      [&](Rng& rng, size_t n) {
        const uint32_t shards = 2;
        const size_t replicas = 2, k = 4, base_rows = 6;
        EngineOptions live = LiveEngineOptions();
        live.k = k;
        Fleet fleet;
        fleet.model = model;
        auto built = BuildShardSnapshots(BaseManifest(k),
                                         TestCorpus(base_rows), shards);
        if (!built.ok()) return false;
        for (size_t r = 0; r < replicas; ++r) {
          for (const Snapshot& shard : built.value()) {
            auto engine = Engine::Create(shard, model, live);
            if (!engine.ok()) return false;
            fleet.engines.push_back(std::move(engine).value());
          }
        }
        // Occasionally a tiny log, so some rejoins exercise resync.
        const size_t log_capacity = rng.Below(3) == 0 ? 3 : 64;
        auto created = Router::Create(
            std::move(fleet.engines), model,
            RecoveryRouterOptions(k, /*tick_micros=*/500, log_capacity));
        if (!created.ok()) return false;
        Router& router = *created.value();

        // Sequential oracle state: the live (global id -> sentence) map,
        // the upsert ticket, and each group's next local id.
        std::map<uint64_t, std::string> mirror;
        const auto base_sentences = Sentences(base_rows, "corpus");
        for (size_t i = 0; i < base_rows; ++i) {
          mirror[i] = base_sentences[i];
        }
        uint64_t ticket = 0;
        std::vector<uint64_t> next_local;
        for (uint32_t s = 0; s < shards; ++s) {
          next_local.push_back((core::ShardPlan{shards, base_rows})
                                   .RowsInShard(s));
        }
        std::vector<bool> killed(shards * replicas, false);
        auto killed_at = [&](uint32_t s, size_t r) -> std::vector<bool>::reference {
          return killed[s * replicas + r];
        };

        // Oracle query: exact top-k over the mirror via a freshly built
        // snapshot, remapped through the sorted global-id list.
        auto oracle_answer = [&](const std::string& sentence) {
          std::vector<uint64_t> sorted_ids;
          std::vector<std::string> rows;
          for (const auto& [id, text] : mirror) {
            sorted_ids.push_back(id);
            rows.push_back(text);
          }
          la::Matrix corpus = model->VectorizeAll(rows);
          const Snapshot oracle =
              Snapshot::Build(BaseManifest(k), std::move(corpus));
          const la::Matrix query = model->VectorizeAll({sentence});
          auto lists = oracle.QueryBatch(query, k);
          for (auto& neighbor : lists[0]) {
            neighbor.id = sorted_ids[neighbor.id];
          }
          // Re-sort by (distance, global id): the remap can reorder ties.
          std::sort(lists[0].begin(), lists[0].end(), index::CloserThan);
          return lists[0];
        };

        bool pass = true;
        for (size_t op = 0; op < n && pass; ++op) {
          switch (rng.Below(6)) {
            case 0:
            case 1: {  // upsert (weighted: streams are write-heavy)
              const std::string sentence =
                  "streamed " + std::to_string(rng.Next());
              const uint32_t owner =
                  static_cast<uint32_t>(ticket % shards);
              ++ticket;
              auto admitted = router.Upsert(sentence);
              if (!admitted.ok()) { pass = false; break; }
              const uint64_t expect_gid =
                  owner + next_local[owner]++ * shards;
              if (admitted.value() != expect_gid) { pass = false; break; }
              mirror[expect_gid] = sentence;
              break;
            }
            case 2: {  // delete a random live row
              if (mirror.empty()) break;
              auto victim = mirror.begin();
              std::advance(victim, rng.Below(mirror.size()));
              if (!router.Delete(victim->first).ok()) { pass = false; break; }
              mirror.erase(victim);
              break;
            }
            case 3: {  // outage: kill one fully-converged replica
              const uint32_t s = static_cast<uint32_t>(rng.Below(shards));
              const size_t r = rng.Below(replicas);
              if (killed_at(s, r) || killed_at(s, 1 - r)) break;
              // Only kill when the sibling is active, so the group always
              // keeps one serving replica (availability invariant).
              if (router.replica_state(s, 1 - r) != ReplicaState::kActive ||
                  router.replica_state(s, r) != ReplicaState::kActive) {
                break;
              }
              if (!router.KillReplica(s, r).ok()) { pass = false; break; }
              killed_at(s, r) = true;
              break;
            }
            case 4: {  // rejoin a killed replica (recovery heals it)
              for (uint32_t s = 0; s < shards; ++s) {
                for (size_t r = 0; r < replicas; ++r) {
                  if (killed_at(s, r)) {
                    if (!router.RejoinReplica(s, r).ok()) pass = false;
                    killed_at(s, r) = false;
                    s = shards;
                    break;
                  }
                }
              }
              break;
            }
            case 5: {  // compact an active replica, then query vs oracle
              const uint32_t s = static_cast<uint32_t>(rng.Below(shards));
              for (size_t r = 0; r < replicas; ++r) {
                if (router.replica_state(s, r) == ReplicaState::kActive) {
                  const std::string path = TempPath(
                      "proptest_compact_" + std::to_string(rng.Next()));
                  if (!router.replicas(s)[r]->Compact(path).ok()) {
                    pass = false;
                  }
                  std::filesystem::remove(path);
                  break;
                }
              }
              if (!pass || mirror.empty()) break;
              auto victim = mirror.begin();
              std::advance(victim, rng.Below(mirror.size()));
              auto submitted = router.Submit(victim->second);
              if (!submitted.ok()) { pass = false; break; }
              auto reply = submitted.value().get();
              if (!reply.ok() || reply.value().partial) { pass = false; break; }
              if (!SameResults(reply.value().neighbors,
                               oracle_answer(victim->second))) {
                pass = false;
              }
              break;
            }
          }
        }
        // Drain: rejoin everything, wait for convergence, and require the
        // fleet to agree with itself and with the sequential oracle.
        for (uint32_t s = 0; s < shards && pass; ++s) {
          for (size_t r = 0; r < replicas; ++r) {
            if (killed_at(s, r)) {
              if (!router.RejoinReplica(s, r).ok()) pass = false;
              killed_at(s, r) = false;
            }
          }
        }
        if (pass) pass = WaitConverged(router);
        if (pass) pass = static_cast<bool>(GroupDigestsAgree(router));
        if (pass) {
          for (int probe = 0; probe < 4 && pass; ++probe) {
            if (mirror.empty()) break;
            auto target = mirror.begin();
            std::advance(target, rng.Below(mirror.size()));
            auto submitted = router.Submit(target->second);
            if (!submitted.ok()) { pass = false; break; }
            auto reply = submitted.value().get();
            if (!reply.ok() || reply.value().partial) { pass = false; break; }
            pass = SameResults(reply.value().neighbors,
                               oracle_answer(target->second));
          }
        }
        router.Stop();
        return pass;
      });
}

}  // namespace
}  // namespace ember
