#include "embed/model_registry.h"

#include <gtest/gtest.h>

#include "embed/embedding_model.h"
#include "embed/static_model.h"
#include "embed/token_encoder.h"
#include "la/vector_ops.h"

namespace ember::embed {
namespace {

TEST(ModelRegistryTest, TwelveModelsInPaperOrder) {
  const auto& models = AllModels();
  ASSERT_EQ(models.size(), 12u);
  EXPECT_EQ(GetModelInfo(models.front()).code, "WC");
  EXPECT_EQ(GetModelInfo(models.back()).code, "SM");
}

TEST(ModelRegistryTest, DimsMatchTable1) {
  EXPECT_EQ(GetModelInfo(ModelId::kWord2Vec).dim, 300u);
  EXPECT_EQ(GetModelInfo(ModelId::kFastText).dim, 300u);
  EXPECT_EQ(GetModelInfo(ModelId::kBert).dim, 768u);
  EXPECT_EQ(GetModelInfo(ModelId::kSMpnet).dim, 768u);
  EXPECT_EQ(GetModelInfo(ModelId::kSMiniLm).dim, 384u);
}

TEST(ModelRegistryTest, LookupByCodeAndName) {
  ASSERT_TRUE(ModelIdFromString("FT").ok());
  EXPECT_EQ(ModelIdFromString("FT").value(), ModelId::kFastText);
  ASSERT_TRUE(ModelIdFromString("S-MiniLM").ok());
  EXPECT_EQ(ModelIdFromString("S-MiniLM").value(), ModelId::kSMiniLm);
  EXPECT_FALSE(ModelIdFromString("nope").ok());
}

TEST(TokenEncoderTest, DeterministicAndNormNonZeroForCoveredTokens) {
  TokenEncoderParams params;
  params.dim = 64;
  params.seed = 123;
  params.vocab_coverage = 1.0;
  const TokenEncoder a(params), b(params);
  std::vector<float> va(params.dim), vb(params.dim);
  ASSERT_TRUE(a.Encode("battery", va.data()));
  ASSERT_TRUE(b.Encode("battery", vb.data()));
  EXPECT_EQ(va, vb);
  EXPECT_GT(la::Norm(va.data(), params.dim), 0.f);
}

TEST(TokenEncoderTest, PartialCoverageDropsSomeTokens) {
  TokenEncoderParams params;
  params.dim = 32;
  params.seed = 9;
  params.vocab_coverage = 0.5;
  params.ngram_weight = 0.f;
  const TokenEncoder encoder(params);
  std::vector<float> v(params.dim);
  int covered = 0;
  const char* words[] = {"alpha", "bravo",  "charlie", "delta", "echo",
                         "fox",   "golf",   "hotel",   "india", "juliet",
                         "kilo",  "lima",   "mike",    "nov",   "oscar",
                         "papa",  "quebec", "romeo",   "sierra", "tango"};
  for (const char* w : words) covered += encoder.Encode(w, v.data()) ? 1 : 0;
  EXPECT_GT(covered, 2);
  EXPECT_LT(covered, 18);
}

TEST(TokenEncoderTest, IdfInRange) {
  TokenEncoderParams params;
  params.dim = 16;
  params.seed = 5;
  const TokenEncoder encoder(params);
  for (const char* w : {"one", "two", "three"}) {
    const float idf = encoder.Idf(w);
    EXPECT_GE(idf, 0.2f);
    EXPECT_LE(idf, 1.0f);
  }
}

TEST(EmbeddingModelTest, RowsAreNormalizedOrZero) {
  for (const ModelId id : {ModelId::kFastText, ModelId::kSMiniLm}) {
    auto model = CreateModel(id);
    model->Initialize();
    const la::Matrix out = model->VectorizeAll(
        {"acme deluxe wireless headset", "premium stereo adapter", ""});
    ASSERT_EQ(out.rows(), 3u);
    ASSERT_EQ(out.cols(), model->info().dim);
    for (size_t r = 0; r < 2; ++r) {
      EXPECT_NEAR(la::Norm(out.Row(r), out.cols()), 1.f, 1e-4f);
    }
    EXPECT_EQ(la::Norm(out.Row(2), out.cols()), 0.f);
  }
}

TEST(EmbeddingModelTest, InitializeIsIdempotent) {
  auto model = CreateModel(ModelId::kGloVe);
  const double first = model->Initialize();
  EXPECT_GE(first, 0.0);
  const la::Matrix a = model->VectorizeAll({"alpha beta"});
  model->Initialize();
  const la::Matrix b = model->VectorizeAll({"alpha beta"});
  EXPECT_EQ(a, b);
}

TEST(EmbeddingModelTest, SimilarSentencesScoreHigherThanRandom) {
  embed::StaticEmbeddingModel model(ModelId::kFastText);
  model.Initialize();
  const la::Matrix out = model.VectorizeAll({
      "acme deluxe wireless headset xk2400",
      "acme deluxe wireless headset xk2401",
      "completely different thing entirely unrelated",
  });
  const float near = la::Dot(out.Row(0), out.Row(1), out.cols());
  const float far = la::Dot(out.Row(0), out.Row(2), out.cols());
  EXPECT_GT(near, far);
}

}  // namespace
}  // namespace ember::embed
