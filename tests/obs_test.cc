#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "embed/embedding_model.h"
#include "index/exact_index.h"
#include "la/matrix.h"
#include "la/vector_ops.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace ember {
namespace {

// ---------------------------------------------------------------------------
// Golden fixture plumbing. Fixtures live in tests/golden/ (committed);
// EMBER_REGEN_GOLDEN=1 rewrites them from the current output instead of
// comparing, for intentional format changes.
// ---------------------------------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(EMBER_TEST_GOLDEN_DIR) + "/" + name;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("EMBER_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "could not write " << path;
    std::fprintf(stderr, "[golden] regenerated %s (%zu bytes)\n", path.c_str(),
                 actual.size());
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << "; run with EMBER_REGEN_GOLDEN=1 to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "output diverged from " << path
      << "; if the change is intentional, regenerate with "
         "EMBER_REGEN_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Tracer fixture: every test starts from a cleared, enabled tracer at the
// default ring capacity and leaves the global tracer disabled again.
// ---------------------------------------------------------------------------

constexpr size_t kDefaultRing = 8192;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().SetRingCapacity(kDefaultRing);
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetEnabled(true);
  }
  void TearDown() override {
    obs::Tracer::Global().SetEnabled(false);
    obs::Tracer::Global().SetRingCapacity(kDefaultRing);
    obs::Tracer::Global().Clear();
    SetThreads(0);
  }
};

const obs::SpanRecord* FindSpan(const std::vector<obs::SpanRecord>& records,
                                const char* name) {
  for (const auto& r : records) {
    if (std::strcmp(r.name, name) == 0) return &r;
  }
  return nullptr;
}

uint64_t CounterValue(const obs::SpanRecord& record, const char* name) {
  for (const auto& c : record.counters) {
    if (c.name != nullptr && std::strcmp(c.name, name) == 0) return c.value;
  }
  return 0;
}

TEST_F(TraceTest, NestedSpansRecordParentageAndCounters) {
  {
    obs::Span root("test/root");
    root.AddCount("items", 3);
    {
      obs::Span child_a("test/child_a");
      { obs::Span grandchild("test/grandchild"); }
    }
    { obs::Span child_b("test/child_b"); }
  }
  const auto records = obs::Tracer::Global().Drain();
  ASSERT_EQ(records.size(), 4u);

  const obs::SpanRecord* root = FindSpan(records, "test/root");
  const obs::SpanRecord* child_a = FindSpan(records, "test/child_a");
  const obs::SpanRecord* child_b = FindSpan(records, "test/child_b");
  const obs::SpanRecord* grandchild = FindSpan(records, "test/grandchild");
  ASSERT_TRUE(root && child_a && child_b && grandchild);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child_a->parent_id, root->span_id);
  EXPECT_EQ(child_b->parent_id, root->span_id);
  EXPECT_EQ(grandchild->parent_id, child_a->span_id);
  // Siblings get distinct ids (different ordinals under the same parent).
  EXPECT_NE(child_a->span_id, child_b->span_id);
  // One trace: every span inherits the root's trace id.
  for (const auto& r : records) EXPECT_EQ(r.trace_id, root->trace_id);
  EXPECT_EQ(CounterValue(*root, "items"), 3u);
  // Containment on the clock: children start no earlier and end no later.
  EXPECT_GE(child_a->start_micros, root->start_micros);
  EXPECT_LE(child_a->start_micros + child_a->duration_micros,
            root->start_micros + root->duration_micros + 1e-6);
}

TEST_F(TraceTest, DisabledTracerIsNoOp) {
  obs::Tracer::Global().SetEnabled(false);
  EXPECT_FALSE(obs::Tracer::Enabled());
  {
    obs::Span span("test/noop");
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.context().valid());
    span.AddCount("ignored", 1);  // must not crash
    obs::Span child("test/noop_child", span.context(), 0);
    EXPECT_FALSE(child.active());
  }
  obs::EmitSpan("test/noop_emit", obs::SpanContext{}, 0, SteadyNow(),
                SteadyNow());
  EXPECT_TRUE(obs::Tracer::Global().Drain().empty());
  EXPECT_EQ(obs::Tracer::Global().DroppedCount(), 0u);
}

TEST_F(TraceTest, EmitSpanRecordsExplicitInterval) {
  obs::SpanContext parent;
  {
    obs::Span root("test/emit_root");
    parent = root.context();
    const SteadyTime start = SteadyNow();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    obs::EmitSpan("test/emitted", parent, 7, start, SteadyNow());
  }
  const auto records = obs::Tracer::Global().Drain();
  const obs::SpanRecord* emitted = FindSpan(records, "test/emitted");
  ASSERT_NE(emitted, nullptr);
  EXPECT_EQ(emitted->parent_id, parent.span_id);
  EXPECT_EQ(emitted->trace_id, parent.trace_id);
  EXPECT_GE(emitted->duration_micros, 400.0);
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::Tracer::Global().SetRingCapacity(16);
  obs::Tracer::Global().Clear();
  for (int i = 0; i < 50; ++i) {
    obs::Span span("test/wrap");
    span.AddCount("i", static_cast<uint64_t>(i));
  }
  const auto records = obs::Tracer::Global().Drain();
  EXPECT_EQ(records.size(), 16u);
  EXPECT_EQ(obs::Tracer::Global().DroppedCount(), 34u);
  // The ring keeps the newest spans: the drained i-counters are 34..49.
  std::vector<uint64_t> kept;
  for (const auto& r : records) kept.push_back(CounterValue(r, "i"));
  std::sort(kept.begin(), kept.end());
  ASSERT_EQ(kept.size(), 16u);
  EXPECT_EQ(kept.front(), 34u);
  EXPECT_EQ(kept.back(), 49u);
  // Clear resets the drop counter too.
  obs::Tracer::Global().Clear();
  EXPECT_EQ(obs::Tracer::Global().DroppedCount(), 0u);
}

// ---------------------------------------------------------------------------
// Deterministic ids across thread counts. The instrumentation contract
// (trace.h) is that parallel sections key span ids off the data partition,
// never the schedule — so the exact same span set must come out at 1, 2, 4,
// and 8 threads.
// ---------------------------------------------------------------------------

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo(const std::string& code) {
  embed::ModelInfo info;
  info.code = code;
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

// Same deterministic toy model the serve tests use: instant and
// schedule-independent, so traces exercise the instrumentation, not math.
class HashModel : public embed::EmbeddingModel {
 public:
  explicit HashModel(std::string code = "HT")
      : EmbeddingModel(HashModelInfo(code)) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23));
  }
  return out;
}

// Identity-only view of a drained trace: everything that must be schedule
// independent (names, ids, linkage, counters) and nothing that may not be
// (timestamps, durations, thread indices).
std::vector<std::string> CanonicalSpans(
    const std::vector<obs::SpanRecord>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s span=%016" PRIx64 " parent=%016" PRIx64
                  " trace=%016" PRIx64,
                  r.name, r.span_id, r.parent_id, r.trace_id);
    std::string line = buf;
    for (const auto& c : r.counters) {
      if (c.name == nullptr) continue;
      line += " ";
      line += c.name;
      line += "=" + std::to_string(c.value);
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST_F(TraceTest, SpanIdsAreDeterministicAcrossThreadCounts) {
  HashModel model;
  model.Initialize();
  const std::vector<std::string> corpus_text = Sentences(37, "corpus");
  const std::vector<std::string> query_text = Sentences(11, "query");

  std::vector<std::vector<std::string>> per_thread_count;
  for (const int threads : {1, 2, 4, 8}) {
    SetThreads(threads);
    obs::Tracer::Global().Clear();
    index::ExactIndex index;
    index.Build(model.VectorizeAll(corpus_text));
    const la::Matrix queries = model.VectorizeAll(query_text);
    (void)index.QueryBatch(queries, 5);
    per_thread_count.push_back(CanonicalSpans(obs::Tracer::Global().Drain()));
    EXPECT_FALSE(per_thread_count.back().empty());
  }
  SetThreads(0);
  for (size_t i = 1; i < per_thread_count.size(); ++i) {
    EXPECT_EQ(per_thread_count[0], per_thread_count[i])
        << "span identity diverged between 1 thread and " << (1u << i)
        << " threads";
  }
}

// ---------------------------------------------------------------------------
// Registry exporters, golden-checked against committed fixtures.
// ---------------------------------------------------------------------------

void PopulateTestRegistry(obs::Registry& registry) {
  registry.GetCounter("ember_test_hits_total", "Cache hits.", {{"shard", "a"}})
      .Add(41);
  registry.GetCounter("ember_test_hits_total", "Cache hits.", {{"shard", "b"}})
      .Increment();
  registry.GetGauge("ember_test_queue_depth", "Queued requests.").Set(3.5);
  auto& latency = registry.GetHistogram(
      "ember_test_latency_micros", "Stage latency in microseconds.",
      {{"stage", "embed"}});
  for (const double v : {0.5, 2.0, 8.0, 8.5, 4096.0}) latency.Record(v);
  registry.AddCollector([] {
    obs::Sample sample;
    sample.name = "ember_test_external_total";
    sample.help = "Spliced in by a collector.";
    sample.kind = obs::MetricKind::kCounter;
    sample.value = 7;
    return std::vector<obs::Sample>{sample};
  });
}

TEST(RegistryTest, PrometheusExportMatchesGolden) {
  obs::Registry registry;
  PopulateTestRegistry(registry);
  CheckGolden("registry.prom", registry.ToPrometheusText());
}

TEST(RegistryTest, JsonExportMatchesGolden) {
  obs::Registry registry;
  PopulateTestRegistry(registry);
  CheckGolden("registry.json", registry.ToJson());
}

TEST(RegistryTest, HandlesAreStableAndCountersAccumulate) {
  obs::Registry registry;
  obs::Counter& a = registry.GetCounter("ember_test_stable_total", "help");
  obs::Counter& b = registry.GetCounter("ember_test_stable_total", "help");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(a.Value(), 5u);
  const auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].value, 5.0);
}

TEST(RegistryTest, RemoveCollectorIsACleanBarrier) {
  obs::Registry registry;
  const uint64_t id = registry.AddCollector([] {
    obs::Sample sample;
    sample.name = "ember_test_removed_total";
    sample.kind = obs::MetricKind::kCounter;
    return std::vector<obs::Sample>{sample};
  });
  EXPECT_EQ(registry.Collect().size(), 1u);
  registry.RemoveCollector(id);
  EXPECT_TRUE(registry.Collect().empty());
}

using RegistryDeathTest = ::testing::Test;

TEST(RegistryDeathTest, KindMismatchAborts) {
  EXPECT_DEATH(
      {
        obs::Registry registry;
        registry.GetCounter("ember_test_kind", "help");
        registry.GetGauge("ember_test_kind", "help");
      },
      "re-requested as gauge");
}

// ---------------------------------------------------------------------------
// Golden end-to-end serve trace: a fixed two-batch run through the real
// engine must produce this exact span tree — names, parentage, per-span
// counters, and span counts; never durations, timestamps, or thread ids.
// ---------------------------------------------------------------------------

serve::Snapshot MakeExactSnapshot(size_t rows) {
  HashModel model;
  model.Initialize();
  la::Matrix corpus = model.VectorizeAll(Sentences(rows, "corpus"));
  serve::SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.default_k = 5;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "obs-test";
  return serve::Snapshot::Build(std::move(manifest), std::move(corpus), {},
                                {});
}

// Renders the span forest as indented "name counter=value" lines. Roots are
// ordered by start time (batches are sequential on one worker, so this is
// deterministic); siblings by span id, which is itself deterministic.
std::string RenderSpanTree(const std::vector<obs::SpanRecord>& records) {
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> children;
  std::vector<const obs::SpanRecord*> roots;
  std::map<uint64_t, bool> present;
  for (const auto& r : records) present[r.span_id] = true;
  for (const auto& r : records) {
    if (r.parent_id != 0 && present.count(r.parent_id)) {
      children[r.parent_id].push_back(&r);
    } else {
      roots.push_back(&r);
    }
  }
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
                return a->span_id < b->span_id;
              });
  }
  std::sort(roots.begin(), roots.end(),
            [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
              return a->start_micros != b->start_micros
                         ? a->start_micros < b->start_micros
                         : a->span_id < b->span_id;
            });
  std::string out;
  const std::function<void(const obs::SpanRecord*, size_t)> render =
      [&](const obs::SpanRecord* r, size_t depth) {
        out.append(depth * 2, ' ');
        out += r->name;
        for (const auto& c : r->counters) {
          if (c.name == nullptr) continue;
          out += " ";
          out += c.name;
          out += "=" + std::to_string(c.value);
        }
        out += "\n";
        auto it = children.find(r->span_id);
        if (it == children.end()) return;
        for (const obs::SpanRecord* kid : it->second) render(kid, depth + 1);
      };
  for (const obs::SpanRecord* root : roots) render(root, 0);
  return out;
}

TEST_F(TraceTest, GoldenTwoBatchServeTrace) {
  // Build everything BEFORE arming the trace so only the serve path records.
  serve::EngineOptions options;
  options.max_batch = 4;
  options.max_wait_micros = 60'000'000;  // force exactly-4 batches
  options.workers = 1;
  auto engine = serve::Engine::Create(MakeExactSnapshot(40),
                                      std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  obs::Tracer::Global().Clear();
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<std::future<Result<serve::QueryReply>>> futures;
    for (size_t i = 0; i < 4; ++i) {
      auto submitted = engine.value()->Submit("query " + std::to_string(batch) +
                                         "/" + std::to_string(i));
      ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
      futures.push_back(std::move(submitted).value());
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  }
  obs::Tracer::Global().SetEnabled(false);
  engine.value()->Stop();

  const auto records = obs::Tracer::Global().Drain();
  EXPECT_EQ(obs::Tracer::Global().DroppedCount(), 0u);
  CheckGolden("serve_trace.txt", RenderSpanTree(records));

  // The same records must export as well-formed Chrome JSON (smoke-level:
  // bench/ci validate with a real JSON parser).
  const std::string json = obs::ToChromeTraceJson(records);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("serve/batch"), std::string::npos);

  // And the stage breakdown must attribute every stage we know ran.
  const auto breakdown = obs::StageBreakdown(records);
  for (const char* stage :
       {"serve/batch", "serve/embed", "serve/query", "serve/request",
        "embed/vectorize_all", "index/exact_query_batch"}) {
    bool found = false;
    for (const auto& row : breakdown) {
      if (std::strcmp(row.name, stage) == 0) {
        found = true;
        EXPECT_GT(row.spans, 0u) << stage;
      }
    }
    EXPECT_TRUE(found) << "stage missing from breakdown: " << stage;
  }
}

// The engine self-registers a metrics collector in the GLOBAL registry on
// Create and must unregister it on Stop — scraping is how operators see
// EngineMetrics, so the splice has to carry every family and the instance
// label, and a stopped engine must vanish from the scrape.
TEST(RegistryTest, EngineExportsMetricsToGlobalRegistryUntilStop) {
  serve::EngineOptions options;
  options.max_batch = 2;
  options.max_wait_micros = 1000;
  auto engine = serve::Engine::Create(MakeExactSnapshot(20),
                                      std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  for (size_t i = 0; i < 2; ++i) {
    auto submitted = engine.value()->Submit("probe " + std::to_string(i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const std::string label = "{engine=\"" + engine.value()->instance() +
                            "\",storage=\"f32\"}";
  const std::string text = obs::Registry::Global().ToPrometheusText();
  EXPECT_NE(text.find("ember_serve_submitted_total" + label + " 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ember_serve_completed_total" + label + " 2"),
            std::string::npos);
  EXPECT_NE(text.find("ember_serve_health" + label + " 0"),
            std::string::npos);
  // Snapshot provenance gauges: a built (not loaded) snapshot maps zero
  // bytes, and load time is only meaningful after LoadFrom.
  EXPECT_NE(text.find("ember_serve_snapshot_load_micros" + label),
            std::string::npos);
  EXPECT_NE(text.find("ember_serve_snapshot_bytes_mapped" + label + " 0"),
            std::string::npos);
  for (const char* family :
       {"ember_serve_queue_micros", "ember_serve_embed_micros",
        "ember_serve_query_micros", "ember_serve_postprocess_micros",
        "ember_serve_total_micros", "ember_serve_batch_size"}) {
    EXPECT_NE(text.find(std::string(family) + "_count" + label),
              std::string::npos)
        << family;
  }
  // The JSON exporter sees the same spliced samples.
  EXPECT_NE(obs::Registry::Global().ToJson().find(
                "\"ember_serve_batches_total\""),
            std::string::npos);

  engine.value()->Stop();
  EXPECT_EQ(obs::Registry::Global().ToPrometheusText().find(label),
            std::string::npos)
      << "stopped engine still exported";

  EXPECT_STREQ(serve::HealthName(serve::Health::kServing), "serving");
  EXPECT_STREQ(serve::HealthName(serve::Health::kDegraded), "degraded");
  EXPECT_STREQ(serve::HealthName(serve::Health::kTripped), "tripped");
  EXPECT_STREQ(serve::HealthName(serve::Health::kLoading), "loading");
}

// The router self-registers like the engine does, under its own `router=`
// instance label, and its per-replica round-trip histograms carry the
// {shard=,replica=} labels operators slice by. Labels render sorted
// (std::map), so the shard histogram reads {replica=,router=,shard=}.
TEST(RegistryTest, RouterExportsShardLabeledMetricsUntilStop) {
  HashModel model_builder;
  model_builder.Initialize();
  la::Matrix corpus =
      model_builder.VectorizeAll(Sentences(20, "router-corpus"));
  serve::SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.default_k = 5;
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = "obs-test";
  auto shards = serve::BuildShardSnapshots(manifest, corpus, 2);
  ASSERT_TRUE(shards.ok());
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  std::vector<std::unique_ptr<serve::Engine>> engines;
  for (size_t r = 0; r < 2; ++r) {
    for (const serve::Snapshot& shard : shards.value()) {
      auto engine = serve::Engine::Create(shard, model, {});
      ASSERT_TRUE(engine.ok());
      engines.push_back(std::move(engine).value());
    }
  }
  serve::RouterOptions options;
  options.k = 5;
  auto router = serve::Router::Create(std::move(engines), model, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  std::vector<std::future<Result<serve::RouterReply>>> futures;
  for (size_t i = 0; i < 4; ++i) {
    auto submitted = router.value()->Submit("probe " + std::to_string(i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const std::string instance = router.value()->instance();
  const std::string label = "{router=\"" + instance + "\"}";
  const std::string text = obs::Registry::Global().ToPrometheusText();
  EXPECT_NE(text.find("ember_router_submitted_total" + label + " 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ember_router_completed_total" + label + " 4"),
            std::string::npos);
  EXPECT_NE(text.find("ember_router_partial_total" + label + " 0"),
            std::string::npos);
  EXPECT_NE(text.find("ember_router_shards_degraded_total" + label + " 0"),
            std::string::npos);
  for (const char* family :
       {"ember_router_queue_micros", "ember_router_embed_micros",
        "ember_router_fanout_micros", "ember_router_gather_micros",
        "ember_router_merge_micros", "ember_router_total_micros",
        "ember_router_batch_size"}) {
    EXPECT_NE(text.find(std::string(family) + "_count" + label),
              std::string::npos)
        << family;
  }
  // Every (shard, replica) pair exports its round-trip histogram.
  for (const char* shard : {"0", "1"}) {
    for (const char* replica : {"0", "1"}) {
      const std::string shard_label =
          std::string("{replica=\"") + replica + "\",router=\"" + instance +
          "\",shard=\"" + shard + "\"}";
      EXPECT_NE(
          text.find("ember_router_shard_micros_count" + shard_label),
          std::string::npos)
          << shard_label;
    }
  }

  router.value()->Stop();
  EXPECT_EQ(obs::Registry::Global().ToPrometheusText().find(
                "router=\"" + instance + "\""),
            std::string::npos)
      << "stopped router still exported";
}

// Re-running the identical workload must reproduce the identical tree —
// the property the golden file relies on, checked directly so a fixture
// mismatch can be told apart from nondeterminism.
TEST_F(TraceTest, ServeTraceIsReproducibleAcrossRuns) {
  std::vector<std::string> rendered;
  for (int run = 0; run < 2; ++run) {
    serve::EngineOptions options;
    options.max_batch = 4;
    options.max_wait_micros = 60'000'000;
    options.workers = 1;
    auto engine = serve::Engine::Create(
        MakeExactSnapshot(40), std::make_shared<HashModel>(), options);
    ASSERT_TRUE(engine.ok());
    obs::Tracer::Global().Clear();
    std::vector<std::future<Result<serve::QueryReply>>> futures;
    for (size_t i = 0; i < 4; ++i) {
      auto submitted = engine.value()->Submit("query " + std::to_string(i));
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());
    engine.value()->Stop();
    rendered.push_back(RenderSpanTree(obs::Tracer::Global().Drain()));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_FALSE(rendered[0].empty());
}

}  // namespace
}  // namespace ember
