#include "cluster/bipartite_clustering.h"

#include <gtest/gtest.h>

#include "cluster/extra_clustering.h"

namespace ember::cluster {
namespace {

using Matches = std::vector<std::pair<uint32_t, uint32_t>>;

TEST(SortPairsTest, DescendingSimThenAscendingIds) {
  std::vector<ScoredPair> pairs = {
      {1, 1, 0.5f}, {0, 0, 0.9f}, {0, 1, 0.5f}, {2, 2, 0.5f}};
  SortPairsDescending(pairs);
  EXPECT_EQ(pairs[0].sim, 0.9f);
  EXPECT_EQ(pairs[1].left, 0u);
  EXPECT_EQ(pairs[1].right, 1u);
  EXPECT_EQ(pairs[2].left, 1u);
  EXPECT_EQ(pairs[3].left, 2u);
}

TEST(UmcTest, GreedyOneToOne) {
  std::vector<ScoredPair> pairs = {
      {0, 0, 0.9f}, {0, 1, 0.8f}, {1, 0, 0.7f}, {1, 1, 0.6f}};
  SortPairsDescending(pairs);
  const Matches matches = UniqueMappingClustering(pairs, 2, 2, 0.5f);
  const Matches expected = {{0, 0}, {1, 1}};
  EXPECT_EQ(matches, expected);
}

TEST(UmcTest, ThresholdCutsLowPairs) {
  std::vector<ScoredPair> pairs = {{0, 0, 0.9f}, {1, 1, 0.3f}};
  SortPairsDescending(pairs);
  const Matches matches = UniqueMappingClustering(pairs, 2, 2, 0.5f);
  const Matches expected = {{0, 0}};
  EXPECT_EQ(matches, expected);
}

TEST(ExcTest, RequiresReciprocalBest) {
  // 0's best is right-0, but right-0's best is left-1: no reciprocity for
  // (0,0). (1,0) is reciprocal.
  std::vector<ScoredPair> pairs = {
      {0, 0, 0.8f}, {1, 0, 0.9f}, {1, 1, 0.2f}, {0, 1, 0.1f}};
  SortPairsDescending(pairs);
  const Matches matches = ExactClustering(pairs, 2, 2, 0.05f);
  const Matches expected = {{1, 0}};
  EXPECT_EQ(matches, expected);
}

TEST(KrcTest, StableMarriageResolvesContention) {
  // Both lefts prefer right-0; left-0 wins it (higher sim), left-1 falls
  // back to right-1.
  std::vector<ScoredPair> pairs = {
      {0, 0, 0.9f}, {1, 0, 0.8f}, {1, 1, 0.7f}, {0, 1, 0.6f}};
  SortPairsDescending(pairs);
  const Matches matches = KiralyClustering(pairs, 2, 2, 0.5f);
  const Matches expected = {{0, 0}, {1, 1}};
  EXPECT_EQ(matches, expected);
}

TEST(ConnectedComponentsTest, TransitiveClosure) {
  const std::vector<ScoredPair> pairs = {
      {0, 1, 0.9f}, {1, 2, 0.8f}, {3, 4, 0.7f}};
  const Matches matches = ConnectedComponentsClustering(pairs, 5, 0.5f);
  const Matches expected = {{0, 1}, {0, 2}, {1, 2}, {3, 4}};
  EXPECT_EQ(matches, expected);
}

TEST(CenterClusteringTest, AttachedRecordsNeverBecomeCenters) {
  std::vector<ScoredPair> pairs = {
      {0, 1, 0.9f},  // 0 becomes center, 1 attaches
      {1, 2, 0.8f},  // 1 is attached, cannot adopt 2
      {0, 3, 0.7f},  // 3 attaches to center 0
  };
  SortPairsDescending(pairs);
  const Matches matches = CenterClustering(pairs, 4, 0.5f);
  const Matches expected = {{0, 1}, {0, 3}, {1, 3}};
  EXPECT_EQ(matches, expected);
}

}  // namespace
}  // namespace ember::cluster
