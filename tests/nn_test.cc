#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/vector_ops.h"
#include "nn/transformer.h"

// --- Counting allocator ---------------------------------------------------
// Global operator new/delete replacements local to this test binary (each
// test file links into its own executable). Counting is off by default so
// gtest's own bookkeeping is invisible; tests flip it on around the exact
// region they want to prove allocation-free.

namespace {
std::atomic<size_t> g_live_allocations{0};
std::atomic<bool> g_count_allocations{false};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_live_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ember::nn {
namespace {

/// Counts heap allocations performed by `fn`.
template <typename Fn>
size_t AllocationsIn(Fn&& fn) {
  g_live_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  fn();
  g_count_allocations.store(false, std::memory_order_relaxed);
  return g_live_allocations.load(std::memory_order_relaxed);
}

TEST(MlpClassifierTest, LearnsLinearlySeparableData) {
  MlpClassifier::Options options;
  options.input_dim = 2;
  options.seed = 3;
  MlpClassifier classifier(options);

  Rng rng(4);
  la::Matrix features(200, 2);
  std::vector<int> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.Uniform()) * 2 - 1;
    const float y = static_cast<float>(rng.Uniform()) * 2 - 1;
    features.At(i, 0) = x;
    features.At(i, 1) = y;
    labels[i] = x + y > 0 ? 1 : 0;
  }
  float first = 0, last = 0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    last = classifier.TrainEpoch(features, labels);
    if (epoch == 0) first = last;
  }
  EXPECT_LT(last, first);

  size_t correct = 0;
  for (size_t i = 0; i < 200; ++i) {
    const bool predicted = classifier.Predict(features.Row(i)) >= 0.5f;
    correct += predicted == (labels[i] == 1);
  }
  EXPECT_GT(correct, 175u);
}

TEST(MlpClassifierTest, DeterministicForFixedSeed) {
  MlpClassifier::Options options;
  options.input_dim = 4;
  options.seed = 11;
  MlpClassifier a(options), b(options);
  la::Matrix features(8, 4);
  Rng rng(5);
  features.FillGaussian(rng, 1.f);
  const std::vector<int> labels = {0, 1, 0, 1, 1, 0, 1, 0};
  EXPECT_EQ(a.TrainEpoch(features, labels), b.TrainEpoch(features, labels));
  EXPECT_EQ(a.Predict(features.Row(0)), b.Predict(features.Row(0)));
}

TEST(AutoencoderTest, ReconstructionImprovesOverRandom) {
  Autoencoder::Options options;
  options.input_dim = 32;
  options.hidden_dim = 8;
  options.epochs = 12;
  options.seed = 7;
  Autoencoder autoencoder(options);

  Rng rng(8);
  la::Matrix data(100, 32);
  data.FillGaussian(rng, 0.3f);
  const float final_error = autoencoder.Train(data);
  EXPECT_TRUE(std::isfinite(final_error));

  std::vector<float> hidden(autoencoder.hidden_dim());
  autoencoder.Encode(data.Row(0), hidden.data());
  EXPECT_EQ(hidden.size(), 8u);
}

TEST(TransformerEncoderTest, ForwardShapeAndDeterminism) {
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.seed = 21;
  const TransformerEncoder encoder(config);

  Rng rng(9);
  la::Matrix tokens(10, 32);
  tokens.FillGaussian(rng, 1.f);
  const la::Matrix a = encoder.Forward(tokens);
  // Row 0 is the CLS summary state; rows 1..T mirror the inputs.
  ASSERT_EQ(a.rows(), 11u);
  ASSERT_EQ(a.cols(), 32u);
  const TransformerEncoder same(config);
  EXPECT_EQ(same.Forward(tokens), a);
}

/// Naive one-token-at-a-time reference forward: every projection is a
/// per-row Gemv, attention scores are scalar Dots, and the weighted V sum
/// is the plain zero-then-Axpy chain. This is the pre-GEMM formulation the
/// production path must reproduce bit for bit (0 ULP) — see DESIGN.md §8.
la::Matrix NaiveForward(const TransformerEncoder& encoder,
                        const la::Matrix& tokens) {
  const TransformerConfig& config = encoder.config();
  const size_t dim = config.dim;
  const size_t heads = config.num_heads;
  const size_t head_dim = dim / heads;
  const size_t seq = tokens.rows() + 1;

  la::Matrix x(seq, dim);
  for (size_t c = 0; c < dim; ++c) x.At(0, c) = encoder.cls()[c];
  for (size_t t = 1; t < seq; ++t) {
    const float* in = tokens.Row(t - 1);
    const float* pos = encoder.pos_table().Row(t);
    for (size_t c = 0; c < dim; ++c) x.At(t, c) = in[c] + pos[c];
  }

  la::Matrix normed(seq, dim), q(seq, dim), k(seq, dim), v(seq, dim);
  la::Matrix attended(seq, dim), hidden(seq, config.ffn_dim);
  std::vector<float> scores(seq), scratch(dim);
  const float inv_sqrt = 1.f / std::sqrt(static_cast<float>(head_dim));
  for (size_t li = 0; li < encoder.num_layers(); ++li) {
    const TransformerEncoder::Layer& layer = encoder.layer(li);
    for (size_t t = 0; t < seq; ++t) {
      float* row = normed.Row(t);
      const float* src = x.Row(t);
      for (size_t c = 0; c < dim; ++c) row[c] = src[c];
      la::LayerNormInPlace(row, dim, layer.ln1_gain.data(),
                           layer.ln1_bias.data());
      la::Gemv(layer.wq, row, q.Row(t));
      la::Gemv(layer.wk, row, k.Row(t));
      la::Gemv(layer.wv, row, v.Row(t));
    }
    for (size_t h = 0; h < heads; ++h) {
      const size_t off = h * head_dim;
      for (size_t t = 0; t < seq; ++t) {
        for (size_t u = 0; u < seq; ++u) {
          scores[u] = la::Dot(q.Row(t) + off, k.Row(u) + off, head_dim);
          scores[u] *= inv_sqrt;
        }
        la::SoftmaxInPlace(scores.data(), seq);
        float* out = attended.Row(t) + off;
        for (size_t c = 0; c < head_dim; ++c) out[c] = 0.f;
        for (size_t u = 0; u < seq; ++u) {
          la::Axpy(scores[u], v.Row(u) + off, out, head_dim);
        }
      }
    }
    for (size_t t = 0; t < seq; ++t) {
      la::Gemv(layer.wo, attended.Row(t), scratch.data());
      la::Axpy(1.f, scratch.data(), x.Row(t), dim);
    }
    for (size_t t = 0; t < seq; ++t) {
      float* row = normed.Row(t);
      const float* src = x.Row(t);
      for (size_t c = 0; c < dim; ++c) row[c] = src[c];
      la::LayerNormInPlace(row, dim, layer.ln2_gain.data(),
                           layer.ln2_bias.data());
      la::Gemv(layer.ffn1, row, hidden.Row(t));
      la::GeluTanhInPlace(hidden.Row(t), config.ffn_dim);
      la::Gemv(layer.ffn2, hidden.Row(t), scratch.data());
      la::Axpy(1.f, scratch.data(), x.Row(t), dim);
    }
  }
  for (size_t t = 0; t < seq; ++t) {
    la::LayerNormInPlace(x.Row(t), dim, encoder.final_gain().data(),
                         encoder.final_bias().data());
  }
  return x;
}

la::Matrix GaussianTokens(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix tokens(rows, cols);
  tokens.FillGaussian(rng, 1.f);
  return tokens;
}

TEST(TransformerEncoderTest, GemmForwardBitIdenticalToNaiveReference) {
  // The tentpole contract: the whole-sequence GEMM forward is a pure
  // restructuring. Sweep sequence lengths through every tiling tail of the
  // 8x2 micro-kernel and both sides of the kDotLanes boundary.
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.pos_scale = 0.5f;
  config.seed = 31;
  const TransformerEncoder encoder(config);
  TransformerEncoder::Workspace ws;  // shared across lengths, like prod
  for (const size_t seq : {1ul, 2ul, 3ul, 7ul, 8ul, 16ul, 33ul, 64ul, 100ul,
                           127ul, 128ul}) {
    const la::Matrix tokens = GaussianTokens(seq, config.dim, 1000 + seq);
    const la::Matrix& got = encoder.Forward(tokens, ws);
    const la::Matrix expected = NaiveForward(encoder, tokens);
    ASSERT_EQ(got.rows(), expected.rows());
    bool equal = true;
    for (size_t t = 0; t < got.rows() && equal; ++t) {
      for (size_t c = 0; c < got.cols(); ++c) {
        if (got.At(t, c) != expected.At(t, c)) {
          ADD_FAILURE() << "seq=" << seq << " mismatch at (" << t << "," << c
                        << "): " << got.At(t, c) << " vs "
                        << expected.At(t, c);
          equal = false;
          break;
        }
      }
    }
  }
}

TEST(TransformerEncoderTest, GemmForwardParityOnOddDimensions) {
  // Head and FFN widths that do not divide any blocking factor (head_dim 9,
  // ffn 52), in both weight regimes: BERT-like (gain 1, CLS row is what
  // pooling reads) and sentence-encoder-like (small gain, mean pooling
  // reads every row). Since all rows must match, both pooling styles see
  // bit-identical embeddings.
  for (const float gain : {1.0f, 0.1f}) {
    TransformerConfig config;
    config.dim = 36;
    config.num_heads = 4;
    config.num_layers = 1;
    config.ffn_dim = 52;
    config.weight_gain = gain;
    config.pos_scale = gain > 0.5f ? 0.5f : 0.05f;
    config.seed = 37;
    const TransformerEncoder encoder(config);
    for (const size_t seq : {5ul, 31ul}) {
      const la::Matrix tokens = GaussianTokens(seq, config.dim, 2000 + seq);
      EXPECT_EQ(encoder.Forward(tokens), NaiveForward(encoder, tokens))
          << "gain=" << gain << " seq=" << seq;
    }
  }
}

TEST(TransformerEncoderTest, WorkspaceReuseAcrossShapesMatchesFresh) {
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.seed = 41;
  const TransformerEncoder encoder(config);
  // Shrink then regrow the sequence: the reused buffers must behave exactly
  // like freshly allocated ones at every step.
  TransformerEncoder::Workspace reused;
  for (const size_t seq : {48ul, 6ul, 48ul, 17ul, 64ul}) {
    const la::Matrix tokens = GaussianTokens(seq, config.dim, 3000 + seq);
    TransformerEncoder::Workspace fresh;
    EXPECT_EQ(encoder.Forward(tokens, reused), encoder.Forward(tokens, fresh))
        << "seq=" << seq;
  }
}

TEST(TransformerEncoderTest, ForwardIsAllocationFreeAfterWarmup) {
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.seed = 43;
  const TransformerEncoder encoder(config);
  const la::Matrix tokens = GaussianTokens(24, config.dim, 4000);
  const la::Matrix small = GaussianTokens(5, config.dim, 4001);
  TransformerEncoder::Workspace ws;
  encoder.Forward(tokens, ws);  // warm up at the peak shape
  EXPECT_EQ(AllocationsIn([&] { encoder.Forward(tokens, ws); }), 0u);
  // Smaller sequences reuse the warmed capacity without reallocating.
  EXPECT_EQ(AllocationsIn([&] { encoder.Forward(small, ws); }), 0u);
  EXPECT_EQ(AllocationsIn([&] { encoder.Forward(tokens, ws); }), 0u);
}

TEST(TransformerEncoderTest, PositionMattersWhenScaled) {
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 1;
  config.ffn_dim = 64;
  config.pos_scale = 0.5f;
  config.seed = 22;
  const TransformerEncoder encoder(config);

  Rng rng(10);
  la::Matrix tokens(4, 32);
  tokens.FillGaussian(rng, 1.f);
  la::Matrix swapped = tokens;
  for (size_t c = 0; c < 32; ++c) {
    std::swap(swapped.At(0, c), swapped.At(3, c));
  }
  EXPECT_NE(encoder.Forward(tokens), encoder.Forward(swapped));
}

}  // namespace
}  // namespace ember::nn
