#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"
#include "nn/transformer.h"

namespace ember::nn {
namespace {

TEST(MlpClassifierTest, LearnsLinearlySeparableData) {
  MlpClassifier::Options options;
  options.input_dim = 2;
  options.seed = 3;
  MlpClassifier classifier(options);

  Rng rng(4);
  la::Matrix features(200, 2);
  std::vector<int> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.Uniform()) * 2 - 1;
    const float y = static_cast<float>(rng.Uniform()) * 2 - 1;
    features.At(i, 0) = x;
    features.At(i, 1) = y;
    labels[i] = x + y > 0 ? 1 : 0;
  }
  float first = 0, last = 0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    last = classifier.TrainEpoch(features, labels);
    if (epoch == 0) first = last;
  }
  EXPECT_LT(last, first);

  size_t correct = 0;
  for (size_t i = 0; i < 200; ++i) {
    const bool predicted = classifier.Predict(features.Row(i)) >= 0.5f;
    correct += predicted == (labels[i] == 1);
  }
  EXPECT_GT(correct, 175u);
}

TEST(MlpClassifierTest, DeterministicForFixedSeed) {
  MlpClassifier::Options options;
  options.input_dim = 4;
  options.seed = 11;
  MlpClassifier a(options), b(options);
  la::Matrix features(8, 4);
  Rng rng(5);
  features.FillGaussian(rng, 1.f);
  const std::vector<int> labels = {0, 1, 0, 1, 1, 0, 1, 0};
  EXPECT_EQ(a.TrainEpoch(features, labels), b.TrainEpoch(features, labels));
  EXPECT_EQ(a.Predict(features.Row(0)), b.Predict(features.Row(0)));
}

TEST(AutoencoderTest, ReconstructionImprovesOverRandom) {
  Autoencoder::Options options;
  options.input_dim = 32;
  options.hidden_dim = 8;
  options.epochs = 12;
  options.seed = 7;
  Autoencoder autoencoder(options);

  Rng rng(8);
  la::Matrix data(100, 32);
  data.FillGaussian(rng, 0.3f);
  const float final_error = autoencoder.Train(data);
  EXPECT_TRUE(std::isfinite(final_error));

  std::vector<float> hidden(autoencoder.hidden_dim());
  autoencoder.Encode(data.Row(0), hidden.data());
  EXPECT_EQ(hidden.size(), 8u);
}

TEST(TransformerEncoderTest, ForwardShapeAndDeterminism) {
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.seed = 21;
  const TransformerEncoder encoder(config);

  Rng rng(9);
  la::Matrix tokens(10, 32);
  tokens.FillGaussian(rng, 1.f);
  const la::Matrix a = encoder.Forward(tokens);
  // Row 0 is the CLS summary state; rows 1..T mirror the inputs.
  ASSERT_EQ(a.rows(), 11u);
  ASSERT_EQ(a.cols(), 32u);
  const TransformerEncoder same(config);
  EXPECT_EQ(same.Forward(tokens), a);
}

TEST(TransformerEncoderTest, PositionMattersWhenScaled) {
  TransformerConfig config;
  config.dim = 32;
  config.num_heads = 4;
  config.num_layers = 1;
  config.ffn_dim = 64;
  config.pos_scale = 0.5f;
  config.seed = 22;
  const TransformerEncoder encoder(config);

  Rng rng(10);
  la::Matrix tokens(4, 32);
  tokens.FillGaussian(rng, 1.f);
  la::Matrix swapped = tokens;
  for (size_t c = 0; c < 32; ++c) {
    std::swap(swapped.At(0, c), swapped.At(3, c));
  }
  EXPECT_NE(encoder.Forward(tokens), encoder.Forward(swapped));
}

}  // namespace
}  // namespace ember::nn
