#ifndef EMBER_TESTS_PROPTEST_H_
#define EMBER_TESTS_PROPTEST_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"

/// Minimal property-based testing harness in the QuickCheck shape, sized
/// for ember's deterministic style: every case is derived from an explicit
/// root seed, failures report an exact (seed, case, case_seed, size)
/// reproduction tuple, and a shrinking pass re-runs the failing case at
/// smaller input sizes to report the minimal size that still fails.
///
/// Usage:
///   proptest::ForAll("recall monotone in k", {}, [&](Rng& rng, size_t n) {
///     ...generate an n-sized input from rng, check the property...
///     return true;  // false = property violated
///   });
///
/// The property receives a freshly seeded Rng per case, so it must draw
/// everything it needs from that Rng (never from global state) for the
/// repro tuple to be sufficient.
namespace ember::proptest {

struct Config {
  uint64_t seed = 0x9e24u;  // root seed for the whole property
  size_t cases = 100;       // generated cases per property
  size_t min_size = 1;      // smallest input size
  size_t max_size = 64;     // largest input size
};

/// The per-case seed: mixing the case index through SplitMix64 decorrelates
/// neighboring cases while keeping each reproducible in isolation.
inline uint64_t CaseSeed(uint64_t root_seed, size_t case_index) {
  return SplitMix64(root_seed ^ (0x50525054ULL + case_index));
}

/// Runs `property` over `config.cases` generated inputs with sizes ramping
/// linearly from min_size to max_size (small inputs first, so trivially
/// wrong properties fail fast and readably). On the first violation, runs
/// the shrinking loop: the same case seed is retried at every size from
/// min_size upward, and the smallest size that still fails is reported as
/// the minimal counterexample. Registers a gtest failure; returns whether
/// the property held everywhere.
inline bool ForAll(const std::string& name, const Config& config,
                   const std::function<bool(Rng&, size_t)>& property) {
  const size_t span = config.max_size > config.min_size
                          ? config.max_size - config.min_size
                          : 0;
  for (size_t c = 0; c < config.cases; ++c) {
    const uint64_t case_seed = CaseSeed(config.seed, c);
    const size_t size =
        config.min_size +
        (config.cases <= 1 ? span : span * c / (config.cases - 1));
    {
      Rng rng(case_seed);
      if (property(rng, size)) continue;
    }
    // Shrink: scan sizes from the bottom with the SAME case seed; the
    // first failing size is the minimal reported counterexample. (Linear
    // scan, not bisection: failure sets over sizes need not be monotone.)
    size_t minimal = size;
    for (size_t s = config.min_size; s < size; ++s) {
      Rng rng(case_seed);
      if (!property(rng, s)) {
        minimal = s;
        break;
      }
    }
    ADD_FAILURE() << "property '" << name << "' violated: case " << c
                  << " of " << config.cases << ", size " << size
                  << " (shrunk to minimal failing size " << minimal
                  << ").\n  repro: Config{.seed=0x" << std::hex << config.seed
                  << std::dec << "}, case_seed=0x" << std::hex << case_seed
                  << std::dec << ", size=" << minimal;
    return false;
  }
  return true;
}

}  // namespace ember::proptest

#endif  // EMBER_TESTS_PROPTEST_H_
