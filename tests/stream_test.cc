// Live corpus / streaming tier tests (DESIGN.md §14): the bit-identity
// oracle (query-after-upsert/delete == freshly rebuilt exact index), the
// proptest over random upsert/delete/query/compact interleavings against a
// naive oracle, HNSW online insert vs batch-rebuild equality, compaction
// hot-swap correctness and rollback, the corruption sweep over compactor
// output, fail-closed armed-failpoint behavior at every new boundary, the
// background Compactor trigger, and counter-identity under concurrent
// mutation + reload/compaction traffic (the TSan leg).

#include "stream/live_corpus.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "index/exact_index.h"
#include "index/hnsw_index.h"
#include "la/vector_ops.h"
#include "proptest.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "stream/compactor.h"

#define SKIP_IF_FAILPOINTS_OFF()                               \
  do {                                                         \
    if (!::ember::fail::kEnabled) {                            \
      GTEST_SKIP() << "failpoints compiled out of this build"; \
    }                                                          \
  } while (0)

namespace ember {
namespace {

using serve::Engine;
using serve::EngineMetrics;
using serve::EngineOptions;
using serve::IndexKind;
using serve::MutateReply;
using serve::QueryReply;
using serve::Snapshot;
using serve::SnapshotManifest;
using stream::Compactor;
using stream::CompactorOptions;
using stream::LiveCorpus;
using stream::LiveStats;

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo(const std::string& code) {
  embed::ModelInfo info;
  info.code = code;
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

class HashModel : public embed::EmbeddingModel {
 public:
  explicit HashModel(std::string code = "HT")
      : EmbeddingModel(HashModelInfo(code)) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23) + " value" +
                  std::to_string((i * 13) % 41));
  }
  return out;
}

SnapshotManifest BaseManifest(IndexKind kind = IndexKind::kExact,
                              uint32_t default_k = 5) {
  SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.default_k = default_k;
  manifest.kind = kind;
  manifest.dataset = "stream-test";
  return manifest;
}

Snapshot MakeSnapshot(IndexKind kind, size_t rows,
                      const std::string& tag = "corpus") {
  HashModel model;
  model.Initialize();
  la::Matrix corpus = model.VectorizeAll(Sentences(rows, tag));
  index::HnswOptions hnsw_options;
  hnsw_options.seed = 7;
  index::LshOptions lsh_options;
  lsh_options.seed = 7;
  return Snapshot::Build(BaseManifest(kind), std::move(corpus), hnsw_options,
                         lsh_options);
}

std::unique_ptr<Engine> MakeLiveEngine(Snapshot snapshot, size_t k = 5) {
  auto model = std::make_shared<HashModel>();
  EngineOptions options;
  options.k = k;
  options.max_wait_micros = 200;
  options.live = true;
  auto created = Engine::Create(std::move(snapshot), model, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ember_stream_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t MustUpsert(Engine& engine, const std::string& record) {
  auto submitted = engine.Upsert(record);
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto outcome = submitted.value().get();
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return outcome.value().id;
}

Status MustDelete(Engine& engine, uint64_t id) {
  auto submitted = engine.Delete(id);
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto outcome = submitted.value().get();
  return outcome.ok() ? Status::Ok() : outcome.status();
}

std::vector<index::Neighbor> MustQuery(Engine& engine,
                                       const std::string& record) {
  auto submitted = engine.Submit(record);
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto reply = submitted.value().get();
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  return reply.value().neighbors;
}

void ExpectSameNeighbors(const std::vector<index::Neighbor>& got,
                         const std::vector<index::Neighbor>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << context << " rank " << i;
  }
}

/// Every test starts and ends with no failpoint armed, even on failure.
class StreamFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// The correctness oracle: a live corpus after upserts/deletes answers
// bit-identically to an exact index freshly rebuilt over the survivors.
// ---------------------------------------------------------------------------

TEST(LiveOracle, QueryAfterUpsertBitIdenticalToRebuilt) {
  const size_t base_rows = 10, upserts = 6, k = 5;
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, base_rows), k);
  const auto fresh = Sentences(upserts, "fresh");
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(MustUpsert(*engine, fresh[i]), base_rows + i);
  }

  // Oracle: one exact snapshot over base ∥ upserts, in admission order.
  HashModel model;
  model.Initialize();
  auto all = Sentences(base_rows, "corpus");
  all.insert(all.end(), fresh.begin(), fresh.end());
  const Snapshot oracle =
      Snapshot::Build(BaseManifest(), model.VectorizeAll(all));

  const auto queries = Sentences(12, "query");
  const auto expect = oracle.QueryBatch(model.VectorizeAll(queries), k);
  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(MustQuery(*engine, queries[q]), expect[q],
                        "query " + std::to_string(q));
  }
  const LiveStats stats = engine->LiveStats();
  EXPECT_EQ(stats.base_rows, base_rows);
  EXPECT_EQ(stats.delta_rows, upserts);
  EXPECT_EQ(stats.live_rows, base_rows + upserts);
  engine->Stop();
}

TEST(LiveOracle, QueryAfterDeleteBitIdenticalToRebuilt) {
  const size_t base_rows = 10, upserts = 6, k = 4;
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, base_rows), k);
  const auto fresh = Sentences(upserts, "fresh");
  for (const auto& record : fresh) MustUpsert(*engine, record);
  // Tombstone rows in both tiers: base ids 1, 3 and delta ids 10, 13.
  for (const uint64_t dead : {1ull, 3ull, 10ull, 13ull}) {
    EXPECT_TRUE(MustDelete(*engine, dead).ok()) << dead;
  }

  // Oracle: exact snapshot over the SURVIVORS (ascending global id), with
  // the strictly-increasing local->global remap applied to its answers.
  HashModel model;
  model.Initialize();
  auto all = Sentences(base_rows, "corpus");
  all.insert(all.end(), fresh.begin(), fresh.end());
  std::vector<std::string> survivors;
  std::vector<uint64_t> survivor_ids;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i == 1 || i == 3 || i == 10 || i == 13) continue;
    survivors.push_back(all[i]);
    survivor_ids.push_back(i);
  }
  const Snapshot oracle =
      Snapshot::Build(BaseManifest(), model.VectorizeAll(survivors));

  const auto queries = Sentences(12, "query");
  const auto raw = oracle.QueryBatch(model.VectorizeAll(queries), k);
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<index::Neighbor> expect = raw[q];
    for (auto& neighbor : expect) {
      neighbor.id = static_cast<uint32_t>(survivor_ids[neighbor.id]);
    }
    ExpectSameNeighbors(MustQuery(*engine, queries[q]), expect,
                        "query " + std::to_string(q));
  }
  const LiveStats stats = engine->LiveStats();
  EXPECT_EQ(stats.tombstones, 4u);
  EXPECT_EQ(stats.live_rows, base_rows + upserts - 4);
  engine->Stop();
}

TEST(LiveOracle, EmptyBaseColdStartServes) {
  // The stream-dedup scenario starts from a zero-row snapshot whose dim
  // latches from the first upsert's embedding.
  auto engine =
      MakeLiveEngine(Snapshot::Build(BaseManifest(), la::Matrix(0, kDim)), 3);
  EXPECT_TRUE(MustQuery(*engine, "anything").empty());
  const auto fresh = Sentences(4, "fresh");
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(MustUpsert(*engine, fresh[i]), i);
  }
  HashModel model;
  model.Initialize();
  const Snapshot oracle =
      Snapshot::Build(BaseManifest(), model.VectorizeAll(fresh));
  const auto expect = oracle.QueryBatch(model.VectorizeAll({fresh[2]}), 3);
  ExpectSameNeighbors(MustQuery(*engine, fresh[2]), expect[0], "cold start");
  engine->Stop();
}

TEST(LiveOracle, MutationArgumentErrorsFailClosed) {
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, 6), 3);
  // Unknown id, then double delete.
  EXPECT_EQ(MustDelete(*engine, 99).code(), Status::Code::kNotFound);
  EXPECT_TRUE(MustDelete(*engine, 2).ok());
  EXPECT_EQ(MustDelete(*engine, 2).code(), Status::Code::kNotFound);
  // Wrong-dim pre-embedded upsert is refused at submit time.
  auto bad = engine->UpsertEmbedded(std::vector<float>(kDim + 1, 0.1f));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
  engine->Stop();

  // A frozen (non-live) engine refuses mutations at submit time.
  auto model = std::make_shared<HashModel>();
  EngineOptions options;
  options.k = 3;
  auto frozen =
      Engine::Create(MakeSnapshot(IndexKind::kExact, 6), model, options);
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen.value()->Upsert("nope").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(frozen.value()->Delete(0).status().code(),
            Status::Code::kInvalidArgument);
  frozen.value()->Stop();
}

// ---------------------------------------------------------------------------
// Proptest: random upsert/delete/query/compact interleavings against a
// naive always-rebuilt oracle, at the LiveCorpus level.
// ---------------------------------------------------------------------------

TEST(LiveProptest, InterleavingsMatchNaiveRebuiltOracle) {
  proptest::Config config;
  config.cases = 40;
  config.max_size = 48;
  proptest::ForAll(
      "live corpus == naive rebuilt oracle", config,
      [](Rng& rng, size_t size) {
        auto base = std::make_shared<const Snapshot>(
            Snapshot::Build(BaseManifest(), la::Matrix(0, kDim)));
        LiveCorpus corpus(base);
        // Naive model: every live row as (global id, vector), in id order.
        std::vector<std::pair<uint64_t, std::vector<float>>> naive;

        const auto random_unit = [&rng] {
          std::vector<float> v(kDim);
          for (float& x : v) x = static_cast<float>(rng.Uniform()) - 0.5f;
          la::NormalizeInPlace(v.data(), kDim);
          return v;
        };

        for (size_t op = 0; op < size; ++op) {
          const double pick = rng.Uniform();
          if (pick < 0.45 || naive.empty()) {
            const auto v = random_unit();
            auto id = corpus.Upsert(v.data(), kDim);
            if (!id.ok()) return false;
            naive.emplace_back(id.value(), v);
          } else if (pick < 0.60) {
            const size_t victim = rng.Next() % naive.size();
            if (!corpus.Delete(naive[victim].first).ok()) return false;
            naive.erase(naive.begin() + victim);
          } else if (pick < 0.70) {
            // Fold everything into a fresh exact base mid-stream.
            stream::CompactionPlan plan = corpus.PlanCompaction();
            auto compacted = std::make_shared<const Snapshot>(Snapshot::Build(
                std::move(plan.manifest), std::move(plan.corpus)));
            stream::CompactionPlan coords;
            coords.upto_seq = plan.upto_seq;
            coords.base_generation = plan.base_generation;
            coords.delta_prefix = plan.delta_prefix;
            coords.survivor_ids = plan.survivor_ids;
            if (!corpus.InstallCompacted(compacted, coords).ok()) {
              return false;
            }
          } else {
            const size_t k = 1 + rng.Next() % 8;
            la::Matrix query(1, kDim);
            const auto v = random_unit();
            std::copy(v.begin(), v.end(), query.Row(0));
            const auto got = corpus.QueryBatch(query, k)[0];

            la::Matrix flat(naive.size(), kDim);
            for (size_t i = 0; i < naive.size(); ++i) {
              std::copy(naive[i].second.begin(), naive[i].second.end(),
                        flat.Row(i));
            }
            auto expect = naive.empty()
                              ? std::vector<index::Neighbor>{}
                              : index::BruteForceTopK(flat, query, k)[0];
            for (auto& neighbor : expect) {
              neighbor.id =
                  static_cast<uint32_t>(naive[neighbor.id].first);
            }
            if (got.size() != expect.size()) return false;
            for (size_t i = 0; i < got.size(); ++i) {
              if (got[i].id != expect[i].id ||
                  got[i].distance != expect[i].distance) {
                return false;
              }
            }
          }
        }
        return true;
      });
}

// ---------------------------------------------------------------------------
// HNSW online insert: incremental == batch rebuild, and the serving path
// through AbsorbDelta.
// ---------------------------------------------------------------------------

TEST(HnswOnline, IncrementalInsertBitIdenticalToRebuild) {
  HashModel model;
  model.Initialize();
  const la::Matrix head = model.VectorizeAll(Sentences(24, "corpus"));
  const la::Matrix tail = model.VectorizeAll(Sentences(9, "fresh"));
  la::Matrix all(head.rows() + tail.rows(), kDim);
  for (size_t r = 0; r < head.rows(); ++r) {
    std::copy(head.Row(r), head.Row(r) + kDim, all.Row(r));
  }
  for (size_t r = 0; r < tail.rows(); ++r) {
    std::copy(tail.Row(r), tail.Row(r) + kDim, all.Row(head.rows() + r));
  }

  index::HnswOptions options;
  options.seed = 11;
  index::HnswIndex incremental(options);
  incremental.Build(head);
  incremental.AddBatch(tail);
  index::HnswIndex rebuilt(options);
  rebuilt.Build(std::move(all));

  ASSERT_EQ(incremental.size(), rebuilt.size());
  EXPECT_EQ(incremental.entry(), rebuilt.entry());
  EXPECT_EQ(incremental.max_level(), rebuilt.max_level());
  const auto flat_a = incremental.Flatten();
  const auto flat_b = rebuilt.Flatten();
  EXPECT_EQ(flat_a.levels, flat_b.levels);
  EXPECT_EQ(flat_a.entry_base, flat_b.entry_base);
  EXPECT_EQ(flat_a.starts, flat_b.starts);
  EXPECT_EQ(flat_a.adj, flat_b.adj);

  const la::Matrix queries = model.VectorizeAll(Sentences(8, "query"));
  const auto got = incremental.QueryBatch(queries, 5);
  const auto want = rebuilt.QueryBatch(queries, 5);
  for (size_t q = 0; q < got.size(); ++q) {
    ExpectSameNeighbors(got[q], want[q], "hnsw query " + std::to_string(q));
  }
}

TEST(HnswOnline, AbsorbDeltaMatchesBatchRebuild) {
  const size_t base_rows = 24, upserts = 9, k = 5;
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kHnsw, base_rows), k);
  const auto fresh = Sentences(upserts, "fresh");
  for (const auto& record : fresh) MustUpsert(*engine, record);
  ASSERT_TRUE(engine->AbsorbDelta().ok());
  const LiveStats stats = engine->LiveStats();
  EXPECT_EQ(stats.base_rows, base_rows + upserts);
  EXPECT_EQ(stats.delta_rows, 0u);
  EXPECT_EQ(stats.base_generation, 2u);
  EXPECT_EQ(engine->Metrics().absorbs, 1u);

  // Oracle: the SAME HNSW options over base ∥ upserts — the deterministic
  // level stream makes incremental insertion exactly reproducible.
  HashModel model;
  model.Initialize();
  auto all = Sentences(base_rows, "corpus");
  all.insert(all.end(), fresh.begin(), fresh.end());
  index::HnswOptions hnsw_options;
  hnsw_options.seed = 7;
  const Snapshot oracle =
      Snapshot::Build(BaseManifest(IndexKind::kHnsw),
                      model.VectorizeAll(all), hnsw_options);
  const auto queries = Sentences(10, "query");
  const auto expect = oracle.QueryBatch(model.VectorizeAll(queries), k);
  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(MustQuery(*engine, queries[q]), expect[q],
                        "absorbed query " + std::to_string(q));
  }
  engine->Stop();
}

// ---------------------------------------------------------------------------
// Compaction: hot-swap correctness, id continuity, rollback, corruption.
// ---------------------------------------------------------------------------

TEST(Compaction, FoldsOverlayAndKeepsServingBitIdentically) {
  const size_t base_rows = 10, upserts = 6, k = 4;
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, base_rows), k);
  const auto fresh = Sentences(upserts, "fresh");
  for (const auto& record : fresh) MustUpsert(*engine, record);
  for (const uint64_t dead : {2ull, 12ull}) {
    ASSERT_TRUE(MustDelete(*engine, dead).ok());
  }
  const auto queries = Sentences(10, "query");
  std::vector<std::vector<index::Neighbor>> before;
  for (const auto& query : queries) {
    before.push_back(MustQuery(*engine, query));
  }

  const std::string path = TempPath("compacted");
  ASSERT_TRUE(engine->Compact(path).ok());
  const LiveStats stats = engine->LiveStats();
  EXPECT_EQ(stats.base_rows, base_rows + upserts - 2);
  EXPECT_EQ(stats.delta_rows, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.base_generation, 2u);
  EXPECT_EQ(engine->Metrics().compactions, 1u);

  // Identical answers from the rewritten base, including global ids.
  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(MustQuery(*engine, queries[q]), before[q],
                        "post-compaction query " + std::to_string(q));
  }
  // Ids keep counting from where the pre-compaction corpus left off.
  EXPECT_EQ(MustUpsert(*engine, "late arrival"), base_rows + upserts);
  engine->Stop();
  std::filesystem::remove(path);
}

TEST(Compaction, CompactedSnapshotCorruptionSweepFailsClosed) {
  // The compactor's output gets zero trust: every truncation and byte flip
  // of the file it writes must fail LoadFrom closed — this is the same
  // paranoid loader Engine::Compact re-reads through before the swap, so a
  // corrupt rewrite can never become the serving base.
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, 6), 3);
  for (const auto& record : Sentences(3, "fresh")) {
    MustUpsert(*engine, record);
  }
  ASSERT_TRUE(MustDelete(*engine, 1).ok());
  const std::string path = TempPath("sweep_compacted");
  ASSERT_TRUE(engine->Compact(path).ok());
  engine->Stop();

  const std::string image = ReadAll(path);
  std::filesystem::remove(path);
  ASSERT_GT(image.size(), 64u);
  ASSERT_LT(image.size(), 16384u) << "sweep corpus grew too big to be "
                                     "exhaustive; shrink the corpus";
  const std::string victim = TempPath("sweep_victim");
  for (size_t len = 0; len < image.size(); ++len) {
    WriteAll(victim, image.substr(0, len));
    EXPECT_FALSE(Snapshot::LoadFrom(victim).ok()) << "truncated to " << len;
  }
  std::string flipped = image;
  for (size_t pos = 0; pos < image.size(); ++pos) {
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5a);
    WriteAll(victim, flipped);
    EXPECT_FALSE(Snapshot::LoadFrom(victim).ok()) << "byte flip at " << pos;
    flipped[pos] = image[pos];
  }
  WriteAll(victim, image);
  EXPECT_TRUE(Snapshot::LoadFrom(victim).ok());  // harness is sound
  std::filesystem::remove(victim);
}

// ---------------------------------------------------------------------------
// Armed failpoints: every new fallible boundary fails closed with rollback.
// ---------------------------------------------------------------------------

TEST_F(StreamFaultTest, DeltaInsertFailpointFailsClosedWithoutBurningIds) {
  SKIP_IF_FAILPOINTS_OFF();
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, 6), 3);
  ASSERT_TRUE(
      fail::ConfigureSpec("stream/delta_insert", "error:unavailable,max=1")
          .ok());
  auto refused = engine->Upsert("doomed record");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().get().status().code(),
            Status::Code::kUnavailable);
  const LiveStats after = engine->LiveStats();
  EXPECT_EQ(after.delta_rows, 0u);  // fail-closed: nothing half-applied
  EXPECT_EQ(engine->Metrics().mutation_failures, 1u);
  // The refused upsert burned no id: the next one gets the first id.
  EXPECT_EQ(MustUpsert(*engine, "second attempt"), 6u);
  engine->Stop();
}

TEST_F(StreamFaultTest, TombstoneFailpointFailsClosedKeepsRowLive) {
  SKIP_IF_FAILPOINTS_OFF();
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, 6), 3);
  ASSERT_TRUE(
      fail::ConfigureSpec("stream/tombstone", "error:io,max=1").ok());
  EXPECT_EQ(MustDelete(*engine, 2).code(), Status::Code::kIoError);
  EXPECT_EQ(engine->LiveStats().tombstones, 0u);
  // The row is still live and deletable once the fault clears.
  EXPECT_TRUE(MustDelete(*engine, 2).ok());
  EXPECT_EQ(engine->LiveStats().tombstones, 1u);
  engine->Stop();
}

TEST_F(StreamFaultTest, CompactionWriteFailpointRollsBack) {
  SKIP_IF_FAILPOINTS_OFF();
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, 6), 3);
  for (const auto& record : Sentences(3, "fresh")) {
    MustUpsert(*engine, record);
  }
  const LiveStats before = engine->LiveStats();
  const auto queries = Sentences(6, "query");
  std::vector<std::vector<index::Neighbor>> expect;
  for (const auto& query : queries) {
    expect.push_back(MustQuery(*engine, query));
  }

  const std::string path = TempPath("failed_write");
  ASSERT_TRUE(
      fail::ConfigureSpec("compaction/write", "error:io,max=1").ok());
  EXPECT_EQ(engine->Compact(path).code(), Status::Code::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path)) << "partial output left";
  const LiveStats after = engine->LiveStats();
  EXPECT_EQ(after.base_generation, before.base_generation);
  EXPECT_EQ(after.delta_rows, before.delta_rows);
  EXPECT_EQ(engine->Metrics().compaction_failures, 1u);
  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(MustQuery(*engine, queries[q]), expect[q],
                        "rollback query " + std::to_string(q));
  }
  // The fault cleared: the same compaction now lands.
  EXPECT_TRUE(engine->Compact(path).ok());
  EXPECT_EQ(engine->LiveStats().base_generation,
            before.base_generation + 1);
  engine->Stop();
  std::filesystem::remove(path);
}

TEST_F(StreamFaultTest, CompactionSwapFailpointRollsBack) {
  SKIP_IF_FAILPOINTS_OFF();
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, 6), 3);
  for (const auto& record : Sentences(3, "fresh")) {
    MustUpsert(*engine, record);
  }
  const LiveStats before = engine->LiveStats();
  const std::string path = TempPath("failed_swap");
  // The write succeeds; the failure hits at the swap boundary — the old
  // base + delta must keep serving and the orphaned file must be removed.
  ASSERT_TRUE(
      fail::ConfigureSpec("compaction/swap", "error:unavailable,max=1")
          .ok());
  EXPECT_EQ(engine->Compact(path).code(), Status::Code::kUnavailable);
  EXPECT_FALSE(std::filesystem::exists(path)) << "orphaned rewrite left";
  const LiveStats after = engine->LiveStats();
  EXPECT_EQ(after.base_generation, before.base_generation);
  EXPECT_EQ(after.delta_rows, before.delta_rows);
  EXPECT_EQ(engine->Metrics().compaction_failures, 1u);
  engine->Stop();
}

// ---------------------------------------------------------------------------
// Background compactor: threshold trigger, failure tolerance, idempotence.
// ---------------------------------------------------------------------------

TEST(CompactorTest, TriggersOnThresholdAndSurvivesFailures) {
  std::atomic<uint64_t> delta_rows{0};
  std::atomic<int> compact_calls{0};
  std::atomic<bool> fail_next{true};
  CompactorOptions options;
  options.max_delta_rows = 8;
  options.max_tombstones = 8;
  options.interval_micros = 500;
  Compactor compactor(
      [&] {
        LiveStats stats;
        stats.delta_rows = delta_rows.load();
        return stats;
      },
      [&]() -> Status {
        ++compact_calls;
        if (fail_next.exchange(false)) {
          return Status::IoError("injected compaction failure");
        }
        delta_rows.store(0);
        return Status::Ok();
      },
      options);
  compactor.Start();
  compactor.Start();  // idempotent
  // Below threshold: no trigger.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(compact_calls.load(), 0);
  // Cross it: first attempt fails (counted, serving continues), the retry
  // on the next tick succeeds and resets the delta.
  delta_rows.store(9);
  for (int spin = 0; spin < 2000 && delta_rows.load() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delta_rows.load(), 0u);
  EXPECT_GE(compact_calls.load(), 2);
  EXPECT_GE(compactor.runs(), 2u);
  EXPECT_EQ(compactor.failures(), 1u);
  compactor.Stop();
  compactor.Stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan leg): reload and compaction hot-swaps under live
// mutation + query traffic, with the counter identity intact across swaps.
// ---------------------------------------------------------------------------

void ExpectIdentity(const EngineMetrics& metrics) {
  EXPECT_EQ(metrics.submitted,
            metrics.completed + metrics.expired + metrics.failed)
      << "submitted=" << metrics.submitted
      << " completed=" << metrics.completed << " expired=" << metrics.expired
      << " failed=" << metrics.failed;
}

TEST(LiveConcurrency, CompactionHotSwapsUnderMutationTraffic) {
  const size_t base_rows = 16;
  auto engine = MakeLiveEngine(MakeSnapshot(IndexKind::kExact, base_rows), 3);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};

  std::thread querier([&] {
    size_t i = 0;
    while (!stop.load()) {
      auto submitted = engine->Submit("query " + std::to_string(i++));
      if (!submitted.ok()) continue;
      if (submitted.value().get().ok()) ++answered;
    }
  });
  std::thread upserter([&] {
    size_t i = 0;
    while (!stop.load()) {
      auto submitted = engine->Upsert("churn " + std::to_string(i++));
      if (submitted.ok()) submitted.value().get();
    }
  });
  std::thread deleter([&] {
    // Deletes race against upserts and compactions; NotFound and already-
    // dead answers are expected — only crashes/hangs/corruption are bugs.
    uint64_t id = 0;
    while (!stop.load()) {
      auto submitted = engine->Delete(id++ % (base_rows * 4));
      if (submitted.ok()) submitted.value().get();
    }
  });

  const std::string path = TempPath("concurrent_compact");
  size_t compactions = 0;
  for (int round = 0; round < 8; ++round) {
    if (engine->Compact(path).ok()) ++compactions;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  querier.join();
  upserter.join();
  deleter.join();
  engine->Stop();
  std::filesystem::remove(path);

  EXPECT_GT(compactions, 0u);
  EXPECT_GT(answered.load(), 0u);
  ExpectIdentity(engine->Metrics());
  // The overlay still reconciles after every swap: what remains live is
  // exactly base + delta - tombstones.
  const LiveStats stats = engine->LiveStats();
  EXPECT_EQ(stats.live_rows,
            stats.base_rows + stats.delta_rows - stats.tombstones);
}

TEST(LiveConcurrency, ReloadSwapsBaseUnderMutationTraffic) {
  // Satellite regression: a v2 (mmap, trusted-load-capable) snapshot
  // reloaded while upserts/deletes/queries are in flight must neither tear
  // a query nor lose a mutation — and the reload path must go through the
  // paranoid (checksum-verifying) loader even though trusted mode exists.
  const size_t base_rows = 16;
  Snapshot base = MakeSnapshot(IndexKind::kExact, base_rows);
  const std::string path = TempPath("reload_base");
  ASSERT_TRUE(base.SaveTo(path).ok());  // EMBS0002 by default
  auto engine = MakeLiveEngine(std::move(base), 3);

  std::atomic<bool> stop{false};
  std::thread querier([&] {
    size_t i = 0;
    while (!stop.load()) {
      auto submitted = engine->Submit("query " + std::to_string(i++));
      if (submitted.ok()) submitted.value().get();
    }
  });
  std::thread upserter([&] {
    size_t i = 0;
    while (!stop.load()) {
      auto submitted = engine->Upsert("churn " + std::to_string(i++));
      if (submitted.ok()) submitted.value().get();
    }
  });
  std::thread deleter([&] {
    uint64_t id = 0;
    while (!stop.load()) {
      auto submitted = engine->Delete(id++ % (base_rows * 4));
      if (submitted.ok()) submitted.value().get();
    }
  });

  size_t reloads = 0;
  for (int round = 0; round < 6; ++round) {
    if (engine->ReloadSnapshot(path).ok()) ++reloads;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  querier.join();
  upserter.join();
  deleter.join();
  engine->Stop();
  std::filesystem::remove(path);

  EXPECT_GT(reloads, 0u);
  EXPECT_EQ(engine->Metrics().reloads, reloads);
  ExpectIdentity(engine->Metrics());
}

}  // namespace
}  // namespace ember
