// Replica-recovery primitive tests (DESIGN.md §15): the sequenced
// MutationLog ring and its EMBL0001 on-disk segment (round trip plus an
// exhaustive byte-flip corruption sweep), the order-independent corpus
// digest (incremental maintenance vs a from-scratch oracle, invariance
// under compaction), the LSH compaction rebuild oracle, and the fail-closed
// behavior of every recover/* failpoint at its primitive.

#include "recover/mutation_log.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "index/lsh_index.h"
#include "la/vector_ops.h"
#include "recover/digest.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

#define SKIP_IF_FAILPOINTS_OFF()                               \
  do {                                                         \
    if (!::ember::fail::kEnabled) {                            \
      GTEST_SKIP() << "failpoints compiled out of this build"; \
    }                                                          \
  } while (0)

namespace ember {
namespace {

using recover::CorpusDigest;
using recover::MutationLog;
using recover::MutationRecord;
using serve::Engine;
using serve::EngineOptions;
using serve::IndexKind;
using serve::Snapshot;
using serve::SnapshotManifest;

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo() {
  embed::ModelInfo info;
  info.code = "HT";
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

class HashModel : public embed::EmbeddingModel {
 public:
  HashModel() : EmbeddingModel(HashModelInfo()) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23));
  }
  return out;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ember_recover_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

MutationRecord Upsert(uint64_t id, float seed) {
  MutationRecord record;
  record.op = MutationRecord::Op::kUpsert;
  record.id = id;
  record.embedding.assign(kDim, seed);
  return record;
}

MutationRecord Delete(uint64_t id) {
  MutationRecord record;
  record.op = MutationRecord::Op::kDelete;
  record.id = id;
  return record;
}

// ---------------------------------------------------------------------------
// MutationLog: sequencing, the bounded ring, and rollback
// ---------------------------------------------------------------------------

TEST(MutationLog, AssignsMonotoneSeqsAndReadsSuffixes) {
  MutationLog log(16);
  EXPECT_EQ(log.last_seq(), 0u);
  EXPECT_EQ(log.first_seq(), 1u);
  for (uint64_t i = 0; i < 5; ++i) {
    auto seq = log.Append(Upsert(i, 0.5f));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), i + 1);
    log.CommitLast(i);
  }
  EXPECT_EQ(log.size(), 5u);
  auto all = log.ReadFrom(0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(all.value()[i].seq, i + 1);
    EXPECT_EQ(all.value()[i].id, i);
  }
  auto tail = log.ReadFrom(3);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.value().size(), 2u);
  EXPECT_EQ(tail.value()[0].seq, 4u);
  auto none = log.ReadFrom(5);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(MutationLog, UncommittedAppendInvisibleToReplay) {
  // A record mid-broadcast (appended, not yet committed) must not reach a
  // concurrent replay: its id is still the caller's placeholder and it may
  // yet be rolled back by a unanimous refusal.
  MutationLog log(8);
  ASSERT_TRUE(log.Append(Upsert(1, 1.f)).ok());
  log.CommitLast(1);
  ASSERT_TRUE(log.Append(Upsert(7, 2.f)).ok());
  EXPECT_EQ(log.last_seq(), 2u);
  EXPECT_EQ(log.committed_seq(), 1u);
  auto mid = log.ReadFrom(0);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid.value().size(), 1u) << "in-flight record leaked to replay";
  EXPECT_EQ(mid.value()[0].seq, 1u);
  log.CommitLast(7);
  auto after = log.ReadFrom(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 2u);
}

TEST(MutationLog, RingDropsOldestAndTruncationFailsLoudly) {
  MutationLog log(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.Append(Upsert(i, 1.f)).ok());
    log.CommitLast(i);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.first_seq(), 7u);
  EXPECT_EQ(log.last_seq(), 10u);
  // A replica at seq 6 can still replay (first retained record is 7)...
  ASSERT_TRUE(log.ReadFrom(6).ok());
  // ...but one at seq 5 needs records the ring dropped: NotFound, the
  // signal to fall back to snapshot resync.
  auto truncated = log.ReadFrom(5);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), Status::Code::kNotFound);
}

TEST(MutationLog, PopLastRollsBackAndCommitRewritesWinner) {
  MutationLog log(8);
  ASSERT_TRUE(log.Append(Upsert(1, 1.f)).ok());
  log.CommitLast(1);
  ASSERT_TRUE(log.Append(Upsert(7, 2.f)).ok());
  // The fleet assigned a different id than the record guessed: the commit
  // patches it so replay reproduces the actual assignment.
  log.CommitLast(9);
  auto records = log.ReadFrom(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[1].id, 9u);
  // Zero replicas accepted: the mutation never happened, the log must not
  // claim it.
  ASSERT_TRUE(log.Append(Upsert(5, 3.f)).ok());
  log.PopLast();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.last_seq(), 2u);
  // Committed history is immutable: a stray PopLast with no in-flight
  // record is a no-op.
  log.PopLast();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.last_seq(), 2u);
  auto seq = log.Append(Upsert(3, 3.f));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 3u) << "rolled-back seq must be reassigned";
}

TEST(MutationLog, FailedBroadcastAtCapacityKeepsReplayWindow) {
  // Eviction is deferred to commit: an append that ends up popped (zero
  // replicas accepted) must not cost the oldest retained record — each
  // failed mutation at capacity must NOT silently shrink the replay window.
  MutationLog log(2);
  for (uint64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(log.Append(Upsert(i, 1.f)).ok());
    log.CommitLast(i);
  }
  EXPECT_EQ(log.first_seq(), 1u);
  ASSERT_TRUE(log.Append(Upsert(9, 9.f)).ok());
  log.PopLast();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.first_seq(), 1u) << "failed broadcast shrank the window";
  ASSERT_TRUE(log.ReadFrom(0).ok());
  // A committed append evicts as usual.
  ASSERT_TRUE(log.Append(Upsert(2, 2.f)).ok());
  log.CommitLast(2);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.first_seq(), 2u);
}

// ---------------------------------------------------------------------------
// MutationLog: the EMBL0001 on-disk segment
// ---------------------------------------------------------------------------

TEST(MutationLog, SegmentRoundTripsBitIdentically) {
  MutationLog log(32);
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(log
                    .Append(i % 3 == 2 ? Delete(i / 3)
                                       : Upsert(i, 0.25f * (i + 1)))
                    .ok());
    log.CommitLast(i % 3 == 2 ? i / 3 : i);
  }
  // An in-flight uncommitted record must not be persisted: a restart would
  // otherwise replay a mutation that was never acknowledged.
  ASSERT_TRUE(log.Append(Upsert(99, 9.f)).ok());
  const std::string path = TempPath("segment");
  ASSERT_TRUE(log.SaveTo(path).ok());
  log.PopLast();
  MutationLog loaded(32);
  ASSERT_TRUE(loaded.LoadFrom(path).ok());
  EXPECT_EQ(loaded.last_seq(), log.last_seq());
  EXPECT_EQ(loaded.first_seq(), log.first_seq());
  auto a = log.ReadFrom(0);
  auto b = loaded.ReadFrom(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].seq, b.value()[i].seq);
    EXPECT_EQ(a.value()[i].op, b.value()[i].op);
    EXPECT_EQ(a.value()[i].id, b.value()[i].id);
    EXPECT_EQ(a.value()[i].embedding, b.value()[i].embedding);
  }
  // A smaller-capacity log keeps only the newest records.
  MutationLog small(4);
  ASSERT_TRUE(small.LoadFrom(path).ok());
  EXPECT_EQ(small.size(), 4u);
  EXPECT_EQ(small.last_seq(), log.last_seq());
  EXPECT_EQ(small.first_seq(), log.last_seq() - 3);
  std::filesystem::remove(path);
}

TEST(MutationLog, SegmentFailsClosedOnEveryByteFlip) {
  MutationLog log(8);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Append(Upsert(i, 0.125f * (i + 1))).ok());
    log.CommitLast(i);
  }
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(log.SaveTo(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    out.close();
    MutationLog loaded(8);
    EXPECT_FALSE(loaded.LoadFrom(path).ok())
        << "byte flip at offset " << pos << " loaded anyway";
    EXPECT_EQ(loaded.size(), 0u) << "failed load must leave the log empty";
  }
  // Truncations fail too.
  for (size_t keep : {size_t{0}, size_t{7}, bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    MutationLog loaded(8);
    EXPECT_FALSE(loaded.LoadFrom(path).ok());
  }
  std::filesystem::remove(path);
}

TEST(MutationLog, AppendFailpointFailsClosed) {
  SKIP_IF_FAILPOINTS_OFF();
  MutationLog log(8);
  ASSERT_TRUE(log.Append(Upsert(0, 1.f)).ok());
  log.CommitLast(0);
  ASSERT_TRUE(fail::ConfigureSpec("recover/log_append", "error:io").ok());
  auto refused = log.Append(Upsert(1, 2.f));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kIoError);
  fail::Disarm("recover/log_append");
  // The fault fired BEFORE the ring was touched: no seq was burned.
  EXPECT_EQ(log.last_seq(), 1u);
  EXPECT_EQ(log.size(), 1u);
  auto seq = log.Append(Upsert(1, 2.f));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 2u);
}

// ---------------------------------------------------------------------------
// Corpus digest: incremental fold vs from-scratch oracle
// ---------------------------------------------------------------------------

TEST(CorpusDigestTest, RowHashSeparatesIdAndContent) {
  std::vector<float> a(kDim, 0.5f);
  std::vector<float> b(kDim, 0.5f);
  b[3] = 0.25f;
  EXPECT_EQ(recover::RowHash(7, a.data(), kDim),
            recover::RowHash(7, a.data(), kDim));
  EXPECT_NE(recover::RowHash(7, a.data(), kDim),
            recover::RowHash(8, a.data(), kDim));
  EXPECT_NE(recover::RowHash(7, a.data(), kDim),
            recover::RowHash(7, b.data(), kDim));
  CorpusDigest x{3, 0, 123};
  CorpusDigest y{3, 9, 123};  // tombstone counts excluded from comparison
  EXPECT_TRUE(recover::SameContent(x, y));
  y.content = 124;
  EXPECT_FALSE(recover::SameContent(x, y));
}

/// The from-scratch oracle: fold RowHash over a mirror of the live set.
CorpusDigest OracleDigest(
    const std::map<uint64_t, std::vector<float>>& mirror) {
  CorpusDigest digest;
  digest.rows = mirror.size();
  for (const auto& [id, row] : mirror) {
    digest.content += recover::RowHash(id, row.data(), row.size());
  }
  return digest;
}

TEST(CorpusDigestTest, EngineMaintainsDigestIncrementally) {
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  const auto base_sentences = Sentences(12, "base");
  la::Matrix corpus = model->VectorizeAll(base_sentences);
  std::map<uint64_t, std::vector<float>> mirror;
  for (size_t i = 0; i < corpus.rows(); ++i) {
    mirror[i] = std::vector<float>(corpus.Row(i),
                                   corpus.Row(i) + corpus.cols());
  }
  SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.default_k = 5;
  manifest.kind = IndexKind::kExact;
  EngineOptions options;
  options.live = true;
  auto engine = Engine::Create(Snapshot::Build(manifest, std::move(corpus)),
                               model, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto check = [&](const char* when) {
    auto digest = engine.value()->Digest();
    ASSERT_TRUE(digest.ok()) << digest.status().ToString();
    const CorpusDigest expect = OracleDigest(mirror);
    EXPECT_EQ(digest.value().rows, expect.rows) << when;
    EXPECT_EQ(digest.value().content, expect.content) << when;
  };
  check("initial");

  // Deterministic interleaving of upserts and deletes, with a compaction in
  // the middle — the digest must be invariant under the base rewrite.
  uint64_t step_hash = 0x9e3779b97f4a7c15ull;
  for (int step = 0; step < 30; ++step) {
    step_hash = step_hash * 6364136223846793005ull + 1442695040888963407ull;
    if (step == 15) {
      const std::string path = TempPath("digest_compact");
      ASSERT_TRUE(engine.value()->Compact(path).ok());
      std::filesystem::remove(path);
      check("after compaction");
    }
    if (!mirror.empty() && step_hash % 3 == 0) {
      auto victim = mirror.begin();
      std::advance(victim, step_hash % mirror.size());
      auto submitted = engine.value()->Delete(victim->first);
      ASSERT_TRUE(submitted.ok());
      ASSERT_TRUE(submitted.value().get().ok());
      mirror.erase(victim);
    } else {
      std::vector<float> row(kDim, 0.f);
      model->EncodeInto("streamed " + std::to_string(step), row.data());
      auto submitted = engine.value()->UpsertEmbedded(row);
      ASSERT_TRUE(submitted.ok());
      auto reply = submitted.value().get();
      ASSERT_TRUE(reply.ok());
      mirror[reply.value().id] = row;
    }
  }
  check("final");
  engine.value()->Stop();
}

TEST(CorpusDigestTest, DigestFailpointFailsClosed) {
  SKIP_IF_FAILPOINTS_OFF();
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  la::Matrix corpus = model->VectorizeAll(Sentences(6, "base"));
  SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.kind = IndexKind::kExact;
  auto engine = Engine::Create(Snapshot::Build(manifest, std::move(corpus)),
                               model, {});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(fail::ConfigureSpec("recover/digest", "error:io").ok());
  auto refused = engine.value()->Digest();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kIoError);
  fail::Disarm("recover/digest");
  EXPECT_TRUE(engine.value()->Digest().ok());
  engine.value()->Stop();
}

// ---------------------------------------------------------------------------
// LSH compaction rebuild: oracle equality with a from-scratch build
// ---------------------------------------------------------------------------

TEST(LshCompaction, CompactedBaseMatchesFromScratchBuild) {
  auto model = std::make_shared<HashModel>();
  model->Initialize();
  const auto base_sentences = Sentences(40, "base");
  la::Matrix corpus = model->VectorizeAll(base_sentences);
  index::LshOptions lsh;
  lsh.tables = 6;
  lsh.bits = 8;
  lsh.seed = 42;
  SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.default_k = 5;
  manifest.kind = IndexKind::kLsh;
  la::Matrix copy(corpus.rows(), corpus.cols());
  std::copy(corpus.data(), corpus.data() + corpus.rows() * corpus.cols(),
            copy.data());
  EngineOptions options;
  options.live = true;
  options.k = 5;
  auto engine = Engine::Create(
      Snapshot::Build(manifest, std::move(copy), {}, lsh), model, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const auto streamed = Sentences(9, "streamed");
  for (const auto& sentence : streamed) {
    auto submitted = engine.value()->Upsert(sentence);
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(submitted.value().get().ok());
  }
  const std::string path = TempPath("lsh_compact");
  ASSERT_TRUE(engine.value()->Compact(path).ok())
      << "LSH bases must now compact (options round-trip through the base)";

  // From-scratch oracle over the merged corpus with the SAME LshOptions:
  // the hyperplanes derive from the seed, so the rebuilt tables must answer
  // bit-identically.
  la::Matrix streamed_rows = model->VectorizeAll(streamed);
  la::Matrix merged(corpus.rows() + streamed_rows.rows(), corpus.cols());
  std::copy(corpus.data(), corpus.data() + corpus.rows() * corpus.cols(),
            merged.data());
  std::copy(streamed_rows.data(),
            streamed_rows.data() + streamed_rows.rows() * streamed_rows.cols(),
            merged.data() + corpus.rows() * corpus.cols());
  const Snapshot oracle = Snapshot::Build(manifest, std::move(merged), {}, lsh);

  auto compacted = Snapshot::LoadFrom(path);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value().manifest().kind, IndexKind::kLsh);
  EXPECT_EQ(compacted.value().lsh_options().seed, lsh.seed);
  EXPECT_EQ(compacted.value().lsh_options().tables, lsh.tables);

  const la::Matrix queries =
      model->VectorizeAll(Sentences(16, "probe"));
  const auto expect = oracle.QueryBatch(queries, 5);
  const auto got = compacted.value().QueryBatch(queries, 5);
  ASSERT_EQ(expect.size(), got.size());
  for (size_t q = 0; q < expect.size(); ++q) {
    ASSERT_EQ(expect[q].size(), got[q].size()) << "query " << q;
    for (size_t i = 0; i < expect[q].size(); ++i) {
      EXPECT_EQ(expect[q][i].id, got[q][i].id) << "query " << q;
      EXPECT_EQ(expect[q][i].distance, got[q][i].distance) << "query " << q;
    }
  }
  engine.value()->Stop();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ember
