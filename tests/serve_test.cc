#include "serve/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "common/histogram.h"
#include "common/timer.h"
#include "core/vector_cache.h"
#include "la/vector_ops.h"
#include "serve/snapshot.h"

namespace ember::serve {
namespace {

// ---------------------------------------------------------------------------
// Test embedding model: deterministic, thread-safe, and ~instant, so the
// engine tests exercise queueing/batching rather than transformer math.
// ---------------------------------------------------------------------------

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo(const std::string& code) {
  embed::ModelInfo info;
  info.code = code;
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

class HashModel : public embed::EmbeddingModel {
 public:
  explicit HashModel(std::string code = "HT",
                     int64_t encode_sleep_micros = 0)
      : EmbeddingModel(HashModelInfo(code)),
        encode_sleep_micros_(encode_sleep_micros) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    if (encode_sleep_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(encode_sleep_micros_));
    }
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}

 private:
  int64_t encode_sleep_micros_;
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23) + " value" +
                  std::to_string((i * 13) % 41));
  }
  return out;
}

Snapshot MakeSnapshot(IndexKind kind, size_t rows,
                      const std::string& model_code = "HT",
                      uint32_t default_k = 5) {
  HashModel model(model_code);
  model.Initialize();
  la::Matrix corpus = model.VectorizeAll(Sentences(rows, "corpus"));
  SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = default_k;
  manifest.kind = kind;
  manifest.dataset = "unit-test";
  index::HnswOptions hnsw_options;
  hnsw_options.seed = 7;
  index::LshOptions lsh_options;
  lsh_options.seed = 7;
  return Snapshot::Build(std::move(manifest), std::move(corpus),
                         hnsw_options, lsh_options);
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ember_serve_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

void ExpectSameResults(
    const std::vector<std::vector<index::Neighbor>>& a,
    const std::vector<std::vector<index::Neighbor>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
    for (size_t i = 0; i < a[q].size(); ++i) {
      EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q;
      EXPECT_EQ(a[q][i].distance, b[q][i].distance) << "query " << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot persistence
// ---------------------------------------------------------------------------

class SnapshotKindTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SnapshotKindTest, FileRoundTripBitIdenticalIncludingEdgeSizes) {
  HashModel model;
  model.Initialize();
  const la::Matrix queries = model.VectorizeAll(Sentences(30, "query"));
  for (const size_t rows : {size_t{0}, size_t{1}, size_t{150}}) {
    const Snapshot built = MakeSnapshot(GetParam(), rows);
    const std::string path = TempPath("roundtrip");
    ASSERT_TRUE(built.SaveTo(path).ok());
    auto loaded = Snapshot::LoadFrom(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().manifest().model_code, "HT");
    EXPECT_EQ(loaded.value().manifest().rows, rows);
    EXPECT_EQ(loaded.value().manifest().kind, GetParam());
    ExpectSameResults(built.QueryBatch(queries, 5),
                      loaded.value().QueryBatch(queries, 5));
    std::filesystem::remove(path);
  }
}

TEST_P(SnapshotKindTest, EngineFromDiskMatchesFreshlyBuiltPipeline) {
  // The acceptance criterion: an engine loaded from disk returns
  // bit-identical k-NN results to the freshly built pipeline.
  const Snapshot built = MakeSnapshot(GetParam(), 120);
  const std::string path = TempPath("engine_reload");
  ASSERT_TRUE(built.SaveTo(path).ok());
  auto loaded = Snapshot::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::filesystem::remove(path);

  const std::vector<std::string> queries = Sentences(40, "query");
  HashModel reference_model;
  reference_model.Initialize();
  const la::Matrix query_vectors = reference_model.VectorizeAll(queries);
  const auto expected = built.QueryBatch(query_vectors, 5);

  EngineOptions options;
  options.max_batch = 7;  // force multi-request batches
  options.max_wait_micros = 500;
  auto engine = Engine::Create(std::move(loaded).value(),
                               std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<std::future<Result<QueryReply>>> futures;
  for (const std::string& query : queries) {
    auto submitted = engine.value()->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    Result<QueryReply> reply = futures[q].get();
    ASSERT_TRUE(reply.ok());
    const auto& neighbors = reply.value().neighbors;
    ASSERT_EQ(neighbors.size(), expected[q].size()) << "query " << q;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_EQ(neighbors[i].id, expected[q][i].id) << "query " << q;
      EXPECT_EQ(neighbors[i].distance, expected[q][i].distance)
          << "query " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, SnapshotKindTest,
                         ::testing::Values(IndexKind::kExact,
                                           IndexKind::kHnsw,
                                           IndexKind::kLsh),
                         [](const auto& info) {
                           return std::string(IndexKindName(info.param));
                         });

// Shared fail-closed sweep: every prefix truncation and a stride of
// single-bit flips across the image must be rejected by LoadFrom, and the
// pristine image must still load (so the rejections are real detections,
// not an unrelated I/O problem).
void SweepTruncationsAndBitFlips(const Snapshot& built,
                                 SnapshotFormat format,
                                 const std::string& tag) {
  const std::string path = TempPath("corruption_" + tag);
  ASSERT_TRUE(built.SaveTo(path, format).ok());
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    image = buffer.str();
  }
  ASSERT_GT(image.size(), 100u);

  const std::string victim = TempPath("corruption_victim_" + tag);
  const auto write_victim = [&](const std::string& bytes) {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Truncations at every granularity: header, mid-payload, mid-trailer.
  for (const size_t len :
       {size_t{0}, size_t{5}, size_t{23}, image.size() / 2,
        image.size() - 17, image.size() - 1}) {
    write_victim(image.substr(0, len));
    EXPECT_FALSE(Snapshot::LoadFrom(victim).ok())
        << tag << " truncated to " << len;
  }

  // Single-bit flips across the file (magic, header, manifest, section
  // table, matrix payload, graph) must all be caught by a checksum.
  for (size_t pos = 0; pos < image.size(); pos += image.size() / 37 + 1) {
    std::string flipped = image;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    write_victim(flipped);
    EXPECT_FALSE(Snapshot::LoadFrom(victim).ok())
        << tag << " bit flip at " << pos;
  }

  write_victim(image);
  EXPECT_TRUE(Snapshot::LoadFrom(victim).ok());
  std::filesystem::remove(path);
  std::filesystem::remove(victim);
}

TEST(SnapshotCorruptionTest, TruncationAndBitFlipsFailClosed) {
  // EMBS0002 is the default format, so this drives the mmap loader.
  SweepTruncationsAndBitFlips(MakeSnapshot(IndexKind::kHnsw, 80),
                              SnapshotFormat::kV2, "v2_hnsw");
}

TEST(SnapshotCorruptionTest, LegacyV1SweepStillFailsClosed) {
  SweepTruncationsAndBitFlips(MakeSnapshot(IndexKind::kHnsw, 80),
                              SnapshotFormat::kV1, "v1_hnsw");
}

TEST(SnapshotCorruptionTest, QuantizedV2SweepFailsClosed) {
  Snapshot built = MakeSnapshot(IndexKind::kExact, 80);
  ASSERT_TRUE(built.Quantize().ok());
  SweepTruncationsAndBitFlips(built, SnapshotFormat::kV2, "v2_int8");
}

TEST(SnapshotFormatTest, V2LoadIsBitIdenticalToV1AndConvertsBothWays) {
  HashModel model;
  model.Initialize();
  const la::Matrix queries = model.VectorizeAll(Sentences(25, "query"));
  for (const IndexKind kind :
       {IndexKind::kExact, IndexKind::kHnsw, IndexKind::kLsh}) {
    const Snapshot built = MakeSnapshot(kind, 90);
    const std::string v1_path = TempPath("fmt_v1");
    const std::string v2_path = TempPath("fmt_v2");
    ASSERT_TRUE(built.SaveTo(v1_path, SnapshotFormat::kV1).ok());
    ASSERT_TRUE(built.SaveTo(v2_path, SnapshotFormat::kV2).ok());
    auto v1 = Snapshot::LoadFrom(v1_path);
    auto v2 = Snapshot::LoadFrom(v2_path);
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();
    ASSERT_TRUE(v2.ok()) << v2.status().ToString();

    // The heap loader is the compatibility oracle: the mmap'ed container
    // must answer every query bit-identically.
    ExpectSameResults(v1.value().QueryBatch(queries, 5),
                      v2.value().QueryBatch(queries, 5));

    // Provenance metrics: v2 maps the file, v1 copies onto the heap.
    EXPECT_GT(v2.value().bytes_mapped(), 0u) << IndexKindName(kind);
    EXPECT_EQ(v1.value().bytes_mapped(), 0u);
    EXPECT_GT(v2.value().load_micros(), 0u);

    // Conversion oracle both directions: a v2-loaded (mmap-backed)
    // snapshot re-saved as v1 must be byte-identical to the direct v1
    // save, so EMBS0001 <-> EMBS0002 round trips lose nothing.
    const std::string back_path = TempPath("fmt_v1_back");
    ASSERT_TRUE(v2.value().SaveTo(back_path, SnapshotFormat::kV1).ok());
    std::ifstream a(v1_path, std::ios::binary), b(back_path, std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << IndexKindName(kind);

    std::filesystem::remove(v1_path);
    std::filesystem::remove(v2_path);
    std::filesystem::remove(back_path);
  }
}

TEST(SnapshotFormatTest, TrustedLoadSkipsPayloadChecksumButKeepsBounds) {
  const Snapshot built = MakeSnapshot(IndexKind::kExact, 60);
  const std::string path = TempPath("fmt_trusted");
  ASSERT_TRUE(built.SaveTo(path).ok());
  LoadOptions trusted;
  trusted.verify_checksum = false;
  auto loaded = Snapshot::LoadFrom(path, trusted);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded.value().bytes_mapped(), 0u);
  HashModel model;
  model.Initialize();
  const la::Matrix queries = model.VectorizeAll(Sentences(10, "query"));
  ExpectSameResults(built.QueryBatch(queries, 5),
                    loaded.value().QueryBatch(queries, 5));
  // Even in trusted mode the header is checksummed: corrupting a section
  // offset must never redirect a read.
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    image = buffer.str();
  }
  image[40] = static_cast<char>(image[40] ^ 0x01);  // table_offset bytes
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  EXPECT_FALSE(Snapshot::LoadFrom(path, trusted).ok());
  std::filesystem::remove(path);
}

TEST(SnapshotQuantizedTest, Int8SnapshotRoundTripsAndMatchesInMemory) {
  Snapshot built = MakeSnapshot(IndexKind::kExact, 120);
  ASSERT_TRUE(built.Quantize().ok());
  EXPECT_EQ(built.manifest().storage, StorageKind::kInt8);
  ASSERT_TRUE(built.Validate().ok());

  // EMBS0001 has no section for the quantized tier; the save must refuse
  // rather than silently drop it.
  const std::string path = TempPath("quantized");
  EXPECT_EQ(built.SaveTo(path, SnapshotFormat::kV1).code(),
            Status::Code::kInvalidArgument);

  ASSERT_TRUE(built.SaveTo(path).ok());
  auto loaded = Snapshot::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().manifest().storage, StorageKind::kInt8);
  ASSERT_TRUE(loaded.value().Validate().ok());

  // The mmap'ed int8 tier must reproduce the in-memory quantized scan
  // (same codes, same integer kernels, same float rescore) bit for bit.
  HashModel model;
  model.Initialize();
  const la::Matrix queries = model.VectorizeAll(Sentences(30, "query"));
  ExpectSameResults(built.QueryBatch(queries, 5),
                    loaded.value().QueryBatch(queries, 5));
  std::filesystem::remove(path);
}

TEST(SnapshotQuantizedTest, QuantizeRejectsNonExactKinds) {
  Snapshot hnsw = MakeSnapshot(IndexKind::kHnsw, 20);
  EXPECT_EQ(hnsw.Quantize().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(hnsw.manifest().storage, StorageKind::kFloat32);
}

// ---------------------------------------------------------------------------
// VectorCache hardening (atomic publish + checksummed format)
// ---------------------------------------------------------------------------

TEST(VectorCacheTest, CorruptedEntryMissesAndIsRecomputed) {
  const std::string dir = TempPath("cache_dir");
  std::filesystem::create_directories(dir);
  core::VectorCache cache(dir);
  HashModel model;
  const std::vector<std::string> sentences = Sentences(12, "cached");

  double seconds = 0;
  const la::Matrix fresh =
      cache.GetOrCompute(model, "k1", sentences, &seconds);
  EXPECT_GE(seconds, 0.0);  // computed
  double hit_seconds = 0;
  const la::Matrix hit =
      cache.GetOrCompute(model, "k1", sentences, &hit_seconds);
  EXPECT_EQ(hit_seconds, -1.0);  // served from disk
  EXPECT_TRUE(hit == fresh);

  // No temp files linger after the atomic publish.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".vec") << entry.path();
  }
  EXPECT_EQ(files, 1u);

  // Corrupt the entry every way a crashed writer or bad disk could:
  // truncation and a flipped byte. Both must miss (recompute), not crash
  // or return garbage.
  std::string entry_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    entry_path = entry.path().string();
  }
  std::string image;
  {
    std::ifstream in(entry_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    image = buffer.str();
  }
  for (int mode = 0; mode < 2; ++mode) {
    std::string bad = mode == 0 ? image.substr(0, image.size() / 2) : image;
    if (mode == 1) bad[bad.size() / 3] ^= 0x40;
    {
      std::ofstream out(entry_path, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    double recompute_seconds = 0;
    const la::Matrix recomputed =
        cache.GetOrCompute(model, "k1", sentences, &recompute_seconds);
    EXPECT_GE(recompute_seconds, 0.0) << "mode " << mode << " served corrupt";
    EXPECT_TRUE(recomputed == fresh) << "mode " << mode;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Engine behaviour
// ---------------------------------------------------------------------------

TEST(EngineTest, RefusesMismatchedModel) {
  auto engine =
      Engine::Create(MakeSnapshot(IndexKind::kExact, 20, "XX"),
                     std::make_shared<HashModel>("HT"), EngineOptions{});
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Status::Code::kInvalidArgument);
}

TEST(EngineTest, SubmitAfterStopIsRejectedNotDropped) {
  auto engine = Engine::Create(MakeSnapshot(IndexKind::kExact, 20),
                               std::make_shared<HashModel>(), EngineOptions{});
  ASSERT_TRUE(engine.ok());
  engine.value()->Stop();
  auto submitted = engine.value()->Submit("late record");
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(engine.value()->Metrics().rejected, 1u);
}

TEST(EngineTest, ExpiredDeadlinesAreShedBeforeEmbedding) {
  // A slow model makes the first batch occupy the worker while stale
  // requests pile up behind it; they must come back DeadlineExceeded.
  EngineOptions options;
  options.max_batch = 1;
  options.max_wait_micros = 0;
  auto engine =
      Engine::Create(MakeSnapshot(IndexKind::kExact, 20),
                     std::make_shared<HashModel>("HT", 20000), options);
  ASSERT_TRUE(engine.ok());
  auto first = engine.value()->Submit("in flight");
  ASSERT_TRUE(first.ok());
  std::vector<std::future<Result<QueryReply>>> stale;
  for (int i = 0; i < 5; ++i) {
    auto submitted = engine.value()->Submit(
        "stale " + std::to_string(i),
        SteadyNow() - std::chrono::milliseconds(1));
    ASSERT_TRUE(submitted.ok());
    stale.push_back(std::move(submitted).value());
  }
  EXPECT_TRUE(first.value().get().ok());
  for (auto& future : stale) {
    const Result<QueryReply> reply = future.get();
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), Status::Code::kDeadlineExceeded);
  }
  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.expired, 5u);
  EXPECT_EQ(metrics.completed, 1u);
}

TEST(EngineTest, FullQueueRejectsImmediately) {
  EngineOptions options;
  options.max_batch = 1;
  options.max_wait_micros = 0;
  options.max_queue = 4;
  auto engine =
      Engine::Create(MakeSnapshot(IndexKind::kExact, 20),
                     std::make_shared<HashModel>("HT", 5000), options);
  ASSERT_TRUE(engine.ok());
  size_t accepted = 0, rejected = 0;
  std::vector<std::future<Result<QueryReply>>> futures;
  for (int i = 0; i < 64; ++i) {
    auto submitted = engine.value()->Submit("r" + std::to_string(i));
    if (submitted.ok()) {
      ++accepted;
      futures.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), Status::Code::kUnavailable);
      ++rejected;
    }
  }
  // With a 5 ms encode the worker cannot drain 64 instant submissions
  // through a 4-deep queue.
  EXPECT_GT(rejected, 0u);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.submitted, accepted);
  EXPECT_EQ(metrics.rejected, rejected);
  EXPECT_EQ(metrics.completed, accepted);
}

TEST(EngineTest, PerRequestResultsIndependentOfBatchComposition) {
  // The §9 determinism contract: the same record must return identical
  // neighbors whether it rides in a big mixed batch or alone.
  const Snapshot snapshot = MakeSnapshot(IndexKind::kExact, 100);
  const std::vector<std::string> queries = Sentences(20, "query");
  HashModel reference_model;
  reference_model.Initialize();
  const auto expected =
      snapshot.QueryBatch(reference_model.VectorizeAll(queries), 5);

  for (const size_t max_batch : {size_t{1}, size_t{20}}) {
    EngineOptions options;
    options.max_batch = max_batch;
    options.max_wait_micros = max_batch == 1 ? 0 : 2000;
    auto engine = Engine::Create(snapshot, std::make_shared<HashModel>(),
                                 options);
    ASSERT_TRUE(engine.ok());
    std::vector<std::future<Result<QueryReply>>> futures;
    for (const std::string& query : queries) {
      auto submitted = engine.value()->Submit(query);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (size_t q = 0; q < futures.size(); ++q) {
      Result<QueryReply> reply = futures[q].get();
      ASSERT_TRUE(reply.ok());
      ASSERT_EQ(reply.value().neighbors.size(), expected[q].size());
      for (size_t i = 0; i < expected[q].size(); ++i) {
        EXPECT_EQ(reply.value().neighbors[i].id, expected[q][i].id);
        EXPECT_EQ(reply.value().neighbors[i].distance,
                  expected[q][i].distance);
      }
    }
  }
}

TEST(EngineStressTest, MultiProducerNoLostNoDuplicatedAccounting) {
  // 4 producers hammer a deliberately tiny queue with 2 batcher workers.
  // Invariants under fire: every Submit either returns a future that
  // completes (no lost requests) or an Unavailable status (reported, not
  // dropped), and the engine's counters reconcile exactly with the
  // producers' own books.
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 250;
  EngineOptions options;
  options.max_batch = 8;
  options.max_wait_micros = 200;
  options.max_queue = 32;
  options.workers = 2;
  auto engine = Engine::Create(MakeSnapshot(IndexKind::kExact, 64),
                               std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());

  std::atomic<uint64_t> accepted{0}, rejected{0}, completed_ok{0},
      expired{0}, wrong{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        const bool with_deadline = i % 5 == 0;
        auto submitted = engine.value()->Submit(
            "p" + std::to_string(p) + "i" + std::to_string(i),
            with_deadline ? SteadyNow() + std::chrono::milliseconds(200)
                          : kNoDeadline);
        if (!submitted.ok()) {
          rejected.fetch_add(1);
          continue;
        }
        accepted.fetch_add(1);
        const Result<QueryReply> reply = submitted.value().get();
        if (reply.ok()) {
          // 5 valid, distinct, sorted neighbors from the 64-row corpus.
          const auto& neighbors = reply.value().neighbors;
          bool valid = neighbors.size() == 5;
          for (size_t n = 0; valid && n < neighbors.size(); ++n) {
            valid = neighbors[n].id < 64 &&
                    (n == 0 ||
                     neighbors[n - 1].distance <= neighbors[n].distance);
          }
          if (valid) {
            completed_ok.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } else if (reply.status().code() ==
                   Status::Code::kDeadlineExceeded) {
          expired.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  engine.value()->Stop();

  // Every reconciliation below is order-independent: with the EDF queue a
  // deadline-tagged request may drain before earlier deadline-free ones, so
  // nothing here may assume FIFO completion order — only that each accepted
  // request settles exactly once in exactly one outcome bucket.
  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(metrics.submitted, accepted.load());
  EXPECT_EQ(metrics.rejected, rejected.load());
  EXPECT_EQ(metrics.completed, completed_ok.load());
  EXPECT_EQ(metrics.expired, expired.load());
  EXPECT_EQ(metrics.failed, 0u);
  // The counter identity with zero in-flight after Stop():
  // submitted == completed + expired + failed.
  EXPECT_EQ(metrics.completed + metrics.expired + metrics.failed,
            metrics.submitted);
  // The histograms saw every accepted request exactly once.
  EXPECT_EQ(metrics.queue_micros.count, metrics.submitted);
  EXPECT_EQ(metrics.total_micros.count, metrics.completed);
}

TEST(EngineStressTest, AdmissionCounterIdentityUnderConcurrentTenants) {
  // Multi-tenant producers against a token-bucket-limited engine: the
  // engine-wide identity must extend to
  //   attempts == submitted + rejected + throttled
  //   submitted == completed + expired + failed        (after Stop)
  // and each per-tenant ledger row must satisfy the same identities and
  // sum back to the engine-wide counters.
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 200;
  EngineOptions options;
  options.max_batch = 8;
  options.max_wait_micros = 200;
  options.max_queue = 64;
  options.workers = 2;
  // "hot" is deliberately under-provisioned so throttles actually happen;
  // "cold" has no quota and must never be throttled.
  options.quotas = {{"hot", 50.0, 4.0}};
  auto engine = Engine::Create(MakeSnapshot(IndexKind::kExact, 64),
                               std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());

  std::atomic<uint64_t> accepted{0}, refused{0}, throttled{0}, settled{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        SubmitOptions submit;
        submit.tenant = (p + i) % 2 == 0 ? "hot" : "cold";
        auto submitted = engine.value()->Submit(
            "p" + std::to_string(p) + "i" + std::to_string(i), submit);
        if (!submitted.ok()) {
          if (submitted.status().message().find("over quota") !=
              std::string::npos) {
            throttled.fetch_add(1);
          } else {
            refused.fetch_add(1);
          }
          continue;
        }
        accepted.fetch_add(1);
        (void)submitted.value().get();
        settled.fetch_add(1);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  engine.value()->Stop();

  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(accepted.load() + refused.load() + throttled.load(),
            kProducers * kPerProducer);
  EXPECT_EQ(metrics.submitted, accepted.load());
  EXPECT_EQ(metrics.rejected, refused.load());
  EXPECT_EQ(metrics.throttled, throttled.load());
  EXPECT_GT(metrics.throttled, 0u);
  EXPECT_EQ(metrics.completed + metrics.expired + metrics.failed,
            metrics.submitted);
  EXPECT_EQ(settled.load(), metrics.submitted);

  // Per-tenant ledger: same identities, and the rows sum to the whole.
  uint64_t tenant_submitted = 0, tenant_throttled = 0, tenant_rejected = 0;
  bool saw_cold = false;
  for (const TenantCounters& tenant : metrics.tenants) {
    EXPECT_EQ(tenant.completed + tenant.expired + tenant.failed,
              tenant.submitted)
        << "tenant " << tenant.tenant;
    if (tenant.tenant == "cold") {
      saw_cold = true;
      EXPECT_EQ(tenant.throttled, 0u);  // quota-free tenants never throttle
    }
    tenant_submitted += tenant.submitted;
    tenant_throttled += tenant.throttled;
    tenant_rejected += tenant.rejected;
  }
  EXPECT_TRUE(saw_cold);
  EXPECT_EQ(tenant_submitted, metrics.submitted);
  EXPECT_EQ(tenant_throttled, metrics.throttled);
  EXPECT_EQ(tenant_rejected, metrics.rejected);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  LatencyHistogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Record(i);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.Mean(), 500.5, 1e-9);
  // Quarter-octave buckets: ~19% relative resolution.
  EXPECT_NEAR(snap.Percentile(0.5), 500.0, 120.0);
  EXPECT_NEAR(snap.Percentile(0.99), 990.0, 200.0);
  EXPECT_LE(snap.Percentile(1.0), snap.max + 1e-9);
}

TEST(HistogramTest, EdgeValuesClampIntoRange) {
  LatencyHistogram histogram;
  histogram.Record(0);
  histogram.Record(-5);
  histogram.Record(1e12);  // beyond the top bucket
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[HistogramSnapshot::kBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(snap.max, 1e12);
  // Percentile never exceeds the observed max even for the open-ended
  // top bucket.
  EXPECT_LE(snap.Percentile(0.999), 1e12);
}

// Regression: edge cases must return defined values (PR 5). An empty
// histogram has no percentile but must not crash or invent one; a single
// sample IS every percentile; an all-zero histogram must never report a
// positive latency interpolated out of bucket 0.
TEST(HistogramTest, EmptyHistogramPercentileIsZero) {
  const HistogramSnapshot snap = LatencyHistogram().Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  LatencyHistogram histogram;
  histogram.Record(123.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  for (const double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Percentile(p), 123.0) << "p=" << p;
  }
}

TEST(HistogramTest, AllZeroSamplesReportZeroPercentiles) {
  LatencyHistogram histogram;
  for (int i = 0; i < 10; ++i) histogram.Record(0.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  // Interpolation inside bucket 0 (upper bound ~1.19) must not leak a
  // positive value past the observed max of 0.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 0.0);
}

TEST(HistogramTest, AllMassInLastBucketInterpolatesTowardMax) {
  LatencyHistogram histogram;
  // 2^24 is the last bucket's lower edge; everything above clamps into it.
  const double giant = 1e9;
  for (int i = 0; i < 100; ++i) histogram.Record(giant);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.counts[HistogramSnapshot::kBuckets - 1], 100u);
  const double p99 = snap.Percentile(0.99);
  // Defined, ordered, and never beyond the observed max; the open-ended
  // bucket interpolates toward max instead of collapsing to 2^24.
  EXPECT_GE(p99, std::exp2(24.0) * 0.99);
  EXPECT_LE(p99, giant);
  EXPECT_GT(p99, snap.Percentile(0.10));
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), giant);
}

TEST(HistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.Record(10);
  b.Record(1000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Add(b.Snapshot());
  EXPECT_EQ(merged.count, 2u);
  EXPECT_DOUBLE_EQ(merged.sum, 1010.0);
  EXPECT_DOUBLE_EQ(merged.max, 1000.0);
}

}  // namespace
}  // namespace ember::serve
