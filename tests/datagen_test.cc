#include "datagen/benchmark_datasets.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/csv.h"
#include "datagen/dsm_datasets.h"
#include "datagen/febrl.h"

namespace ember::datagen {
namespace {

TEST(BenchmarkDatasetsTest, TenSpecsInPaperOrder) {
  const auto& specs = AllCleanCleanSpecs();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs.front().id, "D1");
  EXPECT_EQ(specs.back().id, "D10");
  EXPECT_TRUE(CleanCleanSpecById("D4").ok());
  EXPECT_FALSE(CleanCleanSpecById("D11").ok());
}

TEST(BenchmarkDatasetsTest, GenerateIsDeterministic) {
  const auto spec = CleanCleanSpecById("D2").value();
  const CleanCleanDataset a = GenerateCleanClean(spec, 0.1, 41);
  const CleanCleanDataset b = GenerateCleanClean(spec, 0.1, 41);
  ASSERT_EQ(a.left.size(), b.left.size());
  EXPECT_EQ(a.left.AllSentences(), b.left.AllSentences());
  EXPECT_EQ(a.matches, b.matches);
  const CleanCleanDataset c = GenerateCleanClean(spec, 0.1, 42);
  EXPECT_NE(a.left.AllSentences(), c.left.AllSentences());
}

TEST(BenchmarkDatasetsTest, MatchesReferenceValidIndices) {
  const auto spec = CleanCleanSpecById("D1").value();
  const CleanCleanDataset data = GenerateCleanClean(spec, 0.1, 7);
  EXPECT_GT(data.matches.size(), 0u);
  std::set<uint32_t> lefts, rights;
  for (const auto& [l, r] : data.matches) {
    EXPECT_LT(l, data.left.size());
    EXPECT_LT(r, data.right.size());
    lefts.insert(l);
    rights.insert(r);
  }
  // Clean-Clean: both sides are duplicate-free.
  EXPECT_EQ(lefts.size(), data.matches.size());
  EXPECT_EQ(rights.size(), data.matches.size());
}

TEST(DsmDatasetsTest, FiveSpecsWithSplits) {
  ASSERT_EQ(AllDsmSpecs().size(), 5u);
  const auto spec = DsmSpecById("DSM1").value();
  const DsmDataset data = GenerateDsm(spec, 0.1, 41);
  EXPECT_GT(data.train.size(), 0u);
  EXPECT_GT(data.valid.size(), 0u);
  EXPECT_GT(data.test.size(), 0u);
  EXPECT_GT(data.train.size(), data.test.size());
  size_t positives = 0;
  for (const auto& pair : data.train) positives += pair.label ? 1 : 0;
  EXPECT_GT(positives, 0u);
  EXPECT_LT(positives, data.train.size());
}

TEST(DsmDatasetsTest, Deterministic) {
  const auto spec = DsmSpecById("DSM3").value();
  const DsmDataset a = GenerateDsm(spec, 0.1, 5);
  const DsmDataset b = GenerateDsm(spec, 0.1, 5);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].left, b.train[i].left);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST(CsvTest, RoundTripsQuotedFields) {
  const std::vector<std::vector<std::string>> rows = {
      {"id", "name", "note"},
      {"1", "acme, inc", "said \"hi\""},
      {"2", "line\nbreak", ""},
  };
  const std::string text = WriteCsv(rows);
  const auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvTest, ParsesCrlfAndTrailingNewline) {
  const auto parsed = ParseCsv("a,b\r\nc,d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<std::vector<std::string>> expected = {{"a", "b"},
                                                          {"c", "d"}};
  EXPECT_EQ(parsed.value(), expected);
}

TEST(CsvTest, UnterminatedQuoteFailsClosed) {
  // Truncated mid-quote: the old parser returned a silently shortened
  // table; it must be a loud error.
  const auto parsed = ParseCsv("a,b\n\"unterminated");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
}

TEST(CsvTest, BareCarriageReturnFailsClosed) {
  // \r outside quotes is only valid as part of \r\n.
  EXPECT_FALSE(ParseCsv("a,b\rc,d\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\r").ok());
  // Inside quotes \r is data, and \r\n is a normal line ending.
  const auto quoted = ParseCsv("\"a\rb\",c\r\n");
  ASSERT_TRUE(quoted.ok()) << quoted.status().ToString();
  const std::vector<std::vector<std::string>> expected = {{"a\rb", "c"}};
  EXPECT_EQ(quoted.value(), expected);
}

TEST(CsvTest, GarbageAfterClosingQuoteFailsClosed) {
  EXPECT_FALSE(ParseCsv("\"a\"b,c\n").ok());
  EXPECT_FALSE(ParseCsv("\"a\"\"\n").ok());  // reopened quote, never closed
  EXPECT_FALSE(ParseCsv("\"a\" ,b\n").ok());
  // The legal followers still parse: separator, newline, EOF, and the
  // escaped-quote form.
  const auto ok = ParseCsv("\"a\",\"b\"\n\"say \"\"hi\"\"\"");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  const std::vector<std::vector<std::string>> expected = {{"a", "b"},
                                                          {"say \"hi\""}};
  EXPECT_EQ(ok.value(), expected);
}

TEST(FebrlTest, DirtyCollectionWithDuplicates) {
  FebrlOptions options;
  options.n_records = 500;
  options.seed = 3;
  const DirtyDataset data = GenerateFebrl(options);
  EXPECT_EQ(data.records.size(), 500u);
  EXPECT_GT(data.matches.size(), 0u);
  for (const auto& [a, b] : data.matches) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, data.records.size());
    EXPECT_LT(b, data.records.size());
  }
}

}  // namespace
}  // namespace ember::datagen
