#include "match/unsupervised.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/dsm_datasets.h"
#include "embed/static_model.h"
#include "la/vector_ops.h"
#include "match/supervised.h"

namespace ember::match {
namespace {

TEST(ClusteringAlgorithmTest, PaperAbbreviations) {
  EXPECT_STREQ(ClusteringAlgorithmName(ClusteringAlgorithm::kUmc), "UMC");
  EXPECT_STREQ(ClusteringAlgorithmName(ClusteringAlgorithm::kExact), "EXC");
  EXPECT_STREQ(ClusteringAlgorithmName(ClusteringAlgorithm::kKiraly), "KRC");
}

la::Matrix RandomUnitRows(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

TEST(UnsupervisedMatcherTest, AllPairsMatchManualDots) {
  const la::Matrix left = RandomUnitRows(7, 24, 1);
  const la::Matrix right = RandomUnitRows(5, 24, 2);
  const auto pairs =
      UnsupervisedMatcher::AllPairSimilarities(left, right);
  ASSERT_EQ(pairs.size(), 35u);
  for (const cluster::ScoredPair& pair : pairs) {
    const float cos =
        la::Dot(left.Row(pair.left), right.Row(pair.right), 24);
    EXPECT_EQ(pair.sim, 0.5f * (1.f + cos));
    EXPECT_GE(pair.sim, 0.f);
    EXPECT_LE(pair.sim, 1.f);
  }
}

TEST(UnsupervisedMatcherTest, SweepRecoversPlantedMatches) {
  // Left row i == right row i exactly; everything else is far away.
  la::Matrix left(6, 16), right(6, 16);
  for (size_t r = 0; r < 6; ++r) {
    left.At(r, r) = 1.f;
    right.At(r, r) = 1.f;
  }
  eval::GroundTruth truth;
  for (uint32_t i = 0; i < 6; ++i) truth.AddCleanCleanPair(i, i);

  auto pairs = UnsupervisedMatcher::AllPairSimilarities(left, right);
  const SweepResult sweep =
      UnsupervisedMatcher::Sweep(pairs, 6, 6, truth);
  EXPECT_DOUBLE_EQ(sweep.best.metrics.f1, 1.0);
  EXPECT_EQ(sweep.points.size(), 19u);
  EXPECT_GE(sweep.termination_threshold, sweep.best.threshold);
}

TEST(SupervisedMatcherTest, DefaultOptionsSizeTheMlp) {
  const auto info = embed::GetModelInfo(embed::ModelId::kSMiniLm);
  const SupervisedOptions options =
      SupervisedMatcher::DefaultOptionsFor(info);
  EXPECT_EQ(options.mlp.input_dim, 2 * info.dim + 1);
}

TEST(SupervisedMatcherTest, BeatsChanceOnGeneratedDsm) {
  const auto spec = datagen::DsmSpecById("DSM3").value();
  const datagen::DsmDataset data = datagen::GenerateDsm(spec, 0.05, 41);

  embed::StaticEmbeddingModel model(embed::ModelId::kFastText);
  SupervisedOptions options =
      SupervisedMatcher::DefaultOptionsFor(model.info());
  options.mlp.seed = 17;
  SupervisedMatcher matcher(model, options);
  const SupervisedReport report = matcher.TrainAndEvaluate(data);
  EXPECT_GE(report.train_seconds, 0.0);
  EXPECT_GE(report.test_seconds, 0.0);
  EXPECT_GT(report.test_metrics.f1, 0.3);
}

}  // namespace
}  // namespace ember::match
