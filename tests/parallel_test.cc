#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace ember {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const size_t grain : {0ul, 1ul, 7ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(0, hits.size(), grain, [&](size_t begin, size_t end) {
      ASSERT_LE(begin, end);
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ChunkPartitionIndependentOfThreadCount) {
  const auto partition_at = [](int threads) {
    SetThreads(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    ParallelFor(3, 1003, 0, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto reference = partition_at(1);
  for (const int threads : {2, 3, 4, 8}) {
    EXPECT_EQ(partition_at(threads), reference) << threads << " threads";
  }
  SetThreads(0);
}

TEST(ParallelForTest, DisjointWritesAreDeterministic) {
  const auto compute_at = [](int threads) {
    SetThreads(threads);
    std::vector<double> out(5000);
    ParallelForEach(0, out.size(), 16, [&](size_t i) {
      out[i] = static_cast<double>(i) * 1.0000001 + 0.5;
    });
    return out;
  };
  const auto reference = compute_at(1);
  EXPECT_EQ(compute_at(2), reference);
  EXPECT_EQ(compute_at(4), reference);
  SetThreads(0);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  SetThreads(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t outer = begin; outer < end; ++outer) {
      ParallelFor(0, 8, 1, [&](size_t b, size_t e) {
        for (size_t inner = b; inner < e; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  SetThreads(0);
}

TEST(ParallelForTest, GrowingPoolAfterEarlierRegionsStaysCorrect) {
  // Regression: a worker spawned after earlier regions ran (generation > 0)
  // used to start with seen_generation=0, wake on the stale generation, and
  // decrement the active-worker count for a region it never joined — which
  // could signal completion while another worker was still executing the
  // chunk function. Sweep thread counts upward so every step spawns fresh
  // workers into a pool with a nonzero generation.
  for (const int threads : {2, 3, 4, 8}) {
    SetThreads(threads);
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<std::atomic<int>> hits(513);
      ParallelFor(0, hits.size(), 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
    }
  }
  SetThreads(0);
}

TEST(ParallelForTest, ConcurrentTopLevelCallersAreSerialized) {
  // Two user threads may hit ParallelFor at once through the thread-safe
  // public APIs (QueryBatch, VectorizeAll); the pool must serialize the
  // regions rather than let them overwrite each other's chunk state.
  SetThreads(4);
  constexpr int kCallers = 4;
  constexpr int kReps = 20;
  std::vector<std::vector<int>> out(kCallers, std::vector<int>(2048, 0));
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&out, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        ParallelForEach(0, out[t].size(), 16,
                        [&out, t](size_t i) { out[t][i] += 1; });
      }
    });
  }
  for (auto& th : callers) th.join();
  for (const auto& v : out) {
    for (const int x : v) ASSERT_EQ(x, kReps);
  }
  SetThreads(0);
}

TEST(ParallelForTest, SerialFallbackRunsOnCallingThread) {
  SetThreads(1);
  EXPECT_EQ(ConfiguredThreads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(0, 100, 10, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  SetThreads(0);
}

}  // namespace
}  // namespace ember
