#include "la/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/quantize.h"
#include "proptest.h"

namespace ember::la {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  return m;
}

TEST(VectorOpsTest, DotMatchesSmallCases) {
  const float a[] = {1.f, 2.f, 3.f};
  const float b[] = {4.f, -5.f, 6.f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.f - 10.f + 18.f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.f);
}

TEST(VectorOpsTest, GemmBtBitIdenticalToDot) {
  // The contract the blocked index and matcher rely on: every GemmBt cell
  // equals the scalar Dot of the corresponding rows, bit for bit, at sizes
  // that do and do not divide the kernel's blocking factors.
  for (const size_t k : {1ul, 7ul, 8ul, 60ul, 300ul}) {
    const Matrix a = RandomMatrix(13, k, 17 + k);
    const Matrix b = RandomMatrix(9, k, 99 + k);
    const Matrix c = GemmBt(a, b);
    ASSERT_EQ(c.rows(), a.rows());
    ASSERT_EQ(c.cols(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < b.rows(); ++j) {
        const float expected = Dot(a.Row(i), b.Row(j), k);
        EXPECT_EQ(c.At(i, j), expected) << "k=" << k << " (" << i << "," << j
                                        << ")";
      }
    }
  }
}

TEST(VectorOpsTest, GemmBtIntoMatchesGemmBtInPreallocatedOutput) {
  const Matrix a = RandomMatrix(11, 37, 41);
  const Matrix b = RandomMatrix(6, 37, 43);
  const Matrix expected = GemmBt(a, b);
  Matrix out(11, 6);
  GemmBtInto(a, b, &out);
  EXPECT_EQ(out, expected);
}

TEST(VectorOpsTest, GemmBtStridedMatchesDotOnHeadViews) {
  // The attention use case: per-head panels are column slices of packed
  // (seq x dim) matrices, i.e. rows strided by the full dim. Every cell
  // must still equal the scalar Dot of the strided rows, bit for bit.
  const size_t dim = 24;
  const Matrix q = RandomMatrix(19, dim, 51);
  const Matrix k = RandomMatrix(19, dim, 52);
  for (const size_t head_dim : {3ul, 8ul, 12ul}) {
    for (size_t off = 0; off + head_dim <= dim; off += head_dim) {
      Matrix scores(q.rows(), k.rows());
      GemmBtStrided(q.data() + off, q.rows(), dim, k.data() + off, k.rows(),
                    dim, head_dim, scores.data(), k.rows());
      for (size_t i = 0; i < q.rows(); ++i) {
        for (size_t j = 0; j < k.rows(); ++j) {
          EXPECT_EQ(scores.At(i, j),
                    Dot(q.Row(i) + off, k.Row(j) + off, head_dim))
              << "head_dim=" << head_dim << " off=" << off;
        }
      }
    }
  }
}

TEST(VectorOpsTest, WeightedSumRowsMatchesSequentialAxpyChain) {
  // WeightedSumRows must reproduce the zero-then-Axpy-per-row loop exactly:
  // attention's determinism story depends on the accumulation order being
  // the same chain, just held in registers.
  for (const size_t n : {1ul, 5ul, 16ul, 20ul, 37ul}) {
    const size_t m = 23, stride = 41;
    const Matrix rows = RandomMatrix(m, stride, 61 + n);
    const Matrix w = RandomMatrix(1, m, 62 + n);
    std::vector<float> expected(n, 0.f);
    for (size_t i = 0; i < m; ++i) {
      Axpy(w.At(0, i), rows.Row(i), expected.data(), n);
    }
    std::vector<float> got(n);
    WeightedSumRows(w.Row(0), rows.data(), m, stride, n, got.data());
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(got[j], expected[j]) << "n=" << n << " j=" << j;
    }
  }
}

TEST(VectorOpsTest, SoftmaxMatchesDoubleReference) {
  // The vectorized exp inside SoftmaxInPlace is an approximation; it must
  // stay within a few ULP of an exact double-precision softmax.
  Matrix logits = RandomMatrix(8, 101, 71);
  Scale(4.f, logits.data(), logits.rows() * logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    float* row = logits.Row(r);
    std::vector<double> ref(logits.cols());
    double max = row[0];
    for (size_t i = 0; i < logits.cols(); ++i) {
      max = std::max(max, static_cast<double>(row[i]));
    }
    double sum = 0;
    for (size_t i = 0; i < logits.cols(); ++i) {
      ref[i] = std::exp(row[i] - max);
      sum += ref[i];
    }
    SoftmaxInPlace(row, logits.cols());
    double check = 0;
    for (size_t i = 0; i < logits.cols(); ++i) {
      EXPECT_NEAR(row[i], ref[i] / sum, 1e-6);
      check += row[i];
    }
    EXPECT_NEAR(check, 1.0, 1e-5);
  }
}

TEST(VectorOpsTest, GeluTanhMatchesLibmFormula) {
  Matrix x = RandomMatrix(1, 4096, 73);
  Scale(3.f, x.Row(0), x.cols());
  Matrix got = x;
  GeluTanhInPlace(got.Row(0), x.cols());
  for (size_t i = 0; i < x.cols(); ++i) {
    const double z = x.At(0, i);
    const double ref =
        0.5 * z * (1.0 + std::tanh(0.7978845608 * (z + 0.044715 * z * z * z)));
    EXPECT_NEAR(got.At(0, i), ref, 1e-5) << "z=" << z;
  }
  // Saturation: far outside the polynomial's core range the result must be
  // exactly z (tanh -> 1) or exactly 0 (tanh -> -1), like the libm version.
  float big[2] = {30.f, -30.f};
  GeluTanhInPlace(big, 2);
  EXPECT_EQ(big[0], 30.f);
  EXPECT_EQ(big[1], 0.f);
}

TEST(VectorOpsTest, NormalizeInPlaceGivesUnitNorm) {
  Matrix m = RandomMatrix(4, 37, 5);
  for (size_t r = 0; r < m.rows(); ++r) {
    NormalizeInPlace(m.Row(r), m.cols());
    EXPECT_NEAR(Norm(m.Row(r), m.cols()), 1.f, 1e-5f);
  }
}

TEST(VectorOpsTest, NormalizeZeroVectorStaysZero) {
  Matrix m(1, 16);
  NormalizeInPlace(m.Row(0), 16);
  for (size_t c = 0; c < 16; ++c) EXPECT_EQ(m.At(0, c), 0.f);
}

TEST(VectorOpsTest, AxpyAndScale) {
  float x[] = {1.f, 2.f};
  const float y[] = {10.f, 20.f};
  Axpy(2.f, y, x, 2);
  EXPECT_FLOAT_EQ(x[0], 21.f);
  EXPECT_FLOAT_EQ(x[1], 42.f);
  Scale(0.5f, x, 2);
  EXPECT_FLOAT_EQ(x[0], 10.5f);
  EXPECT_FLOAT_EQ(x[1], 21.f);
}

TEST(VectorOpsTest, SquaredDistanceMatchesDotExpansion) {
  Matrix m = RandomMatrix(2, 100, 11);
  const float* a = m.Row(0);
  const float* b = m.Row(1);
  // ||a-b||^2 == ||a||^2 + ||b||^2 - 2<a,b>, and the lane split must handle
  // a tail that is not a multiple of kDotLanes (100 = 12*8 + 4).
  const float expanded =
      Dot(a, a, 100) + Dot(b, b, 100) - 2.f * Dot(a, b, 100);
  EXPECT_NEAR(SquaredDistance(a, b, 100), expanded, 1e-3f);
  EXPECT_EQ(SquaredDistance(a, a, 100), 0.f);
  EXPECT_EQ(SquaredDistance(a, b, 0), 0.f);
}

TEST(VectorOpsTest, LayerNormInPlaceNormalizesAndAppliesGainBias) {
  Matrix m = RandomMatrix(1, 64, 13);
  std::vector<float> plain(m.Row(0), m.Row(0) + 64);
  LayerNormInPlace(plain.data(), 64, nullptr, nullptr);
  double mean = 0, var = 0;
  for (const float x : plain) mean += x;
  mean /= 64;
  for (const float x : plain) var += (x - mean) * (x - mean);
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var / 64, 1.0, 1e-3);

  // gain/bias scale and shift the normalized values elementwise.
  std::vector<float> affine(m.Row(0), m.Row(0) + 64);
  std::vector<float> gain(64), bias(64);
  for (size_t i = 0; i < 64; ++i) {
    gain[i] = 0.5f + 0.01f * static_cast<float>(i);
    bias[i] = 1.f - 0.02f * static_cast<float>(i);
  }
  LayerNormInPlace(affine.data(), 64, gain.data(), bias.data());
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(affine[i], plain[i] * gain[i] + bias[i], 1e-4f);
  }
  LayerNormInPlace(plain.data(), 0, nullptr, nullptr);  // n == 0 is a no-op
}

TEST(VectorOpsTest, SoftmaxSumsToOne) {
  float v[] = {1.f, 2.f, 3.f, 4.f};
  SoftmaxInPlace(v, 4);
  float sum = 0;
  for (const float x : v) sum += x;
  EXPECT_NEAR(sum, 1.f, 1e-5f);
  EXPECT_GT(v[3], v[0]);
}

bool Aligned64(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % kMatrixAlign == 0;
}

TEST(MatrixTest, OwnedStorageIs64ByteAligned) {
  // The kernels and the EMBS0002 container both assume every owned numeric
  // payload starts on a cache line; Resize must preserve that through the
  // capacity-reuse path as well as reallocation.
  for (const size_t cols : {1ul, 3ul, 17ul, 768ul}) {
    Matrix m(5, cols);
    EXPECT_TRUE(Aligned64(m.data())) << "cols=" << cols;
    m.Resize(2, cols);
    EXPECT_TRUE(Aligned64(m.data())) << "shrink cols=" << cols;
    m.Resize(64, cols + 1);
    EXPECT_TRUE(Aligned64(m.data())) << "grow cols=" << cols;
  }
  const QuantizedMatrix q = QuantizedMatrix::Quantize(RandomMatrix(9, 33, 3));
  EXPECT_TRUE(Aligned64(q.codes()));
  EXPECT_TRUE(Aligned64(q.params()));
}

TEST(QuantizeTest, DotI8MatchesNaiveIntegerLoop) {
  // Exactness contract: DotI8 is plain int32 accumulation, so it must equal
  // the scalar loop bit for bit at sizes around every blocking boundary.
  Rng rng(0xd07);
  for (const size_t n : {0ul, 1ul, 7ul, 8ul, 15ul, 32ul, 100ul, 768ul}) {
    std::vector<int8_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int8_t>(static_cast<int>(rng.Next() % 255) - 127);
      b[i] = static_cast<int8_t>(static_cast<int>(rng.Next() % 255) - 127);
    }
    int32_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
      expected += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
    }
    EXPECT_EQ(DotI8(a.data(), b.data(), n), expected) << "n=" << n;
  }
}

TEST(QuantizeTest, GemmBtI8StridedMatchesDotI8) {
  // The batched scan kernel must agree with the single-row kernel exactly,
  // including when rows are strided wider than the dot length (the tile
  // slicing the quantized scan uses).
  Rng rng(0xd08);
  const size_t m = 13, n = 37, k = 29, lda = 40, ldb = 33;
  std::vector<int8_t> a(m * lda), b(n * ldb);
  for (int8_t& v : a) {
    v = static_cast<int8_t>(static_cast<int>(rng.Next() % 255) - 127);
  }
  for (int8_t& v : b) {
    v = static_cast<int8_t>(static_cast<int>(rng.Next() % 255) - 127);
  }
  std::vector<int32_t> c(m * n, -1);
  GemmBtI8Strided(a.data(), m, lda, b.data(), n, ldb, k, c.data(), n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[i * n + j], DotI8(a.data() + i * lda, b.data() + j * ldb, k))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(QuantizeTest, RoundTripErrorWithinPerRowScaleBound) {
  // The quantization model's promise: |x - dequantize(quantize(x))| is at
  // most scale/2 per element (rounding), with a hair of float slack.
  proptest::Config config;
  config.max_size = 96;
  proptest::ForAll(
      "quantize->dequantize error <= scale/2", config,
      [](Rng& rng, size_t n) {
        std::vector<float> x(n);
        // Mix magnitudes so rows exercise very different dynamic ranges.
        const float spread = 0.01f + static_cast<float>(rng.Next() % 1000);
        for (float& v : x) {
          v = static_cast<float>(rng.Gaussian()) * spread;
        }
        std::vector<int8_t> codes(n);
        QuantParams params;
        QuantizeRow(x.data(), n, codes.data(), &params);
        int32_t sum = 0;
        for (const int8_t c : codes) sum += c;
        if (sum != params.code_sum) return false;
        std::vector<float> back(n);
        DequantizeRow(codes.data(), params, n, back.data());
        const float bound = params.scale * 0.5f + spread * 1e-5f;
        for (size_t i = 0; i < n; ++i) {
          if (std::fabs(x[i] - back[i]) > bound) return false;
        }
        return true;
      });
}

TEST(QuantizeTest, ConstantRowQuantizesExactly) {
  std::vector<float> x(19, 3.25f);
  std::vector<int8_t> codes(x.size());
  QuantParams params;
  QuantizeRow(x.data(), x.size(), codes.data(), &params);
  EXPECT_EQ(params.scale, 0.f);
  std::vector<float> back(x.size());
  DequantizeRow(codes.data(), params, x.size(), back.data());
  for (const float v : back) EXPECT_EQ(v, 3.25f);
}

TEST(QuantizeTest, QuantizedMatrixViewIsBitIdenticalToOwned) {
  // The mmap path serves QuantizedMatrix::View over the owned layout's
  // bytes; both modes must describe the exact same codes and params.
  const Matrix m = RandomMatrix(11, 48, 0xd09);
  const QuantizedMatrix owned = QuantizedMatrix::Quantize(m);
  const QuantizedMatrix view = QuantizedMatrix::View(
      owned.codes(), owned.params(), owned.rows(), owned.cols());
  ASSERT_TRUE(view.is_view());
  ASSERT_FALSE(owned.is_view());
  for (size_t r = 0; r < owned.rows(); ++r) {
    EXPECT_EQ(std::memcmp(view.Row(r), owned.Row(r), owned.cols()), 0);
    EXPECT_EQ(view.Params(r).scale, owned.Params(r).scale);
    EXPECT_EQ(view.Params(r).zero_point, owned.Params(r).zero_point);
    EXPECT_EQ(view.Params(r).code_sum, owned.Params(r).code_sum);
  }
  // And ApproxDot over the reconstruction tracks the float dot to within
  // the accumulated per-element error budget.
  const Matrix deq = owned.Dequantize();
  ASSERT_EQ(deq.rows(), m.rows());
  for (size_t r = 0; r + 1 < m.rows(); ++r) {
    const float exact = Dot(deq.Row(r), deq.Row(r + 1), m.cols());
    const float approx =
        ApproxDot(owned.Params(r), owned.Params(r + 1),
                  DotI8(owned.Row(r), owned.Row(r + 1), m.cols()), m.cols());
    EXPECT_NEAR(approx, exact, 1e-2f * (1.f + std::fabs(exact))) << r;
  }
}

TEST(VectorOpsTest, GemvMatchesManual) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = -1;
  m.At(1, 1) = 0;
  m.At(1, 2) = 1;
  const float x[] = {1.f, 1.f, 1.f};
  float out[2];
  Gemv(m, x, out);
  EXPECT_FLOAT_EQ(out[0], 6.f);
  EXPECT_FLOAT_EQ(out[1], 0.f);
}

}  // namespace
}  // namespace ember::la
