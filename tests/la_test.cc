#include "la/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"

namespace ember::la {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  return m;
}

TEST(VectorOpsTest, DotMatchesSmallCases) {
  const float a[] = {1.f, 2.f, 3.f};
  const float b[] = {4.f, -5.f, 6.f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.f - 10.f + 18.f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.f);
}

TEST(VectorOpsTest, GemmBtBitIdenticalToDot) {
  // The contract the blocked index and matcher rely on: every GemmBt cell
  // equals the scalar Dot of the corresponding rows, bit for bit, at sizes
  // that do and do not divide the kernel's blocking factors.
  for (const size_t k : {1ul, 7ul, 8ul, 60ul, 300ul}) {
    const Matrix a = RandomMatrix(13, k, 17 + k);
    const Matrix b = RandomMatrix(9, k, 99 + k);
    const Matrix c = GemmBt(a, b);
    ASSERT_EQ(c.rows(), a.rows());
    ASSERT_EQ(c.cols(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < b.rows(); ++j) {
        const float expected = Dot(a.Row(i), b.Row(j), k);
        EXPECT_EQ(c.At(i, j), expected) << "k=" << k << " (" << i << "," << j
                                        << ")";
      }
    }
  }
}

TEST(VectorOpsTest, NormalizeInPlaceGivesUnitNorm) {
  Matrix m = RandomMatrix(4, 37, 5);
  for (size_t r = 0; r < m.rows(); ++r) {
    NormalizeInPlace(m.Row(r), m.cols());
    EXPECT_NEAR(Norm(m.Row(r), m.cols()), 1.f, 1e-5f);
  }
}

TEST(VectorOpsTest, NormalizeZeroVectorStaysZero) {
  Matrix m(1, 16);
  NormalizeInPlace(m.Row(0), 16);
  for (size_t c = 0; c < 16; ++c) EXPECT_EQ(m.At(0, c), 0.f);
}

TEST(VectorOpsTest, AxpyAndScale) {
  float x[] = {1.f, 2.f};
  const float y[] = {10.f, 20.f};
  Axpy(2.f, y, x, 2);
  EXPECT_FLOAT_EQ(x[0], 21.f);
  EXPECT_FLOAT_EQ(x[1], 42.f);
  Scale(0.5f, x, 2);
  EXPECT_FLOAT_EQ(x[0], 10.5f);
  EXPECT_FLOAT_EQ(x[1], 21.f);
}

TEST(VectorOpsTest, SoftmaxSumsToOne) {
  float v[] = {1.f, 2.f, 3.f, 4.f};
  SoftmaxInPlace(v, 4);
  float sum = 0;
  for (const float x : v) sum += x;
  EXPECT_NEAR(sum, 1.f, 1e-5f);
  EXPECT_GT(v[3], v[0]);
}

TEST(VectorOpsTest, GemvMatchesManual) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = -1;
  m.At(1, 1) = 0;
  m.At(1, 2) = 1;
  const float x[] = {1.f, 1.f, 1.f};
  float out[2];
  Gemv(m, x, out);
  EXPECT_FLOAT_EQ(out[0], 6.f);
  EXPECT_FLOAT_EQ(out[1], 0.f);
}

}  // namespace
}  // namespace ember::la
