#include "la/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"

namespace ember::la {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  return m;
}

TEST(VectorOpsTest, DotMatchesSmallCases) {
  const float a[] = {1.f, 2.f, 3.f};
  const float b[] = {4.f, -5.f, 6.f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.f - 10.f + 18.f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.f);
}

TEST(VectorOpsTest, GemmBtBitIdenticalToDot) {
  // The contract the blocked index and matcher rely on: every GemmBt cell
  // equals the scalar Dot of the corresponding rows, bit for bit, at sizes
  // that do and do not divide the kernel's blocking factors.
  for (const size_t k : {1ul, 7ul, 8ul, 60ul, 300ul}) {
    const Matrix a = RandomMatrix(13, k, 17 + k);
    const Matrix b = RandomMatrix(9, k, 99 + k);
    const Matrix c = GemmBt(a, b);
    ASSERT_EQ(c.rows(), a.rows());
    ASSERT_EQ(c.cols(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < b.rows(); ++j) {
        const float expected = Dot(a.Row(i), b.Row(j), k);
        EXPECT_EQ(c.At(i, j), expected) << "k=" << k << " (" << i << "," << j
                                        << ")";
      }
    }
  }
}

TEST(VectorOpsTest, GemmBtIntoMatchesGemmBtInPreallocatedOutput) {
  const Matrix a = RandomMatrix(11, 37, 41);
  const Matrix b = RandomMatrix(6, 37, 43);
  const Matrix expected = GemmBt(a, b);
  Matrix out(11, 6);
  GemmBtInto(a, b, &out);
  EXPECT_EQ(out, expected);
}

TEST(VectorOpsTest, GemmBtStridedMatchesDotOnHeadViews) {
  // The attention use case: per-head panels are column slices of packed
  // (seq x dim) matrices, i.e. rows strided by the full dim. Every cell
  // must still equal the scalar Dot of the strided rows, bit for bit.
  const size_t dim = 24;
  const Matrix q = RandomMatrix(19, dim, 51);
  const Matrix k = RandomMatrix(19, dim, 52);
  for (const size_t head_dim : {3ul, 8ul, 12ul}) {
    for (size_t off = 0; off + head_dim <= dim; off += head_dim) {
      Matrix scores(q.rows(), k.rows());
      GemmBtStrided(q.data() + off, q.rows(), dim, k.data() + off, k.rows(),
                    dim, head_dim, scores.data(), k.rows());
      for (size_t i = 0; i < q.rows(); ++i) {
        for (size_t j = 0; j < k.rows(); ++j) {
          EXPECT_EQ(scores.At(i, j),
                    Dot(q.Row(i) + off, k.Row(j) + off, head_dim))
              << "head_dim=" << head_dim << " off=" << off;
        }
      }
    }
  }
}

TEST(VectorOpsTest, WeightedSumRowsMatchesSequentialAxpyChain) {
  // WeightedSumRows must reproduce the zero-then-Axpy-per-row loop exactly:
  // attention's determinism story depends on the accumulation order being
  // the same chain, just held in registers.
  for (const size_t n : {1ul, 5ul, 16ul, 20ul, 37ul}) {
    const size_t m = 23, stride = 41;
    const Matrix rows = RandomMatrix(m, stride, 61 + n);
    const Matrix w = RandomMatrix(1, m, 62 + n);
    std::vector<float> expected(n, 0.f);
    for (size_t i = 0; i < m; ++i) {
      Axpy(w.At(0, i), rows.Row(i), expected.data(), n);
    }
    std::vector<float> got(n);
    WeightedSumRows(w.Row(0), rows.data(), m, stride, n, got.data());
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(got[j], expected[j]) << "n=" << n << " j=" << j;
    }
  }
}

TEST(VectorOpsTest, SoftmaxMatchesDoubleReference) {
  // The vectorized exp inside SoftmaxInPlace is an approximation; it must
  // stay within a few ULP of an exact double-precision softmax.
  Matrix logits = RandomMatrix(8, 101, 71);
  Scale(4.f, logits.data(), logits.rows() * logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    float* row = logits.Row(r);
    std::vector<double> ref(logits.cols());
    double max = row[0];
    for (size_t i = 0; i < logits.cols(); ++i) {
      max = std::max(max, static_cast<double>(row[i]));
    }
    double sum = 0;
    for (size_t i = 0; i < logits.cols(); ++i) {
      ref[i] = std::exp(row[i] - max);
      sum += ref[i];
    }
    SoftmaxInPlace(row, logits.cols());
    double check = 0;
    for (size_t i = 0; i < logits.cols(); ++i) {
      EXPECT_NEAR(row[i], ref[i] / sum, 1e-6);
      check += row[i];
    }
    EXPECT_NEAR(check, 1.0, 1e-5);
  }
}

TEST(VectorOpsTest, GeluTanhMatchesLibmFormula) {
  Matrix x = RandomMatrix(1, 4096, 73);
  Scale(3.f, x.Row(0), x.cols());
  Matrix got = x;
  GeluTanhInPlace(got.Row(0), x.cols());
  for (size_t i = 0; i < x.cols(); ++i) {
    const double z = x.At(0, i);
    const double ref =
        0.5 * z * (1.0 + std::tanh(0.7978845608 * (z + 0.044715 * z * z * z)));
    EXPECT_NEAR(got.At(0, i), ref, 1e-5) << "z=" << z;
  }
  // Saturation: far outside the polynomial's core range the result must be
  // exactly z (tanh -> 1) or exactly 0 (tanh -> -1), like the libm version.
  float big[2] = {30.f, -30.f};
  GeluTanhInPlace(big, 2);
  EXPECT_EQ(big[0], 30.f);
  EXPECT_EQ(big[1], 0.f);
}

TEST(VectorOpsTest, NormalizeInPlaceGivesUnitNorm) {
  Matrix m = RandomMatrix(4, 37, 5);
  for (size_t r = 0; r < m.rows(); ++r) {
    NormalizeInPlace(m.Row(r), m.cols());
    EXPECT_NEAR(Norm(m.Row(r), m.cols()), 1.f, 1e-5f);
  }
}

TEST(VectorOpsTest, NormalizeZeroVectorStaysZero) {
  Matrix m(1, 16);
  NormalizeInPlace(m.Row(0), 16);
  for (size_t c = 0; c < 16; ++c) EXPECT_EQ(m.At(0, c), 0.f);
}

TEST(VectorOpsTest, AxpyAndScale) {
  float x[] = {1.f, 2.f};
  const float y[] = {10.f, 20.f};
  Axpy(2.f, y, x, 2);
  EXPECT_FLOAT_EQ(x[0], 21.f);
  EXPECT_FLOAT_EQ(x[1], 42.f);
  Scale(0.5f, x, 2);
  EXPECT_FLOAT_EQ(x[0], 10.5f);
  EXPECT_FLOAT_EQ(x[1], 21.f);
}

TEST(VectorOpsTest, SoftmaxSumsToOne) {
  float v[] = {1.f, 2.f, 3.f, 4.f};
  SoftmaxInPlace(v, 4);
  float sum = 0;
  for (const float x : v) sum += x;
  EXPECT_NEAR(sum, 1.f, 1e-5f);
  EXPECT_GT(v[3], v[0]);
}

TEST(VectorOpsTest, GemvMatchesManual) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = -1;
  m.At(1, 1) = 0;
  m.At(1, 2) = 1;
  const float x[] = {1.f, 1.f, 1.f};
  float out[2];
  Gemv(m, x, out);
  EXPECT_FLOAT_EQ(out[0], 6.f);
  EXPECT_FLOAT_EQ(out[1], 0.f);
}

}  // namespace
}  // namespace ember::la
