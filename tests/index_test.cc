#include "index/exact_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "proptest.h"
#include "index/hnsw_index.h"
#include "index/lsh_index.h"
#include "index/overlap_blocker.h"
#include "la/vector_ops.h"

namespace ember::index {
namespace {

la::Matrix RandomUnitRows(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

la::Matrix RandomUnitRowsFrom(Rng& rng, size_t rows, size_t cols) {
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

/// Reference scan: the definitional top-k (1 - dot against every corpus
/// row, stable-sorted by (distance, id)), written independently of the
/// index implementations so agreement is meaningful.
std::vector<Neighbor> NaiveTopK(const la::Matrix& data, const float* query,
                                size_t k) {
  std::vector<Neighbor> all;
  all.reserve(data.rows());
  for (size_t r = 0; r < data.rows(); ++r) {
    all.push_back({static_cast<uint32_t>(r),
                   1.f - la::Dot(query, data.Row(r), data.cols())});
  }
  std::sort(all.begin(), all.end(), CloserThan);
  if (all.size() > k) all.resize(k);
  return all;
}

// Property: the nearest neighbor of a vector that IS in the corpus is that
// vector itself, at distance ~0 — for every corpus row, across randomly
// sized/shaped corpora. (Generalizes the old fixed 50x32 example.)
TEST(ExactIndexPropertyTest, Top1OfCorpusVectorIsItself) {
  proptest::Config config;
  config.cases = 60;
  config.max_size = 80;
  proptest::ForAll("exact top-1 of a corpus vector is itself", config,
                   [](Rng& rng, size_t n) {
    const size_t cols = 8 + rng.Below(25);
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    ExactIndex idx;
    idx.Build(data);
    for (size_t r = 0; r < data.rows(); ++r) {
      const auto neighbors = idx.Query(data.Row(r), 1);
      if (neighbors.size() != 1) return false;
      if (neighbors[0].id != r) return false;
      if (std::abs(neighbors[0].distance) > 1e-5f) return false;
    }
    return true;
  });
}

// Metamorphic property: QueryBatch at a smaller k is exactly the prefix of
// QueryBatch at a larger k — growing k may only extend the result list,
// never reorder or change it. Subsumes the old ascending-distance and
// k-respected examples (a prefix-consistent family with the naive scan at
// the top k is automatically both).
TEST(ExactIndexPropertyTest, QueryBatchPrefixMonotoneInK) {
  proptest::Config config;
  config.cases = 40;
  config.min_size = 1;
  config.max_size = 120;
  proptest::ForAll("QueryBatch(k) monotone in k", config,
                   [](Rng& rng, size_t n) {
    const size_t cols = 4 + rng.Below(29);
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    const la::Matrix queries =
        RandomUnitRowsFrom(rng, 1 + rng.Below(20), cols);
    ExactIndex idx;
    idx.Build(data);
    const size_t k_hi = 1 + rng.Below(2 * n);
    const size_t k_lo = 1 + rng.Below(k_hi);
    const auto hi = idx.QueryBatch(queries, k_hi);
    const auto lo = idx.QueryBatch(queries, k_lo);
    for (size_t q = 0; q < queries.rows(); ++q) {
      if (hi[q].size() != std::min(k_hi, n)) return false;
      if (lo[q].size() != std::min(k_lo, n)) return false;
      for (size_t i = 0; i < lo[q].size(); ++i) {
        if (lo[q][i].id != hi[q][i].id) return false;
        if (lo[q][i].distance != hi[q][i].distance) return false;
      }
      for (size_t i = 1; i < hi[q].size(); ++i) {
        if (CloserThan(hi[q][i], hi[q][i - 1])) return false;
      }
    }
    return true;
  });
}

// 200 random corpora: the naive definitional scan, the blocked single-query
// path, and the GemmBt batch path must agree bitwise (ids AND float
// distances) — the batch tiling is an optimization, never an approximation.
// (Replaces the old single-example QueryBatchMatchesSingleQueries.)
TEST(ExactIndexPropertyTest, BruteForceAndExactIndexAgreeOn200Corpora) {
  proptest::Config config;
  config.cases = 200;
  config.min_size = 1;
  config.max_size = 90;
  proptest::ForAll("naive == Query == QueryBatch on random corpora", config,
                   [](Rng& rng, size_t n) {
    const size_t cols = 3 + rng.Below(30);
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    const la::Matrix queries =
        RandomUnitRowsFrom(rng, 1 + rng.Below(8), cols);
    const size_t k = 1 + rng.Below(n + 3);
    ExactIndex idx;
    idx.Build(data);
    const auto batch = idx.QueryBatch(queries, k);
    if (batch.size() != queries.rows()) return false;
    for (size_t q = 0; q < queries.rows(); ++q) {
      const auto naive = NaiveTopK(data, queries.Row(q), k);
      const auto single = idx.Query(queries.Row(q), k);
      if (batch[q].size() != naive.size()) return false;
      if (single.size() != naive.size()) return false;
      for (size_t i = 0; i < naive.size(); ++i) {
        if (batch[q][i].id != naive[i].id) return false;
        if (batch[q][i].distance != naive[i].distance) return false;
        if (single[i].id != naive[i].id) return false;
        if (single[i].distance != naive[i].distance) return false;
      }
    }
    return true;
  });
}

// The int8 scan tier is an approximation with a float rescore on top, so
// the contract is statistical: across many random corpora, rescored
// quantized top-10 must recover at least 99% of the definitional top-10
// ids. (The rescore width of 4k makes a true neighbor falling outside the
// candidate set the only loss mode, and int8 error on unit vectors is far
// smaller than typical neighbor gaps.)
TEST(ExactIndexPropertyTest, QuantizedTopKRecallAtLeast99Percent) {
  size_t hits = 0, total = 0;
  proptest::Config config;
  config.cases = 60;
  config.min_size = 12;
  config.max_size = 120;
  proptest::ForAll("quantized rescored top-10 recall >= 0.99", config,
                   [&](Rng& rng, size_t n) {
    const size_t cols = 16 + rng.Below(64);
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    const la::Matrix queries =
        RandomUnitRowsFrom(rng, 1 + rng.Below(6), cols);
    const size_t k = std::min<size_t>(10, n);
    ExactIndex idx;
    idx.Build(data);
    idx.Quantize();
    if (!idx.quantized()) return false;
    const auto approx = idx.QueryBatch(queries, k);
    const auto exact = BruteForceTopK(data, queries, k);
    for (size_t q = 0; q < queries.rows(); ++q) {
      if (approx[q].size() != exact[q].size()) return false;
      std::set<uint32_t> truth;
      for (const Neighbor& nb : exact[q]) truth.insert(nb.id);
      for (const Neighbor& nb : approx[q]) {
        // Rescored distances are exact float recomputations.
        const float expect =
            1.f - la::Dot(queries.Row(q), data.Row(nb.id), cols);
        if (nb.distance != expect) return false;
        hits += truth.count(nb.id);
      }
      total += exact[q].size();
    }
    return true;
  });
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(total), 0.99)
      << hits << "/" << total;
}

// The quantized scan must give the same answer through the single-query
// and batched paths: same integer kernel results, same rescore, bit for
// bit — parallel tiling is never allowed to change results.
TEST(ExactIndexPropertyTest, QuantizedSingleQueryMatchesBatch) {
  proptest::Config config;
  config.cases = 40;
  config.min_size = 1;
  config.max_size = 90;
  proptest::ForAll("quantized Query == QueryBatch", config,
                   [](Rng& rng, size_t n) {
    const size_t cols = 4 + rng.Below(40);
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    const la::Matrix queries =
        RandomUnitRowsFrom(rng, 1 + rng.Below(20), cols);
    const size_t k = 1 + rng.Below(n + 2);
    ExactIndex idx;
    idx.Build(data);
    idx.Quantize();
    const auto batch = idx.QueryBatch(queries, k);
    for (size_t q = 0; q < queries.rows(); ++q) {
      const auto single = idx.Query(queries.Row(q), k);
      if (single.size() != batch[q].size()) return false;
      for (size_t i = 0; i < single.size(); ++i) {
        if (single[i].id != batch[q][i].id) return false;
        if (single[i].distance != batch[q][i].distance) return false;
      }
    }
    return true;
  });
}

// Rebuilding an index drops the quantized tier: the codes describe the old
// corpus and must never be consulted for the new one.
TEST(ExactIndexTest, BuildResetsQuantizedTier) {
  ExactIndex idx;
  idx.Build(RandomUnitRows(20, 16, 7));
  idx.Quantize();
  EXPECT_TRUE(idx.quantized());
  idx.Build(RandomUnitRows(10, 16, 9));
  EXPECT_FALSE(idx.quantized());
}

// Every index kind must report distances that are literally
// 1 - dot(query, corpus[id]) for the ids it returns: results are claims
// about the corpus, re-checkable from the returned id alone.
TEST(IndexPropertyTest, ReportedDistancesMatchRecomputation) {
  proptest::Config config;
  config.cases = 30;
  config.min_size = 2;
  config.max_size = 64;
  proptest::ForAll("distance == 1 - dot(query, data[id])", config,
                   [](Rng& rng, size_t n) {
    const size_t cols = 8 + rng.Below(17);
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    const la::Matrix queries =
        RandomUnitRowsFrom(rng, 1 + rng.Below(4), cols);
    const size_t k = 1 + rng.Below(n);
    ExactIndex exact;
    exact.Build(data);
    HnswOptions hnsw_options;
    hnsw_options.seed = rng.Next();
    HnswIndex hnsw(hnsw_options);
    hnsw.Build(data);
    LshOptions lsh_options;
    lsh_options.seed = rng.Next();
    LshIndex lsh(lsh_options);
    lsh.Build(data);
    const auto check = [&](const std::vector<std::vector<Neighbor>>& all) {
      for (size_t q = 0; q < all.size(); ++q) {
        for (const Neighbor& nb : all[q]) {
          if (nb.id >= data.rows()) return false;
          const float expect =
              1.f - la::Dot(queries.Row(q), data.Row(nb.id), cols);
          if (nb.distance != expect) return false;
        }
      }
      return true;
    };
    return check(exact.QueryBatch(queries, k)) &&
           check(hnsw.QueryBatch(queries, k)) &&
           check(lsh.QueryBatch(queries, k));
  });
}

TEST(ExactIndexTest, TiesBrokenByAscendingId) {
  // Three identical vectors: all distances equal, ids must come in order.
  la::Matrix data(3, 4);
  for (size_t r = 0; r < 3; ++r) data.At(r, 0) = 1.f;
  ExactIndex idx;
  idx.Build(data);
  const auto neighbors = idx.Query(data.Row(0), 3);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].id, 0u);
  EXPECT_EQ(neighbors[1].id, 1u);
  EXPECT_EQ(neighbors[2].id, 2u);
}

// HNSW metamorphic property: with k capped at ef_search, raising k only
// extends the beam's returned prefix, so recall against a FIXED exact truth
// set is nondecreasing in k.
TEST(HnswIndexPropertyTest, RecallMonotoneInK) {
  proptest::Config config;
  config.cases = 15;
  config.min_size = 20;
  config.max_size = 200;
  proptest::ForAll("hnsw recall monotone in k", config,
                   [](Rng& rng, size_t n) {
    const size_t cols = 16;
    const la::Matrix data = RandomUnitRowsFrom(rng, n, cols);
    const la::Matrix queries = RandomUnitRowsFrom(rng, 5, cols);
    const size_t k_max = std::min<size_t>(16, n);
    ExactIndex exact;
    exact.Build(data);
    const auto truth = exact.QueryBatch(queries, k_max);
    HnswOptions options;
    options.seed = rng.Next();
    HnswIndex hnsw(options);
    hnsw.Build(data);
    double last_recall = -1.0;
    for (size_t k = 1; k <= k_max; k *= 2) {
      const auto approx = hnsw.QueryBatch(queries, k);
      size_t hits = 0;
      for (size_t q = 0; q < queries.rows(); ++q) {
        std::set<uint32_t> truth_ids;
        for (const Neighbor& nb : truth[q]) truth_ids.insert(nb.id);
        for (const Neighbor& nb : approx[q]) hits += truth_ids.count(nb.id);
      }
      const double recall =
          static_cast<double>(hits) /
          static_cast<double>(truth.size() * truth[0].size());
      if (recall < last_recall) return false;
      last_recall = recall;
    }
    return true;
  });
}

TEST(HnswIndexTest, HighRecallAgainstExact) {
  const la::Matrix data = RandomUnitRows(1000, 32, 6);
  ExactIndex exact;
  exact.Build(data);
  HnswOptions options;
  options.seed = 7;
  HnswIndex hnsw(options);
  hnsw.Build(data);

  const la::Matrix queries = RandomUnitRows(50, 32, 8);
  size_t hits = 0, total = 0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto truth = exact.Query(queries.Row(q), 10);
    const auto approx = hnsw.Query(queries.Row(q), 10);
    ASSERT_EQ(approx.size(), 10u);
    std::set<uint32_t> truth_ids;
    for (const Neighbor& n : truth) truth_ids.insert(n.id);
    for (const Neighbor& n : approx) hits += truth_ids.count(n.id);
    total += truth.size();
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.85);
}

TEST(HnswIndexTest, DeterministicAcrossRebuilds) {
  const la::Matrix data = RandomUnitRows(300, 16, 9);
  const la::Matrix queries = RandomUnitRows(10, 16, 10);
  HnswOptions options;
  options.seed = 11;
  HnswIndex a(options), b(options);
  a.Build(data);
  b.Build(data);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto na = a.Query(queries.Row(q), 5);
    const auto nb = b.Query(queries.Row(q), 5);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i].id, nb[i].id);
  }
}

TEST(HnswIndexTest, MoveBuildEquivalentToCopyBuild) {
  // Build(Matrix&&) must produce the exact same graph and results as the
  // copying build — it only changes how the vectors arrive.
  const la::Matrix data = RandomUnitRows(300, 16, 12);
  la::Matrix movable = data;
  HnswOptions options;
  options.seed = 13;
  HnswIndex copied(options), moved(options);
  copied.Build(data);
  moved.Build(std::move(movable));
  ASSERT_EQ(moved.data().rows(), data.rows());
  const la::Matrix queries = RandomUnitRows(20, 16, 14);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto a = copied.Query(queries.Row(q), 5);
    const auto b = moved.Query(queries.Row(q), 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST(HnswIndexTest, RepeatedQueriesReuseVisitedSetCleanly) {
  // The epoch-stamped visited set is reused across queries (and across
  // indexes of different sizes on the same thread). Interleaving queries
  // against a large and a small index must not leak visited state.
  const la::Matrix big_data = RandomUnitRows(500, 16, 15);
  const la::Matrix small_data = RandomUnitRows(60, 16, 16);
  HnswOptions options;
  options.seed = 17;
  HnswIndex big(options), small(options);
  big.Build(big_data);
  small.Build(small_data);
  const la::Matrix queries = RandomUnitRows(10, 16, 18);
  std::vector<std::vector<Neighbor>> first;
  for (size_t q = 0; q < queries.rows(); ++q) {
    first.push_back(big.Query(queries.Row(q), 5));
    small.Query(queries.Row(q), 5);
  }
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto again = big.Query(queries.Row(q), 5);
    ASSERT_EQ(again.size(), first[q].size());
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i].id, first[q][i].id) << "query " << q;
    }
  }
}

TEST(VisitedSetTest, EpochClearAndWraparound) {
  VisitedSet visited;
  visited.Clear(8);
  EXPECT_FALSE(visited.TestAndSet(3));
  EXPECT_TRUE(visited.TestAndSet(3));
  EXPECT_FALSE(visited.TestAndSet(7));
  visited.Clear(8);  // O(1): bumps the epoch, no refill
  EXPECT_FALSE(visited.TestAndSet(3));
  // Growing resets everything, shrinking logically hides the tail.
  visited.Clear(16);
  EXPECT_FALSE(visited.TestAndSet(15));
  visited.Clear(4);
  EXPECT_FALSE(visited.TestAndSet(3));
}

TEST(LshIndexTest, ReturnsKExactRankedCandidates) {
  const la::Matrix data = RandomUnitRows(500, 32, 12);
  LshIndex idx;
  idx.Build(data);
  const la::Matrix queries = RandomUnitRows(10, 32, 13);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto neighbors = idx.Query(queries.Row(q), 10);
    ASSERT_EQ(neighbors.size(), 10u);
    for (size_t i = 1; i < neighbors.size(); ++i) {
      EXPECT_LE(neighbors[i - 1].distance, neighbors[i].distance);
    }
  }
}

/// Serializes `built`, restores it into a fresh index, and asserts the
/// reloaded index answers QueryBatch bit-identically (ids AND distances).
template <typename Index>
void ExpectRoundTripIdentical(const Index& built, const la::Matrix& queries,
                              size_t k) {
  BinaryWriter writer;
  built.Save(writer);
  BinaryReader reader(writer.buffer());
  Index reloaded;
  ASSERT_TRUE(reloaded.Load(reader));
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
  ASSERT_EQ(reloaded.size(), built.size());
  const auto before = built.QueryBatch(queries, k);
  const auto after = reloaded.QueryBatch(queries, k);
  ASSERT_EQ(before.size(), after.size());
  for (size_t q = 0; q < before.size(); ++q) {
    ASSERT_EQ(before[q].size(), after[q].size()) << "query " << q;
    for (size_t i = 0; i < before[q].size(); ++i) {
      EXPECT_EQ(before[q][i].id, after[q][i].id) << "query " << q;
      EXPECT_EQ(before[q][i].distance, after[q][i].distance) << "query " << q;
    }
  }
}

template <typename Index>
void RoundTripAllSizes(uint64_t seed) {
  const la::Matrix queries = RandomUnitRows(16, 24, seed);
  for (const size_t rows : {size_t{0}, size_t{1}, size_t{200}}) {
    Index built;
    built.Build(RandomUnitRows(rows, 24, seed + rows));
    ExpectRoundTripIdentical(built, queries, 5);
  }
}

TEST(IndexSerializationTest, ExactRoundTripBitIdentical) {
  RoundTripAllSizes<ExactIndex>(21);
}

TEST(IndexSerializationTest, HnswRoundTripBitIdentical) {
  RoundTripAllSizes<HnswIndex>(22);
}

TEST(IndexSerializationTest, LshRoundTripBitIdentical) {
  RoundTripAllSizes<LshIndex>(23);
}

TEST(IndexSerializationTest, TruncatedPayloadFailsClosed) {
  // Any prefix of a valid image must be rejected without crashing and
  // leave the target index empty. (Bit flips are caught one level up by
  // the snapshot container checksum; structural truncation is the index
  // loader's own job.)
  HnswIndex built;
  built.Build(RandomUnitRows(60, 16, 24));
  BinaryWriter writer;
  built.Save(writer);
  const std::string& image = writer.buffer();
  for (size_t len = 0; len < image.size(); len += 97) {
    BinaryReader reader(std::string_view(image.data(), len));
    HnswIndex reloaded;
    EXPECT_FALSE(reloaded.Load(reader)) << "prefix " << len;
    EXPECT_FALSE(reader.ok()) << "prefix " << len;
    EXPECT_EQ(reloaded.size(), 0u) << "prefix " << len;
  }
}

TEST(IndexSerializationTest, HnswRejectsDanglingLinks) {
  // Corrupt a link target to an out-of-range id: the loader must refuse
  // rather than hand the search path an out-of-bounds neighbor.
  HnswIndex built;
  built.Build(RandomUnitRows(50, 8, 25));
  BinaryWriter writer;
  built.Save(writer);
  std::string image = writer.buffer();
  // The last WritePodVector in the image is a neighbor list; smash 4
  // trailing bytes (one stored id) to a huge value.
  ASSERT_GE(image.size(), 4u);
  const uint32_t bogus = 0x7fffffff;
  std::memcpy(image.data() + image.size() - 4, &bogus, 4);
  BinaryReader reader(image);
  HnswIndex reloaded;
  EXPECT_FALSE(reloaded.Load(reader));
}

TEST(OverlapBlockerTest, RanksSharedRareTokensFirst) {
  OverlapBlocker blocker;
  blocker.Build({"alpha beta gamma", "alpha beta", "delta epsilon",
                 "gamma zeta"});
  const auto candidates = blocker.Query("alpha beta gamma", 2);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], 0u);  // shares all three tokens
  const auto none = blocker.Query("unrelated words", 5);
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace ember::index
