// Workload harness tests (DESIGN.md §16): the EMBT0001 trace container's
// round-trip and exhaustive corruption sweep, the seeded generator's
// determinism and shape guarantees, SLO-aware admission (token buckets,
// EDF drain order, armed failpoints), the replay determinism property
// (same trace + quotas => bit-identical decisions at any worker count),
// and the committed golden-trace replay fixtures.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/vector_ops.h"
#include "load/generator.h"
#include "load/replayer.h"
#include "load/trace.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "proptest.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

#define SKIP_IF_FAILPOINTS_OFF()                               \
  do {                                                         \
    if (!::ember::fail::kEnabled) {                            \
      GTEST_SKIP() << "failpoints compiled out of this build"; \
    }                                                          \
  } while (0)

namespace ember {
namespace {

using load::GeneratorOptions;
using load::PhaseSpec;
using load::ReplayOptions;
using load::ReplayReport;
using load::TenantSpec;
using load::Trace;
using load::TraceEvent;
using load::ZipfSampler;
using serve::AdmissionController;
using serve::Engine;
using serve::EngineMetrics;
using serve::EngineOptions;
using serve::IndexKind;
using serve::QueuePolicy;
using serve::Snapshot;
using serve::SnapshotManifest;
using serve::SubmitOptions;
using serve::TenantQuota;
using serve::TokenBucket;

// ---------------------------------------------------------------------------
// Shared fixtures: the deterministic hash model and snapshot builder from
// serve_test, plus golden plumbing in the obs_test idiom.
// ---------------------------------------------------------------------------

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo(const std::string& code) {
  embed::ModelInfo info;
  info.code = code;
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

class HashModel : public embed::EmbeddingModel {
 public:
  explicit HashModel(std::string code = "HT", int64_t encode_sleep_micros = 0)
      : EmbeddingModel(HashModelInfo(code)),
        encode_sleep_micros_(encode_sleep_micros) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    if (encode_sleep_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(encode_sleep_micros_));
    }
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}

 private:
  int64_t encode_sleep_micros_;
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23) + " value" +
                  std::to_string((i * 13) % 41));
  }
  return out;
}

Snapshot MakeSnapshot(size_t rows) {
  HashModel model;
  model.Initialize();
  la::Matrix corpus = model.VectorizeAll(Sentences(rows, "corpus"));
  SnapshotManifest manifest;
  manifest.model_code = "HT";
  manifest.default_k = 5;
  manifest.kind = IndexKind::kExact;
  manifest.dataset = "unit-test";
  index::HnswOptions hnsw_options;
  hnsw_options.seed = 7;
  index::LshOptions lsh_options;
  lsh_options.seed = 7;
  return Snapshot::Build(std::move(manifest), std::move(corpus), hnsw_options,
                         lsh_options);
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ember_load_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

std::string GoldenPath(const std::string& name) {
  return std::string(EMBER_TEST_GOLDEN_DIR) + "/" + name;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("EMBER_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "could not write " << path;
    std::fprintf(stderr, "[golden] regenerated %s (%zu bytes)\n", path.c_str(),
                 actual.size());
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << "; run with EMBER_REGEN_GOLDEN=1 to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "output diverged from " << path
      << "; if the change is intentional, regenerate with "
         "EMBER_REGEN_GOLDEN=1";
}

/// The mixed multi-tenant options behind the committed golden trace: a
/// quota-limited skewed tenant plus an unlimited one, a Poisson warm phase
/// and a 3x burst phase. Any change here (or in the generator) shows up as
/// a byte diff against tests/golden/workload.trace.
GeneratorOptions GoldenWorkloadOptions() {
  GeneratorOptions options;
  options.seed = 42;
  options.notes = "golden workload fixture (PR 10)";
  TenantSpec alpha;
  alpha.name = "alpha";
  alpha.dataset = "unit-test";
  alpha.corpus_rows = 48;
  alpha.zipf_s = 1.1;
  alpha.weight = 3.0;
  alpha.upsert_fraction = 0.15;
  alpha.delete_fraction = 0.05;
  alpha.quota_rate_per_sec = 400;
  alpha.quota_burst = 8;
  TenantSpec beta;
  beta.name = "beta";
  beta.dataset = "unit-test";
  beta.corpus_rows = 48;
  beta.zipf_s = 0.9;
  beta.weight = 1.0;
  options.tenants = {alpha, beta};
  PhaseSpec warm;
  warm.arrival = PhaseSpec::Arrival::kPoisson;
  warm.rate_per_sec = 800;
  warm.duration_micros = 40'000;
  PhaseSpec burst;
  burst.arrival = PhaseSpec::Arrival::kBurst;
  burst.rate_per_sec = 800;
  burst.burst_factor = 3.0;
  burst.burst_duty = 0.5;
  burst.period_micros = 10'000;
  burst.duration_micros = 40'000;
  options.phases = {warm, burst};
  return options;
}

class LoadTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// EMBT0001 container: round-trip and fail-closed corruption sweep
// ---------------------------------------------------------------------------

TEST_F(LoadTest, TraceContainerRoundTripsBitIdentically) {
  const Trace trace = GenerateTrace(GoldenWorkloadOptions());
  ASSERT_GT(trace.events.size(), 0u);

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(trace.SaveTo(path).ok());
  const Result<Trace> loaded = Trace::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Serialize(), trace.Serialize());
  EXPECT_EQ(loaded.value().Checksum(), trace.Checksum());
  EXPECT_EQ(loaded.value().manifest.seed, trace.manifest.seed);
  EXPECT_EQ(loaded.value().manifest.notes, trace.manifest.notes);
  ASSERT_EQ(loaded.value().manifest.tenants.size(), 2u);
  EXPECT_EQ(loaded.value().manifest.tenants[0].name, "alpha");
  EXPECT_DOUBLE_EQ(loaded.value().manifest.tenants[0].rate_per_sec, 400.0);
  EXPECT_EQ(loaded.value().events.size(), trace.events.size());
  std::filesystem::remove(path);
}

TEST_F(LoadTest, EveryByteFlipAndTruncationFailsClosed) {
  // A compact single-tenant trace keeps the exhaustive sweep fast while
  // still covering the magic, manifest, events, length, and checksum
  // regions of the container.
  GeneratorOptions options;
  options.seed = 7;
  TenantSpec tenant;
  tenant.name = "t";
  tenant.corpus_rows = 8;
  tenant.upsert_fraction = 0.3;
  tenant.delete_fraction = 0.2;
  options.tenants = {tenant};
  PhaseSpec phase;
  phase.rate_per_sec = 400;
  phase.duration_micros = 20'000;
  options.phases = {phase};
  const Trace trace = GenerateTrace(options);
  ASSERT_GT(trace.events.size(), 2u);

  const std::string path = TempPath("corrupt_base");
  ASSERT_TRUE(trace.SaveTo(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 32u);
  ASSERT_TRUE(Trace::LoadFrom(path).ok());

  const std::string mutant_path = TempPath("corrupt_mutant");
  auto write_mutant = [&](const std::string& data) {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out << data;
  };
  size_t flip_failures = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutant = bytes;
    mutant[i] = static_cast<char>(mutant[i] ^ 0xFF);
    write_mutant(mutant);
    if (!Trace::LoadFrom(mutant_path).ok()) ++flip_failures;
  }
  EXPECT_EQ(flip_failures, bytes.size())
      << "a corrupted trace byte was accepted";
  size_t truncation_failures = 0;
  for (size_t len = 0; len < bytes.size(); ++len) {
    write_mutant(bytes.substr(0, len));
    if (!Trace::LoadFrom(mutant_path).ok()) ++truncation_failures;
  }
  EXPECT_EQ(truncation_failures, bytes.size())
      << "a truncated trace was accepted";
  std::filesystem::remove(path);
  std::filesystem::remove(mutant_path);
}

TEST_F(LoadTest, StructurallyInvalidPayloadsAreRefused) {
  // Hand-built containers that pass the checksum but violate trace
  // invariants: the parser must refuse them, not best-effort decode.
  const Trace valid = [] {
    GeneratorOptions options;
    options.seed = 3;
    TenantSpec tenant;
    tenant.name = "t";
    tenant.corpus_rows = 4;
    options.tenants = {tenant};
    PhaseSpec phase;
    phase.rate_per_sec = 200;
    phase.duration_micros = 20'000;
    options.phases = {phase};
    return GenerateTrace(options);
  }();

  // Unsorted arrivals.
  Trace unsorted = valid;
  ASSERT_GE(unsorted.events.size(), 2u);
  std::swap(unsorted.events.front().arrival_micros,
            unsorted.events.back().arrival_micros);
  const std::string path = TempPath("invalid");
  ASSERT_TRUE(unsorted.SaveTo(path).ok());
  EXPECT_FALSE(Trace::LoadFrom(path).ok());

  // Tenant index out of range.
  Trace bad_tenant = valid;
  bad_tenant.events.front().tenant = 9;
  ASSERT_TRUE(bad_tenant.SaveTo(path).ok());
  EXPECT_FALSE(Trace::LoadFrom(path).ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Generator: determinism and workload shape
// ---------------------------------------------------------------------------

TEST_F(LoadTest, GeneratorIsAPureFunctionOfItsOptions) {
  const GeneratorOptions options = GoldenWorkloadOptions();
  const Trace a = GenerateTrace(options);
  const Trace b = GenerateTrace(options);
  EXPECT_EQ(a.Serialize(), b.Serialize());

  GeneratorOptions other = options;
  other.seed = 43;
  EXPECT_NE(GenerateTrace(other).Serialize(), a.Serialize());
}

TEST_F(LoadTest, GeneratedTracesAreSortedMixedAndZipfSkewed) {
  GeneratorOptions options = GoldenWorkloadOptions();
  options.tenants[0].zipf_s = 1.2;
  options.phases[0].duration_micros = 200'000;
  options.phases[1].reload_marker = true;
  const Trace trace = GenerateTrace(options);

  int64_t last_arrival = -1;
  std::map<TraceEvent::Op, size_t> ops;
  std::map<uint64_t, size_t> alpha_query_keys;
  for (const TraceEvent& event : trace.events) {
    EXPECT_GE(event.arrival_micros, last_arrival);
    last_arrival = event.arrival_micros;
    ops[event.op]++;
    if (event.op == TraceEvent::Op::kQuery && event.tenant == 0) {
      EXPECT_LT(event.key, options.tenants[0].corpus_rows);
      alpha_query_keys[event.key]++;
    }
  }
  EXPECT_GT(ops[TraceEvent::Op::kQuery], 0u);
  EXPECT_GT(ops[TraceEvent::Op::kUpsert], 0u);
  EXPECT_GT(ops[TraceEvent::Op::kDelete], 0u);
  // One reload marker per tenant at the burst phase boundary.
  EXPECT_EQ(ops[TraceEvent::Op::kReload], trace.manifest.tenants.size());
  // Zipf skew: the hottest key outdraws a mid-rank key decisively.
  EXPECT_GT(alpha_query_keys[0], alpha_query_keys[24] + 2);
}

TEST_F(LoadTest, ZipfSamplerMatchesItsAnalyticCdf) {
  const ZipfSampler zipf(100, 1.0);
  EXPECT_EQ(zipf.Sample(0.0), 0u);
  EXPECT_EQ(zipf.Sample(0.999999), 99u);
  Rng rng(11);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng.Uniform())]++;
  // Under s=1 over 100 keys, rank 0 draws ~19% of the mass; rank 50 ~0.4%.
  EXPECT_GT(counts[0], counts[50] * 10);
  EXPECT_GT(counts[0], 2000u);
}

// ---------------------------------------------------------------------------
// Admission: token buckets, EDF drain order, failpoints
// ---------------------------------------------------------------------------

TEST_F(LoadTest, TokenBucketRefillsOnTheExplicitClock) {
  TokenBucket bucket(1.0, 2.0);
  const SteadyTime t0 = SteadyTime();
  EXPECT_TRUE(bucket.TryAcquire(t0));  // primed full: 2 tokens
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0));
  // +1s at 1/s refills exactly one token.
  const SteadyTime t1 = AfterMicros(t0, 1'000'000);
  EXPECT_TRUE(bucket.TryAcquire(t1));
  EXPECT_FALSE(bucket.TryAcquire(t1));
  // A long idle stretch caps at burst, not rate * elapsed.
  const SteadyTime t2 = AfterMicros(t1, 60'000'000);
  EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_FALSE(bucket.TryAcquire(t2));
}

TEST_F(LoadTest, AdmissionControllerThrottlesOnlyQuotaedTenants) {
  AdmissionController admission({{"limited", 1.0, 1.0}});
  ASSERT_TRUE(admission.enabled());
  const SteadyTime t0 = SteadyTime();
  EXPECT_TRUE(admission.Admit("limited", t0).ok());
  const Status refused = admission.Admit("limited", t0);
  EXPECT_EQ(refused.code(), Status::Code::kUnavailable);
  EXPECT_NE(refused.message().find("over quota"), std::string::npos);
  // Tenants without a quota (and the default tenant) are never throttled.
  EXPECT_TRUE(admission.Admit("other", t0).ok());
  EXPECT_TRUE(admission.Admit("", t0).ok());

  AdmissionController unconfigured;
  EXPECT_FALSE(unconfigured.enabled());
}

TEST_F(LoadTest, BucketExhaustionReturnsUnavailableWithoutEnqueueing) {
  EngineOptions options;
  options.max_batch = 4;
  options.max_wait_micros = 200;
  options.quotas = {{"t", 1.0, 2.0}};
  auto engine =
      Engine::Create(MakeSnapshot(16), std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());

  // All five submits charge the bucket at the SAME virtual instant: burst 2
  // admits exactly two, and the rest must be refused without entering the
  // queue (throttled, not rejected).
  const SteadyTime instant = AfterMicros(SteadyTime(), 1);
  size_t admitted = 0, throttled = 0;
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  for (int i = 0; i < 5; ++i) {
    SubmitOptions submit;
    submit.tenant = "t";
    submit.admit_time = instant;
    auto submitted = engine.value()->Submit("q" + std::to_string(i), submit);
    if (submitted.ok()) {
      ++admitted;
      futures.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), Status::Code::kUnavailable);
      EXPECT_NE(submitted.status().message().find("over quota"),
                std::string::npos);
      ++throttled;
    }
  }
  EXPECT_EQ(admitted, 2u);
  EXPECT_EQ(throttled, 3u);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  engine.value()->Stop();

  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.submitted, 2u);
  EXPECT_EQ(metrics.throttled, 3u);
  EXPECT_EQ(metrics.rejected, 0u);
  ASSERT_EQ(metrics.tenants.size(), 1u);
  EXPECT_EQ(metrics.tenants[0].tenant, "t");
  EXPECT_EQ(metrics.tenants[0].submitted, 2u);
  EXPECT_EQ(metrics.tenants[0].throttled, 3u);
  EXPECT_EQ(metrics.tenants[0].completed, 2u);
}

/// Drain-order probe: a single worker stalls ~30ms in the encode of a
/// sacrificial query while three upserts with inverted deadlines pile into
/// the queue. Live-corpus ids are assigned in application order, so the
/// MutateReply ids reveal exactly which request drained first.
std::vector<uint64_t> DrainOrderIds(QueuePolicy policy) {
  EngineOptions options;
  options.live = true;
  options.workers = 1;
  options.max_batch = 1;
  options.max_wait_micros = 0;
  options.queue_policy = policy;
  auto engine = Engine::Create(
      MakeSnapshot(32), std::make_shared<HashModel>("HT", 30'000), options);
  EXPECT_TRUE(engine.ok());
  auto stall = engine.value()->Submit("stall");
  EXPECT_TRUE(stall.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Submission order: LATEST deadline first — the EDF inversion.
  const SteadyTime now = SteadyNow();
  std::vector<std::future<Result<serve::MutateReply>>> futures;
  for (const int64_t deadline_sec : {30, 20, 10}) {
    auto submitted = engine.value()->Upsert(
        "row deadline " + std::to_string(deadline_sec),
        AfterMicros(now, deadline_sec * 1'000'000));
    EXPECT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  std::vector<uint64_t> ids;
  for (auto& future : futures) {
    Result<serve::MutateReply> reply = future.get();
    EXPECT_TRUE(reply.ok());
    ids.push_back(reply.ok() ? reply.value().id : 0);
  }
  (void)stall.value().get();
  engine.value()->Stop();
  return ids;
}

TEST_F(LoadTest, EdfCompletesDeadlineInvertedSubmissionsInDeadlineOrder) {
  // Ids start at the 32 base rows. Under EDF the tightest deadline (10s,
  // submitted LAST) must drain first and take the lowest id.
  const std::vector<uint64_t> ids = DrainOrderIds(QueuePolicy::kEdf);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[2], 32u);  // 10s deadline
  EXPECT_EQ(ids[1], 33u);  // 20s deadline
  EXPECT_EQ(ids[0], 34u);  // 30s deadline
}

TEST_F(LoadTest, FifoBaselineKeepsSubmissionOrderDespiteDeadlines) {
  const std::vector<uint64_t> ids = DrainOrderIds(QueuePolicy::kFifo);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 32u);  // first submitted drains first
  EXPECT_EQ(ids[1], 33u);
  EXPECT_EQ(ids[2], 34u);
}

TEST_F(LoadTest, TraceReadFailpointFailsClosed) {
  SKIP_IF_FAILPOINTS_OFF();
  const Trace trace = GenerateTrace(GoldenWorkloadOptions());
  const std::string path = TempPath("failpoint_trace");
  ASSERT_TRUE(trace.SaveTo(path).ok());

  ASSERT_TRUE(fail::ConfigureSpec("load/trace_read", "error:io,max=1").ok());
  const Result<Trace> injected = Trace::LoadFrom(path);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status().code(), Status::Code::kIoError);
  // One-shot spent: the same file loads cleanly afterwards.
  const Result<Trace> clean = Trace::LoadFrom(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().Serialize(), trace.Serialize());
  std::filesystem::remove(path);
}

TEST_F(LoadTest, AdmitBucketFailpointRefusesWithoutCharging) {
  SKIP_IF_FAILPOINTS_OFF();
  EngineOptions options;
  options.quotas = {{"t", 1000.0, 2.0}};
  auto engine =
      Engine::Create(MakeSnapshot(16), std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());

  ASSERT_TRUE(
      fail::ConfigureSpec("admit/bucket", "error:unavailable,max=1").ok());
  SubmitOptions submit;
  submit.tenant = "t";
  auto refused = engine.value()->Submit("q", submit);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(engine.value()->Metrics().submitted, 0u);
  EXPECT_EQ(engine.value()->Metrics().throttled, 1u);

  // The failpoint fires BEFORE the bucket, so the refused submit did not
  // spend a token: the full burst is still available afterwards.
  fail::DisarmAll();
  for (int i = 0; i < 2; ++i) {
    auto submitted = engine.value()->Submit("q" + std::to_string(i), submit);
    EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
    if (submitted.ok()) {
      EXPECT_TRUE(submitted.value().get().ok());
    }
  }
  engine.value()->Stop();
}

// ---------------------------------------------------------------------------
// Replay determinism property
// ---------------------------------------------------------------------------

/// One deterministic fingerprint over everything a replay is supposed to
/// pin down: the replayer's own report (admission decision sequence,
/// per-tenant tallies) plus the engine's deterministic counter subset and
/// per-tenant ledger. Timing histograms and batch composition are
/// explicitly excluded — they are allowed to vary with scheduling.
uint64_t ReplayFingerprint(const ReplayReport& report,
                           const EngineMetrics& metrics) {
  uint64_t h = report.Signature();
  auto fold = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  fold(metrics.submitted);
  fold(metrics.completed);
  fold(metrics.expired);
  fold(metrics.failed);
  fold(metrics.rejected);
  fold(metrics.throttled);
  fold(metrics.upserts);
  fold(metrics.deletes);
  for (const serve::TenantCounters& tenant : metrics.tenants) {
    fold(HashBytes(tenant.tenant.data(), tenant.tenant.size()));
    fold(tenant.submitted);
    fold(tenant.completed);
    fold(tenant.expired);
    fold(tenant.failed);
    fold(tenant.throttled);
    fold(tenant.rejected);
    fold(tenant.deadline_misses);
  }
  return h;
}

TEST_F(LoadTest, ReplayIsBitReproducibleAcrossRunsAndWorkerCounts) {
  // The tentpole property: ANY generated trace, replayed twice from the
  // same seed at 1/2/4/8 batcher threads, produces bit-identical engine
  // counter states and per-tenant admission decisions. Shrinks on failure.
  proptest::Config config;
  config.seed = 0x10adULL;
  config.cases = 6;
  config.min_size = 2;
  config.max_size = 10;
  proptest::ForAll(
      "replay determinism", config, [&](Rng& rng, size_t size) {
        GeneratorOptions options;
        options.seed = rng.Next();
        const size_t tenant_count = 1 + rng.Below(2);
        uint64_t max_rows = 1;
        for (size_t t = 0; t < tenant_count; ++t) {
          TenantSpec tenant;
          tenant.name = "t" + std::to_string(t);
          tenant.corpus_rows = 16 + rng.Below(32);
          max_rows = std::max(max_rows, tenant.corpus_rows);
          tenant.zipf_s = rng.Uniform() * 1.5;
          tenant.weight = 0.5 + rng.Uniform();
          tenant.upsert_fraction = rng.Uniform() * 0.3;
          tenant.delete_fraction = rng.Uniform() * 0.2;
          if (rng.Chance(0.5)) {
            tenant.quota_rate_per_sec = 200 + rng.Uniform() * 2000;
            tenant.quota_burst = 1 + rng.Below(8);
          }
          options.tenants.push_back(std::move(tenant));
        }
        const size_t phase_count = 1 + rng.Below(2);
        for (size_t p = 0; p < phase_count; ++p) {
          PhaseSpec phase;
          phase.arrival = static_cast<PhaseSpec::Arrival>(rng.Below(3));
          phase.rate_per_sec = 500 + rng.Uniform() * 1500;
          phase.duration_micros =
              static_cast<int64_t>(size) * 10'000 / phase_count;
          options.phases.push_back(phase);
        }
        const Trace trace = GenerateTrace(options);
        if (GenerateTrace(options).Serialize() != trace.Serialize()) {
          return false;  // the generator itself must be pure
        }

        uint64_t expected = 0;
        bool first = true;
        for (const size_t workers : {1, 2, 4, 8}) {
          for (int rep = 0; rep < 2; ++rep) {
            EngineOptions engine_options;
            engine_options.live = true;
            engine_options.workers = workers;
            engine_options.max_batch = 8;
            engine_options.max_wait_micros = 200;
            engine_options.quotas = load::QuotasFromTrace(trace);
            auto engine =
                Engine::Create(MakeSnapshot(max_rows),
                               std::make_shared<HashModel>(), engine_options);
            if (!engine.ok()) return false;
            ReplayOptions replay_options;
            replay_options.max_outstanding = 32;
            const Result<ReplayReport> report =
                load::Replay(trace, {engine.value().get()}, replay_options);
            if (!report.ok()) return false;
            engine.value()->Stop();
            const uint64_t fingerprint = ReplayFingerprint(
                report.value(), engine.value()->Metrics());
            if (first) {
              expected = fingerprint;
              first = false;
            } else if (fingerprint != expected) {
              return false;
            }
          }
        }
        return true;
      });
}

// ---------------------------------------------------------------------------
// Golden trace replay
// ---------------------------------------------------------------------------

/// Keeps only the deterministic counter samples from a Prometheus scrape
/// and normalizes the process-global engine instance label, so the golden
/// is stable across test orderings and reruns.
std::string FilterScrape(const std::string& scrape) {
  static const std::set<std::string> kKeep = {
      "ember_serve_submitted_total", "ember_serve_completed_total",
      "ember_serve_rejected_total", "ember_serve_throttled_total",
      "ember_serve_expired_total", "ember_serve_failed_total",
      "ember_serve_deadline_misses_total", "ember_serve_upserts_total",
      "ember_serve_deletes_total", "ember_serve_tenant_submitted_total",
      "ember_serve_tenant_completed_total",
      "ember_serve_tenant_throttled_total",
      "ember_serve_tenant_rejected_total", "ember_serve_tenant_expired_total",
      "ember_serve_tenant_failed_total",
      "ember_serve_tenant_deadline_misses_total"};
  std::stringstream in(scrape);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) continue;
    if (kKeep.count(line.substr(0, name_end)) == 0) continue;
    const size_t label = line.find("engine=\"");
    if (label != std::string::npos) {
      size_t digits_end = label + 8;
      while (digits_end < line.size() && line[digits_end] != '"') {
        ++digits_end;
      }
      line = line.substr(0, label + 8) + "E" + line.substr(digits_end);
    }
    out += line + "\n";
  }
  return out;
}

TEST_F(LoadTest, GoldenTraceReplayMatchesCommittedFixtures) {
  // Three goldens guard three layers: workload.trace pins the generator's
  // bytes, workload_stages.txt pins the replay's span structure, and
  // workload_scrape.prom pins the engine + per-tenant counter outcomes.
  const Trace generated = GenerateTrace(GoldenWorkloadOptions());
  const std::string trace_path = GoldenPath("workload.trace");
  if (std::getenv("EMBER_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(generated.SaveTo(trace_path).ok());
    std::fprintf(stderr, "[golden] regenerated %s (%zu events)\n",
                 trace_path.c_str(), generated.events.size());
  }
  const Result<Trace> loaded = Trace::LoadFrom(trace_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Generator drift guard: today's generator must still produce the
  // committed bytes from the committed options.
  EXPECT_EQ(loaded.value().Serialize(), generated.Serialize());
  const Trace& trace = loaded.value();

  // Deterministic replay shape: one worker, singleton batches, one query in
  // flight — the span structure is then a pure function of the trace.
  obs::Registry::Global().Reset();
  EngineOptions options;
  options.live = true;
  options.workers = 1;
  options.max_batch = 1;
  options.max_wait_micros = 0;
  options.max_queue = 256;
  options.quotas = load::QuotasFromTrace(trace);
  auto engine =
      Engine::Create(MakeSnapshot(48), std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());

  obs::Tracer::Global().SetRingCapacity(16384);
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);
  ReplayOptions replay_options;
  replay_options.max_outstanding = 1;
  const Result<ReplayReport> report =
      load::Replay(trace, {engine.value().get()}, replay_options);
  // Scrape while the engine's collector is still registered, then Stop()
  // BEFORE disabling the tracer: the last future completes inside the
  // worker's serve/complete span, so only joining the worker guarantees
  // every span of the final batch has been recorded.
  const std::string scrape = obs::Registry::Global().ToPrometheusText();
  engine.value()->Stop();
  obs::Tracer::Global().SetEnabled(false);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().events, trace.events.size());
  EXPECT_GT(report.value().throttled, 0u)
      << "fixture should exercise the token bucket";
  EXPECT_EQ(report.value().rejected, 0u);

  // StageBreakdown golden: span names + counts only (times vary by run).
  const std::vector<obs::SpanRecord> records = obs::Tracer::Global().Drain();
  std::vector<obs::StageBreakdownRow> rows = obs::StageBreakdown(records);
  std::sort(rows.begin(), rows.end(),
            [](const obs::StageBreakdownRow& a,
               const obs::StageBreakdownRow& b) {
              return std::string(a.name) < std::string(b.name);
            });
  std::string stages;
  for (const obs::StageBreakdownRow& row : rows) {
    stages += std::string(row.name) + " spans=" + std::to_string(row.spans) +
              "\n";
  }
  CheckGolden("workload_stages.txt", stages);

  // Prometheus golden: the deterministic counter subset of the scrape.
  CheckGolden("workload_scrape.prom", FilterScrape(scrape));

  obs::Registry::Global().Reset();
  obs::Tracer::Global().Clear();
}

}  // namespace
}  // namespace ember
