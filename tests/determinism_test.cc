// The tentpole guarantee of the threading layer: every parallelized batch
// API returns bit-identical output at any thread count, and the blocked
// brute-force scorer matches a naive scalar reference exactly.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/parallel.h"
#include "common/rng.h"
#include "embed/embedding_model.h"
#include "embed/model_registry.h"
#include "index/exact_index.h"
#include "index/hnsw_index.h"
#include "la/vector_ops.h"
#include "match/unsupervised.h"

namespace ember {
namespace {

class ThreadSweepTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreads(0); }
};

std::vector<std::string> TestSentences(size_t n) {
  Rng rng(0x5edULL);
  const char* words[] = {"acme",    "deluxe",  "wireless", "headset",
                         "premium", "noise",   "battery",  "comfort",
                         "stereo",  "adapter", "charger",  "cable"};
  std::vector<std::string> sentences(n);
  for (std::string& sentence : sentences) {
    const size_t len = 4 + rng.Below(8);
    for (size_t w = 0; w < len; ++w) {
      if (w) sentence += ' ';
      sentence += words[rng.Below(12)];
    }
  }
  return sentences;
}

la::Matrix RandomUnitRows(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillGaussian(rng, 1.f);
  for (size_t r = 0; r < rows; ++r) la::NormalizeInPlace(m.Row(r), cols);
  return m;
}

TEST_F(ThreadSweepTest, BatchTransformBitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> sentences = TestSentences(64);
  // A static model plus both transformer pooling regimes (kSMiniLm mean,
  // kBert CLS) cover every EncodeInto path, including the per-worker
  // thread-local encoder workspaces.
  for (const embed::ModelId id :
       {embed::ModelId::kFastText, embed::ModelId::kSMiniLm,
        embed::ModelId::kBert}) {
    auto model = embed::CreateModel(id);
    model->Initialize();
    SetThreads(1);
    const la::Matrix reference = model->VectorizeAll(sentences);
    for (const int threads : {2, 4, 8}) {
      SetThreads(threads);
      EXPECT_EQ(model->VectorizeAll(sentences), reference)
          << model->info().code << " at " << threads << " threads";
    }
  }
}

TEST_F(ThreadSweepTest, ExactQueryBatchBitIdenticalAcrossThreadCounts) {
  const la::Matrix data = RandomUnitRows(500, 48, 1);
  const la::Matrix queries = RandomUnitRows(97, 48, 2);
  index::ExactIndex idx;
  idx.Build(data);

  SetThreads(1);
  const auto reference = idx.QueryBatch(queries, 10);
  for (const int threads : {2, 4}) {
    SetThreads(threads);
    const auto batch = idx.QueryBatch(queries, 10);
    ASSERT_EQ(batch.size(), reference.size());
    for (size_t q = 0; q < reference.size(); ++q) {
      ASSERT_EQ(batch[q].size(), reference[q].size()) << "query " << q;
      for (size_t i = 0; i < reference[q].size(); ++i) {
        EXPECT_EQ(batch[q][i].id, reference[q][i].id);
        EXPECT_EQ(batch[q][i].distance, reference[q][i].distance);
      }
    }
  }
}

TEST_F(ThreadSweepTest, HnswQueryBatchBitIdenticalAcrossThreadCounts) {
  const la::Matrix data = RandomUnitRows(400, 32, 3);
  const la::Matrix queries = RandomUnitRows(50, 32, 4);
  index::HnswIndex idx;
  idx.Build(data);

  SetThreads(1);
  const auto reference = idx.QueryBatch(queries, 10);
  for (const int threads : {2, 4}) {
    SetThreads(threads);
    const auto batch = idx.QueryBatch(queries, 10);
    ASSERT_EQ(batch.size(), reference.size());
    for (size_t q = 0; q < reference.size(); ++q) {
      ASSERT_EQ(batch[q].size(), reference[q].size());
      for (size_t i = 0; i < reference[q].size(); ++i) {
        EXPECT_EQ(batch[q][i].id, reference[q][i].id);
        EXPECT_EQ(batch[q][i].distance, reference[q][i].distance);
      }
    }
  }
}

// Naive scalar reference: score every data row with la::Dot in row order,
// full sort, truncate. The blocked GemmBt path must match it bit for bit.
std::vector<index::Neighbor> NaiveTopK(const la::Matrix& data,
                                       const float* query, size_t k) {
  std::vector<index::Neighbor> all(data.rows());
  for (size_t r = 0; r < data.rows(); ++r) {
    all[r] = {static_cast<uint32_t>(r),
              1.f - la::Dot(query, data.Row(r), data.cols())};
  }
  std::sort(all.begin(), all.end(), index::CloserThan);
  all.resize(std::min(k, all.size()));
  return all;
}

TEST_F(ThreadSweepTest, BlockedTopKMatchesNaiveScalarTopK) {
  // Sizes straddle the kernel's data/query block boundaries.
  for (const size_t n : {100ul, 256ul, 300ul}) {
    const la::Matrix data = RandomUnitRows(n, 33, 5 + n);
    const la::Matrix queries = RandomUnitRows(19, 33, 6 + n);
    index::ExactIndex idx;
    idx.Build(data);
    const auto batch = idx.QueryBatch(queries, 10);
    for (size_t q = 0; q < queries.rows(); ++q) {
      const auto naive = NaiveTopK(data, queries.Row(q), 10);
      ASSERT_EQ(batch[q].size(), naive.size());
      for (size_t i = 0; i < naive.size(); ++i) {
        EXPECT_EQ(batch[q][i].id, naive[i].id) << "n=" << n << " q=" << q;
        EXPECT_EQ(batch[q][i].distance, naive[i].distance);
      }
    }
  }
}

TEST_F(ThreadSweepTest, AllPairSimilaritiesBitIdenticalAcrossThreadCounts) {
  const la::Matrix left = RandomUnitRows(150, 32, 7);
  const la::Matrix right = RandomUnitRows(90, 32, 8);
  SetThreads(1);
  const auto reference =
      match::UnsupervisedMatcher::AllPairSimilarities(left, right);
  for (const int threads : {2, 4}) {
    SetThreads(threads);
    const auto pairs =
        match::UnsupervisedMatcher::AllPairSimilarities(left, right);
    ASSERT_EQ(pairs.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(pairs[i].left, reference[i].left);
      EXPECT_EQ(pairs[i].right, reference[i].right);
      EXPECT_EQ(pairs[i].sim, reference[i].sim);
    }
  }
}

}  // namespace
}  // namespace ember
