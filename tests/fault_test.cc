// Fault-injection and resilience tests (DESIGN.md §10): the failpoint
// registry itself, the retry/backoff and circuit-breaker primitives, the
// exhaustive snapshot corruption sweep, and the serving engine under
// injected embed/query faults, degraded mode, and hot snapshot reloads.
//
// Most tests arm failpoints, so they are built and run in every sanitizer
// config; injection tests skip themselves in -DEMBER_FAILPOINTS_ENABLED=OFF
// builds, where only the pure-primitive and corruption tests remain.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/timer.h"
#include "core/vector_cache.h"
#include "la/vector_ops.h"
#include "serve/circuit_breaker.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

#define SKIP_IF_FAILPOINTS_OFF()                                    \
  do {                                                              \
    if (!::ember::fail::kEnabled) {                                 \
      GTEST_SKIP() << "failpoints compiled out of this build";      \
    }                                                               \
  } while (0)

namespace ember {
namespace {

using serve::BreakerOptions;
using serve::CircuitBreaker;
using serve::Engine;
using serve::EngineMetrics;
using serve::EngineOptions;
using serve::Health;
using serve::IndexKind;
using serve::QueryReply;
using serve::Snapshot;
using serve::SnapshotManifest;

// ---------------------------------------------------------------------------
// Shared fixtures: the deterministic hash model and snapshot builders from
// serve_test, plus automatic failpoint cleanup around every test.
// ---------------------------------------------------------------------------

constexpr size_t kDim = 16;

embed::ModelInfo HashModelInfo(const std::string& code) {
  embed::ModelInfo info;
  info.code = code;
  info.name = "hash-test-model";
  info.dim = kDim;
  return info;
}

class HashModel : public embed::EmbeddingModel {
 public:
  explicit HashModel(std::string code = "HT")
      : EmbeddingModel(HashModelInfo(code)) {}

  void EncodeInto(const std::string& sentence, float* out) const override {
    for (size_t d = 0; d < kDim; ++d) out[d] = 0.f;
    uint64_t hash = 1469598103934665603ull;
    for (const char c : sentence) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      out[hash % kDim] += 1.f + static_cast<float>((hash >> 32) & 0xff);
    }
    la::NormalizeInPlace(out, kDim);
  }

 protected:
  void BuildWeights() override {}
};

std::vector<std::string> Sentences(size_t n, const std::string& tag) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(tag + " record " + std::to_string(i) + " token" +
                  std::to_string(i % 23) + " value" +
                  std::to_string((i * 13) % 41));
  }
  return out;
}

Snapshot MakeSnapshot(IndexKind kind, size_t rows,
                      const std::string& corpus_tag = "corpus",
                      const std::string& model_code = "HT",
                      uint32_t default_k = 5) {
  HashModel model(model_code);
  model.Initialize();
  la::Matrix corpus = model.VectorizeAll(Sentences(rows, corpus_tag));
  SnapshotManifest manifest;
  manifest.model_code = model_code;
  manifest.default_k = default_k;
  manifest.kind = kind;
  manifest.dataset = "fault-test";
  index::HnswOptions hnsw_options;
  hnsw_options.seed = 7;
  index::LshOptions lsh_options;
  lsh_options.seed = 7;
  return Snapshot::Build(std::move(manifest), std::move(corpus),
                         hnsw_options, lsh_options);
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ember_fault_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Every test starts and ends with no failpoint armed, even on failure.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Failpoint registry semantics
// ---------------------------------------------------------------------------

TEST_F(FaultTest, UnarmedPointIsOk) {
  EXPECT_TRUE(fail::Check("nonexistent/point").ok());
}

TEST_F(FaultTest, ErrorCodesRoundTripThroughSpecs) {
  SKIP_IF_FAILPOINTS_OFF();
  const std::vector<std::pair<std::string, Status::Code>> cases = {
      {"error", Status::Code::kIoError},
      {"error:io", Status::Code::kIoError},
      {"error:unavailable", Status::Code::kUnavailable},
      {"error:notfound", Status::Code::kNotFound},
      {"error:internal", Status::Code::kInternal},
      {"error:invalid", Status::Code::kInvalidArgument},
      {"error:deadline", Status::Code::kDeadlineExceeded},
  };
  for (const auto& [spec, code] : cases) {
    ASSERT_TRUE(fail::ConfigureSpec("t/point", spec).ok()) << spec;
    const Status injected = fail::Check("t/point");
    EXPECT_EQ(injected.code(), code) << spec;
  }
}

TEST_F(FaultTest, MalformedSpecsAreRejected) {
  SKIP_IF_FAILPOINTS_OFF();
  for (const std::string spec :
       {"", "explode", "error:bogus", "delay", "delay:abc", "error,p=2",
        "error,p=-0.5", "error,nth=0", "error,frequency=3", "error,p"}) {
    const Status parsed = fail::ConfigureSpec("t/bad", spec);
    EXPECT_FALSE(parsed.ok()) << "spec '" << spec << "' was accepted";
    EXPECT_EQ(parsed.code(), Status::Code::kInvalidArgument) << spec;
  }
  EXPECT_FALSE(fail::ConfigureList("missing-equals-sign").ok());
  // A bad entry never half-applies the rest of a list silently.
  EXPECT_FALSE(fail::ConfigureList("t/a=error;t/b=explode").ok());
}

TEST_F(FaultTest, OneShotFiresExactlyOnce) {
  SKIP_IF_FAILPOINTS_OFF();
  ASSERT_TRUE(fail::ConfigureSpec("t/oneshot", "error:io,max=1").ok());
  EXPECT_FALSE(fail::Check("t/oneshot").ok());
  EXPECT_TRUE(fail::Check("t/oneshot").ok());
  EXPECT_TRUE(fail::Check("t/oneshot").ok());
  const fail::PointStats stats = fail::Stats("t/oneshot");
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.fires, 1u);
  EXPECT_TRUE(stats.armed);
}

TEST_F(FaultTest, NthFiresOnEveryNthHit) {
  SKIP_IF_FAILPOINTS_OFF();
  ASSERT_TRUE(fail::ConfigureSpec("t/nth", "error,nth=3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!fail::Check("t/nth").ok());
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
}

TEST_F(FaultTest, SeededProbabilityIsDeterministic) {
  SKIP_IF_FAILPOINTS_OFF();
  const auto run = [] {
    EXPECT_TRUE(fail::ConfigureSpec("t/prob", "error,p=0.5,seed=123").ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!fail::Check("t/prob").ok());
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();  // re-arming reseeds the stream
  EXPECT_EQ(first, second);
  const size_t fires =
      static_cast<size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 60u);  // p=0.5 over 200 hits: wildly off means broken rng
  EXPECT_LT(fires, 140u);

  // A different seed yields a different firing pattern.
  ASSERT_TRUE(fail::ConfigureSpec("t/prob", "error,p=0.5,seed=124").ok());
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) other.push_back(!fail::Check("t/prob").ok());
  EXPECT_NE(first, other);
}

TEST_F(FaultTest, DelayActionSleepsThenProceeds) {
  SKIP_IF_FAILPOINTS_OFF();
  ASSERT_TRUE(fail::ConfigureSpec("t/delay", "delay:3000").ok());
  WallTimer timer;
  EXPECT_TRUE(fail::Check("t/delay").ok());  // delay never fails the caller
  EXPECT_GE(timer.Seconds(), 0.002);
  EXPECT_EQ(fail::Stats("t/delay").fires, 1u);
}

TEST_F(FaultTest, DisarmAndOffSpecStopInjection) {
  SKIP_IF_FAILPOINTS_OFF();
  ASSERT_TRUE(fail::ConfigureSpec("t/a", "error").ok());
  ASSERT_TRUE(fail::ConfigureSpec("t/b", "error").ok());
  EXPECT_EQ(fail::ArmedPoints().size(), 2u);
  ASSERT_TRUE(fail::ConfigureSpec("t/a", "off").ok());
  EXPECT_TRUE(fail::Check("t/a").ok());
  EXPECT_FALSE(fail::Check("t/b").ok());
  fail::DisarmAll();
  EXPECT_TRUE(fail::Check("t/b").ok());
  EXPECT_TRUE(fail::ArmedPoints().empty());
  // Stats survive disarming so runs can reconcile afterwards.
  EXPECT_EQ(fail::Stats("t/b").fires, 1u);
  EXPECT_FALSE(fail::Stats("t/b").armed);
}

TEST_F(FaultTest, ConfigureFromEnvAppliesTheList) {
  SKIP_IF_FAILPOINTS_OFF();
  ::setenv("EMBER_FAILPOINTS", "t/env=error:unavailable,max=1; t/env2=off",
           /*overwrite=*/1);
  const Status configured = fail::ConfigureFromEnv();
  ::unsetenv("EMBER_FAILPOINTS");
  ASSERT_TRUE(configured.ok()) << configured.ToString();
  const Status injected = fail::Check("t/env");
  EXPECT_EQ(injected.code(), Status::Code::kUnavailable);
  EXPECT_TRUE(fail::Check("t/env").ok());  // max=1 spent

  ::setenv("EMBER_FAILPOINTS", "not a valid list", 1);
  EXPECT_FALSE(fail::ConfigureFromEnv().ok());
  ::unsetenv("EMBER_FAILPOINTS");
  EXPECT_TRUE(fail::ConfigureFromEnv().ok());  // unset: clean no-op
}

TEST_F(FaultTest, EveryCatalogSiteArmsAndReports) {
  SKIP_IF_FAILPOINTS_OFF();
  for (const char* name : fail::kCatalog) {
    ASSERT_TRUE(fail::ConfigureSpec(name, "error:io,max=1").ok()) << name;
    EXPECT_TRUE(fail::Stats(name).armed) << name;
  }
  EXPECT_EQ(fail::ArmedPoints().size(), std::size(fail::kCatalog));
}

// ---------------------------------------------------------------------------
// Per-site liveness: arming each catalog point fails the real operation it
// guards, and the operation recovers once the point disarms.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, BinaryIoSitesAreLive) {
  SKIP_IF_FAILPOINTS_OFF();
  static constexpr char kMagic[8] = {'T', 'E', 'S', 'T', '0', '0', '0', '1'};
  const std::string path = TempPath("binary_io");

  ASSERT_TRUE(fail::ConfigureSpec("binary_io/write", "error:io,max=1").ok());
  EXPECT_FALSE(WriteFileAtomic(path, kMagic, "payload").ok());
  EXPECT_FALSE(std::filesystem::exists(path));

  // A publish (rename) failure must not leak the temp file either.
  ASSERT_TRUE(fail::ConfigureSpec("binary_io/rename", "error:io,max=1").ok());
  EXPECT_FALSE(WriteFileAtomic(path, kMagic, "payload").ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path())) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp"), std::string::npos)
        << "leaked temp file " << entry.path();
  }

  ASSERT_TRUE(WriteFileAtomic(path, kMagic, "payload").ok());
  ASSERT_TRUE(fail::ConfigureSpec("binary_io/read", "error:io,max=1").ok());
  EXPECT_FALSE(ReadFileVerified(path, kMagic).ok());
  EXPECT_TRUE(ReadFileVerified(path, kMagic).ok());  // recovered
  std::filesystem::remove(path);
}

TEST_F(FaultTest, CacheLoadFaultMissesAndRecomputes) {
  SKIP_IF_FAILPOINTS_OFF();
  const std::string dir = TempPath("cache_dir");
  std::filesystem::create_directories(dir);
  core::VectorCache cache(dir);
  HashModel model;
  const auto sentences = Sentences(8, "cached");

  const la::Matrix fresh = cache.GetOrCompute(model, "k", sentences);
  ASSERT_TRUE(fail::ConfigureSpec("cache/load", "error:io").ok());
  double seconds = -2;
  const la::Matrix recomputed =
      cache.GetOrCompute(model, "k", sentences, &seconds);
  EXPECT_GE(seconds, 0.0);  // fault -> miss -> recompute, never garbage
  EXPECT_TRUE(recomputed == fresh);
  fail::DisarmAll();
  double hit_seconds = 0;
  cache.GetOrCompute(model, "k", sentences, &hit_seconds);
  EXPECT_EQ(hit_seconds, -1.0);  // healthy again: served from disk
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTest, CacheStoreFaultIsRetriedAndNonFatal) {
  SKIP_IF_FAILPOINTS_OFF();
  const std::string dir = TempPath("cache_store_dir");
  std::filesystem::create_directories(dir);
  core::VectorCache cache(dir);
  RetryPolicy store_retry;
  store_retry.max_attempts = 3;
  store_retry.initial_backoff_micros = 10;
  store_retry.max_backoff_micros = 50;
  cache.set_store_retry(store_retry);
  HashModel model;
  const auto sentences = Sentences(8, "stored");

  // Persistent store failure: the caller still gets the computed matrix,
  // every attempt is consumed, and nothing is cached.
  ASSERT_TRUE(fail::ConfigureSpec("cache/store", "error:io").ok());
  const la::Matrix computed = cache.GetOrCompute(model, "k", sentences);
  EXPECT_EQ(computed.rows(), sentences.size());
  EXPECT_EQ(fail::Stats("cache/store").fires, store_retry.max_attempts);
  EXPECT_TRUE(std::filesystem::is_empty(dir));

  // Transient failure (one-shot): the retry rescues the store.
  ASSERT_TRUE(fail::ConfigureSpec("cache/store", "error:io,max=1").ok());
  cache.GetOrCompute(model, "k", sentences);
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  double hit_seconds = 0;
  const la::Matrix cached = cache.GetOrCompute(model, "k", sentences,
                                               &hit_seconds);
  EXPECT_EQ(hit_seconds, -1.0);
  EXPECT_TRUE(cached == computed);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTest, SnapshotSitesAreLive) {
  SKIP_IF_FAILPOINTS_OFF();
  const Snapshot built = MakeSnapshot(IndexKind::kHnsw, 40);
  const std::string path = TempPath("snapshot_sites");

  ASSERT_TRUE(fail::ConfigureSpec("snapshot/save", "error:io,max=1").ok());
  EXPECT_FALSE(built.SaveTo(path).ok());
  ASSERT_TRUE(built.SaveTo(path).ok());

  ASSERT_TRUE(fail::ConfigureSpec("snapshot/load", "error:io,max=1").ok());
  EXPECT_FALSE(Snapshot::LoadFrom(path).ok());
  ASSERT_TRUE(Snapshot::LoadFrom(path).ok());

  ASSERT_TRUE(fail::ConfigureSpec("index/load", "error:io,max=1").ok());
  EXPECT_FALSE(Snapshot::LoadFrom(path).ok());

  ASSERT_TRUE(fail::ConfigureSpec("snapshot/validate", "error:io,max=1").ok());
  EXPECT_FALSE(built.Validate().ok());
  EXPECT_TRUE(built.Validate().ok());
  std::filesystem::remove(path);
}

TEST_F(FaultTest, LoadWithRetryRidesOutTransientFaults) {
  SKIP_IF_FAILPOINTS_OFF();
  const Snapshot built = MakeSnapshot(IndexKind::kExact, 30);
  const std::string path = TempPath("load_retry");
  ASSERT_TRUE(built.SaveTo(path).ok());

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_micros = 10;
  policy.max_backoff_micros = 100;

  ASSERT_TRUE(fail::ConfigureSpec("snapshot/load", "error:io,max=2").ok());
  uint64_t retries = 0;
  auto loaded = Snapshot::LoadWithRetry(path, policy, &retries);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(retries, 2u);

  // Exhausted budget surfaces the error instead of spinning forever.
  ASSERT_TRUE(fail::ConfigureSpec("snapshot/load", "error:io").ok());
  retries = 0;
  EXPECT_FALSE(Snapshot::LoadWithRetry(path, policy, &retries).ok());
  EXPECT_EQ(retries, policy.max_attempts - 1);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.multiplier = 2.0;
  policy.max_backoff_micros = 1000;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffMicros(0), 100);
  EXPECT_EQ(policy.BackoffMicros(1), 200);
  EXPECT_EQ(policy.BackoffMicros(2), 400);
  EXPECT_EQ(policy.BackoffMicros(3), 800);
  EXPECT_EQ(policy.BackoffMicros(4), 1000);  // clamped
  EXPECT_EQ(policy.BackoffMicros(40), 1000); // no overflow blow-up
}

TEST(RetryPolicyTest, JitterIsDeterministicBoundedAndSaltSensitive) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.jitter = 0.5;
  for (size_t attempt = 0; attempt < 4; ++attempt) {
    const int64_t a = policy.BackoffMicros(attempt, /*salt=*/1);
    EXPECT_EQ(a, policy.BackoffMicros(attempt, 1));  // pure function
    const int64_t base = std::min<int64_t>(
        policy.max_backoff_micros,
        static_cast<int64_t>(1000 * std::pow(2.0, attempt)));
    EXPECT_GE(a, base / 2);
    EXPECT_LE(a, base + base / 2 + 1);
  }
  // Different salts decorrelate concurrent retry loops.
  EXPECT_NE(policy.BackoffMicros(0, 1), policy.BackoffMicros(0, 2));
}

TEST(RetryPolicyTest, RetriesTransientsStopsOnSemanticErrors) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_micros = 1;
  policy.max_backoff_micros = 5;

  int calls = 0;
  uint64_t retries = 0;
  Status status = RetryStatus(policy, 0, [&] {
    return ++calls < 3 ? Status::IoError("transient") : Status::Ok();
  }, &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);

  calls = 0;
  status = RetryStatus(policy, 0, [&] {
    ++calls;
    return Status::InvalidArgument("semantic");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);  // not worth retrying

  calls = 0;
  status = RetryStatus(policy, 0, [&] {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 5);  // budget respected
}

// ---------------------------------------------------------------------------
// Circuit breaker (driven with a synthetic clock)
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, TripsAtThresholdAndShortCircuits) {
  BreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_ratio = 0.5;
  options.open_micros = 1000;
  CircuitBreaker breaker(options);
  SteadyTime t = SteadyNow();

  breaker.RecordSuccess(t);
  breaker.RecordFailure(t);
  breaker.RecordSuccess(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t);  // 2 failures / 4 samples = ratio hit
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Allow(t));
  EXPECT_FALSE(breaker.Allow(AfterMicros(t, 999)));
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseOrReopen) {
  BreakerOptions options;
  options.window = 8;
  options.min_samples = 2;
  options.trip_ratio = 1.0;
  options.open_micros = 1000;
  options.half_open_successes = 2;
  CircuitBreaker breaker(options);
  SteadyTime t = SteadyNow();

  breaker.RecordFailure(t);
  breaker.RecordFailure(t);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cool-down elapses: probes are admitted.
  t = AfterMicros(t, 1001);
  EXPECT_TRUE(breaker.Allow(t));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // A failing probe reopens immediately and restarts the cool-down.
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.Allow(AfterMicros(t, 500)));

  // Next cool-down: enough successful probes close the breaker for good.
  t = AfterMicros(t, 1001);
  EXPECT_TRUE(breaker.Allow(t));
  breaker.RecordSuccess(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // The window restarted clean: one old-style failure does not re-trip.
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, MinSamplesSuppressesEarlyTrips) {
  BreakerOptions options;
  options.window = 16;
  options.min_samples = 8;
  options.trip_ratio = 0.25;
  CircuitBreaker breaker(options);
  const SteadyTime t = SteadyNow();
  for (int i = 0; i < 7; ++i) breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t);  // 8th sample crosses min_samples
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

// ---------------------------------------------------------------------------
// Log rate limiting
// ---------------------------------------------------------------------------

TEST(LogTokenBucketTest, BurstsThenDropsThenRefills) {
  internal::LogTokenBucket bucket(/*capacity=*/3.0, /*refill_per_second=*/1.0);
  int64_t now = 0;
  EXPECT_EQ(bucket.Admit(now), 0);
  EXPECT_EQ(bucket.Admit(now), 0);
  EXPECT_EQ(bucket.Admit(now), 0);
  EXPECT_EQ(bucket.Admit(now), -1);  // burst spent
  EXPECT_EQ(bucket.Admit(now), -1);
  now += 1'000'000;  // 1s -> one token back
  EXPECT_EQ(bucket.Admit(now), 2);  // reports what the limiter swallowed
  EXPECT_EQ(bucket.Admit(now), -1);
  now += 10'000'000;  // refill clamps at capacity
  EXPECT_EQ(bucket.Admit(now), 1);
  EXPECT_EQ(bucket.Admit(now), 0);
  EXPECT_EQ(bucket.Admit(now), 0);
  EXPECT_EQ(bucket.Admit(now), -1);
}

// ---------------------------------------------------------------------------
// Exhaustive corruption sweep: EVERY prefix truncation and EVERY single-byte
// flip of a serialized snapshot must load as a clean error — never a crash,
// hang, or huge allocation. (Runs in the ASan CI leg; needs no failpoints.)
// ---------------------------------------------------------------------------

void ExhaustiveSweep(const Snapshot& built, const std::string& tag) {
  const std::string path = TempPath("sweep_src_" + tag);
  ASSERT_TRUE(built.SaveTo(path).ok());
  const std::string image = ReadAll(path);
  std::filesystem::remove(path);
  ASSERT_GT(image.size(), 64u);
  ASSERT_LT(image.size(), 16384u) << "sweep corpus grew too big to be "
                                     "exhaustive; shrink the snapshot";

  const std::string victim = TempPath("sweep_victim_" + tag);
  for (size_t len = 0; len < image.size(); ++len) {
    WriteAll(victim, image.substr(0, len));
    EXPECT_FALSE(Snapshot::LoadFrom(victim).ok()) << "truncated to " << len;
  }
  std::string flipped = image;
  for (size_t pos = 0; pos < image.size(); ++pos) {
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5a);
    WriteAll(victim, flipped);
    EXPECT_FALSE(Snapshot::LoadFrom(victim).ok()) << "byte flip at " << pos;
    flipped[pos] = image[pos];  // restore for the next position
  }
  WriteAll(victim, image);
  EXPECT_TRUE(Snapshot::LoadFrom(victim).ok());  // sweep harness is sound
  std::filesystem::remove(victim);
}

TEST(CorruptionSweepTest, EveryTruncationAndByteFlipFailsClosed) {
  // SaveTo defaults to EMBS0002, so this sweep drives the mmap loader: the
  // graph-carrying HNSW kind has the most sections to get wrong.
  ExhaustiveSweep(MakeSnapshot(IndexKind::kHnsw, 6), "hnsw");
}

TEST(CorruptionSweepTest, QuantizedSnapshotSweepFailsClosed) {
  // The int8 tier adds two more sections (codes + params) and a storage
  // field in the manifest; every byte of those must also be covered.
  Snapshot built = MakeSnapshot(IndexKind::kExact, 6);
  ASSERT_TRUE(built.Quantize().ok());
  ExhaustiveSweep(built, "int8");
}

// ---------------------------------------------------------------------------
// Engine under injected faults
// ---------------------------------------------------------------------------

std::vector<std::vector<index::Neighbor>> ExpectedNeighbors(
    const Snapshot& snapshot, const std::vector<std::string>& queries,
    size_t k) {
  HashModel model;
  model.Initialize();
  return snapshot.QueryBatch(model.VectorizeAll(queries), k);
}

void ExpectReplyMatches(const Result<QueryReply>& reply,
                        const std::vector<index::Neighbor>& expected,
                        size_t q) {
  ASSERT_TRUE(reply.ok()) << "query " << q;
  const auto& neighbors = reply.value().neighbors;
  ASSERT_EQ(neighbors.size(), expected.size()) << "query " << q;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_EQ(neighbors[i].id, expected[i].id) << "query " << q;
    EXPECT_EQ(neighbors[i].distance, expected[i].distance) << "query " << q;
  }
}

TEST_F(FaultTest, EmbedFaultsAreRetriedWithExactAccounting) {
  SKIP_IF_FAILPOINTS_OFF();
  const Snapshot snapshot = MakeSnapshot(IndexKind::kExact, 64);
  const std::vector<std::string> queries = Sentences(60, "query");
  const auto expected = ExpectedNeighbors(snapshot, queries, 5);

  EngineOptions options;
  options.max_batch = 8;
  options.max_wait_micros = 300;
  options.embed_retry.max_attempts = 6;
  options.embed_retry.initial_backoff_micros = 10;
  options.embed_retry.max_backoff_micros = 100;
  // Keep the breaker out of this test's way; it has its own test below.
  options.breaker.min_samples = 1000;
  auto engine =
      Engine::Create(snapshot, std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());

  // Every third embed attempt fails: every batch needs retries, and with a
  // 6-attempt budget every batch eventually succeeds.
  ASSERT_TRUE(
      fail::ConfigureSpec("engine/embed", "error:unavailable,nth=3").ok());

  std::vector<std::future<Result<QueryReply>>> futures;
  for (const std::string& query : queries) {
    auto submitted = engine.value()->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    // Success under injected faults must be bit-identical to the no-fault
    // answer — resilience may cost latency, never correctness.
    ExpectReplyMatches(futures[q].get(), expected[q], q);
  }
  engine.value()->Stop();

  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.submitted, queries.size());
  EXPECT_EQ(metrics.completed, queries.size());
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_GT(metrics.retries, 0u);
  EXPECT_EQ(metrics.retries, fail::Stats("engine/embed").fires);
  EXPECT_EQ(metrics.completed + metrics.expired + metrics.failed,
            metrics.submitted);
}

TEST_F(FaultTest, ExhaustedEmbedRetriesFailTheBatchLoudly) {
  SKIP_IF_FAILPOINTS_OFF();
  EngineOptions options;
  options.max_batch = 4;
  options.max_wait_micros = 200;
  options.embed_retry.max_attempts = 2;
  options.embed_retry.initial_backoff_micros = 10;
  options.breaker.min_samples = 1000;
  auto engine = Engine::Create(MakeSnapshot(IndexKind::kExact, 32),
                               std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(fail::ConfigureSpec("engine/embed", "error:io").ok());

  std::vector<std::future<Result<QueryReply>>> futures;
  for (int i = 0; i < 8; ++i) {
    auto submitted = engine.value()->Submit("doomed " + std::to_string(i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    const Result<QueryReply> reply = future.get();
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), Status::Code::kIoError);
  }
  engine.value()->Stop();
  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.failed, 8u);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.completed + metrics.expired + metrics.failed,
            metrics.submitted);
}

TEST_F(FaultTest, QueryFaultDegradesToExactFallbackBitIdentically) {
  SKIP_IF_FAILPOINTS_OFF();
  // kExact snapshot: the fallback scan IS the primary algorithm, so
  // degraded answers are bit-identical and correctness is fully checkable.
  const Snapshot snapshot = MakeSnapshot(IndexKind::kExact, 80);
  const std::vector<std::string> queries = Sentences(24, "query");
  const auto expected = ExpectedNeighbors(snapshot, queries, 5);

  EngineOptions options;
  options.max_batch = 6;
  options.max_wait_micros = 300;
  options.breaker.min_samples = 1000;
  auto engine =
      Engine::Create(snapshot, std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(fail::ConfigureSpec("engine/query", "error:internal").ok());

  std::vector<std::future<Result<QueryReply>>> futures;
  for (const std::string& query : queries) {
    auto submitted = engine.value()->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    ExpectReplyMatches(futures[q].get(), expected[q], q);
  }
  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.completed, queries.size());
  EXPECT_EQ(metrics.fallbacks, queries.size());
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(engine.value()->health(), Health::kDegraded);

  // Primary heals: the next batch leaves degraded mode.
  fail::DisarmAll();
  auto healed = engine.value()->Submit(queries[0]);
  ASSERT_TRUE(healed.ok());
  ExpectReplyMatches(healed.value().get(), expected[0], 0);
  EXPECT_EQ(engine.value()->health(), Health::kServing);
}

TEST_F(FaultTest, QueryFaultFailsBatchWhenDegradedModeDisabled) {
  SKIP_IF_FAILPOINTS_OFF();
  EngineOptions options;
  options.max_batch = 4;
  options.allow_degraded = false;
  options.breaker.min_samples = 1000;
  auto engine = Engine::Create(MakeSnapshot(IndexKind::kExact, 32),
                               std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(fail::ConfigureSpec("engine/query", "error:internal").ok());
  auto submitted = engine.value()->Submit("record");
  ASSERT_TRUE(submitted.ok());
  const Result<QueryReply> reply = submitted.value().get();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), Status::Code::kInternal);
  EXPECT_EQ(engine.value()->Metrics().fallbacks, 0u);
}

TEST_F(FaultTest, FallbackOnHnswReturnsTrueExactNeighbors) {
  SKIP_IF_FAILPOINTS_OFF();
  // For approximate indexes the fallback is a recall UPGRADE: it must
  // equal a brute-force scan of the same corpus.
  const Snapshot snapshot = MakeSnapshot(IndexKind::kHnsw, 100);
  const std::vector<std::string> queries = Sentences(12, "query");
  HashModel model;
  model.Initialize();
  const la::Matrix vectors = model.VectorizeAll(queries);
  const auto exact = index::BruteForceTopK(snapshot.data(), vectors, 5);

  EngineOptions options;
  options.max_batch = 12;
  options.breaker.min_samples = 1000;
  auto engine =
      Engine::Create(snapshot, std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(fail::ConfigureSpec("engine/query", "error:io").ok());
  std::vector<std::future<Result<QueryReply>>> futures;
  for (const std::string& query : queries) {
    auto submitted = engine.value()->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    ExpectReplyMatches(futures[q].get(), exact[q], q);
  }
}

TEST_F(FaultTest, BreakerTripsShortCircuitsAndRecovers) {
  SKIP_IF_FAILPOINTS_OFF();
  EngineOptions options;
  options.max_batch = 1;
  options.max_wait_micros = 0;
  options.embed_retry.max_attempts = 1;  // surface every failure to the breaker
  options.breaker.window = 8;
  options.breaker.min_samples = 2;
  options.breaker.trip_ratio = 1.0;
  options.breaker.open_micros = 20'000;
  options.breaker.half_open_successes = 1;
  auto engine = Engine::Create(MakeSnapshot(IndexKind::kExact, 32),
                               std::make_shared<HashModel>(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(fail::ConfigureSpec("engine/embed", "error:unavailable").ok());

  // Two serially-failed batches trip the breaker.
  for (int i = 0; i < 2; ++i) {
    auto submitted = engine.value()->Submit("fail " + std::to_string(i));
    ASSERT_TRUE(submitted.ok());
    EXPECT_FALSE(submitted.value().get().ok());
  }
  EXPECT_EQ(engine.value()->health(), Health::kTripped);

  // While open, Submit sheds in O(1) without queueing.
  size_t shed = 0;
  for (int i = 0; i < 5; ++i) {
    if (!engine.value()->Submit("shed").ok()) ++shed;
  }
  EXPECT_GT(shed, 0u);
  EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.short_circuits, shed);
  EXPECT_GE(metrics.breaker_trips, 1u);

  // Fault clears; after the cool-down a successful probe closes the breaker.
  fail::DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  Result<QueryReply> probe = Status::Unavailable("never ran");
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto submitted = engine.value()->Submit("probe");
    if (submitted.ok()) {
      probe = submitted.value().get();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(engine.value()->health(), Health::kServing);
  metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.completed + metrics.expired + metrics.failed,
            metrics.submitted);
}

// ---------------------------------------------------------------------------
// Hot snapshot reload
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ReloadSwapsToTheNewCorpusAtomically) {
  const Snapshot original = MakeSnapshot(IndexKind::kExact, 64, "corpusA");
  const Snapshot replacement = MakeSnapshot(IndexKind::kExact, 96, "corpusB");
  const std::vector<std::string> queries = Sentences(10, "query");
  const auto expected_old = ExpectedNeighbors(original, queries, 5);
  const auto expected_new = ExpectedNeighbors(replacement, queries, 5);
  const std::string path = TempPath("reload_good");
  ASSERT_TRUE(replacement.SaveTo(path).ok());

  auto engine = Engine::Create(original, std::make_shared<HashModel>(),
                               EngineOptions{});
  ASSERT_TRUE(engine.ok());
  auto before = engine.value()->Submit(queries[0]);
  ASSERT_TRUE(before.ok());
  ExpectReplyMatches(before.value().get(), expected_old[0], 0);

  ASSERT_TRUE(engine.value()->ReloadSnapshot(path).ok());
  EXPECT_EQ(engine.value()->Metrics().reloads, 1u);
  EXPECT_EQ(engine.value()->snapshot()->manifest().rows, 96u);

  for (size_t q = 0; q < queries.size(); ++q) {
    auto submitted = engine.value()->Submit(queries[q]);
    ASSERT_TRUE(submitted.ok());
    ExpectReplyMatches(submitted.value().get(), expected_new[q], q);
  }
  std::filesystem::remove(path);
}

TEST_F(FaultTest, CorruptOrIncompatibleReloadRollsBack) {
  const Snapshot original = MakeSnapshot(IndexKind::kExact, 64, "corpusA");
  const std::vector<std::string> queries = Sentences(6, "query");
  const auto expected = ExpectedNeighbors(original, queries, 5);
  auto engine = Engine::Create(original, std::make_shared<HashModel>(),
                               EngineOptions{});
  ASSERT_TRUE(engine.ok());

  const std::string garbage = TempPath("reload_garbage");
  WriteAll(garbage, "this is not a snapshot container at all");
  EXPECT_FALSE(engine.value()->ReloadSnapshot(garbage).ok());

  const std::string missing = TempPath("reload_missing_nonexistent");
  EXPECT_FALSE(engine.value()->ReloadSnapshot(missing).ok());

  const std::string wrong_model = TempPath("reload_wrong_model");
  ASSERT_TRUE(MakeSnapshot(IndexKind::kExact, 32, "corpusC", "XX")
                  .SaveTo(wrong_model)
                  .ok());
  const Status mismatched = engine.value()->ReloadSnapshot(wrong_model);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.code(), Status::Code::kInvalidArgument);

  // Every rejection was counted, nothing swapped, and the old snapshot
  // still answers bit-identically.
  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(metrics.reload_failures, 3u);
  EXPECT_EQ(metrics.reloads, 0u);
  EXPECT_EQ(engine.value()->snapshot()->manifest().rows, 64u);
  for (size_t q = 0; q < queries.size(); ++q) {
    auto submitted = engine.value()->Submit(queries[q]);
    ASSERT_TRUE(submitted.ok());
    ExpectReplyMatches(submitted.value().get(), expected[q], q);
  }
  std::filesystem::remove(garbage);
  std::filesystem::remove(wrong_model);
}

TEST_F(FaultTest, ReloadValidationFailpointRollsBack) {
  SKIP_IF_FAILPOINTS_OFF();
  const Snapshot original = MakeSnapshot(IndexKind::kExact, 64, "corpusA");
  const Snapshot replacement = MakeSnapshot(IndexKind::kExact, 96, "corpusB");
  const std::string path = TempPath("reload_validate");
  ASSERT_TRUE(replacement.SaveTo(path).ok());
  auto engine = Engine::Create(original, std::make_shared<HashModel>(),
                               EngineOptions{});
  ASSERT_TRUE(engine.ok());

  // The replacement loads fine but flunks deep validation — the reload
  // must reject it and keep serving the old snapshot.
  ASSERT_TRUE(
      fail::ConfigureSpec("snapshot/validate", "error:internal,max=1").ok());
  EXPECT_FALSE(engine.value()->ReloadSnapshot(path).ok());
  EXPECT_EQ(engine.value()->snapshot()->manifest().rows, 64u);
  EXPECT_EQ(engine.value()->Metrics().reload_failures, 1u);

  // Same file, validation healthy: the swap goes through.
  ASSERT_TRUE(engine.value()->ReloadSnapshot(path).ok());
  EXPECT_EQ(engine.value()->snapshot()->manifest().rows, 96u);
  std::filesystem::remove(path);
}

TEST_F(FaultTest, ReloadUnderLoadLosesNothing) {
  // Producers hammer the engine while snapshots swap (good and corrupt)
  // mid-stream. Invariants: no crash, no torn result (every reply is valid
  // against one of the two corpora), exact counter reconciliation.
  const Snapshot original = MakeSnapshot(IndexKind::kExact, 64, "corpusA");
  const Snapshot replacement = MakeSnapshot(IndexKind::kExact, 96, "corpusB");
  const std::string good = TempPath("reload_load_good");
  const std::string corrupt = TempPath("reload_load_corrupt");
  ASSERT_TRUE(replacement.SaveTo(good).ok());
  WriteAll(corrupt, "garbage bytes, not a container");

  EngineOptions options;
  options.max_batch = 8;
  options.max_wait_micros = 200;
  options.workers = 2;
  auto engine = Engine::Create(original, std::make_shared<HashModel>(),
                               options);
  ASSERT_TRUE(engine.ok());

  std::atomic<uint64_t> accepted{0}, rejected{0}, ok_replies{0}, wrong{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < 200; ++i) {
        auto submitted = engine.value()->Submit(
            "p" + std::to_string(p) + "i" + std::to_string(i));
        if (!submitted.ok()) {
          rejected.fetch_add(1);
          continue;
        }
        accepted.fetch_add(1);
        const Result<QueryReply> reply = submitted.value().get();
        if (!reply.ok()) {
          wrong.fetch_add(1);
          continue;
        }
        const auto& neighbors = reply.value().neighbors;
        bool valid = neighbors.size() == 5;
        for (size_t n = 0; valid && n < neighbors.size(); ++n) {
          valid = neighbors[n].id < 96 &&
                  (n == 0 ||
                   neighbors[n - 1].distance <= neighbors[n].distance);
        }
        valid ? ok_replies.fetch_add(1) : wrong.fetch_add(1);
      }
    });
  }

  // Interleave good swaps and corrupt rejections under load.
  uint64_t good_reloads = 0, failed_reloads = 0;
  for (int round = 0; round < 6; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (round % 2 == 0) {
      ASSERT_TRUE(engine.value()->ReloadSnapshot(good).ok());
      ++good_reloads;
    } else {
      ASSERT_FALSE(engine.value()->ReloadSnapshot(corrupt).ok());
      ++failed_reloads;
    }
  }
  for (auto& producer : producers) producer.join();
  engine.value()->Stop();

  const EngineMetrics metrics = engine.value()->Metrics();
  EXPECT_EQ(wrong.load(), 0u);  // zero swap-attributable failures
  EXPECT_EQ(metrics.submitted, accepted.load());
  EXPECT_EQ(metrics.completed, ok_replies.load());
  EXPECT_EQ(metrics.reloads, good_reloads);
  EXPECT_EQ(metrics.reload_failures, failed_reloads);
  EXPECT_EQ(metrics.completed + metrics.expired + metrics.failed,
            metrics.submitted);
  std::filesystem::remove(good);
  std::filesystem::remove(corrupt);
}

}  // namespace
}  // namespace ember
