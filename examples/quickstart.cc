// Quickstart: generate a paper-profile dataset, embed both sides with a
// sentence model, block with top-k search, and match end to end.
//
//   ./quickstart [scale]   (default 0.1)

#include <cstdio>
#include <cstdlib>

#include "core/blocking.h"
#include "core/pipeline.h"
#include "datagen/benchmark_datasets.h"
#include "embed/embedding_model.h"
#include "eval/metrics.h"
#include "la/matrix.h"

using namespace ember;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  // D2 is the paper's Abt-Buy analogue: paraphrase-heavy product pairs.
  const auto spec = datagen::CleanCleanSpecById("D2").value();
  const datagen::CleanCleanDataset dataset =
      datagen::GenerateCleanClean(spec, scale, /*seed=*/41);
  eval::GroundTruth truth;
  for (const auto& [l, r] : dataset.matches) truth.AddCleanCleanPair(l, r);
  std::printf("dataset %s: %zu x %zu entities, %zu matches\n",
              dataset.id.c_str(), dataset.left.size(), dataset.right.size(),
              dataset.matches.size());

  // Embed. VectorizeAll fans out over the global thread pool (EMBER_THREADS)
  // with bit-identical output at any thread count.
  auto model = embed::CreateModel(embed::ModelId::kSMiniLm);
  model->Initialize();
  const la::Matrix left = model->VectorizeAll(dataset.left.AllSentences());
  const la::Matrix right = model->VectorizeAll(dataset.right.AllSentences());
  std::printf("embedded with %s (%zu-d)\n", model->info().name.c_str(),
              model->info().dim);

  // Block: k nearest neighbors per left entity.
  core::BlockingOptions blocking;
  blocking.k = 10;
  const core::BlockingResult blocked =
      core::BlockCleanClean(left, right, blocking);
  const eval::PrfMetrics block_metrics =
      eval::EvaluateCleanCleanCandidates(blocked.candidates, truth);
  std::printf("blocking recall@10 = %.3f  (%.3fs)\n", block_metrics.recall,
              blocked.total_seconds());

  // Match end to end: block, score, threshold, Unique Mapping Clustering.
  core::ErPipeline pipeline({});
  const core::PipelineResult result = pipeline.RunOnVectors(left, right);
  std::vector<std::pair<uint32_t, uint32_t>> predicted;
  for (const auto& m : result.matches) predicted.emplace_back(m.left, m.right);
  const eval::PrfMetrics match_metrics =
      eval::EvaluateCleanCleanMatches(predicted, truth);
  std::printf(
      "pipeline (delta=%.2f): precision=%.3f recall=%.3f f1=%.3f\n",
      result.threshold_used, match_metrics.precision, match_metrics.recall,
      match_metrics.f1);
  return 0;
}
