#include "recover/mutation_log.h"

#include <utility>

#include "common/binary_io.h"
#include "common/failpoint.h"

namespace ember::recover {
namespace {

constexpr char kLogMagic[8] = {'E', 'M', 'B', 'L', '0', '0', '0', '1'};
constexpr uint32_t kLogVersion = 1;

}  // namespace

Result<uint64_t> MutationLog::Append(MutationRecord record) {
  EMBER_FAILPOINT("recover/log_append");
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = ++last_seq_;
  // Uncommitted until CommitLast: no eviction yet (a popped append must not
  // have cost the oldest record its place in the replay window).
  records_.push_back(std::move(record));
  return records_.back().seq;
}

void MutationLog::PopLast() {
  std::lock_guard<std::mutex> lock(mu_);
  // Only the uncommitted in-flight record may be rolled back; committed
  // history is immutable.
  if (records_.empty() || records_.back().seq <= committed_seq_) return;
  records_.pop_back();
  --last_seq_;
}

void MutationLog::CommitLast(uint64_t winner_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.empty() || records_.back().seq <= committed_seq_) return;
  records_.back().id = winner_id;
  committed_seq_ = records_.back().seq;
  // Deferred capacity eviction: only a committed append may push the
  // oldest records out of the ring.
  while (records_.size() > capacity_) records_.pop_front();
}

Result<std::vector<MutationRecord>> MutationLog::ReadFrom(
    uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool none_committed =
      records_.empty() || records_.front().seq > committed_seq_;
  const uint64_t first =
      none_committed ? committed_seq_ + 1 : records_.front().seq;
  if (after_seq + 1 < first) {
    return Status::NotFound(
        "mutation log truncated: oldest retained seq " +
        std::to_string(first) + " is past replay position " +
        std::to_string(after_seq + 1) + "; snapshot resync required");
  }
  std::vector<MutationRecord> out;
  for (const MutationRecord& record : records_) {
    if (record.seq > after_seq && record.seq <= committed_seq_) {
      out.push_back(record);
    }
  }
  return out;
}

uint64_t MutationLog::first_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool none_committed =
      records_.empty() || records_.front().seq > committed_seq_;
  return none_committed ? committed_seq_ + 1 : records_.front().seq;
}

uint64_t MutationLog::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

uint64_t MutationLog::committed_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_seq_;
}

size_t MutationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

Status MutationLog::SaveTo(const std::string& path) const {
  BinaryWriter writer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Committed records only: an in-flight append may yet be popped, and a
    // restart must never replay a mutation that was never acknowledged.
    uint64_t committed = 0;
    for (const MutationRecord& record : records_) {
      if (record.seq <= committed_seq_) ++committed;
    }
    writer.WriteU32(kLogVersion);
    writer.WriteU64(committed_seq_);
    writer.WriteU64(committed);
    for (const MutationRecord& record : records_) {
      if (record.seq > committed_seq_) continue;
      writer.WriteU64(record.seq);
      writer.WriteU32(static_cast<uint32_t>(record.op));
      writer.WriteU64(record.id);
      writer.WritePodVector(record.embedding);
    }
  }
  return WriteFileAtomic(path, kLogMagic, writer.buffer());
}

Status MutationLog::LoadFrom(const std::string& path) {
  Result<std::string> payload = ReadFileVerified(path, kLogMagic);
  if (!payload.ok()) return payload.status();
  BinaryReader reader(payload.value());
  if (reader.ReadU32() != kLogVersion) reader.Fail();
  const uint64_t last_seq = reader.ReadU64();
  const uint64_t count = reader.ReadU64();
  std::deque<MutationRecord> records;
  uint64_t prev_seq = 0;
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    MutationRecord record;
    record.seq = reader.ReadU64();
    const uint32_t op = reader.ReadU32();
    if (op > static_cast<uint32_t>(MutationRecord::Op::kDelete)) {
      reader.Fail();
      break;
    }
    record.op = static_cast<MutationRecord::Op>(op);
    record.id = reader.ReadU64();
    record.embedding = reader.ReadPodVector<float>();
    // The segment must be one contiguous monotone run ending at last_seq;
    // anything else means a torn or hand-edited file.
    if (prev_seq != 0 && record.seq != prev_seq + 1) {
      reader.Fail();
      break;
    }
    prev_seq = record.seq;
    records.push_back(std::move(record));
  }
  if (reader.ok() && !records.empty() && records.back().seq != last_seq) {
    reader.Fail();
  }
  if (reader.ok() && records.empty() && count != 0) reader.Fail();
  if (!reader.ok() || reader.remaining() != 0) {
    return Status::IoError("mutation log segment corrupt: " + path);
  }
  while (records.size() > capacity_) records.pop_front();
  std::lock_guard<std::mutex> lock(mu_);
  records_ = std::move(records);
  last_seq_ = last_seq;
  committed_seq_ = last_seq;  // a segment holds only committed records
  return Status::Ok();
}

}  // namespace ember::recover
