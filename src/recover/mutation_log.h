#ifndef EMBER_RECOVER_MUTATION_LOG_H_
#define EMBER_RECOVER_MUTATION_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ember::recover {

/// One accepted mutation, as replayed to a catching-up replica. Ids are
/// group-local (the shard's own row numbering); the router converts to and
/// from global ids at its boundary.
struct MutationRecord {
  enum class Op : uint32_t { kUpsert = 0, kDelete = 1 };
  uint64_t seq = 0;  // monotone per shard group, assigned by Append
  Op op = Op::kUpsert;
  uint64_t id = 0;
  std::vector<float> embedding;  // upsert payload; empty for deletes
};

/// Per-shard-group sequenced mutation log (DESIGN.md §15): a bounded
/// in-memory ring of every accepted Upsert/Delete, the source a quarantined
/// replica replays from to rejoin bit-identical. When the ring has dropped
/// entries past a replica's position, ReadFrom fails loudly and the caller
/// falls back to snapshot resync. An optional checksummed on-disk segment
/// (SaveTo/LoadFrom, EMBL0001 container) persists the ring across process
/// restarts.
///
/// Records move through a two-step protocol: Append assigns a seq but
/// leaves the record UNCOMMITTED — invisible to ReadFrom/first_seq and
/// never persisted — until the broadcast settles it with CommitLast (some
/// replica accepted) or PopLast (unanimous refusal — the mutation never
/// happened). A concurrent replay therefore cannot observe a record whose
/// winner id is still a placeholder, or one that is about to be rolled
/// back. Capacity eviction is deferred to CommitLast for the same reason:
/// an append that ends up popped must not have cost the oldest retained
/// record its place in the replay window.
///
/// Thread safety: every method locks internally. Appends are additionally
/// serialized by the router's group mutation lock, which is what makes the
/// (append, apply, commit/pop) triple atomic with respect to other writers
/// and guarantees at most one uncommitted record at a time.
class MutationLog {
 public:
  explicit MutationLog(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Assigns the next group sequence number to `record`, appends it
  /// uncommitted, and returns the assigned seq. Fires the fail-closed
  /// `recover/log_append` failpoint BEFORE touching the ring: an injected
  /// fault means the mutation was never logged, so the caller must refuse
  /// it.
  Result<uint64_t> Append(MutationRecord record);

  /// Rolls back an uncommitted Append — used when zero replicas accepted
  /// the mutation, so the log must not claim it happened. A no-op when the
  /// newest record is already committed. Only valid under the same group
  /// mutation lock as the Append it undoes.
  void PopLast();

  /// Commits the most recent Append, patching its id to the id the replica
  /// fleet actually assigned (the winner) and evicting the oldest records
  /// once the ring exceeds capacity. Same locking contract as PopLast.
  void CommitLast(uint64_t winner_id);

  /// Every committed record with seq > after_seq, in sequence order. Fails
  /// with NotFound when the ring has dropped records past that position —
  /// the signal to fall back to snapshot resync. An in-flight uncommitted
  /// record is never returned.
  Result<std::vector<MutationRecord>> ReadFrom(uint64_t after_seq) const;

  /// Sequence of the oldest committed retained record; committed_seq() + 1
  /// when no committed records are retained.
  uint64_t first_seq() const;
  /// Highest sequence ever assigned (0 before the first Append). May run
  /// one ahead of committed_seq() while a broadcast is in flight.
  uint64_t last_seq() const;
  /// Highest committed sequence — the replay horizon ReadFrom honors.
  uint64_t committed_seq() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Persists the committed records as a checksummed EMBL0001 container
  /// (atomic publish). An in-flight uncommitted record is skipped — a
  /// restart must not replay a mutation that was never acknowledged.
  Status SaveTo(const std::string& path) const;
  /// Replaces the ring with a segment written by SaveTo. Fails closed on
  /// any corruption or a non-contiguous sequence run; keeps this log's
  /// capacity, trimming the oldest loaded records if the segment is larger.
  Status LoadFrom(const std::string& path);

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<MutationRecord> records_;
  uint64_t last_seq_ = 0;
  /// Replay horizon: records with seq > committed_seq_ are in-flight and
  /// invisible to readers until CommitLast advances this.
  uint64_t committed_seq_ = 0;
};

}  // namespace ember::recover

#endif  // EMBER_RECOVER_MUTATION_LOG_H_
