#include "recover/digest.h"

#include "common/binary_io.h"

namespace ember::recover {

uint64_t RowHash(uint64_t id, const float* row, size_t dim) {
  // Chain the two FNV folds: hashing the row bytes first and then folding
  // the id into that state binds (id, content) together, so swapping the
  // embeddings of two ids changes the hash even though a plain XOR of
  // independent hashes would not.
  uint64_t h = Fnv1a64(row, dim * sizeof(float));
  h = (h ^ id) * 1099511628211ull;
  // Avalanche the mix (SplitMix64 finalizer) so wrapping-add collisions
  // between structured id patterns stay unlikely.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace ember::recover
