#ifndef EMBER_RECOVER_DIGEST_H_
#define EMBER_RECOVER_DIGEST_H_

#include <cstddef>
#include <cstdint>

namespace ember::recover {

/// Order-independent corpus digest — the anti-entropy fingerprint replicas
/// of a shard group are compared by (DESIGN.md §15). `content` is a
/// commutative (wrapping-add) fold of per-row hashes, so replicas that hold
/// the same logical rows agree regardless of how the rows are laid out
/// (base vs delta tier, pre- vs post-compaction, absorb order). That
/// commutativity is what lets LiveCorpus maintain it incrementally in O(1)
/// per mutation instead of rescanning the corpus at every probe tick.
struct CorpusDigest {
  uint64_t rows = 0;        // live rows (base + delta - tombstoned)
  uint64_t tombstones = 0;  // pending tombstones (observability only)
  uint64_t content = 0;     // commutative FNV fold over (id, row bytes)
};

/// Hash of one live row: FNV over the id bytes chained onto FNV over the
/// embedding bytes. Feeds `content` by wrapping addition.
uint64_t RowHash(uint64_t id, const float* row, size_t dim);

/// Two replicas match when they hold the same live rows. Tombstone counts
/// legitimately differ across siblings (compaction prunes them at different
/// times), so they are deliberately excluded from the comparison.
inline bool SameContent(const CorpusDigest& a, const CorpusDigest& b) {
  return a.rows == b.rows && a.content == b.content;
}

}  // namespace ember::recover

#endif  // EMBER_RECOVER_DIGEST_H_
