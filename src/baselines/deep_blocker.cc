#include "baselines/deep_blocker.h"

#include "common/timer.h"
#include "embed/static_model.h"
#include "index/exact_index.h"
#include "la/vector_ops.h"
#include "nn/mlp.h"

namespace ember::baselines {

DeepBlockerResult DeepBlocker::Run(const std::vector<std::string>& left,
                                   const std::vector<std::string>& right) const {
  DeepBlockerResult result;

  WallTimer timer;
  embed::StaticEmbeddingModel encoder(embed::ModelId::kFastText);
  encoder.Initialize();
  const la::Matrix left_vec = encoder.VectorizeAll(left);
  const la::Matrix right_vec = encoder.VectorizeAll(right);
  result.vectorize_seconds = timer.Restart();

  // Self-supervised compression: train on both collections jointly, then
  // re-encode every row into the (L2-normalized) bottleneck space.
  la::Matrix all(left_vec.rows() + right_vec.rows(), left_vec.cols());
  for (size_t r = 0; r < left_vec.rows(); ++r) {
    std::copy(left_vec.Row(r), left_vec.Row(r) + left_vec.cols(), all.Row(r));
  }
  for (size_t r = 0; r < right_vec.rows(); ++r) {
    std::copy(right_vec.Row(r), right_vec.Row(r) + right_vec.cols(),
              all.Row(left_vec.rows() + r));
  }
  nn::Autoencoder::Options ae_options;
  ae_options.input_dim = left_vec.cols();
  ae_options.hidden_dim = options_.hidden_dim;
  ae_options.epochs = options_.epochs;
  ae_options.seed = options_.seed;
  nn::Autoencoder autoencoder(ae_options);
  autoencoder.Train(all);

  const auto encode = [&](const la::Matrix& in) {
    la::Matrix out(in.rows(), autoencoder.hidden_dim());
    for (size_t r = 0; r < in.rows(); ++r) {
      autoencoder.Encode(in.Row(r), out.Row(r));
      la::NormalizeInPlace(out.Row(r), out.cols());
    }
    return out;
  };
  const la::Matrix left_enc = encode(left_vec);
  const la::Matrix right_enc = encode(right_vec);
  result.train_seconds = timer.Restart();

  index::ExactIndex idx;
  idx.Build(right_enc);
  result.index_seconds = timer.Restart();

  const auto neighbors = idx.QueryBatch(left_enc, options_.k);
  result.candidates.reserve(left_enc.rows() * options_.k);
  for (size_t q = 0; q < neighbors.size(); ++q) {
    for (const index::Neighbor& n : neighbors[q]) {
      result.candidates.emplace_back(static_cast<uint32_t>(q), n.id);
    }
  }
  result.query_seconds = timer.Restart();
  return result;
}

}  // namespace ember::baselines
