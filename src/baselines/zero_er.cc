#include "baselines/zero_er.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "common/timer.h"
#include "index/overlap_blocker.h"
#include "text/string_similarity.h"

namespace ember::baselines {

namespace {

constexpr size_t kNumFeatures = 6;

void PairFeatures(const std::string& a, const std::string& b, double* out) {
  out[0] = text::TokenJaccard(a, b);
  out[1] = text::OverlapCoefficient(a, b);
  out[2] = text::CosineOverTf(a, b);
  out[3] = text::JaroWinklerSimilarity(a, b);
  out[4] = text::LevenshteinSimilarity(a, b);
  out[5] = text::MongeElkanSimilarity(a, b);
}

/// Two-component diagonal Gaussian mixture over the feature rows. Returns
/// the posterior of the higher-mean ("match") component per row.
std::vector<double> FitGmmPosteriors(const std::vector<double>& features,
                                     size_t n, size_t iterations) {
  constexpr double kVarFloor = 1e-4;
  // Initialize the components from the rows below/above the median mean
  // similarity, so "match" starts as the high-similarity half.
  std::vector<double> row_mean(n, 0);
  for (size_t i = 0; i < n; ++i) {
    row_mean[i] = std::accumulate(features.begin() + i * kNumFeatures,
                                  features.begin() + (i + 1) * kNumFeatures,
                                  0.0) /
                  kNumFeatures;
  }
  std::vector<double> sorted = row_mean;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[n / 2];

  double mean[2][kNumFeatures] = {}, var[2][kNumFeatures], weight[2] = {};
  size_t count[2] = {};
  for (size_t i = 0; i < n; ++i) {
    const int c = row_mean[i] > median ? 1 : 0;
    ++count[c];
    for (size_t f = 0; f < kNumFeatures; ++f) {
      mean[c][f] += features[i * kNumFeatures + f];
    }
  }
  for (int c = 0; c < 2; ++c) {
    const double denom = std::max<size_t>(count[c], 1);
    for (size_t f = 0; f < kNumFeatures; ++f) mean[c][f] /= denom;
    for (size_t f = 0; f < kNumFeatures; ++f) var[c][f] = 0.05;
    weight[c] = denom / static_cast<double>(n);
  }

  std::vector<double> posterior(n, 0);
  for (size_t iter = 0; iter < iterations; ++iter) {
    // E-step: responsibility of the match component, in log space.
    for (size_t i = 0; i < n; ++i) {
      double logp[2];
      for (int c = 0; c < 2; ++c) {
        double lp = std::log(std::max(weight[c], 1e-12));
        for (size_t f = 0; f < kNumFeatures; ++f) {
          const double d = features[i * kNumFeatures + f] - mean[c][f];
          lp += -0.5 * (std::log(2 * M_PI * var[c][f]) + d * d / var[c][f]);
        }
        logp[c] = lp;
      }
      const double mx = std::max(logp[0], logp[1]);
      const double z = std::exp(logp[0] - mx) + std::exp(logp[1] - mx);
      posterior[i] = std::exp(logp[1] - mx) / z;
    }
    // M-step.
    double resp[2] = {};
    double new_mean[2][kNumFeatures] = {}, new_var[2][kNumFeatures] = {};
    for (size_t i = 0; i < n; ++i) {
      const double r1 = posterior[i], r0 = 1 - r1;
      resp[0] += r0;
      resp[1] += r1;
      for (size_t f = 0; f < kNumFeatures; ++f) {
        new_mean[0][f] += r0 * features[i * kNumFeatures + f];
        new_mean[1][f] += r1 * features[i * kNumFeatures + f];
      }
    }
    for (int c = 0; c < 2; ++c) {
      for (size_t f = 0; f < kNumFeatures; ++f) {
        mean[c][f] = new_mean[c][f] / std::max(resp[c], 1e-12);
      }
      weight[c] = resp[c] / n;
    }
    for (size_t i = 0; i < n; ++i) {
      const double r1 = posterior[i], r0 = 1 - r1;
      for (size_t f = 0; f < kNumFeatures; ++f) {
        const double d0 = features[i * kNumFeatures + f] - mean[0][f];
        const double d1 = features[i * kNumFeatures + f] - mean[1][f];
        new_var[0][f] += r0 * d0 * d0;
        new_var[1][f] += r1 * d1 * d1;
      }
    }
    for (int c = 0; c < 2; ++c) {
      for (size_t f = 0; f < kNumFeatures; ++f) {
        var[c][f] =
            std::max(new_var[c][f] / std::max(resp[c], 1e-12), kVarFloor);
      }
    }
  }
  // Component 1 must be the match class; swap the posterior if EM drifted.
  const double m0 = std::accumulate(mean[0], mean[0] + kNumFeatures, 0.0);
  const double m1 = std::accumulate(mean[1], mean[1] + kNumFeatures, 0.0);
  if (m0 > m1) {
    for (double& p : posterior) p = 1 - p;
  }
  return posterior;
}

}  // namespace

ZeroErResult ZeroEr::Run(const datagen::CleanCleanDataset& dataset,
                         const eval::GroundTruth& truth) const {
  ZeroErResult result;
  const std::vector<std::string> left = dataset.left.AllSentences();
  const std::vector<std::string> right = dataset.right.AllSentences();

  WallTimer timer;
  index::OverlapBlocker blocker;
  blocker.Build(left);
  // (right index, left index) pairs from the inverted token index.
  const auto candidates =
      blocker.CandidatesAgainst(right, options_.candidates_per_query);
  result.blocking_seconds = timer.Restart();

  if (candidates.size() > options_.max_pairs) {
    result.timed_out = true;
    return result;
  }
  if (candidates.empty()) return result;

  std::vector<double> features(candidates.size() * kNumFeatures);
  ParallelFor(0, candidates.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      PairFeatures(left[candidates[i].second], right[candidates[i].first],
                   features.data() + i * kNumFeatures);
    }
  });
  result.feature_seconds = timer.Restart();

  const std::vector<double> posterior =
      FitGmmPosteriors(features, candidates.size(), options_.em_iterations);
  std::vector<std::pair<uint32_t, uint32_t>> predicted;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (posterior[i] > 0.5) {
      predicted.emplace_back(candidates[i].second, candidates[i].first);
    }
  }
  result.metrics = eval::EvaluateCleanCleanMatches(predicted, truth);
  result.match_seconds = timer.Restart();
  return result;
}

}  // namespace ember::baselines
