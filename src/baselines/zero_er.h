#ifndef EMBER_BASELINES_ZERO_ER_H_
#define EMBER_BASELINES_ZERO_ER_H_

#include <cstdint>

#include "datagen/benchmark_datasets.h"
#include "eval/metrics.h"

namespace ember::baselines {

struct ZeroErOptions {
  /// Overlap-blocking candidates per right-collection record.
  size_t candidates_per_query = 10;
  /// Above this many candidate pairs the run is reported as timed out,
  /// mirroring ZeroER's behaviour on the largest paper datasets.
  size_t max_pairs = 2'000'000;
  size_t em_iterations = 40;
};

struct ZeroErResult {
  eval::PrfMetrics metrics;
  double blocking_seconds = 0;
  double feature_seconds = 0;
  double match_seconds = 0;
  bool timed_out = false;
};

/// ZeroER reproduction (Wu et al.): token-overlap blocking, a vector of
/// classic string-similarity features per candidate pair, and an unsupervised
/// two-component diagonal Gaussian mixture fitted with EM; the component with
/// the higher mean similarity is the match class.
class ZeroEr {
 public:
  ZeroEr() = default;
  explicit ZeroEr(const ZeroErOptions& options) : options_(options) {}

  ZeroErResult Run(const datagen::CleanCleanDataset& dataset,
                   const eval::GroundTruth& truth) const;

 private:
  ZeroErOptions options_;
};

}  // namespace ember::baselines

#endif  // EMBER_BASELINES_ZERO_ER_H_
