#ifndef EMBER_BASELINES_SUPERVISED_BASELINES_H_
#define EMBER_BASELINES_SUPERVISED_BASELINES_H_

#include <cstdint>

#include "datagen/dsm_datasets.h"
#include "match/supervised.h"

namespace ember::baselines {

/// DITTO-like matcher: a fine-tuned-LM stand-in built from the strongest
/// sentence model (S-MPNet) with a deeper pair classifier and more epochs.
match::SupervisedReport RunDittoLike(const datagen::DsmDataset& data,
                                     uint64_t seed);

/// DeepMatcher+-like matcher: fastText aggregation with a wide hybrid
/// classifier, the strongest non-LM baseline of the paper's Figure 11(d).
match::SupervisedReport RunDeepMatcherPlus(const datagen::DsmDataset& data,
                                           uint64_t seed);

}  // namespace ember::baselines

#endif  // EMBER_BASELINES_SUPERVISED_BASELINES_H_
