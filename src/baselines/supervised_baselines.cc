#include "baselines/supervised_baselines.h"

#include "embed/model_registry.h"
#include "embed/static_model.h"

namespace ember::baselines {

match::SupervisedReport RunDittoLike(const datagen::DsmDataset& data,
                                     uint64_t seed) {
  auto model = embed::CreateModel(embed::ModelId::kSMpnet);
  match::SupervisedOptions options =
      match::SupervisedMatcher::DefaultOptionsFor(model->info());
  options.mlp.hidden_dim = 64;
  options.mlp.seed = seed ^ 0xd177dULL;
  options.epochs = 20;
  match::SupervisedMatcher matcher(*model, options);
  return matcher.TrainAndEvaluate(data);
}

match::SupervisedReport RunDeepMatcherPlus(const datagen::DsmDataset& data,
                                           uint64_t seed) {
  embed::StaticEmbeddingModel model(embed::ModelId::kFastText,
                                    /*idf_weighting=*/true);
  match::SupervisedOptions options =
      match::SupervisedMatcher::DefaultOptionsFor(model.info());
  options.mlp.hidden_dim = 96;
  options.mlp.seed = seed ^ 0xd3ebULL;
  options.epochs = 16;
  match::SupervisedMatcher matcher(model, options);
  return matcher.TrainAndEvaluate(data);
}

}  // namespace ember::baselines
