#ifndef EMBER_BASELINES_DEEP_BLOCKER_H_
#define EMBER_BASELINES_DEEP_BLOCKER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ember::baselines {

struct DeepBlockerOptions {
  size_t k = 10;
  uint64_t seed = 1;
  /// Autoencoder bottleneck width.
  size_t hidden_dim = 64;
  size_t epochs = 8;
};

struct DeepBlockerResult {
  /// (left index, right index), k ascending-distance neighbors per left.
  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  double vectorize_seconds = 0;
  double train_seconds = 0;
  double index_seconds = 0;
  double query_seconds = 0;
  double total_seconds() const {
    return vectorize_seconds + train_seconds + index_seconds + query_seconds;
  }
};

/// DeepBlocker reproduction (Thirumuruganathan et al., self-supervised
/// Auto-Encoder variant): fastText-style aggregated sentence embeddings are
/// compressed by a small autoencoder and blocked with exact top-k search in
/// the bottleneck space.
class DeepBlocker {
 public:
  explicit DeepBlocker(const DeepBlockerOptions& options)
      : options_(options) {}

  DeepBlockerResult Run(const std::vector<std::string>& left,
                        const std::vector<std::string>& right) const;

 private:
  DeepBlockerOptions options_;
};

}  // namespace ember::baselines

#endif  // EMBER_BASELINES_DEEP_BLOCKER_H_
