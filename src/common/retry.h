#ifndef EMBER_COMMON_RETRY_H_
#define EMBER_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace ember {

/// Bounded exponential backoff with deterministic, seeded jitter. Every
/// transient I/O boundary in ember (vector-cache stores, snapshot loads,
/// the serving engine's embed stage) retries under one of these instead of
/// an ad-hoc loop, so attempt counts and sleep schedules are reproducible:
/// the jitter for (seed, salt, attempt) is a pure function, not wall-clock
/// entropy.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying.
  size_t max_attempts = 3;
  int64_t initial_backoff_micros = 500;
  double multiplier = 2.0;
  int64_t max_backoff_micros = 50'000;
  /// Fraction of the backoff randomized: the sleep is drawn uniformly from
  /// [backoff*(1-jitter), backoff*(1+jitter)). 0 = fully deterministic.
  double jitter = 0.5;
  uint64_t seed = 0x5eed5eedULL;

  /// Sleep before attempt `attempt`+1 (0-based). `salt` decorrelates
  /// concurrent retry loops (use a request/batch id) so they do not stampede
  /// in lockstep.
  int64_t BackoffMicros(size_t attempt, uint64_t salt = 0) const;

  /// Which failures are worth retrying: transient conditions (I/O, overload,
  /// internal hiccups) yes; semantic errors (invalid argument, not found,
  /// deadline already spent) no.
  static bool IsRetriable(const Status& status) {
    switch (status.code()) {
      case Status::Code::kIoError:
      case Status::Code::kUnavailable:
      case Status::Code::kInternal:
        return true;
      default:
        return false;
    }
  }
};

/// Runs `fn` (returning Status) under `policy`: retries retriable failures
/// with backoff sleeps between attempts, returns the final status. When
/// `retries` is non-null it is incremented once per retry actually taken,
/// so callers can surface retry counters without re-deriving them.
template <typename Fn>
Status RetryStatus(const RetryPolicy& policy, uint64_t salt, Fn&& fn,
                   uint64_t* retries = nullptr) {
  const size_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  Status status;
  for (size_t attempt = 0;; ++attempt) {
    status = fn();
    if (status.ok() || attempt + 1 >= attempts ||
        !RetryPolicy::IsRetriable(status)) {
      return status;
    }
    if (retries != nullptr) ++*retries;
    const int64_t backoff_micros = policy.BackoffMicros(attempt, salt);
    if (backoff_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
    }
  }
}

}  // namespace ember

#endif  // EMBER_COMMON_RETRY_H_
