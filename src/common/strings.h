#ifndef EMBER_COMMON_STRINGS_H_
#define EMBER_COMMON_STRINGS_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace ember {

/// printf-style formatting into a std::string.
inline std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list copy;
  va_copy(copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  std::string out(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  if (size > 0) std::vsnprintf(out.data(), out.size() + 1, format, args);
  va_end(args);
  return out;
}

inline std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

inline std::string StrJoin(const std::vector<std::string>& parts,
                           const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ember

#endif  // EMBER_COMMON_STRINGS_H_
