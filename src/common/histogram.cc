#include "common/histogram.h"

#include <cmath>

namespace ember {

size_t LatencyHistogram::BucketOf(double value) {
  if (!(value > 1.0)) return 0;  // NaN and everything <= 1 land in bucket 0
  const double octaves = std::log2(value);
  const auto bucket = static_cast<size_t>(octaves * 4.0);
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

double LatencyHistogram::BucketUpperBound(size_t i) {
  return std::exp2(static_cast<double>(i + 1) / 4.0);
}

void LatencyHistogram::Record(double value) {
  if (value < 0 || std::isnan(value)) value = 0;
  counts_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Total from the buckets, not `count`: under concurrent Record() the
  // counters are not a consistent cut and the rank must stay in range.
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0;
  // One sample has no within-bucket distribution to interpolate over: the
  // recorded max IS that sample, exactly.
  if (total == 1) return max;
  const double rank = p * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const auto below = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) >= rank) {
      const double lower =
          i == 0 ? 0.0 : LatencyHistogram::BucketUpperBound(i - 1);
      double upper = LatencyHistogram::BucketUpperBound(i);
      // The top bucket absorbs every value >= 2^24, so its nominal bound
      // says nothing about the mass inside it; interpolate toward the
      // observed max instead of collapsing all-outlier histograms to the
      // bound.
      if (i == kBuckets - 1 && max > upper) upper = max;
      const double fraction =
          (rank - below) / static_cast<double>(counts[i]);
      const double value = lower + (upper - lower) * fraction;
      // Never report beyond the observed max: without this, an all-zero
      // histogram (max == 0) would yield a positive "latency" interpolated
      // out of bucket 0.
      return value > max ? max : value;
    }
  }
  return max;
}

void HistogramSnapshot::Add(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

}  // namespace ember
