#include "common/binary_io.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/failpoint.h"

namespace ember {

uint64_t Fnv1a64(const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Status WriteBytesAtomic(const std::string& path, const std::string& bytes) {
  EMBER_FAILPOINT("binary_io/write");
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("short write to " + tmp);
    }
  }
  // Publish-step failpoint: simulates a crash between the temp write and
  // the rename — the temp file must be cleaned up, the final path untouched.
  const Status publish_fp = fail::Check("binary_io/rename");
  if (!publish_fp.ok()) {
    std::remove(tmp.c_str());
    return publish_fp;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const char (&magic)[8],
                       const std::string& payload) {
  const uint64_t length = payload.size();
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  std::string bytes;
  bytes.reserve(sizeof(magic) + payload.size() + 2 * sizeof(uint64_t));
  bytes.append(magic, sizeof(magic));
  bytes.append(payload);
  bytes.append(reinterpret_cast<const char*>(&length), sizeof(length));
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return WriteBytesAtomic(path, bytes);
}

Result<std::string> ReadFileVerified(const std::string& path,
                                     const char (&magic)[8]) {
  EMBER_FAILPOINT("binary_io/read");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open " + path);
  const std::streamoff size = in.tellg();
  constexpr std::streamoff kOverhead = 8 + 2 * sizeof(uint64_t);
  if (size < kOverhead) return Status::IoError(path + ": truncated header");
  in.seekg(0);
  std::string file(static_cast<size_t>(size), '\0');
  in.read(file.data(), size);
  if (!in) return Status::IoError(path + ": short read");
  if (std::memcmp(file.data(), magic, sizeof(magic)) != 0) {
    return Status::IoError(path + ": bad magic");
  }
  const size_t payload_size = static_cast<size_t>(size - kOverhead);
  uint64_t length = 0, checksum = 0;
  std::memcpy(&length, file.data() + 8 + payload_size, sizeof(length));
  std::memcpy(&checksum, file.data() + 8 + payload_size + sizeof(length),
              sizeof(checksum));
  if (length != payload_size) {
    return Status::IoError(path + ": length mismatch (torn write?)");
  }
  if (checksum != Fnv1a64(file.data() + 8, payload_size)) {
    return Status::IoError(path + ": checksum mismatch");
  }
  return file.substr(8, payload_size);
}

}  // namespace ember
