#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/rng.h"

namespace ember::fail {

namespace internal {
std::atomic<int> g_armed_points{0};
}  // namespace internal

namespace {

Status MakeInjected(Status::Code code, const std::string& name) {
  const std::string message = "failpoint '" + name + "' injected";
  switch (code) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kInternal:
      return Status::Internal(message);
    case Status::Code::kUnavailable:
      return Status::Unavailable(message);
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case Status::Code::kIoError:
    case Status::Code::kOk:
      break;
  }
  return Status::IoError(message);
}

struct Point {
  PointConfig config;
  bool armed = false;
  uint64_t hits = 0;
  uint64_t fires = 0;
  Rng rng{0};
};

/// Registry of every point ever armed. Guarded by one mutex: armed points
/// exist only in tests/benches, where per-hit lock cost is irrelevant next
/// to the deterministic ordering it buys.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* const kInstance = new Registry();
    return *kInstance;
  }

  Status Configure(const std::string& name, const PointConfig& config) {
    if (config.probability < 0.0 || config.probability > 1.0) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': probability must be in [0,1]");
    }
    if (config.nth == 0) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': nth must be >= 1");
    }
    if (config.delay_micros < 0) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': negative delay");
    }
    std::lock_guard<std::mutex> lock(mu_);
    Point& point = points_[name];
    if (!point.armed) {
      internal::g_armed_points.fetch_add(1, std::memory_order_release);
    }
    point.config = config;
    point.armed = true;
    point.hits = 0;
    point.fires = 0;
    point.rng = Rng(config.seed);
    return Status::Ok();
  }

  void Disarm(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end() || !it->second.armed) return;
    it->second.armed = false;
    internal::g_armed_points.fetch_sub(1, std::memory_order_release);
  }

  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, point] : points_) {
      if (point.armed) {
        point.armed = false;
        internal::g_armed_points.fetch_sub(1, std::memory_order_release);
      }
    }
  }

  PointStats Stats(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    PointStats stats;
    auto it = points_.find(name);
    if (it == points_.end()) return stats;
    stats.hits = it->second.hits;
    stats.fires = it->second.fires;
    stats.armed = it->second.armed;
    return stats;
  }

  std::vector<std::string> ArmedPoints() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    for (const auto& [name, point] : points_) {
      if (point.armed) names.push_back(name);
    }
    return names;
  }

  Status Evaluate(const char* name) {
    int64_t delay_micros = 0;
    Status injected;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = points_.find(name);
      if (it == points_.end() || !it->second.armed) return Status::Ok();
      Point& point = it->second;
      ++point.hits;
      if (point.config.max_fires >= 0 &&
          point.fires >= static_cast<uint64_t>(point.config.max_fires)) {
        return Status::Ok();
      }
      if (point.hits % point.config.nth != 0) return Status::Ok();
      if (point.config.probability < 1.0 &&
          point.rng.Uniform() >= point.config.probability) {
        return Status::Ok();
      }
      ++point.fires;
      if (point.config.action == PointConfig::Action::kDelay) {
        delay_micros = point.config.delay_micros;
      } else {
        injected = MakeInjected(point.config.code, name);
      }
    }
    // Sleep outside the registry lock so a delay point never serializes
    // unrelated failpoints.
    if (delay_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
    }
    return injected;
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
};

Status CompiledOut() {
  return Status::Unavailable(
      "failpoints compiled out (build with -DEMBER_FAILPOINTS_ENABLED=ON)");
}

bool ParseUint(const std::string& text, uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  size_t end = text.find_last_not_of(" \t");
  if (begin == std::string::npos) return "";
  return text.substr(begin, end - begin + 1);
}

Status ParseAction(const std::string& token, PointConfig& config) {
  const size_t colon = token.find(':');
  const std::string action = token.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : token.substr(colon + 1);
  if (action == "error") {
    config.action = PointConfig::Action::kError;
    if (arg.empty() || arg == "io") {
      config.code = Status::Code::kIoError;
    } else if (arg == "unavailable") {
      config.code = Status::Code::kUnavailable;
    } else if (arg == "notfound") {
      config.code = Status::Code::kNotFound;
    } else if (arg == "internal") {
      config.code = Status::Code::kInternal;
    } else if (arg == "invalid") {
      config.code = Status::Code::kInvalidArgument;
    } else if (arg == "deadline") {
      config.code = Status::Code::kDeadlineExceeded;
    } else {
      return Status::InvalidArgument("unknown failpoint error code '" + arg +
                                     "'");
    }
    return Status::Ok();
  }
  if (action == "delay") {
    uint64_t micros = 0;
    if (!ParseUint(arg, micros)) {
      return Status::InvalidArgument("failpoint delay needs 'delay:micros'");
    }
    config.action = PointConfig::Action::kDelay;
    config.delay_micros = static_cast<int64_t>(micros);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown failpoint action '" + action + "'");
}

Status ParseModifier(const std::string& token, PointConfig& config) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("failpoint modifier '" + token +
                                   "' is not key=value");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "p" || key == "prob") {
    char* end = nullptr;
    config.probability = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || config.probability < 0.0 ||
        config.probability > 1.0) {
      return Status::InvalidArgument("failpoint p= wants a float in [0,1]");
    }
    return Status::Ok();
  }
  uint64_t n = 0;
  if (!ParseUint(value, n)) {
    return Status::InvalidArgument("failpoint " + key +
                                   "= wants an unsigned integer");
  }
  if (key == "nth") {
    if (n == 0) return Status::InvalidArgument("failpoint nth= must be >= 1");
    config.nth = n;
  } else if (key == "max") {
    config.max_fires = static_cast<int64_t>(n);
  } else if (key == "seed") {
    config.seed = n;
  } else {
    return Status::InvalidArgument("unknown failpoint modifier '" + key + "'");
  }
  return Status::Ok();
}

}  // namespace

Status Configure(const std::string& name, const PointConfig& config) {
  if (!kEnabled) return CompiledOut();
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name must be non-empty");
  }
  return Registry::Instance().Configure(name, config);
}

Status ConfigureSpec(const std::string& name, const std::string& spec) {
  const std::string trimmed = Trim(spec);
  if (trimmed == "off") {
    Disarm(name);
    return Status::Ok();
  }
  PointConfig config;
  size_t start = 0;
  bool first = true;
  while (start <= trimmed.size()) {
    size_t comma = trimmed.find(',', start);
    if (comma == std::string::npos) comma = trimmed.size();
    const std::string token = Trim(trimmed.substr(start, comma - start));
    if (token.empty()) {
      return Status::InvalidArgument("empty token in failpoint spec '" +
                                     spec + "'");
    }
    const Status parsed =
        first ? ParseAction(token, config) : ParseModifier(token, config);
    if (!parsed.ok()) return parsed;
    first = false;
    start = comma + 1;
  }
  if (first) {
    return Status::InvalidArgument("empty failpoint spec for '" + name + "'");
  }
  return Configure(name, config);
}

Status ConfigureList(const std::string& list) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t semi = list.find(';', start);
    if (semi == std::string::npos) semi = list.size();
    const std::string entry = Trim(list.substr(start, semi - start));
    start = semi + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' is not point=spec");
    }
    const Status configured =
        ConfigureSpec(Trim(entry.substr(0, eq)), entry.substr(eq + 1));
    if (!configured.ok()) return configured;
  }
  return Status::Ok();
}

Status ConfigureFromEnv() {
  const char* env = std::getenv("EMBER_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::Ok();
  if (!kEnabled) return CompiledOut();
  return ConfigureList(env);
}

void Disarm(const std::string& name) {
  if (!kEnabled) return;
  Registry::Instance().Disarm(name);
}

void DisarmAll() {
  if (!kEnabled) return;
  Registry::Instance().DisarmAll();
}

PointStats Stats(const std::string& name) {
  if (!kEnabled) return {};
  return Registry::Instance().Stats(name);
}

std::vector<std::string> ArmedPoints() {
  if (!kEnabled) return {};
  return Registry::Instance().ArmedPoints();
}

namespace internal {

Status Evaluate(const char* name) {
  return Registry::Instance().Evaluate(name);
}

}  // namespace internal

}  // namespace ember::fail
