#ifndef EMBER_COMMON_HISTOGRAM_H_
#define EMBER_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace ember {

/// Frozen copy of a LatencyHistogram, safe to aggregate and query.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 96;

  std::array<uint64_t, kBuckets> counts{};
  uint64_t count = 0;
  double sum = 0;
  double max = 0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Approximate quantile for p in [0, 1] (0.5 = median, 0.99 = p99) by
  /// linear interpolation inside the holding bucket; exact to within one
  /// bucket width (~19%, quarter-octave buckets).
  double Percentile(double p) const;

  /// Element-wise merge (for aggregating per-worker histograms).
  void Add(const HistogramSnapshot& other);
};

/// Fixed-bucket concurrent histogram for non-negative values (latencies in
/// microseconds, batch sizes). 96 geometric buckets at 4 per octave cover
/// [1, 2^24) — 1 µs to ~16.7 s when recording microseconds — with values
/// outside the range clamped into the edge buckets. Record() is lock-free
/// (relaxed atomics): counters are statistics, never synchronization, and
/// Snapshot() is a read of monotone counters, not a consistent cut.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(double value);

  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value; exposed for tests. Bucket i spans
  /// [2^(i/4), 2^((i+1)/4)) with both tails clamped.
  static size_t BucketOf(double value);

  /// Upper bound of bucket i (the value Percentile interpolates toward).
  static double BucketUpperBound(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
};

}  // namespace ember

#endif  // EMBER_COMMON_HISTOGRAM_H_
