#ifndef EMBER_COMMON_RNG_H_
#define EMBER_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace ember {

/// SplitMix64 step: the stream seeder and the stateless hash primitive used
/// throughout ember (deterministic model weights, lexicon entries, ...).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string; stable across platforms.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** seeded via SplitMix64. Every stochastic component in ember
/// takes an explicit seed so all outputs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(x += 0x9e3779b97f4a7c15ULL);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u;
    do {
      u = Uniform();
    } while (u <= 1e-300);
    const double v = Uniform();
    return std::sqrt(-2.0 * std::log(u)) * std::cos(6.283185307179586 * v);
  }

  /// Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace ember

#endif  // EMBER_COMMON_RNG_H_
