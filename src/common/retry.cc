#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ember {

int64_t RetryPolicy::BackoffMicros(size_t attempt, uint64_t salt) const {
  double backoff = static_cast<double>(initial_backoff_micros) *
                   std::pow(multiplier, static_cast<double>(attempt));
  backoff = std::min(backoff, static_cast<double>(max_backoff_micros));
  if (jitter > 0.0) {
    // One SplitMix64 draw per (seed, salt, attempt): deterministic, cheap,
    // and uncorrelated across salts, which is all backoff jitter needs.
    const uint64_t draw = SplitMix64(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                                     (static_cast<uint64_t>(attempt) + 1));
    const double uniform =
        static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 - jitter + 2.0 * jitter * uniform;
  }
  return std::max<int64_t>(0, std::llround(backoff));
}

}  // namespace ember
