#ifndef EMBER_COMMON_STATUS_H_
#define EMBER_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ember {

/// RocksDB-style status object: library code reports errors through values,
/// never exceptions.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kInternal,
    kUnavailable,        // transient overload: retry later (serve backpressure)
    kDeadlineExceeded,   // the request's deadline passed before completion
  };

  Status() : code_(Code::kOk) {}
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(Code::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(Code::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(Code::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(Code::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kNotFound:
        return "NotFound: " + message_;
      case Code::kIoError:
        return "IoError: " + message_;
      case Code::kInternal:
        return "Internal: " + message_;
      case Code::kUnavailable:
        return "Unavailable: " + message_;
      case Code::kDeadlineExceeded:
        return "DeadlineExceeded: " + message_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_;
  std::string message_;
};

/// Either a value or a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace ember

#endif  // EMBER_COMMON_STATUS_H_
