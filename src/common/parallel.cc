#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace ember {

namespace {

/// Set while a thread is executing chunks, so nested ParallelFor calls run
/// serially inline instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

/// Lazily started, process-global worker pool. Workers park on a condition
/// variable between parallel regions; one region runs at a time (nested
/// regions fall back to serial inline execution).
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* const kPool = new ThreadPool();
    return *kPool;
  }

  /// Executes the current region's chunks on min(threads - 1, pool size)
  /// workers plus the calling thread. Chunk claiming is dynamic (atomic
  /// counter), but chunk boundaries are fixed by the caller, so scheduling
  /// order never affects results.
  void Run(int threads, size_t num_chunks,
           const std::function<void(size_t)>& chunk_fn) {
    // One top-level region at a time: the public entry points (QueryBatch,
    // VectorizeAll, ...) are documented thread-safe, so two user threads may
    // reach here concurrently. Without this lock both would overwrite
    // chunk_fn_/next_chunk_/generation_ mid-region.
    std::lock_guard<std::mutex> region_lock(region_mutex_);
    EnsureWorkers(threads - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      chunk_fn_ = &chunk_fn;
      next_chunk_.store(0, std::memory_order_relaxed);
      num_chunks_ = num_chunks;
      // Workers beyond the requested count sit this region out, so a lower
      // --threads after a higher one measures what it claims to measure.
      participating_workers_ = threads - 1;
      active_workers_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    work_cv_.notify_all();
    // The caller participates too: with EMBER_THREADS=1 (no workers) this is
    // the entire serial fallback path.
    DrainChunks();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    chunk_fn_ = nullptr;
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(int target) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < target) {
      const int id = static_cast<int>(workers_.size());
      // A worker spawned after earlier regions ran must start at the CURRENT
      // generation, not 0 — otherwise it wakes on the stale generation and
      // its spurious active_workers_ decrement can signal done_cv_ while
      // another worker is still inside the chunk function (use-after-free of
      // the caller's chunk_fn and captured state).
      const uint64_t spawn_generation = generation_;
      workers_.emplace_back(
          [this, id, spawn_generation] { WorkerLoop(id, spawn_generation); });
    }
  }

  void DrainChunks() {
    const std::function<void(size_t)>* fn = chunk_fn_;
    size_t chunk;
    while ((chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks_) {
      (*fn)(chunk);
    }
  }

  void WorkerLoop(int id, uint64_t seen_generation) {
    for (;;) {
      bool participate;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return generation_ != seen_generation; });
        seen_generation = generation_;
        participate = id < participating_workers_;
      }
      if (participate) {
        tls_in_parallel_region = true;
        DrainChunks();
        tls_in_parallel_region = false;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--active_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Serializes top-level regions from different user threads; held for the
  /// whole of Run. Distinct from mutex_, which only guards pool state and is
  /// released while chunks execute.
  std::mutex region_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(size_t)>* chunk_fn_ = nullptr;
  std::atomic<size_t> next_chunk_{0};
  size_t num_chunks_ = 0;
  int participating_workers_ = 0;
  int active_workers_ = 0;
  uint64_t generation_ = 0;
};

std::atomic<int> g_thread_override{0};

int DefaultThreads() {
  if (const char* env = std::getenv("EMBER_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int ConfiguredThreads() {
  const int override = g_thread_override.load(std::memory_order_relaxed);
  return override >= 1 ? override : DefaultThreads();
}

void SetThreads(int n) {
  g_thread_override.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  // The partition is a pure function of (begin, end, grain): a fixed
  // reference width (not the live thread count) sizes the default grain so
  // chunk boundaries are reproducible on any machine and at any --threads.
  constexpr size_t kReferenceChunks = 64;
  size_t chunk = grain > 0 ? grain : (n + kReferenceChunks - 1) / kReferenceChunks;
  if (chunk == 0) chunk = 1;
  const size_t num_chunks = (n + chunk - 1) / chunk;

  const int threads = ConfiguredThreads();
  if (threads <= 1 || num_chunks <= 1 || tls_in_parallel_region) {
    // Serial fallback: identical chunk boundaries, same call sequence.
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = begin + c * chunk;
      fn(lo, std::min(end, lo + chunk));
    }
    return;
  }

  const auto chunk_fn = [&](size_t c) {
    tls_in_parallel_region = true;
    const size_t lo = begin + c * chunk;
    fn(lo, std::min(end, lo + chunk));
    tls_in_parallel_region = false;
  };
  ThreadPool::Global().Run(threads, num_chunks, chunk_fn);
}

void ParallelForEach(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t)>& fn) {
  ParallelFor(begin, end, grain, [&fn](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace ember
