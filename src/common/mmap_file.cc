#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace ember {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  EMBER_FAILPOINT("mmap/open");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    // MAP_SHARED + PROT_READ: pages come straight from (and stay in) the
    // shared page cache, so concurrent processes serving one snapshot hold
    // one physical copy. The fd can be closed once the mapping exists.
    void* mapped =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("mmap " + path + ": " + std::strerror(err));
    }
    file.data_ = static_cast<const char*>(mapped);
  }
  ::close(fd);
  return file;
}

}  // namespace ember
