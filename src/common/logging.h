#ifndef EMBER_COMMON_LOGGING_H_
#define EMBER_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Fatal-on-false invariant checks. Library code reports recoverable errors
/// through Status; EMBER_CHECK is reserved for programming errors.
#define EMBER_CHECK(condition)                                             \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "EMBER_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define EMBER_CHECK_MSG(condition, ...)                                    \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "EMBER_CHECK failed at %s:%d: ", __FILE__,      \
                   __LINE__);                                              \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define EMBER_LOG(...)                        \
  do {                                        \
    std::fprintf(stderr, "[ember] ");         \
    std::fprintf(stderr, __VA_ARGS__);        \
    std::fprintf(stderr, "\n");               \
  } while (0)

#endif  // EMBER_COMMON_LOGGING_H_
