#ifndef EMBER_COMMON_LOGGING_H_
#define EMBER_COMMON_LOGGING_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>

/// Fatal-on-false invariant checks. Library code reports recoverable errors
/// through Status; EMBER_CHECK is reserved for programming errors.
#define EMBER_CHECK(condition)                                             \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "EMBER_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define EMBER_CHECK_MSG(condition, ...)                                    \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "EMBER_CHECK failed at %s:%d: ", __FILE__,      \
                   __LINE__);                                              \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define EMBER_LOG(...)                        \
  do {                                        \
    std::fprintf(stderr, "[ember] ");         \
    std::fprintf(stderr, __VA_ARGS__);        \
    std::fprintf(stderr, "\n");               \
  } while (0)

namespace ember::internal {

/// Token bucket behind EMBER_WARN's per-call-site rate limit. Thread-safe;
/// time is passed in (monotonic micros) so tests can drive it directly.
class LogTokenBucket {
 public:
  LogTokenBucket(double capacity, double refill_per_second)
      : capacity_(capacity),
        refill_per_second_(refill_per_second),
        tokens_(capacity) {}

  /// Returns -1 when this event must be dropped; otherwise the number of
  /// events suppressed since the last one that was admitted.
  int64_t Admit(int64_t now_micros) {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_micros_ >= 0 && now_micros > last_micros_) {
      tokens_ = std::min(
          capacity_, tokens_ + static_cast<double>(now_micros - last_micros_) *
                                   1e-6 * refill_per_second_);
    }
    last_micros_ = now_micros;
    if (tokens_ < 1.0) {
      ++suppressed_;
      return -1;
    }
    tokens_ -= 1.0;
    const int64_t suppressed = suppressed_;
    suppressed_ = 0;
    return suppressed;
  }

 private:
  const double capacity_;
  const double refill_per_second_;
  std::mutex mu_;
  double tokens_;
  int64_t last_micros_ = -1;
  int64_t suppressed_ = 0;
};

inline int64_t LogNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ember::internal

/// Rate-limited warning for conditions that can storm (retry loops, breaker
/// trips, cache-store failures): each call site gets its own token bucket —
/// an 8-message burst refilling at 2/s — and reports how many warnings the
/// limiter swallowed once it readmits. EMBER_LOG stays unlimited.
#define EMBER_WARN(...)                                                       \
  do {                                                                        \
    static ::ember::internal::LogTokenBucket ember_warn_bucket_(8.0, 2.0);    \
    const int64_t ember_warn_suppressed_ =                                    \
        ember_warn_bucket_.Admit(::ember::internal::LogNowMicros());          \
    if (ember_warn_suppressed_ >= 0) {                                        \
      std::fprintf(stderr, "[ember:warn] ");                                  \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      if (ember_warn_suppressed_ > 0) {                                       \
        std::fprintf(stderr, " (+%lld earlier warnings suppressed)",          \
                     static_cast<long long>(ember_warn_suppressed_));         \
      }                                                                       \
      std::fprintf(stderr, "\n");                                             \
    }                                                                         \
  } while (0)

#endif  // EMBER_COMMON_LOGGING_H_
