#ifndef EMBER_COMMON_MMAP_FILE_H_
#define EMBER_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"

namespace ember {

/// Read-only memory mapping of a whole file (RAII). The KenLM idiom behind
/// zero-copy snapshots: the kernel pages bytes in lazily on first touch,
/// start-up cost is independent of file size, and N processes mapping the
/// same file share one physical copy through the page cache.
///
/// Movable, not copyable; shared ownership (several index views over one
/// mapping) goes through std::shared_ptr<MmapFile>. The mapping is
/// PROT_READ, so any write through a view is a segfault, never silent
/// corruption.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Fails closed (NotFound / IoError) on any
  /// open/stat/mmap error; a zero-length file maps successfully with
  /// data() == nullptr and size() == 0.
  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ember

#endif  // EMBER_COMMON_MMAP_FILE_H_
