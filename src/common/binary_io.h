#ifndef EMBER_COMMON_BINARY_IO_H_
#define EMBER_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ember {

/// FNV-1a over `n` bytes — the integrity checksum of every on-disk ember
/// artifact (vector-cache entries, serving snapshots). Not cryptographic;
/// it exists to turn torn writes and bit flips into clean load failures.
uint64_t Fnv1a64(const void* data, size_t n);

/// Append-only little-endian serializer. All ember formats are written on
/// and read by little-endian hosts (x86-64), so fields are memcpy'd raw;
/// the container checksum rejects any foreign-endian file wholesale.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  /// u64 length prefix + bytes.
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// u64 count prefix + raw POD payload.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked deserializer over an in-memory payload. Every read past
/// the end (or failed invariant reported via Fail()) latches ok() to false
/// and yields zero values from then on, so loaders can parse straight
/// through and check ok() once at the end — corrupt input degrades to a
/// clean failure, never undefined behaviour.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view payload) : data_(payload) {}

  bool ok() const { return ok_; }
  /// Latches the reader into the failed state (loader-detected invariant
  /// violations use the same fail-closed channel as truncation).
  void Fail() { ok_ = false; }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  float ReadF32() { return ReadPod<float>(); }
  double ReadF64() { return ReadPod<double>(); }

  std::string ReadString() {
    const uint64_t n = ReadU64();
    if (n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> ReadPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = ReadU64();
    if (n > remaining() / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(n);
    ReadRaw(v.data(), n * sizeof(T));
    return v;
  }

  bool ReadRaw(void* out, size_t n) {
    if (n > remaining()) {
      ok_ = false;
      if (n > 0) std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    ReadRaw(&v, sizeof(v));
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// On-disk container shared by all ember binary artifacts:
///
///   magic(8) | payload | payload_length(u64) | fnv1a64(payload)(u64)
///
/// The trailer makes truncation detectable (length mismatch) and bit flips
/// detectable (checksum mismatch); the atomic write makes a torn file at
/// the final path impossible.

/// Serializes `payload` into the container and publishes it atomically:
/// the bytes go to `path + ".tmp.<pid>"` first and are renamed into place,
/// so concurrent readers see either the old file or the complete new one.
Status WriteFileAtomic(const std::string& path, const char (&magic)[8],
                       const std::string& payload);

/// The atomic temp+rename publish step alone, with no container framing:
/// `bytes` is written verbatim. Formats that embed their own header and
/// checksums (the EMBS0002 snapshot container, whose trailer-free layout is
/// what makes it mmap-able) use this; everything else should prefer
/// WriteFileAtomic. Shares the "binary_io/write" and "binary_io/rename"
/// failpoints with WriteFileAtomic.
Status WriteBytesAtomic(const std::string& path, const std::string& bytes);

/// Reads and verifies a container written by WriteFileAtomic. Fails closed:
/// wrong magic, short file, length mismatch, or checksum mismatch all
/// return a non-OK status without touching the payload.
Result<std::string> ReadFileVerified(const std::string& path,
                                     const char (&magic)[8]);

}  // namespace ember

#endif  // EMBER_COMMON_BINARY_IO_H_
