#ifndef EMBER_COMMON_PARALLEL_H_
#define EMBER_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace ember {

/// Number of worker threads the global pool uses. Resolution order:
///   1. SetThreads(n) with n >= 1 (e.g. the benches' --threads flag),
///   2. the EMBER_THREADS environment variable,
///   3. std::thread::hardware_concurrency().
/// A value of 1 selects the serial fallback: ParallelFor runs inline on the
/// calling thread and the pool is never started.
int ConfiguredThreads();

/// Overrides the thread count for subsequent ParallelFor calls. Passing
/// n <= 0 restores the EMBER_THREADS / hardware default. Safe to call
/// between parallel regions (tests sweep 1/2/4 threads this way); must not
/// be called from inside a ParallelFor body.
void SetThreads(int n);

/// Runs fn(chunk_begin, chunk_end) over a deterministic partition of
/// [begin, end). The partition depends only on (begin, end, grain) — NEVER
/// on the thread count — so any algorithm whose chunks write disjoint,
/// preallocated output slots produces bit-identical results at every thread
/// count, including the serial fallback.
///
/// `grain` is the maximum chunk length (0 partitions the range into ~64
/// fixed chunks regardless of thread count, so the partition stays
/// thread-count independent). fn must be thread-safe across chunks and must
/// not throw. Nested ParallelFor calls run serially inline; concurrent
/// top-level calls from different threads are serialized by the pool.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Convenience wrapper: fn(i) per index, chunked under the hood.
void ParallelForEach(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t)>& fn);

}  // namespace ember

#endif  // EMBER_COMMON_PARALLEL_H_
