#ifndef EMBER_COMMON_TIMER_H_
#define EMBER_COMMON_TIMER_H_

#include <chrono>

namespace ember {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the timer and returns the seconds elapsed up to the reset, so a
  /// single timer can split consecutive phases.
  double Restart() {
    const double elapsed = Seconds();
    start_ = Clock::now();
    return elapsed;
  }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ember

#endif  // EMBER_COMMON_TIMER_H_
