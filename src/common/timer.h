#ifndef EMBER_COMMON_TIMER_H_
#define EMBER_COMMON_TIMER_H_

#include <chrono>

namespace ember {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the timer and returns the seconds elapsed up to the reset, so a
  /// single timer can split consecutive phases.
  double Restart() {
    const double elapsed = Seconds();
    start_ = Clock::now();
    return elapsed;
  }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Shared monotonic time base for deadlines and latency measurement
/// (serve::Engine, bench load generators).
using SteadyTime = std::chrono::steady_clock::time_point;

inline SteadyTime SteadyNow() { return std::chrono::steady_clock::now(); }

/// The "no deadline" sentinel: later than any real instant.
inline constexpr SteadyTime kNoDeadline = SteadyTime::max();

inline SteadyTime AfterMicros(SteadyTime from, int64_t micros) {
  return from + std::chrono::microseconds(micros);
}

/// Signed microseconds from `from` to `to` (negative if `to` is earlier).
inline double MicrosBetween(SteadyTime from, SteadyTime to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace ember

#endif  // EMBER_COMMON_TIMER_H_
