#ifndef EMBER_COMMON_FAILPOINT_H_
#define EMBER_COMMON_FAILPOINT_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/status.h"

/// Deterministic fault injection (the fail-rs / RocksDB FaultInjection
/// idiom). Library code marks every fallible boundary with a named
/// failpoint; tests and benchmarks arm those names with a policy — inject
/// an error Status, sleep, fire once, fire every Nth hit, or fire with a
/// seeded probability — and the production code path exercises its own
/// error handling without mocks.
///
/// Unarmed cost is one relaxed atomic load. With EMBER_FAILPOINTS_ENABLED=0
/// (CMake -DEMBER_FAILPOINTS_ENABLED=OFF) the macros compile away entirely
/// and fail::Check() folds to `return Status::Ok()`.
///
/// Spec grammar (programmatic via ConfigureSpec, or the EMBER_FAILPOINTS
/// environment variable read by ConfigureFromEnv):
///
///   EMBER_FAILPOINTS = entry (';' entry)*
///   entry            = point '=' spec
///   spec             = 'off' | action (',' modifier)*
///   action           = 'error' [':' code] | 'delay' ':' micros
///   code             = 'io' | 'unavailable' | 'notfound' | 'internal'
///                    | 'invalid' | 'deadline'          (default: io)
///   modifier         = 'p=' float    probability per eligible hit [0,1]
///                    | 'nth=' n      fire only on every Nth hit (default 1)
///                    | 'max=' n      total fire budget; 1 = one-shot
///                    | 'seed=' n     seed of the probability stream
///
/// Example:
///   EMBER_FAILPOINTS="snapshot/load=error:io,max=1;engine/embed=error:unavailable,p=0.05,seed=7;cache/load=delay:500"

#ifndef EMBER_FAILPOINTS_ENABLED
#define EMBER_FAILPOINTS_ENABLED 1
#endif

namespace ember::fail {

/// Whether failpoints are compiled into this build.
inline constexpr bool kEnabled = EMBER_FAILPOINTS_ENABLED != 0;

/// The failpoint catalog: every injection site compiled into the library.
/// (DESIGN.md §10 documents what each site guards.) Tests iterate this list
/// to prove each site is live; keep it in sync when adding sites.
inline constexpr const char* kCatalog[] = {
    "binary_io/read",     // ReadFileVerified entry (any container load)
    "binary_io/write",    // WriteFileAtomic entry (before the temp write)
    "binary_io/rename",   // WriteFileAtomic publish (temp -> final rename)
    "cache/load",         // VectorCache entry load (fires => miss)
    "cache/store",        // VectorCache entry store (retried)
    "index/load",         // Exact/Hnsw/Lsh Load (fires => corrupt payload)
    "snapshot/save",      // serve::Snapshot::SaveTo entry
    "snapshot/load",      // serve::Snapshot::LoadFrom entry
    "snapshot/validate",  // serve::Snapshot::Validate entry
    "engine/embed",       // serve::Engine embed stage (retried, breaker)
    "engine/query",       // serve::Engine query stage (degraded fallback)
    "router/embed",       // serve::Router embed-once stage (retried)
    "stream/delta_insert",  // stream::LiveCorpus upsert into the delta tier
    "stream/tombstone",     // stream::LiveCorpus tombstone publish (delete)
    "compaction/write",     // serve::Engine compaction snapshot write
    "compaction/swap",      // serve::Engine compaction hot-swap commit
    "recover/log_append",   // recover::MutationLog append (before the ring)
    "recover/replay",       // router recovery worker log replay tick
    "recover/resync",       // router recovery worker snapshot resync
    "recover/digest",       // engine corpus digest computation (anti-entropy)
    "load/trace_read",      // load::Trace::LoadFrom entry (workload replay)
    "admit/bucket",         // per-tenant token-bucket admission (fail closed)
};

/// What an armed point does when its policy fires.
struct PointConfig {
  enum class Action : uint32_t {
    kError = 0,  // return `code` from the injection site
    kDelay = 1,  // sleep `delay_micros`, then proceed normally
  };
  Action action = Action::kError;
  Status::Code code = Status::Code::kIoError;
  int64_t delay_micros = 0;
  /// Chance each eligible hit fires; drawn from a seeded xoshiro stream, so
  /// a given (seed, hit sequence) always fires on the same hits.
  double probability = 1.0;
  /// Fire only on every Nth hit (1 = every hit). Evaluated before
  /// probability.
  uint64_t nth = 1;
  /// Total fires allowed; -1 = unlimited, 1 = classic one-shot.
  int64_t max_fires = -1;
  uint64_t seed = 0;
};

struct PointStats {
  uint64_t hits = 0;   // evaluations while armed
  uint64_t fires = 0;  // evaluations that actually injected
  bool armed = false;
};

/// Arms `name` with `config`. Fails with Unavailable when failpoints are
/// compiled out, InvalidArgument on a malformed config.
Status Configure(const std::string& name, const PointConfig& config);

/// Arms `name` from a spec string (grammar above); "off" disarms.
Status ConfigureSpec(const std::string& name, const std::string& spec);

/// Applies a full "a=spec;b=spec" list.
Status ConfigureList(const std::string& list);

/// Applies $EMBER_FAILPOINTS when set; no-op (Ok) when unset.
Status ConfigureFromEnv();

void Disarm(const std::string& name);
void DisarmAll();

/// Stats survive Disarm (armed=false) so tests can reconcile after a run.
PointStats Stats(const std::string& name);
std::vector<std::string> ArmedPoints();

namespace internal {
/// Fast-path gate: number of currently armed points.
extern std::atomic<int> g_armed_points;
Status Evaluate(const char* name);
}  // namespace internal

/// Evaluates the failpoint `name`: Ok unless some test armed it and its
/// policy fires now. The hot path is a single relaxed load when nothing is
/// armed, and the whole call folds away when compiled out.
inline Status Check(const char* name) {
  if constexpr (kEnabled) {
    if (internal::g_armed_points.load(std::memory_order_acquire) > 0) {
      return internal::Evaluate(name);
    }
  }
  (void)name;
  return Status::Ok();
}

}  // namespace ember::fail

/// Injection-site macro for functions returning Status or Result<T>:
/// returns the injected status when the point fires. Compiles to nothing
/// when failpoints are disabled.
#if EMBER_FAILPOINTS_ENABLED
#define EMBER_FAILPOINT(name)                                        \
  do {                                                               \
    ::ember::Status ember_fp_status_ = ::ember::fail::Check(name);   \
    if (!ember_fp_status_.ok()) return ember_fp_status_;             \
  } while (0)
#else
#define EMBER_FAILPOINT(name) \
  do {                        \
  } while (0)
#endif

#endif  // EMBER_COMMON_FAILPOINT_H_
