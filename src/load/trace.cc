#include "load/trace.h"

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/rng.h"

namespace ember::load {

namespace {

constexpr char kTraceMagic[8] = {'E', 'M', 'B', 'T', '0', '0', '0', '1'};
constexpr uint32_t kTraceVersion = 1;

}  // namespace

std::string Trace::Serialize() const {
  BinaryWriter writer;
  writer.WriteU32(kTraceVersion);
  writer.WriteU64(manifest.seed);
  writer.WriteU64(static_cast<uint64_t>(manifest.duration_micros));
  writer.WriteString(manifest.notes);
  writer.WriteU64(manifest.tenants.size());
  for (const TraceTenant& tenant : manifest.tenants) {
    writer.WriteString(tenant.name);
    writer.WriteString(tenant.dataset);
    writer.WriteF64(tenant.rate_per_sec);
    writer.WriteF64(tenant.burst);
  }
  writer.WriteU64(events.size());
  for (const TraceEvent& event : events) {
    writer.WriteU32(static_cast<uint32_t>(event.op));
    writer.WriteU32(event.tenant);
    writer.WriteU64(static_cast<uint64_t>(event.arrival_micros));
    writer.WriteU64(static_cast<uint64_t>(event.deadline_micros));
    writer.WriteU64(event.key);
    writer.WriteString(event.record);
  }
  return writer.buffer();
}

uint64_t Trace::Checksum() const {
  const std::string payload = Serialize();
  return Fnv1a64(payload.data(), payload.size());
}

Status Trace::SaveTo(const std::string& path) const {
  return WriteFileAtomic(path, kTraceMagic, Serialize());
}

Result<Trace> Trace::LoadFrom(const std::string& path) {
  EMBER_FAILPOINT("load/trace_read");
  Result<std::string> payload = ReadFileVerified(path, kTraceMagic);
  if (!payload.ok()) return payload.status();

  BinaryReader reader(payload.value());
  Trace trace;
  const uint32_t version = reader.ReadU32();
  if (version != kTraceVersion) {
    return Status::IoError("trace '" + path + "': unsupported version " +
                           std::to_string(version));
  }
  trace.manifest.seed = reader.ReadU64();
  trace.manifest.duration_micros = static_cast<int64_t>(reader.ReadU64());
  trace.manifest.notes = reader.ReadString();
  const uint64_t tenant_count = reader.ReadU64();
  // Bound by the remaining bytes: each tenant costs >= 32 bytes, so a
  // corrupt count cannot force a huge allocation.
  if (tenant_count > reader.remaining() / 32) reader.Fail();
  for (uint64_t t = 0; reader.ok() && t < tenant_count; ++t) {
    TraceTenant tenant;
    tenant.name = reader.ReadString();
    tenant.dataset = reader.ReadString();
    tenant.rate_per_sec = reader.ReadF64();
    tenant.burst = reader.ReadF64();
    if (tenant.name.empty()) reader.Fail();  // "" is the default tenant
    if (!(tenant.rate_per_sec >= 0) || !(tenant.burst >= 0)) reader.Fail();
    trace.manifest.tenants.push_back(std::move(tenant));
  }
  const uint64_t event_count = reader.ReadU64();
  // Each event costs >= 36 bytes on the wire.
  if (event_count > reader.remaining() / 36) reader.Fail();
  int64_t last_arrival = 0;
  for (uint64_t e = 0; reader.ok() && e < event_count; ++e) {
    TraceEvent event;
    const uint32_t op = reader.ReadU32();
    if (op > static_cast<uint32_t>(TraceEvent::Op::kReload)) reader.Fail();
    event.op = static_cast<TraceEvent::Op>(op);
    event.tenant = reader.ReadU32();
    if (event.tenant >= trace.manifest.tenants.size()) reader.Fail();
    event.arrival_micros = static_cast<int64_t>(reader.ReadU64());
    event.deadline_micros = static_cast<int64_t>(reader.ReadU64());
    if (event.arrival_micros < last_arrival || event.arrival_micros < 0 ||
        event.deadline_micros < 0) {
      reader.Fail();  // arrivals must be sorted; times are non-negative
    }
    last_arrival = event.arrival_micros;
    event.key = reader.ReadU64();
    event.record = reader.ReadString();
    trace.events.push_back(std::move(event));
  }
  if (!reader.ok() || reader.remaining() != 0) {
    return Status::IoError("trace '" + path +
                           "': malformed payload (refused fail-closed)");
  }
  return trace;
}

}  // namespace ember::load
