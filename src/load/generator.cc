#include "load/generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ember::load {

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  if (n == 0) n = 1;
  if (s < 0) s = 0;
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

uint64_t ZipfSampler::Sample(double uniform) const {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), uniform);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

namespace {

/// Instantaneous arrival rate of `phase` at offset `t` micros into it.
double PhaseRate(const PhaseSpec& phase, int64_t t) {
  const double base = std::max(1e-9, phase.rate_per_sec);
  switch (phase.arrival) {
    case PhaseSpec::Arrival::kPoisson:
      return base;
    case PhaseSpec::Arrival::kBurst: {
      const int64_t period = std::max<int64_t>(1, phase.period_micros);
      const double pos =
          static_cast<double>(t % period) / static_cast<double>(period);
      return pos < phase.burst_duty ? base * std::max(1.0, phase.burst_factor)
                                    : base;
    }
    case PhaseSpec::Arrival::kDiurnal: {
      const int64_t period = std::max<int64_t>(1, phase.period_micros);
      const double pos =
          static_cast<double>(t % period) / static_cast<double>(period);
      const double swing =
          std::min(0.99, std::max(0.0, phase.diurnal_swing));
      return base * (1.0 + swing * std::sin(2.0 * 3.141592653589793 * pos));
    }
  }
  return base;
}

/// Deterministic record text for (tenant, key): a stable pseudo-entity
/// description, so replaying a trace embeds exactly the bytes the generator
/// drew — the text scheme is baked into the trace, not the replayer.
std::string SynthesizeRecord(const TenantSpec& tenant, uint64_t key,
                             uint64_t seed) {
  const uint64_t h = SplitMix64(key ^ SplitMix64(seed));
  return tenant.name + " entity " + std::to_string(key) + " variant " +
         std::to_string(h % 7) + " attr " + std::to_string((h >> 8) % 97);
}

/// Per-tenant generation state: the Zipf sampler plus the live-key ledger
/// deletes draw from (swap-remove keeps picks O(1) and deterministic).
struct TenantState {
  ZipfSampler zipf;
  std::vector<uint64_t> live_keys;
  uint64_t next_key = 0;

  TenantState(const TenantSpec& spec)
      : zipf(std::max<uint64_t>(1, spec.corpus_rows), spec.zipf_s) {
    const uint64_t rows = std::max<uint64_t>(1, spec.corpus_rows);
    live_keys.resize(rows);
    for (uint64_t i = 0; i < rows; ++i) live_keys[i] = i;
    next_key = rows;
  }
};

}  // namespace

Trace GenerateTrace(const GeneratorOptions& options) {
  Trace trace;
  trace.manifest.seed = options.seed;
  trace.manifest.notes = options.notes;

  std::vector<TenantSpec> tenants = options.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{});
  for (size_t t = 0; t < tenants.size(); ++t) {
    if (tenants[t].name.empty()) {
      tenants[t].name = "tenant" + std::to_string(t);
    }
    TraceTenant manifest_tenant;
    manifest_tenant.name = tenants[t].name;
    manifest_tenant.dataset = tenants[t].dataset;
    manifest_tenant.rate_per_sec = tenants[t].quota_rate_per_sec;
    manifest_tenant.burst = tenants[t].quota_burst;
    trace.manifest.tenants.push_back(std::move(manifest_tenant));
  }

  double total_weight = 0;
  for (const TenantSpec& tenant : tenants) {
    total_weight += std::max(0.0, tenant.weight);
  }
  if (total_weight <= 0) total_weight = 1;

  std::vector<TenantState> states;
  states.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants) states.emplace_back(tenant);

  Rng rng(options.seed);
  int64_t phase_start = 0;
  for (const PhaseSpec& phase : options.phases.empty()
                                    ? std::vector<PhaseSpec>{PhaseSpec{}}
                                    : options.phases) {
    const int64_t duration = std::max<int64_t>(0, phase.duration_micros);
    if (phase.reload_marker) {
      // One marker per tenant at the phase boundary: the replayer reloads
      // each tenant's snapshot (cold-start) before the phase's traffic.
      for (uint32_t t = 0; t < tenants.size(); ++t) {
        TraceEvent marker;
        marker.op = TraceEvent::Op::kReload;
        marker.tenant = t;
        marker.arrival_micros = phase_start;
        trace.events.push_back(std::move(marker));
      }
    }
    // Open-loop arrivals: exponential inter-arrival at the phase's
    // instantaneous rate (evaluated at the current offset — exact for
    // kPoisson, a fine-grained approximation for the modulated shapes).
    int64_t t = 0;
    for (;;) {
      const double rate = PhaseRate(phase, t) / 1'000'000.0;  // per micro
      double u = rng.Uniform();
      if (u >= 1.0) u = 0.999999;
      const double gap = -std::log(1.0 - u) / rate;
      t += std::max<int64_t>(1, static_cast<int64_t>(gap));
      if (t >= duration) break;

      // Weighted tenant draw.
      double pick = rng.Uniform() * total_weight;
      size_t tenant_index = 0;
      for (size_t i = 0; i < tenants.size(); ++i) {
        pick -= std::max(0.0, tenants[i].weight);
        if (pick <= 0) {
          tenant_index = i;
          break;
        }
      }
      const TenantSpec& spec = tenants[tenant_index];
      TenantState& state = states[tenant_index];

      TraceEvent event;
      event.tenant = static_cast<uint32_t>(tenant_index);
      event.arrival_micros = phase_start + t;
      event.deadline_micros = spec.deadline_micros;

      const double op_draw = rng.Uniform();
      if (op_draw < spec.upsert_fraction) {
        event.op = TraceEvent::Op::kUpsert;
        event.key = state.next_key++;
        state.live_keys.push_back(event.key);
        event.record = SynthesizeRecord(spec, event.key, options.seed);
      } else if (op_draw < spec.upsert_fraction + spec.delete_fraction &&
                 !state.live_keys.empty()) {
        event.op = TraceEvent::Op::kDelete;
        const size_t slot = rng.Below(state.live_keys.size());
        event.key = state.live_keys[slot];
        state.live_keys[slot] = state.live_keys.back();
        state.live_keys.pop_back();
      } else {
        event.op = TraceEvent::Op::kQuery;
        const uint64_t rank = state.zipf.Sample(rng.Uniform());
        event.key = rank;
        event.record = SynthesizeRecord(spec, rank, options.seed);
      }
      trace.events.push_back(std::move(event));
    }
    phase_start += duration;
  }
  trace.manifest.duration_micros = phase_start;
  return trace;
}

}  // namespace ember::load
