#ifndef EMBER_LOAD_REPLAYER_H_
#define EMBER_LOAD_REPLAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "load/trace.h"
#include "serve/engine.h"

/// Trace replay against live serve::Engines (DESIGN.md §16).
///
/// Two modes:
///   kVirtual — no sleeping, no wall-clock deadlines: admission timestamps
///     come from the trace's own arrival instants (virtual time), mutations
///     are applied synchronously in trace order, and query futures are
///     harvested under a bounded-outstanding window. Every admission
///     decision and counter outcome is a pure function of (trace, quotas),
///     so the same trace replays bit-identically at any worker count — the
///     determinism property the proptest pins down.
///   kTimed — open-loop load generation: each event is submitted at its
///     arrival instant (scaled by `speed`) with real deadlines, measuring
///     actual latency/SLO behavior. Timing-dependent by design.
namespace ember::load {

struct ReplayOptions {
  enum class Mode : uint32_t { kVirtual = 0, kTimed = 1 };
  Mode mode = Mode::kVirtual;
  /// kTimed: arrival times are divided by this (2 = replay twice as fast).
  double speed = 1.0;
  /// Max query futures in flight before the replayer harvests the oldest.
  /// Keep below the engine's max_queue to avoid replayer-induced rejects.
  size_t max_outstanding = 64;
  /// Per-tenant snapshot paths for kReload markers (index = tenant index);
  /// missing/empty entries skip the reload and only count the marker.
  std::vector<std::string> reload_paths;
};

/// Per-tenant replay tallies (decision + outcome counts).
struct TenantReplay {
  std::string name;
  uint64_t submitted = 0;
  uint64_t throttled = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;
};

struct ReplayReport {
  // Trace composition.
  uint64_t events = 0;
  uint64_t queries = 0;
  uint64_t upserts = 0;
  uint64_t deletes = 0;
  uint64_t reloads = 0;
  // Admission decisions (at Submit).
  uint64_t submitted = 0;
  uint64_t throttled = 0;
  uint64_t rejected = 0;
  // Future outcomes.
  uint64_t completed = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;
  /// Deletes whose upsert was refused earlier (no id to delete) — skipped
  /// deterministically, never submitted.
  uint64_t unmapped_deletes = 0;
  /// SplitMix64 fold over (event index, admission decision) — the compact
  /// identity of the full per-event decision sequence.
  uint64_t admission_digest = 0;
  double wall_seconds = 0;
  std::vector<TenantReplay> per_tenant;

  /// Order-stable hash of every deterministic field (everything except
  /// wall_seconds): two replays of one trace must produce equal signatures.
  uint64_t Signature() const;
};

/// Admission quotas declared in the trace manifest (rate 0 entries are
/// skipped), ready for EngineOptions.quotas / RouterOptions.quotas.
std::vector<serve::TenantQuota> QuotasFromTrace(const Trace& trace);

/// Replays `trace` against one engine per tenant (tenant index i uses
/// engines[min(i, engines.size()-1)], so a single shared engine is the
/// degenerate multi-tenant case). Engines must outlive the call; quotas
/// should come from QuotasFromTrace for the manifest's SLO setup.
Result<ReplayReport> Replay(const Trace& trace,
                            const std::vector<serve::Engine*>& engines,
                            const ReplayOptions& options);

}  // namespace ember::load

#endif  // EMBER_LOAD_REPLAYER_H_
