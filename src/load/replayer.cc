#include "load/replayer.h"

#include <algorithm>
#include <deque>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/timer.h"

namespace ember::load {

namespace {

/// Admission decision codes folded into the digest.
enum class Decision : uint64_t { kAdmitted = 0, kThrottled = 1, kRejected = 2 };

/// A trace's virtual epoch: an arbitrary fixed steady-clock origin. Token
/// buckets only ever difference timestamps, so any origin later than
/// kAdmitNow (SteadyTime::min()) works; epoch + arrival_micros makes the
/// bucket refill schedule a pure function of the trace.
SteadyTime VirtualEpoch() { return SteadyTime(); }

bool IsThrottle(const Status& status) {
  return status.message().find("quota") != std::string::npos;
}

struct Outstanding {
  std::future<Result<serve::QueryReply>> future;
  size_t tenant = 0;
};

}  // namespace

uint64_t ReplayReport::Signature() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto fold = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  fold(events);
  fold(queries);
  fold(upserts);
  fold(deletes);
  fold(reloads);
  fold(submitted);
  fold(throttled);
  fold(rejected);
  fold(completed);
  fold(expired);
  fold(failed);
  fold(unmapped_deletes);
  fold(admission_digest);
  for (const TenantReplay& tenant : per_tenant) {
    fold(HashBytes(tenant.name.data(), tenant.name.size()));
    fold(tenant.submitted);
    fold(tenant.throttled);
    fold(tenant.rejected);
    fold(tenant.completed);
    fold(tenant.expired);
    fold(tenant.failed);
  }
  return h;
}

std::vector<serve::TenantQuota> QuotasFromTrace(const Trace& trace) {
  std::vector<serve::TenantQuota> quotas;
  for (const TraceTenant& tenant : trace.manifest.tenants) {
    if (tenant.rate_per_sec <= 0) continue;
    serve::TenantQuota quota;
    quota.tenant = tenant.name;
    quota.rate_per_sec = tenant.rate_per_sec;
    quota.burst = tenant.burst;
    quotas.push_back(std::move(quota));
  }
  return quotas;
}

Result<ReplayReport> Replay(const Trace& trace,
                            const std::vector<serve::Engine*>& engines,
                            const ReplayOptions& options) {
  if (engines.empty() || engines.front() == nullptr) {
    return Status::InvalidArgument("replay needs at least one engine");
  }
  for (serve::Engine* engine : engines) {
    if (engine == nullptr) {
      return Status::InvalidArgument("replay engine list holds a null");
    }
  }
  const bool virtual_mode = options.mode == ReplayOptions::Mode::kVirtual;
  const double speed = options.speed > 0 ? options.speed : 1.0;
  const size_t max_outstanding = std::max<size_t>(1, options.max_outstanding);

  ReplayReport report;
  report.per_tenant.resize(trace.manifest.tenants.size());
  for (size_t t = 0; t < trace.manifest.tenants.size(); ++t) {
    report.per_tenant[t].name = trace.manifest.tenants[t].name;
  }
  if (report.per_tenant.empty()) report.per_tenant.resize(1);

  auto engine_for = [&](uint32_t tenant) -> serve::Engine& {
    return *engines[std::min<size_t>(tenant, engines.size() - 1)];
  };
  auto tenant_name = [&](uint32_t tenant) -> std::string {
    if (tenant < trace.manifest.tenants.size()) {
      return trace.manifest.tenants[tenant].name;
    }
    return "";
  };

  // key -> engine global id, per tenant: how deletes find the row an
  // earlier upsert created. Base keys (rows present before replay) map to
  // themselves — the trace generator draws them from [0, corpus_rows) and
  // the snapshot's global ids are exactly that range.
  std::vector<std::unordered_map<uint64_t, uint64_t>> upsert_ids(
      report.per_tenant.size());
  // kTimed defers upsert futures until a delete needs the id (blocking the
  // open loop on every mutation would serialize the workload).
  std::vector<
      std::unordered_map<uint64_t, std::future<Result<serve::MutateReply>>>>
      pending_upserts(report.per_tenant.size());

  std::deque<Outstanding> outstanding;
  uint64_t digest = 0x2545f4914f6cdd1dULL;
  auto fold_decision = [&digest](uint64_t index, Decision decision) {
    digest = SplitMix64(digest ^ SplitMix64(index * 3 +
                                            static_cast<uint64_t>(decision)));
  };

  auto settle_query = [&](Outstanding pending) {
    Result<serve::QueryReply> reply = pending.future.get();
    TenantReplay& tenant = report.per_tenant[pending.tenant];
    if (reply.ok()) {
      report.completed++;
      tenant.completed++;
    } else if (reply.status().code() == Status::Code::kDeadlineExceeded) {
      report.expired++;
      tenant.expired++;
    } else {
      report.failed++;
      tenant.failed++;
    }
  };
  auto settle_mutation = [&](size_t tenant_index,
                             Result<serve::MutateReply> reply, uint64_t key) {
    TenantReplay& tenant = report.per_tenant[tenant_index];
    if (reply.ok()) {
      report.completed++;
      tenant.completed++;
      upsert_ids[tenant_index][key] = reply.value().id;
    } else if (reply.status().code() == Status::Code::kDeadlineExceeded) {
      report.expired++;
      tenant.expired++;
    } else {
      report.failed++;
      tenant.failed++;
    }
  };
  // Resolves the pending upsert for `key` (the kTimed lazy path) so a
  // following delete can look up the id it was assigned.
  auto resolve_upsert = [&](size_t tenant_index, uint64_t key) {
    auto it = pending_upserts[tenant_index].find(key);
    if (it == pending_upserts[tenant_index].end()) return;
    Result<serve::MutateReply> reply = it->second.get();
    pending_upserts[tenant_index].erase(it);
    settle_mutation(tenant_index, std::move(reply), key);
  };

  WallTimer timer;
  const SteadyTime virtual_epoch = VirtualEpoch();
  const SteadyTime wall_epoch = SteadyNow();

  for (size_t index = 0; index < trace.events.size(); ++index) {
    const TraceEvent& event = trace.events[index];
    report.events++;
    const size_t tenant_index =
        std::min<size_t>(event.tenant, report.per_tenant.size() - 1);
    TenantReplay& tenant = report.per_tenant[tenant_index];
    serve::Engine& engine = engine_for(event.tenant);

    if (event.op == TraceEvent::Op::kReload) {
      report.reloads++;
      if (event.tenant < options.reload_paths.size() &&
          !options.reload_paths[event.tenant].empty()) {
        // A failed reload keeps the old snapshot serving; the replay
        // carries on — the trace records the attempt either way.
        (void)engine.ReloadSnapshot(options.reload_paths[event.tenant]);
      }
      continue;
    }

    serve::SubmitOptions submit;
    submit.tenant = tenant_name(event.tenant);
    if (virtual_mode) {
      // Virtual time: the bucket charges this event at its trace arrival
      // instant; no wall-clock deadline (shedding depends on scheduling,
      // which determinism excludes).
      submit.admit_time = AfterMicros(virtual_epoch, event.arrival_micros);
      submit.deadline = kNoDeadline;
    } else {
      const int64_t scaled =
          static_cast<int64_t>(static_cast<double>(event.arrival_micros) /
                               speed);
      const SteadyTime target = AfterMicros(wall_epoch, scaled);
      std::this_thread::sleep_until(target);
      submit.admit_time = serve::kAdmitNow;
      submit.deadline = event.deadline_micros > 0
                            ? AfterMicros(target, event.deadline_micros)
                            : kNoDeadline;
    }

    auto record_decision = [&](const Status& status) {
      if (status.ok()) {
        report.submitted++;
        tenant.submitted++;
        fold_decision(index, Decision::kAdmitted);
      } else if (IsThrottle(status)) {
        report.throttled++;
        tenant.throttled++;
        fold_decision(index, Decision::kThrottled);
      } else {
        report.rejected++;
        tenant.rejected++;
        fold_decision(index, Decision::kRejected);
      }
    };

    switch (event.op) {
      case TraceEvent::Op::kQuery: {
        report.queries++;
        auto submitted = engine.Submit(event.record, submit);
        record_decision(submitted.status());
        if (submitted.ok()) {
          outstanding.push_back(
              Outstanding{std::move(submitted.value()), tenant_index});
          while (outstanding.size() >= max_outstanding) {
            settle_query(std::move(outstanding.front()));
            outstanding.pop_front();
          }
        }
        break;
      }
      case TraceEvent::Op::kUpsert: {
        report.upserts++;
        auto submitted = engine.Upsert(event.record, submit);
        record_decision(submitted.status());
        if (submitted.ok()) {
          if (virtual_mode) {
            // Block in trace order: replica id assignment then depends only
            // on the admitted-upsert sequence, never on scheduling.
            settle_mutation(tenant_index, submitted.value().get(), event.key);
          } else {
            pending_upserts[tenant_index][event.key] =
                std::move(submitted.value());
          }
        }
        break;
      }
      case TraceEvent::Op::kDelete: {
        report.deletes++;
        if (!virtual_mode) resolve_upsert(tenant_index, event.key);
        const auto id_it = upsert_ids[tenant_index].find(event.key);
        uint64_t global_id = event.key;  // base rows: key IS the global id
        if (id_it != upsert_ids[tenant_index].end()) {
          global_id = id_it->second;
        } else if (event.key >= engine.snapshot()->manifest().rows &&
                   engine.live()) {
          // The upsert that created this key was refused (throttled or
          // rejected) — there is no row to delete. Deterministic skip.
          report.unmapped_deletes++;
          fold_decision(index, Decision::kRejected);
          break;
        }
        auto submitted = engine.Delete(global_id, submit);
        record_decision(submitted.status());
        if (submitted.ok()) {
          if (virtual_mode) {
            Result<serve::MutateReply> reply = submitted.value().get();
            TenantReplay& t = report.per_tenant[tenant_index];
            if (reply.ok()) {
              report.completed++;
              t.completed++;
            } else if (reply.status().code() ==
                       Status::Code::kDeadlineExceeded) {
              report.expired++;
              t.expired++;
            } else {
              report.failed++;
              t.failed++;
            }
          } else {
            pending_upserts[tenant_index][~event.key] =
                std::move(submitted.value());
          }
        }
        break;
      }
      case TraceEvent::Op::kReload:
        break;  // handled above
    }
  }

  // Drain: every future settles before the report is final.
  while (!outstanding.empty()) {
    settle_query(std::move(outstanding.front()));
    outstanding.pop_front();
  }
  for (size_t t = 0; t < pending_upserts.size(); ++t) {
    for (auto& [key, future] : pending_upserts[t]) {
      settle_mutation(t, future.get(), key);
    }
    pending_upserts[t].clear();
  }

  report.admission_digest = digest;
  report.wall_seconds = timer.Seconds();
  return report;
}

}  // namespace ember::load
