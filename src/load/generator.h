#ifndef EMBER_LOAD_GENERATOR_H_
#define EMBER_LOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "load/trace.h"

/// Seeded synthetic workload generation (DESIGN.md §16): everything below
/// is a pure function of GeneratorOptions — same options, same trace,
/// byte-for-byte — so a benchmark's traffic is fully described by a seed
/// and a handful of shape parameters.
namespace ember::load {

/// One open-loop arrival phase. Phases run back to back; the full schedule
/// is the concatenation (e.g. warm Poisson -> 2x burst -> reload -> cold
/// Poisson models the cold-start/post-reload experiment).
struct PhaseSpec {
  enum class Arrival : uint32_t {
    /// Poisson process: exponential inter-arrivals at rate_per_sec.
    kPoisson = 0,
    /// Square-wave burst: rate_per_sec * burst_factor for burst_duty of
    /// each burst_period_micros, the remainder at the base rate.
    kBurst = 1,
    /// Diurnal: sinusoidal rate between rate_per_sec * (1 ± diurnal_swing)
    /// over period_micros — the day/night cycle compressed into a bench run.
    kDiurnal = 2,
  };
  Arrival arrival = Arrival::kPoisson;
  double rate_per_sec = 1000;
  int64_t duration_micros = 1'000'000;
  /// kBurst: multiplier while the burst is on, and the on-fraction.
  double burst_factor = 2.0;
  double burst_duty = 0.25;
  /// kBurst/kDiurnal modulation period.
  int64_t period_micros = 200'000;
  /// kDiurnal amplitude in [0, 1).
  double diurnal_swing = 0.5;
  /// Emit a kReload phase marker at this phase's start (the replayer then
  /// hot-reloads the tenant's snapshot — the cold-start boundary).
  bool reload_marker = false;
};

/// One tenant's traffic shape within the shared arrival process.
struct TenantSpec {
  std::string name;
  /// Dataset tag recorded in the manifest (which snapshot this tenant
  /// queries in a multi-tenant replay).
  std::string dataset;
  /// Rows in the tenant's corpus: Zipf keys are drawn from [0, corpus_rows).
  uint64_t corpus_rows = 1000;
  /// Zipf skew exponent; 0 = uniform, ~1 = classic web skew.
  double zipf_s = 1.0;
  /// Relative share of the merged arrival stream.
  double weight = 1.0;
  /// Operation mix: fractions of this tenant's events that are upserts /
  /// deletes (the rest are queries). Deletes are only drawn against keys
  /// the generator knows to be live, so a generated trace never deletes a
  /// missing row.
  double upsert_fraction = 0;
  double delete_fraction = 0;
  /// Deadline budget stamped on this tenant's requests; 0 = no deadlines.
  int64_t deadline_micros = 0;
  /// Admission quota recorded in the manifest (0 rate = unlimited).
  double quota_rate_per_sec = 0;
  double quota_burst = 0;
};

struct GeneratorOptions {
  uint64_t seed = 1;
  std::vector<TenantSpec> tenants;
  std::vector<PhaseSpec> phases;
  std::string notes;
};

/// Zipfian sampler over [0, n): exact inverse-CDF via precomputed prefix
/// sums + binary search. O(n) setup, O(log n) per draw, bit-deterministic.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);
  /// Maps a uniform draw in [0, 1) to a rank; rank 0 is the hottest key.
  uint64_t Sample(double uniform) const;

 private:
  std::vector<double> cdf_;
};

/// Generates the merged multi-tenant trace. Pure: same options -> the same
/// Trace, byte-for-byte (the determinism proptest's ground truth).
Trace GenerateTrace(const GeneratorOptions& options);

}  // namespace ember::load

#endif  // EMBER_LOAD_GENERATOR_H_
