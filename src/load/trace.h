#ifndef EMBER_LOAD_TRACE_H_
#define EMBER_LOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// Deterministic workload traces (DESIGN.md §16): a recorded (or generated)
/// sequence of timestamped serve operations, serialized to the checksummed
/// EMBT0001 container so a benchmark's exact traffic can be committed as a
/// fixture, shipped, and replayed bit-reproducibly anywhere.
namespace ember::load {

/// One timestamped operation in a trace. Times are RELATIVE micros from the
/// trace's virtual epoch — a trace carries no wall-clock state, so the same
/// file replays identically today and in a year.
struct TraceEvent {
  enum class Op : uint32_t {
    kQuery = 0,
    kUpsert = 1,
    kDelete = 2,
    /// Phase marker: the replayer triggers a hot snapshot reload (or just a
    /// phase boundary in reports) — the cold-start/post-reload workload
    /// shape. Carries no key/record.
    kReload = 3,
  };
  Op op = Op::kQuery;
  /// Index into TraceManifest.tenants.
  uint32_t tenant = 0;
  /// Open-loop arrival instant, micros from the trace epoch.
  int64_t arrival_micros = 0;
  /// Per-request deadline budget, micros from arrival; 0 = no deadline.
  int64_t deadline_micros = 0;
  /// Zipf-drawn corpus key: for queries the corpus row the record text
  /// derives from; for deletes the generator-tracked live key to delete;
  /// for upserts the generator-assigned key of the new row.
  uint64_t key = 0;
  /// The record text submitted (queries/upserts); deterministic synthesis
  /// from (tenant, key) at generation time, stored verbatim so replay does
  /// not depend on the generator's text scheme.
  std::string record;
};

/// One tenant in a multi-tenant trace: a name (the `{tenant=}` label), the
/// dataset snapshot it targets, and the admission quota the replayer
/// configures for it (rate 0 = no quota).
struct TraceTenant {
  std::string name;
  std::string dataset;
  double rate_per_sec = 0;
  double burst = 0;
};

/// Generation provenance, carried in the container so a fixture is
/// self-describing.
struct TraceManifest {
  uint64_t seed = 0;
  int64_t duration_micros = 0;
  std::string notes;
  std::vector<TraceTenant> tenants;
};

/// A workload trace: manifest + events sorted by arrival_micros (ties keep
/// generation order). Value type; Serialize() is the canonical byte
/// encoding, so byte-equality of two Serialize() outputs is the trace
/// identity the determinism tests assert.
struct Trace {
  TraceManifest manifest;
  std::vector<TraceEvent> events;

  /// Canonical payload encoding (the bytes inside the EMBT0001 container).
  std::string Serialize() const;

  /// FNV-1a over Serialize() — a cheap identity for "same trace?" checks.
  uint64_t Checksum() const;

  /// Writes the EMBT0001 container atomically (temp + rename).
  Status SaveTo(const std::string& path) const;

  /// Loads and verifies an EMBT0001 container. Fail-closed: the
  /// `load/trace_read` failpoint fires at entry, and any truncation, bit
  /// flip, or structural violation (bad op/tenant index, unsorted arrivals)
  /// returns an error — never a partial trace.
  static Result<Trace> LoadFrom(const std::string& path);
};

}  // namespace ember::load

#endif  // EMBER_LOAD_TRACE_H_
