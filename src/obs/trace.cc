#include "obs/trace.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"

namespace ember::obs {

namespace {

/// Innermost open span on this thread; implicit Span(name) children hang
/// off it. Plain pointer: only the owning thread reads or writes it.
thread_local Span* tls_current_span = nullptr;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyNow().time_since_epoch())
      .count();
}

}  // namespace

/// Per-thread span ring. The owning thread appends under `mu`; Drain and
/// Clear lock the same mutex from other threads. The mutex is uncontended
/// on the hot path (Drain is a post-run operation), so the append cost is
/// one atomic RMW pair — well inside the <=5% enabled-overhead budget.
struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> ring;
  size_t capacity = 0;
  uint64_t total = 0;  // lifetime appends; total - stored = dropped
  uint32_t index = 0;  // stable thread index, assigned at registration

  void Append(const SpanRecord& record) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < capacity) {
      ring.push_back(record);
    } else if (capacity > 0) {
      ring[total % capacity] = record;
    }
    ++total;
  }
};

Tracer::Tracer() : epoch_nanos_(NowNanos()) {}

Tracer& Tracer::Global() {
  static Tracer* const kTracer = new Tracer();
  return *kTracer;
}

void Tracer::SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->total = 0;
  }
  root_ordinal_.store(0, std::memory_order_relaxed);
  epoch_nanos_.store(NowNanos(), std::memory_order_relaxed);
}

void Tracer::SetRingCapacity(size_t spans) {
  ring_capacity_.store(spans, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->ring.reserve(spans);
    buffer->capacity = spans;
    buffer->total = 0;
  }
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    buffer = new ThreadBuffer();  // leaked: records must outlive the thread
    buffer->capacity = ring_capacity_.load(std::memory_order_relaxed);
    buffer->ring.reserve(buffer->capacity);
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffer->index = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::Record(const SpanRecord& record) {
  ThreadBuffer& buffer = LocalBuffer();
  SpanRecord stamped = record;
  stamped.thread_index = buffer.index;
  buffer.Append(stamped);
}

uint64_t Tracer::NextRootOrdinal() {
  return root_ordinal_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Drain() const {
  std::vector<SpanRecord> all;
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    for (ThreadBuffer* buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      const size_t stored = buffer->ring.size();
      // Oldest-first: the ring wraps at total % capacity.
      const size_t head =
          buffer->total > stored ? buffer->total % buffer->capacity : 0;
      for (size_t i = 0; i < stored; ++i) {
        all.push_back(buffer->ring[(head + i) % stored]);
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_micros != b.start_micros) {
                return a.start_micros < b.start_micros;
              }
              return a.span_id < b.span_id;
            });
  return all;
}

uint64_t Tracer::DroppedCount() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->total - buffer->ring.size();
  }
  return dropped;
}

double Tracer::NowMicros() const {
  const int64_t epoch = epoch_nanos_.load(std::memory_order_relaxed);
  return static_cast<double>(NowNanos() - epoch) * 1e-3;
}

double Tracer::MicrosSinceEpoch(SteadyTime t) const {
  const int64_t epoch = epoch_nanos_.load(std::memory_order_relaxed);
  const int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            t.time_since_epoch())
                            .count();
  return static_cast<double>(nanos - epoch) * 1e-3;
}

uint64_t DeriveSpanId(uint64_t parent_id, const char* name, uint64_t ordinal) {
  const uint64_t name_hash = HashBytes(name, std::strlen(name));
  uint64_t id = SplitMix64(parent_id ^ name_hash ^
                           (ordinal * 0x9e3779b97f4a7c15ULL + 1));
  // 0 is the "no parent" sentinel; remap the (2^-64) collision.
  return id == 0 ? 1 : id;
}

void Span::Open(const char* name, uint64_t trace_id, uint64_t parent_id,
                uint64_t ordinal) {
  active_ = true;
  record_.name = name;
  record_.parent_id = parent_id;
  record_.span_id = DeriveSpanId(parent_id, name, ordinal);
  record_.trace_id = trace_id == 0 ? record_.span_id : trace_id;
  record_.start_micros = Tracer::Global().NowMicros();
  prev_ = tls_current_span;
  tls_current_span = this;
}

Span::Span(const char* name) {
  if (!Tracer::Enabled()) return;
  Span* parent = tls_current_span;
  if (parent != nullptr && parent->active_) {
    Open(name, parent->record_.trace_id, parent->record_.span_id,
         parent->next_child_++);
  } else {
    Open(name, 0, 0, Tracer::Global().NextRootOrdinal());
  }
}

Span::Span(const char* name, const SpanContext& parent, uint64_t ordinal) {
  if (!Tracer::Enabled()) return;
  if (parent.valid()) {
    Open(name, parent.trace_id, parent.span_id, ordinal);
  } else {
    Open(name, 0, 0, ordinal);
  }
}

Span::Span(const char* name, RootTag, uint64_t ordinal) {
  if (!Tracer::Enabled()) return;
  Open(name, 0, 0, ordinal);
}

Span::~Span() {
  if (!active_) return;
  tls_current_span = prev_;
  record_.duration_micros =
      Tracer::Global().NowMicros() - record_.start_micros;
  Tracer::Global().Record(record_);
}

void Span::AddCount(const char* name, uint64_t delta) {
  if (!active_) return;
  for (SpanRecord::Counter& slot : record_.counters) {
    if (slot.name == nullptr) {
      slot.name = name;
      slot.value = delta;
      return;
    }
    if (slot.name == name || std::strcmp(slot.name, name) == 0) {
      slot.value += delta;
      return;
    }
  }
  // All slots taken by other names: the count is dropped by design.
}

SpanContext Span::context() const {
  if (!active_) return SpanContext{};
  return SpanContext{record_.trace_id, record_.span_id};
}

void EmitSpan(const char* name, const SpanContext& parent, uint64_t ordinal,
              SteadyTime start, SteadyTime end) {
  if (!Tracer::Enabled()) return;
  Tracer& tracer = Tracer::Global();
  SpanRecord record;
  record.name = name;
  record.parent_id = parent.span_id;
  record.span_id = DeriveSpanId(parent.span_id, name, ordinal);
  record.trace_id = parent.valid() ? parent.trace_id : record.span_id;
  record.start_micros = tracer.MicrosSinceEpoch(start);
  record.duration_micros =
      tracer.MicrosSinceEpoch(end) - record.start_micros;
  tracer.Record(record);
}

}  // namespace ember::obs
