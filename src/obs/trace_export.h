#ifndef EMBER_OBS_TRACE_EXPORT_H_
#define EMBER_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace ember::obs {

/// Renders drained span records as Chrome trace_event JSON (the
/// `{"traceEvents": [...]}` object form): one complete-duration "X" event
/// per span, `ts`/`dur` in microseconds, `tid` = the span's ring-buffer
/// thread index, span/trace/parent ids and counters in `args`. The output
/// opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& records);

/// ToChromeTraceJson written to `path` (plain write, fails with IoError).
Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const std::string& path);

/// Aggregate view of a record stream: per span name, the number of spans
/// and the total/self time — the per-stage latency attribution the paper's
/// time-breakdown tables report, regenerated from spans instead of
/// hand-placed timers. Self time excludes child span time (children are
/// matched by parent_id), so nested stages do not double-count.
struct StageBreakdownRow {
  const char* name = nullptr;
  uint64_t spans = 0;
  double total_micros = 0;
  double self_micros = 0;
};

/// Rows sorted by descending total time.
std::vector<StageBreakdownRow> StageBreakdown(
    const std::vector<SpanRecord>& records);

}  // namespace ember::obs

#endif  // EMBER_OBS_TRACE_EXPORT_H_
