#ifndef EMBER_OBS_TRACE_H_
#define EMBER_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/timer.h"

/// Span-based structured tracing (DESIGN.md §11).
///
/// The idiom mirrors common/failpoint.h: a process-global Tracer that costs
/// one relaxed atomic load per would-be span while disabled, and cheap
/// per-thread ring buffers while enabled. Library code opens obs::Span RAII
/// objects around its stages; the finished spans accumulate per thread and
/// Drain() merges them into one chronological record stream that the
/// exporters (obs/trace_export.h) turn into a Chrome trace_event file any
/// Perfetto instance can open.
///
/// Span identity is DETERMINISTIC, never random: a span's 64-bit id is a
/// SplitMix64 mix of (parent id, static name, ordinal). For sequential code
/// the ordinal is the parent's running child count (single-threaded, so
/// reproducible); for parallel sections the instrumentation passes an
/// explicit ordinal that only depends on the data partition (a ParallelFor
/// chunk offset, a batch number, a query index) — NEVER on the thread
/// count — so the id set and the parent/child tree of a traced run are
/// bit-identical at 1, 2, 4, or 8 threads, and golden-trace tests can
/// assert exact tree structure.
namespace ember::obs {

/// One finished span, as stored in the ring buffers and returned by Drain.
struct SpanRecord {
  static constexpr size_t kMaxCounters = 4;

  /// A named monotone count attached to the span (HNSW hops, rows encoded).
  struct Counter {
    const char* name = nullptr;  // nullptr = unused slot
    uint64_t value = 0;
  };

  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = trace root
  const char* name = nullptr;  // static-lifetime string, never owned
  double start_micros = 0;     // relative to the tracer epoch
  double duration_micros = 0;
  uint32_t thread_index = 0;   // ring-buffer owner, stable per thread
  std::array<Counter, kMaxCounters> counters{};
};

/// Identity handle passed across threads so a parallel worker can parent
/// its span under the spawning span (span_id == 0 means "no parent": the
/// child becomes a trace root).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

/// Process-global trace collector. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  /// Hot-path gate: one relaxed load, mirroring fail::Check.
  static bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

  /// Turns span recording on/off. Enabling does not clear prior records;
  /// spans already open when tracing is disabled still record on close (so
  /// trees are never torn), new spans become no-ops.
  void SetEnabled(bool on);

  /// Drops every buffered record and resets the epoch and the root-span
  /// ordinal counter, so a fresh traced run is reproducible bit-for-bit.
  void Clear();

  /// Per-thread ring capacity in spans (default 8192). Applies to every
  /// existing and future thread buffer; resizing clears existing buffers.
  void SetRingCapacity(size_t spans);

  /// Snapshot of every thread's buffered spans, merged and sorted by
  /// (start time, span id). Cheap enough to call after a run, not per span.
  std::vector<SpanRecord> Drain() const;

  /// Total spans overwritten by ring wraparound since the last Clear.
  uint64_t DroppedCount() const;

  /// Microseconds since the tracer epoch (monotonic clock).
  double NowMicros() const;
  double MicrosSinceEpoch(SteadyTime t) const;

  // Internal use by Span/EmitSpan.
  void Record(const SpanRecord& record);
  uint64_t NextRootOrdinal();

 private:
  Tracer();
  struct ThreadBuffer;
  ThreadBuffer& LocalBuffer();

  inline static std::atomic<bool> g_enabled{false};
  std::atomic<int64_t> epoch_nanos_;
  std::atomic<uint64_t> root_ordinal_{0};
  std::atomic<size_t> ring_capacity_{8192};

  mutable std::mutex buffers_mu_;
  std::vector<ThreadBuffer*> buffers_;  // leaked on purpose: records outlive threads
};

/// Deterministic span id: SplitMix64 over (parent id, name hash, ordinal).
uint64_t DeriveSpanId(uint64_t parent_id, const char* name, uint64_t ordinal);

/// RAII span. Measures [construction, destruction) on the monotonic clock
/// and records itself into the calling thread's ring buffer on close.
/// `name` must have static lifetime (string literals): records store the
/// pointer, never a copy. Non-copyable, stack-only.
class Span {
 public:
  struct RootTag {};

  /// Child of the calling thread's innermost open span; a trace root when
  /// there is none. The ordinal is the parent's running child count, which
  /// is deterministic because one span's implicit children are always
  /// created by the single thread that owns it.
  explicit Span(const char* name);

  /// Child of an explicit parent with a caller-chosen ordinal — the form
  /// parallel sections must use, passing a schedule-independent ordinal
  /// (chunk offset, query index) so ids do not depend on thread count.
  Span(const char* name, const SpanContext& parent, uint64_t ordinal);

  /// Deterministic trace root keyed by an explicit ordinal (e.g. the serve
  /// engine's batch number) instead of the global root counter.
  Span(const char* name, RootTag, uint64_t ordinal);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Adds `delta` to the span counter `name` (static string; at most
  /// SpanRecord::kMaxCounters distinct names per span, extras are dropped).
  void AddCount(const char* name, uint64_t delta);

  /// Handle for parenting cross-thread children. Invalid when inactive.
  SpanContext context() const;

  /// False when the tracer was disabled at construction: every method is a
  /// no-op and nothing records.
  bool active() const { return active_; }

 private:
  void Open(const char* name, uint64_t trace_id, uint64_t parent_id,
            uint64_t ordinal);

  SpanRecord record_;
  Span* prev_ = nullptr;        // enclosing span on this thread
  uint64_t next_child_ = 0;     // ordinals of implicit children
  bool active_ = false;
};

/// Records a span directly from explicit timestamps — for lifetimes that
/// cross threads and cannot be an RAII scope (e.g. a serve request from
/// enqueue on the client thread to completion on the worker). No-op while
/// the tracer is disabled.
void EmitSpan(const char* name, const SpanContext& parent, uint64_t ordinal,
              SteadyTime start, SteadyTime end);

}  // namespace ember::obs

#endif  // EMBER_OBS_TRACE_H_
