#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

namespace ember::obs {

namespace {

void AppendEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendHexId(std::string& out, uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", id);
  out += buf;
}

void AppendMicros(std::string& out, double micros) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", micros);
  out += buf;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanRecord>& records) {
  std::string out;
  out.reserve(records.size() * 192 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : records) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(out, record.name == nullptr ? "(unnamed)" : record.name);
    out += "\",\"cat\":\"ember\",\"ph\":\"X\",\"ts\":";
    AppendMicros(out, record.start_micros);
    out += ",\"dur\":";
    AppendMicros(out, record.duration_micros);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(record.thread_index);
    out += ",\"args\":{\"trace_id\":";
    AppendHexId(out, record.trace_id);
    out += ",\"span_id\":";
    AppendHexId(out, record.span_id);
    out += ",\"parent_id\":";
    AppendHexId(out, record.parent_id);
    for (const SpanRecord::Counter& counter : record.counters) {
      if (counter.name == nullptr) continue;
      out += ",\"";
      AppendEscaped(out, counter.name);
      out += "\":";
      out += std::to_string(counter.value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open trace file: " + path);
  const std::string json = ToChromeTraceJson(records);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

std::vector<StageBreakdownRow> StageBreakdown(
    const std::vector<SpanRecord>& records) {
  // Child time per parent span, so a stage's self time excludes sub-stages.
  std::unordered_map<uint64_t, double> child_micros;
  child_micros.reserve(records.size());
  for (const SpanRecord& record : records) {
    if (record.parent_id != 0) {
      child_micros[record.parent_id] += record.duration_micros;
    }
  }
  std::unordered_map<std::string, StageBreakdownRow> by_name;
  for (const SpanRecord& record : records) {
    const char* name = record.name == nullptr ? "(unnamed)" : record.name;
    StageBreakdownRow& row = by_name[name];
    row.name = name;
    ++row.spans;
    row.total_micros += record.duration_micros;
    double self = record.duration_micros;
    auto it = child_micros.find(record.span_id);
    if (it != child_micros.end()) self -= it->second;
    row.self_micros += self > 0 ? self : 0;
  }
  std::vector<StageBreakdownRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) rows.push_back(row);
  std::sort(rows.begin(), rows.end(),
            [](const StageBreakdownRow& a, const StageBreakdownRow& b) {
              if (a.total_micros != b.total_micros) {
                return a.total_micros > b.total_micros;
              }
              return std::strcmp(a.name, b.name) < 0;
            });
  return rows;
}

}  // namespace ember::obs
