#ifndef EMBER_OBS_REGISTRY_H_
#define EMBER_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

/// Central metrics registry (DESIGN.md §11).
///
/// One process-global (or test-local) Registry owns every named metric and
/// renders them for scraping. Three instrument kinds, all built on the
/// primitives the codebase already uses:
///   - Counter: monotone uint64, relaxed atomics (the serve engine idiom);
///   - Gauge: last-written double, for levels like queue depth;
///   - Histogram: common/histogram LatencyHistogram, re-exposed with its
///     geometric buckets intact so Prometheus sees real `le=` boundaries.
/// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
/// registry's lifetime; hot-path updates never touch the registry mutex.
///
/// Components whose metrics already live in their own structs (e.g.
/// serve::EngineMetrics) register a *collector* callback instead of
/// mirroring every counter: at scrape time the registry invokes collectors
/// and splices their samples into the export alongside owned metrics.
namespace ember::obs {

/// Sorted key=value metric labels, e.g. {{"model","sbert"}}. Ordering makes
/// label sets canonical so (name, labels) is a stable identity.
using Labels = std::map<std::string, std::string>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported time series: a scalar for counters/gauges, a snapshot for
/// histograms. Collectors produce these; exporters render them.
struct Sample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Labels labels;
  double value = 0;               // counters and gauges
  HistogramSnapshot histogram{};  // kind == kHistogram only
};

/// Monotone counter handle. Add/Increment are lock-free relaxed atomics.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge handle (queue depth, in-flight requests).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

class Registry {
 public:
  /// Callback returning samples for externally-owned metrics. Invoked under
  /// the registry mutex at scrape time, so Unregister() is a clean barrier:
  /// once it returns, the callback will never run again.
  using Collector = std::function<std::vector<Sample>()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-global instance used by default instrumentation.
  static Registry& Global();

  /// Returns the metric with this (name, labels) identity, creating it on
  /// first use. The reference stays valid for the registry's lifetime.
  /// `help` is recorded on first creation. A name must keep one kind:
  /// requesting an existing name as a different kind aborts (programmer
  /// error, same contract as registering two gtest fixtures per name).
  Counter& GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  LatencyHistogram& GetHistogram(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels = {});

  /// Registers a collector; returns an id for RemoveCollector.
  uint64_t AddCollector(Collector collector);
  void RemoveCollector(uint64_t id);

  /// All samples — owned metrics plus collector output — sorted by
  /// (name, labels) so exports are deterministic.
  std::vector<Sample> Collect() const;

  /// Prometheus text exposition format (text/plain; version 0.0.4):
  /// `# HELP` / `# TYPE` per family, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`.
  std::string ToPrometheusText() const;

  /// The same samples as a JSON array of objects.
  std::string ToJson() const;

  /// Drops every owned metric and collector (tests only).
  void Reset();

 private:
  struct Instrument {
    MetricKind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Instrument& GetOrCreate(const std::string& name, const std::string& help,
                          const Labels& labels, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, Labels>, std::unique_ptr<Instrument>>
      instruments_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

}  // namespace ember::obs

#endif  // EMBER_OBS_REGISTRY_H_
