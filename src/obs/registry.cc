#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ember::obs {

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Prometheus/JSON share the same escaping needs for label values.
void AppendEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// Integers render without a decimal point so counter series read
/// naturally; everything else gets shortest-round-trip %.17g trimmed
/// through %.6g precision (metrics are statistics, not bit patterns).
void AppendNumber(std::string& out, double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -9.2e18 && value <= 9.2e18) {
    out += std::to_string(static_cast<int64_t>(value));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += buf;
}

void AppendLabels(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(out, value);
    out += '"';
  }
  out += '}';
}

/// Labels plus one extra pair (for histogram `le=`), keeping sort order
/// irrelevant: `le` is appended last, matching common exporters.
void AppendLabelsWithLe(std::string& out, const Labels& labels,
                        const std::string& le) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(out, value);
    out += '"';
  }
  if (!first) out += ',';
  out += "le=\"";
  out += le;
  out += '"';
  out += '}';
}

std::string FormatLe(double upper) {
  std::string out;
  AppendNumber(out, upper);
  return out;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* const kRegistry = new Registry();
  return *kRegistry;
}

Registry::Instrument& Registry::GetOrCreate(const std::string& name,
                                            const std::string& help,
                                            const Labels& labels,
                                            MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(name, labels);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    if (it->second->kind != kind) {
      std::fprintf(stderr,
                   "obs::Registry: metric '%s' re-requested as %s but "
                   "registered as %s\n",
                   name.c_str(), KindName(kind), KindName(it->second->kind));
      std::abort();
    }
    return *it->second;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = kind;
  instrument->name = name;
  instrument->help = help;
  instrument->labels = labels;
  switch (kind) {
    case MetricKind::kCounter:
      instrument->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      instrument->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      instrument->histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  Instrument& ref = *instrument;
  instruments_.emplace(std::move(key), std::move(instrument));
  return ref;
}

Counter& Registry::GetCounter(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *GetOrCreate(name, help, labels, MetricKind::kCounter).counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  return *GetOrCreate(name, help, labels, MetricKind::kGauge).gauge;
}

LatencyHistogram& Registry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels) {
  return *GetOrCreate(name, help, labels, MetricKind::kHistogram).histogram;
}

uint64_t Registry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return id;
}

void Registry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

std::vector<Sample> Registry::Collect() const {
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.reserve(instruments_.size());
    for (const auto& [key, instrument] : instruments_) {
      Sample sample;
      sample.name = instrument->name;
      sample.help = instrument->help;
      sample.kind = instrument->kind;
      sample.labels = instrument->labels;
      switch (instrument->kind) {
        case MetricKind::kCounter:
          sample.value = static_cast<double>(instrument->counter->Value());
          break;
        case MetricKind::kGauge:
          sample.value = instrument->gauge->Value();
          break;
        case MetricKind::kHistogram:
          sample.histogram = instrument->histogram->Snapshot();
          break;
      }
      samples.push_back(std::move(sample));
    }
    for (const auto& [id, collector] : collectors_) {
      std::vector<Sample> extra = collector();
      for (Sample& sample : extra) samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return samples;
}

std::string Registry::ToPrometheusText() const {
  const std::vector<Sample> samples = Collect();
  std::string out;
  out.reserve(samples.size() * 96 + 64);
  std::string last_family;
  for (const Sample& sample : samples) {
    if (sample.name != last_family) {
      last_family = sample.name;
      out += "# HELP ";
      out += sample.name;
      out += ' ';
      out += sample.help.empty() ? "(no help)" : sample.help;
      out += '\n';
      out += "# TYPE ";
      out += sample.name;
      out += ' ';
      out += KindName(sample.kind);
      out += '\n';
    }
    if (sample.kind != MetricKind::kHistogram) {
      out += sample.name;
      AppendLabels(out, sample.labels);
      out += ' ';
      AppendNumber(out, sample.value);
      out += '\n';
      continue;
    }
    // Histogram: cumulative buckets. The 96 geometric buckets are sparse
    // in practice, so only boundaries whose cumulative count changes are
    // emitted (plus +Inf, which Prometheus requires).
    const HistogramSnapshot& h = sample.histogram;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.counts[i] == 0) continue;
      cumulative += h.counts[i];
      out += sample.name;
      out += "_bucket";
      AppendLabelsWithLe(out, sample.labels,
                         FormatLe(LatencyHistogram::BucketUpperBound(i)));
      out += ' ';
      AppendNumber(out, static_cast<double>(cumulative));
      out += '\n';
    }
    out += sample.name;
    out += "_bucket";
    AppendLabelsWithLe(out, sample.labels, "+Inf");
    out += ' ';
    AppendNumber(out, static_cast<double>(h.count));
    out += '\n';
    out += sample.name;
    out += "_sum";
    AppendLabels(out, sample.labels);
    out += ' ';
    AppendNumber(out, h.sum);
    out += '\n';
    out += sample.name;
    out += "_count";
    AppendLabels(out, sample.labels);
    out += ' ';
    AppendNumber(out, static_cast<double>(h.count));
    out += '\n';
  }
  return out;
}

std::string Registry::ToJson() const {
  const std::vector<Sample> samples = Collect();
  std::string out;
  out.reserve(samples.size() * 128 + 16);
  out += "[";
  bool first = true;
  for (const Sample& sample : samples) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(out, sample.name);
    out += "\",\"kind\":\"";
    out += KindName(sample.kind);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : sample.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      AppendEscaped(out, key);
      out += "\":\"";
      AppendEscaped(out, value);
      out += '"';
    }
    out += '}';
    if (sample.kind != MetricKind::kHistogram) {
      out += ",\"value\":";
      AppendNumber(out, sample.value);
    } else {
      const HistogramSnapshot& h = sample.histogram;
      out += ",\"count\":";
      AppendNumber(out, static_cast<double>(h.count));
      out += ",\"sum\":";
      AppendNumber(out, h.sum);
      out += ",\"max\":";
      AppendNumber(out, h.max);
      out += ",\"p50\":";
      AppendNumber(out, h.Percentile(0.50));
      out += ",\"p99\":";
      AppendNumber(out, h.Percentile(0.99));
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
        if (h.counts[i] == 0) continue;
        if (!first_bucket) out += ',';
        first_bucket = false;
        out += "{\"le\":";
        AppendNumber(out, LatencyHistogram::BucketUpperBound(i));
        out += ",\"count\":";
        AppendNumber(out, static_cast<double>(h.counts[i]));
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.clear();
  collectors_.clear();
  next_collector_id_ = 1;
}

}  // namespace ember::obs
