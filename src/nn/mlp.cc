#include "nn/mlp.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "la/vector_ops.h"

namespace ember::nn {

namespace {

void FillGaussian(std::vector<float>& w, float stddev, Rng& rng) {
  for (float& v : w) v = static_cast<float>(rng.Gaussian()) * stddev;
}

float Sigmoid(float z) { return 1.f / (1.f + std::exp(-z)); }

}  // namespace

MlpClassifier::MlpClassifier(const Options& options) : options_(options) {
  EMBER_CHECK(options.input_dim > 0);
  Rng rng(SplitMix64(options.seed ^ 0x313dULL));
  const size_t in = options.input_dim, hid = options.hidden_dim;
  w1_.resize(hid * in);
  b1_.assign(hid, 0.f);
  w2_.resize(hid);
  b2_.assign(1, 0.f);
  FillGaussian(w1_, std::sqrt(2.f / static_cast<float>(in)), rng);
  FillGaussian(w2_, std::sqrt(2.f / static_cast<float>(hid)), rng);
  s_w1_ = {std::vector<float>(w1_.size(), 0.f), std::vector<float>(w1_.size(), 0.f)};
  s_b1_ = {std::vector<float>(b1_.size(), 0.f), std::vector<float>(b1_.size(), 0.f)};
  s_w2_ = {std::vector<float>(w2_.size(), 0.f), std::vector<float>(w2_.size(), 0.f)};
  s_b2_ = {std::vector<float>(b2_.size(), 0.f), std::vector<float>(b2_.size(), 0.f)};
}

void MlpClassifier::AdamStep(std::vector<float>& w,
                             const std::vector<float>& grad, AdamState& state) {
  constexpr float kBeta1 = 0.9f, kBeta2 = 0.999f, kEps = 1e-8f;
  const float t = static_cast<float>(step_);
  const float correction1 = 1.f - std::pow(kBeta1, t);
  const float correction2 = 1.f - std::pow(kBeta2, t);
  for (size_t i = 0; i < w.size(); ++i) {
    state.m[i] = kBeta1 * state.m[i] + (1.f - kBeta1) * grad[i];
    state.v[i] = kBeta2 * state.v[i] + (1.f - kBeta2) * grad[i] * grad[i];
    const float mhat = state.m[i] / correction1;
    const float vhat = state.v[i] / correction2;
    w[i] -= options_.learning_rate * mhat / (std::sqrt(vhat) + kEps);
  }
}

float MlpClassifier::TrainEpoch(const la::Matrix& features,
                                const std::vector<int>& labels) {
  EMBER_CHECK(features.rows() == labels.size());
  EMBER_CHECK(features.cols() == options_.input_dim);
  const size_t in = options_.input_dim, hid = options_.hidden_dim;
  const size_t n = features.rows();
  std::vector<float> g_w1(w1_.size()), g_b1(hid), g_w2(hid), g_b2(1);
  std::vector<float> hidden(hid), delta_hidden(hid);
  double total_loss = 0.0;
  for (size_t start = 0; start < n; start += options_.batch_size) {
    const size_t end = std::min(n, start + options_.batch_size);
    const float inv_batch = 1.f / static_cast<float>(end - start);
    std::fill(g_w1.begin(), g_w1.end(), 0.f);
    std::fill(g_b1.begin(), g_b1.end(), 0.f);
    std::fill(g_w2.begin(), g_w2.end(), 0.f);
    g_b2[0] = 0.f;
    for (size_t r = start; r < end; ++r) {
      const float* x = features.Row(r);
      for (size_t h = 0; h < hid; ++h) {
        hidden[h] =
            std::max(0.f, la::Dot(&w1_[h * in], x, in) + b1_[h]);
      }
      const float z = la::Dot(w2_.data(), hidden.data(), hid) + b2_[0];
      const float p = Sigmoid(z);
      const float y = static_cast<float>(labels[r]);
      total_loss += -(y * std::log(std::max(p, 1e-7f)) +
                      (1.f - y) * std::log(std::max(1.f - p, 1e-7f)));
      const float dz = (p - y) * inv_batch;
      for (size_t h = 0; h < hid; ++h) {
        g_w2[h] += dz * hidden[h];
        delta_hidden[h] = hidden[h] > 0.f ? dz * w2_[h] : 0.f;
      }
      g_b2[0] += dz;
      for (size_t h = 0; h < hid; ++h) {
        if (delta_hidden[h] == 0.f) continue;
        la::Axpy(delta_hidden[h], x, &g_w1[h * in], in);
        g_b1[h] += delta_hidden[h];
      }
    }
    ++step_;
    AdamStep(w1_, g_w1, s_w1_);
    AdamStep(b1_, g_b1, s_b1_);
    AdamStep(w2_, g_w2, s_w2_);
    AdamStep(b2_, g_b2, s_b2_);
  }
  return n == 0 ? 0.f : static_cast<float>(total_loss / n);
}

float MlpClassifier::Predict(const float* features) const {
  const size_t in = options_.input_dim, hid = options_.hidden_dim;
  float z = b2_[0];
  for (size_t h = 0; h < hid; ++h) {
    const float a = std::max(0.f, la::Dot(&w1_[h * in], features, in) + b1_[h]);
    z += w2_[h] * a;
  }
  return Sigmoid(z);
}

Autoencoder::Autoencoder(const Options& options) : options_(options) {
  Rng rng(SplitMix64(options.seed ^ 0xae0ULL));
  enc_ = la::Matrix(options.hidden_dim, options.input_dim);
  dec_ = la::Matrix(options.input_dim, options.hidden_dim);
  enc_.FillGaussian(rng, std::sqrt(1.f / static_cast<float>(options.input_dim)));
  dec_.FillGaussian(rng, std::sqrt(1.f / static_cast<float>(options.hidden_dim)));
  enc_bias_.assign(options.hidden_dim, 0.f);
  dec_bias_.assign(options.input_dim, 0.f);
}

float Autoencoder::Train(const la::Matrix& data) {
  EMBER_CHECK(data.cols() == options_.input_dim);
  const size_t in = options_.input_dim, hid = options_.hidden_dim;
  std::vector<float> hidden(hid), recon(in), d_recon(in), d_hidden(hid);
  float mse = 0.f;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const float lr = options_.learning_rate /
                     (1.f + 0.5f * static_cast<float>(epoch));
    double sum = 0.0;
    for (size_t r = 0; r < data.rows(); ++r) {
      const float* x = data.Row(r);
      for (size_t h = 0; h < hid; ++h) {
        hidden[h] = std::tanh(la::Dot(enc_.Row(h), x, in) + enc_bias_[h]);
      }
      for (size_t i = 0; i < in; ++i) {
        recon[i] = la::Dot(dec_.Row(i), hidden.data(), hid) + dec_bias_[i];
        d_recon[i] = recon[i] - x[i];
        sum += d_recon[i] * d_recon[i];
      }
      const float scale = 2.f / static_cast<float>(in);
      for (size_t h = 0; h < hid; ++h) {
        float g = 0.f;
        for (size_t i = 0; i < in; ++i) g += d_recon[i] * dec_.At(i, h);
        d_hidden[h] = g * (1.f - hidden[h] * hidden[h]) * scale;
      }
      for (size_t i = 0; i < in; ++i) {
        la::Axpy(-lr * scale * d_recon[i], hidden.data(), dec_.Row(i), hid);
        dec_bias_[i] -= lr * scale * d_recon[i];
      }
      for (size_t h = 0; h < hid; ++h) {
        la::Axpy(-lr * d_hidden[h], x, enc_.Row(h), in);
        enc_bias_[h] -= lr * d_hidden[h];
      }
    }
    mse = data.rows() == 0
              ? 0.f
              : static_cast<float>(sum / (data.rows() * in));
  }
  return mse;
}

void Autoencoder::Encode(const float* in, float* out) const {
  for (size_t h = 0; h < options_.hidden_dim; ++h) {
    out[h] = std::tanh(la::Dot(enc_.Row(h), in, options_.input_dim) +
                       enc_bias_[h]);
  }
}

}  // namespace ember::nn
