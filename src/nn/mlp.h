#ifndef EMBER_NN_MLP_H_
#define EMBER_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace ember::nn {

/// Two-layer ReLU MLP with a sigmoid output, trained by Adam with manual
/// backprop. Used as the pair classifier of the supervised matchers.
class MlpClassifier {
 public:
  struct Options {
    size_t input_dim = 0;
    size_t hidden_dim = 32;
    float learning_rate = 1e-3f;
    size_t batch_size = 32;
    uint64_t seed = 1;
  };

  explicit MlpClassifier(const Options& options);

  /// One Adam epoch over (features, labels) in the fixed given order.
  /// Returns mean binary cross-entropy loss.
  float TrainEpoch(const la::Matrix& features, const std::vector<int>& labels);

  /// P(match) for one feature row.
  float Predict(const float* features) const;

 private:
  struct AdamState {
    std::vector<float> m, v;
  };
  void AdamStep(std::vector<float>& w, const std::vector<float>& grad,
                AdamState& state);

  Options options_;
  std::vector<float> w1_, b1_, w2_, b2_;  // w1: hidden x input, w2: hidden
  AdamState s_w1_, s_b1_, s_w2_, s_b2_;
  int64_t step_ = 0;
};

/// Tied-ish 300->hidden->300 autoencoder trained with plain SGD; the
/// DeepBlocker encoder.
class Autoencoder {
 public:
  struct Options {
    size_t input_dim = 300;
    size_t hidden_dim = 64;
    float learning_rate = 5e-2f;
    size_t epochs = 8;
    uint64_t seed = 1;
  };

  explicit Autoencoder(const Options& options);

  /// SGD-trains on the rows of data (fixed order). Returns final mean
  /// squared reconstruction error.
  float Train(const la::Matrix& data);

  /// Encodes one input row into the hidden representation.
  void Encode(const float* in, float* out) const;

  size_t hidden_dim() const { return options_.hidden_dim; }

 private:
  Options options_;
  la::Matrix enc_, dec_;  // hidden x input, input x hidden
  std::vector<float> enc_bias_, dec_bias_;
};

}  // namespace ember::nn

#endif  // EMBER_NN_MLP_H_
