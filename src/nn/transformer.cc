#include "nn/transformer.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "la/vector_ops.h"

namespace ember::nn {

namespace {

la::Matrix InitWeight(size_t rows, size_t cols, float gain, Rng& rng) {
  la::Matrix w(rows, cols);
  const float scale = gain * std::sqrt(2.f / static_cast<float>(rows + cols));
  w.FillGaussian(rng, scale);
  return w;
}

}  // namespace

TransformerEncoder::TransformerEncoder(const TransformerConfig& config)
    : config_(config) {
  EMBER_CHECK(config.dim % config.num_heads == 0);
  EMBER_CHECK(config.max_positions > 0);
  Rng rng(SplitMix64(config.seed ^ 0x7a45f03eULL));
  cls_.resize(config.dim);
  for (float& v : cls_) v = static_cast<float>(rng.Gaussian()) * 0.5f;
  layers_.resize(config.num_layers);
  for (Layer& layer : layers_) {
    layer.wq = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.wk = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.wv = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.wo = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.ffn1 = InitWeight(config.ffn_dim, config.dim, config.weight_gain, rng);
    layer.ffn2 = InitWeight(config.dim, config.ffn_dim, config.weight_gain, rng);
    layer.ln1_gain.assign(config.dim, 1.f);
    layer.ln1_bias.assign(config.dim, 0.f);
    layer.ln2_gain.assign(config.dim, 1.f);
    layer.ln2_bias.assign(config.dim, 0.f);
  }
  final_gain_.assign(config.dim, 1.f);
  final_bias_.assign(config.dim, 0.f);

  // Sinusoidal positional encoding, hoisted out of Forward: large
  // amplitudes make the representation order-sensitive (BERT regime),
  // small ones yield the position-robust pooling of sentence encoders.
  // Each entry stores the already-scaled term Forward adds to the input.
  pos_table_ = la::Matrix(config.max_positions, config.dim);
  for (size_t t = 0; t < config.max_positions; ++t) {
    float* row = pos_table_.Row(t);
    for (size_t c = 0; c < config.dim; ++c) {
      const double rate =
          std::pow(10000.0, -static_cast<double>(c / 2 * 2) / config.dim);
      const double angle = static_cast<double>(t) * rate;
      row[c] = config.pos_scale *
               static_cast<float>(c % 2 == 0 ? std::sin(angle) : std::cos(angle));
    }
  }
}

const la::Matrix& TransformerEncoder::Forward(const la::Matrix& tokens,
                                              Workspace& ws) const {
  EMBER_CHECK(tokens.cols() == config_.dim);
  const size_t dim = config_.dim;
  const size_t seq = tokens.rows() + 1;
  EMBER_CHECK(seq <= config_.max_positions);
  const size_t heads = config_.num_heads;
  const size_t head_dim = dim / heads;

  // Everything below writes only into the workspace; after it has been
  // warmed up at its peak shape, Forward performs no heap allocation.
  ws.x.Resize(seq, dim);
  ws.normed.Resize(seq, dim);
  ws.q.Resize(seq, dim);
  ws.k.Resize(seq, dim);
  ws.v.Resize(seq, dim);
  ws.attended.Resize(seq, dim);
  ws.hidden.Resize(seq, config_.ffn_dim);
  ws.scores.Resize(seq, seq);
  la::Matrix& x = ws.x;

  for (size_t c = 0; c < dim; ++c) x.At(0, c) = cls_[c];
  for (size_t t = 1; t < seq; ++t) {
    const float* in = tokens.Row(t - 1);
    const float* pos = pos_table_.Row(t);
    float* row = x.Row(t);
    for (size_t c = 0; c < dim; ++c) row[c] = in[c] + pos[c];
  }

  for (const Layer& layer : layers_) {
    // --- Attention block (pre-LN residual) ---
    for (size_t t = 0; t < seq; ++t) {
      float* row = ws.normed.Row(t);
      const float* src = x.Row(t);
      for (size_t c = 0; c < dim; ++c) row[c] = src[c];
      la::LayerNormInPlace(row, dim, layer.ln1_gain.data(),
                           layer.ln1_bias.data());
    }
    // Sequence-level projections: row t of each product is exactly the
    // Gemv(w, normed.Row(t)) of the per-token formulation, bit for bit.
    la::GemmBtInto(ws.normed, layer.wq, &ws.q);
    la::GemmBtInto(ws.normed, layer.wk, &ws.k);
    la::GemmBtInto(ws.normed, layer.wv, &ws.v);
    const float inv_sqrt = 1.f / std::sqrt(static_cast<float>(head_dim));
    for (size_t h = 0; h < heads; ++h) {
      const size_t off = h * head_dim;
      // One blocked QK^T panel per head over head-strided views of the
      // packed Q/K matrices; each (t, u) entry keeps the Dot reduction
      // order of the scalar path.
      la::GemmBtStrided(ws.q.data() + off, seq, dim, ws.k.data() + off, seq,
                        dim, head_dim, ws.scores.data(), seq);
      for (size_t t = 0; t < seq; ++t) {
        float* scores = ws.scores.Row(t);
        for (size_t u = 0; u < seq; ++u) scores[u] *= inv_sqrt;
        la::SoftmaxInPlace(scores, seq);
        // The softmax-weighted V aggregation keeps the sequential
        // ascending-u accumulation order (WeightedSumRows holds that chain
        // in registers), so outputs remain exactly reproducible.
        la::WeightedSumRows(scores, ws.v.data() + off, seq, dim, head_dim,
                            ws.attended.Row(t) + off);
      }
    }
    la::GemmBtInto(ws.attended, layer.wo, &ws.normed);  // reuse as scratch
    for (size_t t = 0; t < seq; ++t) {
      la::Axpy(1.f, ws.normed.Row(t), x.Row(t), dim);
    }
    // --- FFN block (pre-LN residual, GELU-ish tanh activation) ---
    for (size_t t = 0; t < seq; ++t) {
      float* row = ws.normed.Row(t);
      const float* src = x.Row(t);
      for (size_t c = 0; c < dim; ++c) row[c] = src[c];
      la::LayerNormInPlace(row, dim, layer.ln2_gain.data(),
                           layer.ln2_bias.data());
    }
    la::GemmBtInto(ws.normed, layer.ffn1, &ws.hidden);
    // Rows are contiguous, so the activation runs as one flat vector pass.
    la::GeluTanhInPlace(ws.hidden.data(), seq * config_.ffn_dim);
    la::GemmBtInto(ws.hidden, layer.ffn2, &ws.normed);
    for (size_t t = 0; t < seq; ++t) {
      la::Axpy(1.f, ws.normed.Row(t), x.Row(t), dim);
    }
  }
  for (size_t t = 0; t < seq; ++t) {
    la::LayerNormInPlace(x.Row(t), dim, final_gain_.data(), final_bias_.data());
  }
  return x;
}

la::Matrix TransformerEncoder::Forward(const la::Matrix& tokens) const {
  Workspace ws;
  Forward(tokens, ws);
  return std::move(ws.x);
}

}  // namespace ember::nn
