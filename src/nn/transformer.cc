#include "nn/transformer.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "la/vector_ops.h"

namespace ember::nn {

namespace {

la::Matrix InitWeight(size_t rows, size_t cols, float gain, Rng& rng) {
  la::Matrix w(rows, cols);
  const float scale = gain * std::sqrt(2.f / static_cast<float>(rows + cols));
  w.FillGaussian(rng, scale);
  return w;
}

}  // namespace

TransformerEncoder::TransformerEncoder(const TransformerConfig& config)
    : config_(config) {
  EMBER_CHECK(config.dim % config.num_heads == 0);
  Rng rng(SplitMix64(config.seed ^ 0x7a45f03eULL));
  cls_.resize(config.dim);
  for (float& v : cls_) v = static_cast<float>(rng.Gaussian()) * 0.5f;
  layers_.resize(config.num_layers);
  for (Layer& layer : layers_) {
    layer.wq = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.wk = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.wv = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.wo = InitWeight(config.dim, config.dim, config.weight_gain, rng);
    layer.ffn1 = InitWeight(config.ffn_dim, config.dim, config.weight_gain, rng);
    layer.ffn2 = InitWeight(config.dim, config.ffn_dim, config.weight_gain, rng);
    layer.ln1_gain.assign(config.dim, 1.f);
    layer.ln1_bias.assign(config.dim, 0.f);
    layer.ln2_gain.assign(config.dim, 1.f);
    layer.ln2_bias.assign(config.dim, 0.f);
  }
  final_gain_.assign(config.dim, 1.f);
  final_bias_.assign(config.dim, 0.f);
}

la::Matrix TransformerEncoder::Forward(const la::Matrix& tokens) const {
  EMBER_CHECK(tokens.cols() == config_.dim);
  const size_t dim = config_.dim;
  const size_t seq = tokens.rows() + 1;
  const size_t heads = config_.num_heads;
  const size_t head_dim = dim / heads;

  la::Matrix x(seq, dim);
  for (size_t c = 0; c < dim; ++c) x.At(0, c) = cls_[c];
  for (size_t t = 1; t < seq; ++t) {
    const float* in = tokens.Row(t - 1);
    float* row = x.Row(t);
    for (size_t c = 0; c < dim; ++c) row[c] = in[c];
    // Sinusoidal positional encoding scaled by pos_scale: large amplitudes
    // make the representation order-sensitive (BERT regime), small ones
    // yield the position-robust pooling of sentence encoders.
    for (size_t c = 0; c < dim; ++c) {
      const double rate =
          std::pow(10000.0, -static_cast<double>(c / 2 * 2) / dim);
      const double angle = static_cast<double>(t) * rate;
      row[c] += config_.pos_scale *
                static_cast<float>(c % 2 == 0 ? std::sin(angle) : std::cos(angle));
    }
  }

  la::Matrix normed(seq, dim), q(seq, dim), k(seq, dim), v(seq, dim);
  la::Matrix attended(seq, dim);
  std::vector<float> scores(seq), hidden(config_.ffn_dim);
  for (const Layer& layer : layers_) {
    // --- Attention block (pre-LN residual) ---
    for (size_t t = 0; t < seq; ++t) {
      float* row = normed.Row(t);
      const float* src = x.Row(t);
      for (size_t c = 0; c < dim; ++c) row[c] = src[c];
      la::LayerNormInPlace(row, dim, layer.ln1_gain.data(),
                           layer.ln1_bias.data());
      la::Gemv(layer.wq, row, q.Row(t));
      la::Gemv(layer.wk, row, k.Row(t));
      la::Gemv(layer.wv, row, v.Row(t));
    }
    const float inv_sqrt = 1.f / std::sqrt(static_cast<float>(head_dim));
    for (size_t h = 0; h < heads; ++h) {
      const size_t off = h * head_dim;
      for (size_t t = 0; t < seq; ++t) {
        for (size_t u = 0; u < seq; ++u) {
          scores[u] =
              la::Dot(q.Row(t) + off, k.Row(u) + off, head_dim) * inv_sqrt;
        }
        la::SoftmaxInPlace(scores.data(), seq);
        float* out = attended.Row(t) + off;
        for (size_t c = 0; c < head_dim; ++c) out[c] = 0.f;
        for (size_t u = 0; u < seq; ++u) {
          la::Axpy(scores[u], v.Row(u) + off, out, head_dim);
        }
      }
    }
    for (size_t t = 0; t < seq; ++t) {
      la::Gemv(layer.wo, attended.Row(t), normed.Row(t));  // reuse as scratch
      la::Axpy(1.f, normed.Row(t), x.Row(t), dim);
    }
    // --- FFN block (pre-LN residual, GELU-ish tanh activation) ---
    for (size_t t = 0; t < seq; ++t) {
      float* row = normed.Row(t);
      const float* src = x.Row(t);
      for (size_t c = 0; c < dim; ++c) row[c] = src[c];
      la::LayerNormInPlace(row, dim, layer.ln2_gain.data(),
                           layer.ln2_bias.data());
      la::Gemv(layer.ffn1, row, hidden.data());
      for (size_t c = 0; c < config_.ffn_dim; ++c) {
        const float z = hidden[c];
        hidden[c] = 0.5f * z * (1.f + std::tanh(0.79788456f * (z + 0.044715f * z * z * z)));
      }
      la::Gemv(layer.ffn2, hidden.data(), row);
      la::Axpy(1.f, row, x.Row(t), dim);
    }
  }
  for (size_t t = 0; t < seq; ++t) {
    la::LayerNormInPlace(x.Row(t), dim, final_gain_.data(), final_bias_.data());
  }
  return x;
}

}  // namespace ember::nn
