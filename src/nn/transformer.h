#ifndef EMBER_NN_TRANSFORMER_H_
#define EMBER_NN_TRANSFORMER_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace ember::nn {

/// Configuration of a forward-only transformer encoder stack.
struct TransformerConfig {
  size_t dim = 64;
  size_t num_heads = 4;
  size_t num_layers = 2;
  size_t ffn_dim = 128;
  /// Weight init scale relative to Xavier. ~1 reproduces the un-fine-tuned
  /// BERT regime (anisotropic CLS embeddings); sentence encoders use a
  /// calibrated small gain.
  float weight_gain = 1.0f;
  /// Amplitude of the sinusoidal positional encoding added to the inputs.
  float pos_scale = 0.1f;
  uint64_t seed = 1;
};

/// Multi-head self-attention + FFN encoder stack with pre-layer-norm
/// residual blocks and deterministic pseudo-random ("pre-trained but not
/// fine-tuned") weights. Forward is const and thread-safe: all scratch is
/// local to the call.
class TransformerEncoder {
 public:
  explicit TransformerEncoder(const TransformerConfig& config);

  const TransformerConfig& config() const { return config_; }

  /// Input: (T x dim) token embeddings. Output: (T+1 x dim) hidden states,
  /// row 0 being the prepended CLS token after the final layer norm.
  la::Matrix Forward(const la::Matrix& tokens) const;

 private:
  struct Layer {
    la::Matrix wq, wk, wv, wo;       // dim x dim
    la::Matrix ffn1, ffn2;           // ffn_dim x dim, dim x ffn_dim
    std::vector<float> ln1_gain, ln1_bias, ln2_gain, ln2_bias;
  };

  TransformerConfig config_;
  std::vector<float> cls_;
  std::vector<Layer> layers_;
  std::vector<float> final_gain_, final_bias_;
};

}  // namespace ember::nn

#endif  // EMBER_NN_TRANSFORMER_H_
