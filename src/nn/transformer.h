#ifndef EMBER_NN_TRANSFORMER_H_
#define EMBER_NN_TRANSFORMER_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace ember::nn {

/// Configuration of a forward-only transformer encoder stack.
struct TransformerConfig {
  size_t dim = 64;
  size_t num_heads = 4;
  size_t num_layers = 2;
  size_t ffn_dim = 128;
  /// Weight init scale relative to Xavier. ~1 reproduces the un-fine-tuned
  /// BERT regime (anisotropic CLS embeddings); sentence encoders use a
  /// calibrated small gain.
  float weight_gain = 1.0f;
  /// Amplitude of the sinusoidal positional encoding added to the inputs.
  float pos_scale = 0.1f;
  /// Length of the positional-encoding table precomputed by the
  /// constructor (the analogue of BERT's 512-position window). Forward
  /// accepts at most max_positions - 1 input tokens: the CLS slot occupies
  /// position 0.
  size_t max_positions = 512;
  uint64_t seed = 1;
};

/// Multi-head self-attention + FFN encoder stack with pre-layer-norm
/// residual blocks and deterministic pseudo-random ("pre-trained but not
/// fine-tuned") weights.
///
/// Forward is GEMM-based: Q/K/V, the output projection, and both FFN
/// projections run as whole-sequence la::GemmBt panels, and per-head
/// attention scores as one strided QK^T panel per head. Because every GEMM
/// entry is accumulated in exactly the la::Dot lane order, the output is
/// bit-identical to the naive one-Gemv-per-token formulation
/// (tests/nn_test.cc keeps that reference and proves 0-ULP parity).
class TransformerEncoder {
 public:
  /// Reusable scratch for Forward. All per-call temporaries live here, so a
  /// workspace warmed up at its peak sequence length makes Forward
  /// allocation-free. A workspace must not be shared by concurrent calls —
  /// use one per thread (embed keeps one per pool worker); it may be shared
  /// freely across encoders and sequence lengths, since Forward resizes and
  /// fully overwrites everything it reads.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class TransformerEncoder;
    la::Matrix x, normed, q, k, v, attended, hidden, scores;
  };

  /// Weights of one pre-LN block, exposed (with the accessors below) so
  /// tests can run a naive per-token reference forward against the GEMM
  /// path.
  struct Layer {
    la::Matrix wq, wk, wv, wo;       // dim x dim
    la::Matrix ffn1, ffn2;           // ffn_dim x dim, dim x ffn_dim
    std::vector<float> ln1_gain, ln1_bias, ln2_gain, ln2_bias;
  };

  explicit TransformerEncoder(const TransformerConfig& config);

  const TransformerConfig& config() const { return config_; }

  /// Input: (T x dim) token embeddings, T < config().max_positions.
  /// Output: (T+1 x dim) hidden states, row 0 being the prepended CLS token
  /// after the final layer norm. The returned reference aliases `ws` and
  /// stays valid until the workspace's next Forward. Const and thread-safe
  /// as long as each thread brings its own workspace.
  const la::Matrix& Forward(const la::Matrix& tokens, Workspace& ws) const;

  /// Convenience overload with a call-local workspace (allocates).
  la::Matrix Forward(const la::Matrix& tokens) const;

  // Weight access for test-side reference implementations.
  const std::vector<float>& cls() const { return cls_; }
  size_t num_layers() const { return layers_.size(); }
  const Layer& layer(size_t i) const { return layers_[i]; }
  const std::vector<float>& final_gain() const { return final_gain_; }
  const std::vector<float>& final_bias() const { return final_bias_; }
  /// (max_positions x dim) table; row t is the pos_scale-scaled sinusoidal
  /// encoding added to the token at sequence slot t (row 0 is unused — the
  /// CLS state carries no positional term).
  const la::Matrix& pos_table() const { return pos_table_; }

 private:
  TransformerConfig config_;
  std::vector<float> cls_;
  std::vector<Layer> layers_;
  std::vector<float> final_gain_, final_bias_;
  la::Matrix pos_table_;
};

}  // namespace ember::nn

#endif  // EMBER_NN_TRANSFORMER_H_
