#ifndef EMBER_LA_QUANTIZE_H_
#define EMBER_LA_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace ember::la {

/// Int8 scalar quantization of embedding matrices (DESIGN.md §12).
///
/// Each row is quantized independently with an affine scale + zero-point:
///
///   q_i = clamp(round((x_i - zero_point) / scale), -127, 127)
///   x_i ≈ zero_point + scale * q_i,   |error| <= scale / 2 per element
///
/// with scale = (max - min) / 254 and zero_point = (max + min) / 2 over the
/// row, so the full int8 range is spent on the row's actual dynamic range.
/// A constant row quantizes exactly (scale 0, all-zero codes).
///
/// Dot products against quantized rows expand to one integer kernel plus
/// three precomputed correction terms:
///
///   dot(x, y) ≈ n*zx*zy + zx*sy*sum(qy) + zy*sx*sum(qx) + sx*sy*dot(qx, qy)
///
/// which is why QuantParams carries the code sum: the corpus-side sums are
/// computed once at quantization time, and the only per-candidate work at
/// query time is the int8 dot (DotI8 / GemmBtI8Strided below). All integer
/// arithmetic is exact, so quantized scores are bit-identical across the
/// portable and AVX2 kernels and across thread counts.

/// Per-row quantization parameters, stored POD so the EMBS0002 container
/// can keep the whole array as one aligned, mmap-able section.
struct QuantParams {
  float scale = 0.f;
  float zero_point = 0.f;
  int32_t code_sum = 0;  // sum of the row's int8 codes
  int32_t reserved = 0;  // keeps the struct 16 bytes; always 0 on disk
};
static_assert(sizeof(QuantParams) == 16, "QuantParams is an on-disk POD");

/// Quantizes x[0..n) into codes + params (see file comment for the model).
void QuantizeRow(const float* x, size_t n, int8_t* codes, QuantParams* params);

/// Reconstructs x̂ from one quantized row.
void DequantizeRow(const int8_t* codes, const QuantParams& params, size_t n,
                   float* out);

/// Int8 dot product with kDotLanes independent int32 partial sums. Integer
/// accumulation is exact, so any lane order gives the same answer; the
/// AVX2 path (compiled when EMBER_SIMD targets a host with AVX2) and the
/// portable baseline agree bit-for-bit. n*127^2 fits int32 for every
/// embedding dimensionality in this codebase (n < 2^17).
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

/// C = A * B^T over int8 panels: row i of A starts at a + i * lda (k valid
/// codes), row j of B at b + j * ldb, and C(i, j) lands at c[i * ldc + j].
/// Cache-tiled; every entry equals DotI8(row_i, row_j, k) exactly.
void GemmBtI8Strided(const int8_t* a, size_t m, size_t lda, const int8_t* b,
                     size_t n, size_t ldb, size_t k, int32_t* c, size_t ldc);

/// The approximate float dot product reconstructed from two quantized rows
/// and their integer dot (the expansion in the file comment).
inline float ApproxDot(const QuantParams& a, const QuantParams& b,
                       int32_t dot_i8, size_t n) {
  return static_cast<float>(n) * a.zero_point * b.zero_point +
         a.zero_point * b.scale * static_cast<float>(b.code_sum) +
         b.zero_point * a.scale * static_cast<float>(a.code_sum) +
         a.scale * b.scale * static_cast<float>(dot_i8);
}

/// Row-major int8 code matrix plus per-row QuantParams. Same two storage
/// modes as Matrix: owned (Quantize) with 64-byte-aligned allocations, or
/// a non-owning view (View) over mmap'ed snapshot sections.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Quantizes every row of `m` (owned storage).
  static QuantizedMatrix Quantize(const Matrix& m);

  /// Non-owning view over externally-owned codes + params (one params entry
  /// per row). The caller keeps both alive for the view's lifetime.
  static QuantizedMatrix View(const int8_t* codes, const QuantParams* params,
                              size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }
  bool is_view() const { return view_codes_ != nullptr; }

  const int8_t* Row(size_t r) const { return codes() + r * cols_; }
  const QuantParams& Params(size_t r) const { return params()[r]; }

  const int8_t* codes() const {
    return view_codes_ != nullptr ? view_codes_ : codes_.data();
  }
  const QuantParams* params() const {
    return view_params_ != nullptr ? view_params_ : params_.data();
  }

  /// Reconstructs the full float matrix (testing / error analysis).
  Matrix Dequantize() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int8_t, AlignedAllocator<int8_t>> codes_;
  std::vector<QuantParams, AlignedAllocator<QuantParams>> params_;
  const int8_t* view_codes_ = nullptr;
  const QuantParams* view_params_ = nullptr;
};

}  // namespace ember::la

#endif  // EMBER_LA_QUANTIZE_H_
