#ifndef EMBER_LA_MATRIX_IO_H_
#define EMBER_LA_MATRIX_IO_H_

#include "common/binary_io.h"
#include "la/matrix.h"

namespace ember::la {

/// Appends `m` as (rows u64, cols u64, row-major f32 payload).
inline void WriteMatrix(BinaryWriter& writer, const Matrix& m) {
  writer.WriteU64(m.rows());
  writer.WriteU64(m.cols());
  writer.WriteRaw(m.data(), m.rows() * m.cols() * sizeof(float));
}

/// Reads a WriteMatrix payload. Fail-closed: the payload size is validated
/// against the remaining bytes BEFORE the matrix is allocated, so a corrupt
/// header can neither over-allocate nor leave `out` partially filled. On
/// failure the reader is failed and `out` is untouched.
inline bool ReadMatrix(BinaryReader& reader, Matrix& out) {
  const uint64_t rows = reader.ReadU64();
  const uint64_t cols = reader.ReadU64();
  if (!reader.ok() || cols > (uint64_t{1} << 20) ||
      (cols != 0 && rows > reader.remaining() / (cols * sizeof(float))) ||
      (cols == 0 && rows != 0)) {
    reader.Fail();
    return false;
  }
  Matrix m(rows, cols);
  if (!reader.ReadRaw(m.data(), rows * cols * sizeof(float))) return false;
  out = std::move(m);
  return true;
}

}  // namespace ember::la

#endif  // EMBER_LA_MATRIX_IO_H_
