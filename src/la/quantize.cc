#include "la/quantize.h"

#include <algorithm>
#include <cmath>

#include "la/vector_ops.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ember::la {

void QuantizeRow(const float* x, size_t n, int8_t* codes,
                 QuantParams* params) {
  *params = QuantParams{};
  if (n == 0) return;
  float lo = x[0], hi = x[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  // Affine per-row mapping: spend the symmetric [-127, 127] code range on
  // the row's actual [lo, hi]. A constant row gets scale 0 and quantizes
  // exactly through the zero point.
  const float scale = (hi - lo) / 254.f;
  const float zero_point = 0.5f * (hi + lo);
  params->scale = scale;
  params->zero_point = zero_point;
  const float inv = scale > 0.f ? 1.f / scale : 0.f;
  int32_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const float q = std::nearbyintf((x[i] - zero_point) * inv);
    const int32_t code =
        std::max(-127, std::min(127, static_cast<int32_t>(q)));
    codes[i] = static_cast<int8_t>(code);
    sum += code;
  }
  params->code_sum = sum;
}

void DequantizeRow(const int8_t* codes, const QuantParams& params, size_t n,
                   float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = params.zero_point +
             params.scale * static_cast<float>(codes[i]);
  }
}

#if defined(__AVX2__)
namespace {

inline int32_t HorizontalSumI32(__m256i v) {
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  int32_t total = 0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  return total;
}

/// One 32-code step: vpmaddubsw needs an unsigned left operand, so it
/// multiplies |a| against b carrying a's sign (a == 0 lanes contribute 0
/// through |a|). Saturation-safe for QuantizeRow output: codes are clamped
/// to [-127, 127], so each adjacent pair sums to at most 2 * 127^2 = 32258
/// < INT16_MAX and the result is exact. (A crafted -128 code — possible
/// only in a corrupted file loaded with verify_checksum off — would wrap
/// in vpsignb, never read out of bounds.) `abs_a` must be abs(va); passing
/// it in lets the GEMM micro-kernel amortize the abs across b columns.
inline __m256i DotStepI8(__m256i abs_a, __m256i va, __m256i vb, __m256i acc) {
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
  // VPDPBUSD fuses the u8 x i8 multiply, the 4-wide pair sum, and the i32
  // accumulate into one instruction with no i16 intermediate, so it is
  // exact for the full code range.
  return _mm256_dpbusd_epi32(acc, abs_a, _mm256_sign_epi8(vb, va));
#else
  const __m256i prod =
      _mm256_maddubs_epi16(abs_a, _mm256_sign_epi8(vb, va));
  return _mm256_add_epi32(acc,
                          _mm256_madd_epi16(prod, _mm256_set1_epi16(1)));
#endif
}

inline __m256i LoadI8(const int8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

}  // namespace
#endif

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  size_t i = 0;
  int32_t total = 0;
#if defined(__AVX2__)
  // Two independent accumulator chains over 64 codes per step. Integer
  // arithmetic is exact, so this equals the scalar loop bit-for-bit.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  for (; i + 64 <= n; i += 64) {
    const __m256i va0 = LoadI8(a + i);
    const __m256i va1 = LoadI8(a + i + 32);
    acc0 = DotStepI8(_mm256_abs_epi8(va0), va0, LoadI8(b + i), acc0);
    acc1 = DotStepI8(_mm256_abs_epi8(va1), va1, LoadI8(b + i + 32), acc1);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i va = LoadI8(a + i);
    acc0 = DotStepI8(_mm256_abs_epi8(va), va, LoadI8(b + i), acc0);
  }
  total = HorizontalSumI32(_mm256_add_epi32(acc0, acc1));
#else
  // Portable baseline: the same kDotLanes independent-accumulator shape as
  // the float Dot kernel, which auto-vectorizes under -O3.
  int32_t acc[kDotLanes] = {};
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      acc[l] += static_cast<int32_t>(a[i + l]) * static_cast<int32_t>(b[i + l]);
    }
  }
  for (size_t l = 0; l < kDotLanes; ++l) total += acc[l];
#endif
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

void GemmBtI8Strided(const int8_t* a, size_t m, size_t lda, const int8_t* b,
                     size_t n, size_t ldb, size_t k, int32_t* c, size_t ldc) {
  // L2-sized row tiles around a register-blocked 2x4 micro-kernel (the
  // int8 analogue of GemmBtStrided's 8x2): each 32-code step loads 2 a-rows
  // and 4 b-rows and updates 8 accumulators, amortizing loads and the
  // abs(a) across columns. Integer accumulation is exact, so blocking is
  // purely a throughput optimization — every entry equals
  // DotI8(row_i, row_j, k) bit-for-bit regardless of block shape.
  constexpr size_t kTileA = 32;
  constexpr size_t kTileB = 128;
  for (size_t i0 = 0; i0 < m; i0 += kTileA) {
    const size_t i1 = std::min(m, i0 + kTileA);
    for (size_t j0 = 0; j0 < n; j0 += kTileB) {
      const size_t j1 = std::min(n, j0 + kTileB);
      size_t i = i0;
#if defined(__AVX2__)
      for (; i + 2 <= i1; i += 2) {
        const int8_t* a0 = a + i * lda;
        const int8_t* a1 = a0 + lda;
        int32_t* c0 = c + i * ldc;
        int32_t* c1 = c0 + ldc;
        size_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          const int8_t* bj[4] = {b + j * ldb, b + (j + 1) * ldb,
                                 b + (j + 2) * ldb, b + (j + 3) * ldb};
          __m256i acc[2][4];
          for (int r = 0; r < 2; ++r) {
            for (int s = 0; s < 4; ++s) acc[r][s] = _mm256_setzero_si256();
          }
          size_t p = 0;
          for (; p + 32 <= k; p += 32) {
            const __m256i va0 = LoadI8(a0 + p);
            const __m256i va1 = LoadI8(a1 + p);
            const __m256i abs0 = _mm256_abs_epi8(va0);
            const __m256i abs1 = _mm256_abs_epi8(va1);
            for (int s = 0; s < 4; ++s) {
              const __m256i vb = LoadI8(bj[s] + p);
              acc[0][s] = DotStepI8(abs0, va0, vb, acc[0][s]);
              acc[1][s] = DotStepI8(abs1, va1, vb, acc[1][s]);
            }
          }
          for (int s = 0; s < 4; ++s) {
            int32_t cell0 = HorizontalSumI32(acc[0][s]);
            int32_t cell1 = HorizontalSumI32(acc[1][s]);
            for (size_t t = p; t < k; ++t) {
              cell0 += static_cast<int32_t>(a0[t]) *
                       static_cast<int32_t>(bj[s][t]);
              cell1 += static_cast<int32_t>(a1[t]) *
                       static_cast<int32_t>(bj[s][t]);
            }
            c0[j + s] = cell0;
            c1[j + s] = cell1;
          }
        }
        for (; j < j1; ++j) {
          const int8_t* bjp = b + j * ldb;
          c0[j] = DotI8(a0, bjp, k);
          c1[j] = DotI8(a1, bjp, k);
        }
      }
#endif
      for (; i < i1; ++i) {
        const int8_t* ai = a + i * lda;
        int32_t* ci = c + i * ldc;
        for (size_t j = j0; j < j1; ++j) {
          ci[j] = DotI8(ai, b + j * ldb, k);
        }
      }
    }
  }
}

QuantizedMatrix QuantizedMatrix::Quantize(const Matrix& m) {
  QuantizedMatrix q;
  q.rows_ = m.rows();
  q.cols_ = m.cols();
  q.codes_.resize(m.rows() * m.cols());
  q.params_.resize(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    QuantizeRow(m.Row(r), m.cols(), q.codes_.data() + r * m.cols(),
                &q.params_[r]);
  }
  return q;
}

QuantizedMatrix QuantizedMatrix::View(const int8_t* codes,
                                      const QuantParams* params, size_t rows,
                                      size_t cols) {
  QuantizedMatrix q;
  q.rows_ = rows;
  q.cols_ = cols;
  q.view_codes_ = codes;
  q.view_params_ = params;
  return q;
}

Matrix QuantizedMatrix::Dequantize() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    DequantizeRow(Row(r), Params(r), cols_, out.Row(r));
  }
  return out;
}

}  // namespace ember::la
