#ifndef EMBER_LA_MATRIX_H_
#define EMBER_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace ember::la {

/// Dense row-major float matrix. Rows are contiguous, so Row(r) is a valid
/// length-cols() float span for the kernels in vector_ops.h.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Reshapes to (rows x cols) reusing the existing heap block whenever the
  /// new size fits its capacity, so workspaces that were warmed up at their
  /// peak shape never reallocate. Contents are unspecified afterwards —
  /// callers must overwrite every entry they read.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Fills every entry with an independent N(0, stddev^2) draw from rng.
  void FillGaussian(Rng& rng, float stddev) {
    for (float& v : data_) v = static_cast<float>(rng.Gaussian()) * stddev;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace ember::la

#endif  // EMBER_LA_MATRIX_H_
