#ifndef EMBER_LA_MATRIX_H_
#define EMBER_LA_MATRIX_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <vector>

#include "common/rng.h"

namespace ember::la {

/// Alignment of every owned matrix allocation and of every matrix payload
/// in the EMBS0002 snapshot container. One cache line / one full AVX-512
/// vector: the kernels in vector_ops.h and quantize.h get
/// vectorization-friendly base addresses by construction instead of by
/// allocator luck, and an mmap'ed section at a 64-byte file offset lands on
/// a 64-byte address (mappings are page-aligned).
inline constexpr size_t kMatrixAlign = 64;

// Row stride math: rows are stored back to back with stride == cols, so
// Row(r) == data() + r * cols. For that pointer arithmetic to preserve
// element alignment from an aligned base, the base alignment must be a
// power of two and a multiple of the element size.
static_assert((kMatrixAlign & (kMatrixAlign - 1)) == 0,
              "kMatrixAlign must be a power of two");
static_assert(kMatrixAlign % sizeof(float) == 0 &&
                  kMatrixAlign % alignof(float) == 0,
              "aligned base + r * cols * sizeof(float) must stay "
              "float-aligned for every row");

/// Minimal C++17 allocator handing out kMatrixAlign-aligned blocks via the
/// aligned operator new. Used by Matrix and QuantizedMatrix so owned
/// numeric payloads match the alignment guarantee of mmap'ed ones.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kMatrixAlign}));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t{kMatrixAlign});
  }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// Dense row-major float matrix. Rows are contiguous, so Row(r) is a valid
/// length-cols() float span for the kernels in vector_ops.h.
///
/// Two storage modes share the read API:
///   - owned (default): a 64-byte-aligned heap block this object manages;
///   - view (Matrix::View): a non-owning, read-only window over memory
///     someone else keeps alive (an mmap'ed snapshot section). Views make
///     zero-copy serving possible: an index holds a view Matrix over the
///     mapped file instead of deserializing a private copy.
/// Mutating accessors (non-const Row/At/data, Resize, FillGaussian) are
/// only valid on owned matrices; callers must not mutate through a view.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.f) {}

  /// Non-owning read-only view over `data` (row-major, rows x cols). The
  /// caller guarantees `data` outlives every copy of the view. `data` may
  /// be null only when rows * cols == 0.
  static Matrix View(const float* data, size_t rows, size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = data;
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ * cols_ == 0; }
  /// Whether this matrix borrows its storage (see Matrix::View).
  bool is_view() const { return view_ != nullptr; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data() + r * cols_; }

  /// Reshapes to (rows x cols) reusing the existing heap block whenever the
  /// new size fits its capacity, so workspaces that were warmed up at their
  /// peak shape never reallocate. Contents are unspecified afterwards —
  /// callers must overwrite every entry they read. Owned matrices only.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    view_ = nullptr;
  }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data()[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return view_ != nullptr ? view_ : data_.data(); }

  /// Fills every entry with an independent N(0, stddev^2) draw from rng.
  /// Owned matrices only.
  void FillGaussian(Rng& rng, float stddev) {
    for (float& v : data_) v = static_cast<float>(rng.Gaussian()) * stddev;
  }

  /// Element-wise equality over the read view, so an owned matrix and a
  /// view over its serialized image compare equal.
  bool operator==(const Matrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    const size_t n = rows_ * cols_;
    return n == 0 || std::memcmp(data(), other.data(), n * sizeof(float)) == 0;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float, AlignedAllocator<float>> data_;
  /// Non-null in view mode; data_ stays empty then.
  const float* view_ = nullptr;
};

}  // namespace ember::la

#endif  // EMBER_LA_MATRIX_H_
