#include "la/vector_ops.h"

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/parallel.h"

namespace ember::la {

namespace {

/// Branch-free exp approximation (range reduction by powers of two plus a
/// degree-6 polynomial; max error ~2 ULP against libm). Pure float
/// arithmetic in a fixed order, so it is deterministic and the softmax loop
/// over it auto-vectorizes — libm's expf is the single hottest call in the
/// attention path and cannot be vectorized by the compiler.
inline float FastExp(float x) {
  constexpr float kLog2e = 1.442695041f;
  constexpr float kLn2Hi = 0.693359375f;
  constexpr float kLn2Lo = -2.12194440e-4f;
  // 1.5 * 2^23: adding it rounds x * log2(e) to the nearest integer in the
  // mantissa (the libm floor() call would block vectorization).
  constexpr float kMagic = 12582912.f;
  // Upper clamp keeps 2^n finite (n <= 127); softmax inputs are <= 0 and
  // GELU saturates well before either bound.
  x = std::max(-87.33f, std::min(88.0f, x));
  const float t = x * kLog2e + kMagic;
  const float nf = t - kMagic;
  const int32_t n =
      std::bit_cast<int32_t>(t) - std::bit_cast<int32_t>(kMagic);
  float r = x - nf * kLn2Hi;
  r -= nf * kLn2Lo;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.f;
  const auto bits = static_cast<uint32_t>(n + 127) << 23;
  return p * std::bit_cast<float>(bits);
}

/// Reduces kDotLanes partial sums in a fixed pairwise order. Keeping the
/// reduction shape constant is what makes the blocked and scalar paths
/// bit-identical.
inline float ReduceLanes(const float* acc) {
  float a01 = acc[0] + acc[1];
  float a23 = acc[2] + acc[3];
  float a45 = acc[4] + acc[5];
  float a67 = acc[6] + acc[7];
  return (a01 + a23) + (a45 + a67);
}

inline void DotLanes(const float* a, const float* b, size_t n, float* acc) {
  for (size_t l = 0; l < kDotLanes; ++l) acc[l] = 0.f;
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) acc[l] += a[i + l] * b[i + l];
  }
  for (; i < n; ++i) acc[i % kDotLanes] += a[i] * b[i];
}

}  // namespace

float Dot(const float* a, const float* b, size_t n) {
  float acc[kDotLanes];
  DotLanes(a, b, n, acc);
  return ReduceLanes(acc);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  float acc[kDotLanes] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      const float d = a[i + l] - b[i + l];
      acc[l] += d * d;
    }
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc[i % kDotLanes] += d * d;
  }
  return ReduceLanes(acc);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float Norm(const float* x, size_t n) { return std::sqrt(Dot(x, x, n)); }

void NormalizeInPlace(float* x, size_t n) {
  const float norm = Norm(x, n);
  if (norm > 0.f) Scale(1.f / norm, x, n);
}

Matrix GemmBt(const Matrix& a, const Matrix& b) {
  EMBER_CHECK(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  GemmBtInto(a, b, &c);
  return c;
}

void GemmBtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  EMBER_CHECK(a.cols() == b.cols());
  EMBER_CHECK(out->rows() == a.rows() && out->cols() == b.rows());
  GemmBtStrided(a.data(), a.rows(), a.cols(), b.data(), b.rows(), b.cols(),
                a.cols(), out->data(), b.rows());
}

void GemmBtStrided(const float* a, size_t m, size_t lda, const float* b,
                   size_t n, size_t ldb, size_t k, float* c, size_t ldc) {
  // Register-blocked 8x2 micro-kernel inside L2-sized row tiles. Each output
  // element keeps its own kDotLanes accumulators walked in Dot() order, so
  // blocking changes memory traffic but not a single bit of the result. The
  // tall-skinny tile amortizes each b-panel load across eight a rows while
  // the 16 accumulator vectors still fit the register file.
  constexpr size_t kTileA = 64;
  constexpr size_t kTileB = 64;
  constexpr size_t kMr = 8;
  constexpr size_t kNr = 2;
  for (size_t i0 = 0; i0 < m; i0 += kTileA) {
    const size_t i1 = std::min(m, i0 + kTileA);
    for (size_t j0 = 0; j0 < n; j0 += kTileB) {
      const size_t j1 = std::min(n, j0 + kTileB);
      size_t i = i0;
      for (; i + kMr <= i1; i += kMr) {
        size_t j = j0;
        for (; j + kNr <= j1; j += kNr) {
          float acc[kMr][kNr][kDotLanes] = {};
          size_t p = 0;
          for (; p + kDotLanes <= k; p += kDotLanes) {
            for (size_t r = 0; r < kMr; ++r) {
              const float* ar = a + (i + r) * lda + p;
              for (size_t s = 0; s < kNr; ++s) {
                const float* bs = b + (j + s) * ldb + p;
                for (size_t l = 0; l < kDotLanes; ++l) {
                  acc[r][s][l] += ar[l] * bs[l];
                }
              }
            }
          }
          for (; p < k; ++p) {
            for (size_t r = 0; r < kMr; ++r) {
              for (size_t s = 0; s < kNr; ++s) {
                acc[r][s][p % kDotLanes] +=
                    a[(i + r) * lda + p] * b[(j + s) * ldb + p];
              }
            }
          }
          for (size_t r = 0; r < kMr; ++r) {
            for (size_t s = 0; s < kNr; ++s) {
              c[(i + r) * ldc + j + s] = ReduceLanes(acc[r][s]);
            }
          }
        }
        for (; j < j1; ++j) {
          for (size_t r = 0; r < kMr; ++r) {
            c[(i + r) * ldc + j] = Dot(a + (i + r) * lda, b + j * ldb, k);
          }
        }
      }
      for (; i < i1; ++i) {
        for (size_t j = j0; j < j1; ++j) {
          c[i * ldc + j] = Dot(a + i * lda, b + j * ldb, k);
        }
      }
    }
  }
}

void WeightedSumRows(const float* w, const float* rows, size_t m,
                     size_t stride, size_t n, float* out) {
  // Column blocks sized to keep the accumulators register-resident; within a
  // block every element is accumulated i = 0..m-1 in order, matching the
  // sequential Axpy chain bit-for-bit.
  constexpr size_t kBlock = 16;
  size_t j = 0;
  for (; j + kBlock <= n; j += kBlock) {
    float acc[kBlock] = {};
    for (size_t i = 0; i < m; ++i) {
      const float wi = w[i];
      const float* row = rows + i * stride + j;
      for (size_t c = 0; c < kBlock; ++c) acc[c] += wi * row[c];
    }
    for (size_t c = 0; c < kBlock; ++c) out[j + c] = acc[c];
  }
  if (j < n) {
    float acc[kBlock] = {};
    const size_t rem = n - j;
    for (size_t i = 0; i < m; ++i) {
      const float wi = w[i];
      const float* row = rows + i * stride + j;
      for (size_t c = 0; c < rem; ++c) acc[c] += wi * row[c];
    }
    for (size_t c = 0; c < rem; ++c) out[j + c] = acc[c];
  }
}

void Gemv(const Matrix& m, const float* x, float* out) {
  for (size_t r = 0; r < m.rows(); ++r) out[r] = Dot(m.Row(r), x, m.cols());
}

void SoftmaxInPlace(float* x, size_t n) {
  if (n == 0) return;
  float max = x[0];
  for (size_t i = 1; i < n; ++i) max = std::max(max, x[i]);
  // Exponentiation pass kept free of the sum dependency so it vectorizes;
  // the sum then uses the fixed kDotLanes reduction shape shared by Dot.
  for (size_t i = 0; i < n; ++i) x[i] = FastExp(x[i] - max);
  float acc[kDotLanes] = {};
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) acc[l] += x[i + l];
  }
  for (; i < n; ++i) acc[i % kDotLanes] += x[i];
  const float sum = ReduceLanes(acc);
  if (sum > 0.f) Scale(1.f / sum, x, n);
}

void GeluTanhInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float z = x[i];
    // tanh(a) = (e^2a - 1) / (e^2a + 1) with a = sqrt(2/pi) (z + 0.044715
    // z^3); the constant below is 2 * sqrt(2/pi). FastExp's input clamp
    // saturates the ratio to +/-1 for large |a|, exactly like tanh.
    const float u = 1.59576912f * (z + 0.044715f * z * z * z);
    const float e = FastExp(u);
    x[i] = 0.5f * z * (1.f + (e - 1.f) / (e + 1.f));
  }
}

void LayerNormInPlace(float* x, size_t n, const float* gain,
                      const float* bias) {
  if (n == 0) return;
  float mean = 0.f;
  for (size_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.f;
  for (size_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.f / std::sqrt(var + 1e-5f);
  for (size_t i = 0; i < n; ++i) {
    x[i] = (x[i] - mean) * inv;
    if (gain != nullptr) x[i] *= gain[i];
    if (bias != nullptr) x[i] += bias[i];
  }
}

}  // namespace ember::la
