#include "la/vector_ops.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace ember::la {

namespace {

/// Reduces kDotLanes partial sums in a fixed pairwise order. Keeping the
/// reduction shape constant is what makes the blocked and scalar paths
/// bit-identical.
inline float ReduceLanes(const float* acc) {
  float a01 = acc[0] + acc[1];
  float a23 = acc[2] + acc[3];
  float a45 = acc[4] + acc[5];
  float a67 = acc[6] + acc[7];
  return (a01 + a23) + (a45 + a67);
}

inline void DotLanes(const float* a, const float* b, size_t n, float* acc) {
  for (size_t l = 0; l < kDotLanes; ++l) acc[l] = 0.f;
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) acc[l] += a[i + l] * b[i + l];
  }
  for (; i < n; ++i) acc[i % kDotLanes] += a[i] * b[i];
}

}  // namespace

float Dot(const float* a, const float* b, size_t n) {
  float acc[kDotLanes];
  DotLanes(a, b, n, acc);
  return ReduceLanes(acc);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  float acc[kDotLanes] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      const float d = a[i + l] - b[i + l];
      acc[l] += d * d;
    }
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc[i % kDotLanes] += d * d;
  }
  return ReduceLanes(acc);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float Norm(const float* x, size_t n) { return std::sqrt(Dot(x, x, n)); }

void NormalizeInPlace(float* x, size_t n) {
  const float norm = Norm(x, n);
  if (norm > 0.f) Scale(1.f / norm, x, n);
}

Matrix GemmBt(const Matrix& a, const Matrix& b) {
  EMBER_CHECK(a.cols() == b.cols());
  const size_t m = a.rows(), n = b.rows(), k = a.cols();
  Matrix c(m, n);
  // Register-blocked 4x4 micro-kernel inside L2-sized row tiles. Each output
  // element keeps its own kDotLanes accumulators walked in Dot() order, so
  // blocking changes memory traffic but not a single bit of the result.
  constexpr size_t kTileA = 64;
  constexpr size_t kTileB = 64;
  constexpr size_t kMr = 4;
  constexpr size_t kNr = 4;
  for (size_t i0 = 0; i0 < m; i0 += kTileA) {
    const size_t i1 = std::min(m, i0 + kTileA);
    for (size_t j0 = 0; j0 < n; j0 += kTileB) {
      const size_t j1 = std::min(n, j0 + kTileB);
      size_t i = i0;
      for (; i + kMr <= i1; i += kMr) {
        size_t j = j0;
        for (; j + kNr <= j1; j += kNr) {
          float acc[kMr][kNr][kDotLanes] = {};
          size_t p = 0;
          for (; p + kDotLanes <= k; p += kDotLanes) {
            for (size_t r = 0; r < kMr; ++r) {
              const float* ar = a.Row(i + r) + p;
              for (size_t s = 0; s < kNr; ++s) {
                const float* bs = b.Row(j + s) + p;
                for (size_t l = 0; l < kDotLanes; ++l) {
                  acc[r][s][l] += ar[l] * bs[l];
                }
              }
            }
          }
          for (; p < k; ++p) {
            for (size_t r = 0; r < kMr; ++r) {
              for (size_t s = 0; s < kNr; ++s) {
                acc[r][s][p % kDotLanes] += a.At(i + r, p) * b.At(j + s, p);
              }
            }
          }
          for (size_t r = 0; r < kMr; ++r) {
            for (size_t s = 0; s < kNr; ++s) {
              c.At(i + r, j + s) = ReduceLanes(acc[r][s]);
            }
          }
        }
        for (; j < j1; ++j) {
          for (size_t r = 0; r < kMr; ++r) {
            c.At(i + r, j) = Dot(a.Row(i + r), b.Row(j), k);
          }
        }
      }
      for (; i < i1; ++i) {
        for (size_t j = j0; j < j1; ++j) {
          c.At(i, j) = Dot(a.Row(i), b.Row(j), k);
        }
      }
    }
  }
  return c;
}

void Gemv(const Matrix& m, const float* x, float* out) {
  for (size_t r = 0; r < m.rows(); ++r) out[r] = Dot(m.Row(r), x, m.cols());
}

void SoftmaxInPlace(float* x, size_t n) {
  if (n == 0) return;
  float max = x[0];
  for (size_t i = 1; i < n; ++i) max = std::max(max, x[i]);
  float sum = 0.f;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max);
    sum += x[i];
  }
  if (sum > 0.f) Scale(1.f / sum, x, n);
}

void LayerNormInPlace(float* x, size_t n, const float* gain,
                      const float* bias) {
  if (n == 0) return;
  float mean = 0.f;
  for (size_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.f;
  for (size_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.f / std::sqrt(var + 1e-5f);
  for (size_t i = 0; i < n; ++i) {
    x[i] = (x[i] - mean) * inv;
    if (gain != nullptr) x[i] *= gain[i];
    if (bias != nullptr) x[i] += bias[i];
  }
}

}  // namespace ember::la
