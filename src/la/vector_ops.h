#ifndef EMBER_LA_VECTOR_OPS_H_
#define EMBER_LA_VECTOR_OPS_H_

#include <cstddef>

#include "la/matrix.h"

namespace ember::la {

/// Number of independent accumulator lanes in the unrolled kernels. The
/// lane-partitioned accumulation order is fixed in source, so results are
/// bit-identical whether or not the compiler vectorizes the lane loop, and
/// identical between the scalar one-pair path and the blocked GEMM path.
inline constexpr size_t kDotLanes = 8;

/// Dot product with 8 independent partial sums (auto-vectorizes under -O3)
/// and a fixed pairwise lane reduction.
float Dot(const float* a, const float* b, size_t n);

/// Squared Euclidean distance, same lane structure as Dot.
float SquaredDistance(const float* a, const float* b, size_t n);

/// y += alpha * x.
void Axpy(float alpha, const float* x, float* y, size_t n);

/// x *= alpha.
void Scale(float alpha, float* x, size_t n);

/// Euclidean norm (sqrt of the lane-reduced Dot(x, x)).
float Norm(const float* x, size_t n);

/// x /= ||x|| (no-op on the zero vector). Fused single pass over the lanes
/// for the norm, then one scale pass.
void NormalizeInPlace(float* x, size_t n);

/// C = A * B^T, where A is (m x k) and B is (n x k); C is (m x n). Uses a
/// register-blocked micro-kernel tiled for L2 residency; every C entry is
/// accumulated in exactly the Dot() lane order, so GemmBt(a, b).At(i, j) ==
/// Dot(a.Row(i), b.Row(j), k) bit-for-bit.
Matrix GemmBt(const Matrix& a, const Matrix& b);

/// out[i] = Dot(m.Row(i), x) for every row of m.
void Gemv(const Matrix& m, const float* x, float* out);

/// In-place softmax over x[0..n).
void SoftmaxInPlace(float* x, size_t n);

/// In-place layer norm (mean 0, variance 1, then gain/bias) over x[0..n).
void LayerNormInPlace(float* x, size_t n, const float* gain, const float* bias);

}  // namespace ember::la

#endif  // EMBER_LA_VECTOR_OPS_H_
