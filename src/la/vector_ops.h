#ifndef EMBER_LA_VECTOR_OPS_H_
#define EMBER_LA_VECTOR_OPS_H_

#include <cstddef>

#include "la/matrix.h"

namespace ember::la {

/// Number of independent accumulator lanes in the unrolled kernels. The
/// lane-partitioned accumulation order is fixed in source, so results are
/// bit-identical whether or not the compiler vectorizes the lane loop, and
/// identical between the scalar one-pair path and the blocked GEMM path.
inline constexpr size_t kDotLanes = 8;

/// Dot product with 8 independent partial sums (auto-vectorizes under -O3)
/// and a fixed pairwise lane reduction.
float Dot(const float* a, const float* b, size_t n);

/// Squared Euclidean distance, same lane structure as Dot.
float SquaredDistance(const float* a, const float* b, size_t n);

/// y += alpha * x.
void Axpy(float alpha, const float* x, float* y, size_t n);

/// x *= alpha.
void Scale(float alpha, float* x, size_t n);

/// Euclidean norm (sqrt of the lane-reduced Dot(x, x)).
float Norm(const float* x, size_t n);

/// x /= ||x|| (no-op on the zero vector). Fused single pass over the lanes
/// for the norm, then one scale pass.
void NormalizeInPlace(float* x, size_t n);

/// C = A * B^T, where A is (m x k) and B is (n x k); C is (m x n). Uses a
/// register-blocked micro-kernel tiled for L2 residency; every C entry is
/// accumulated in exactly the Dot() lane order, so GemmBt(a, b).At(i, j) ==
/// Dot(a.Row(i), b.Row(j), k) bit-for-bit.
Matrix GemmBt(const Matrix& a, const Matrix& b);

/// Allocation-free GemmBt: writes A * B^T into the preallocated
/// (a.rows() x b.rows()) matrix `out`. Bit-identical to GemmBt.
void GemmBtInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Strided-view GemmBt over raw panels: row i of A starts at a + i * lda
/// (k valid floats), row j of B at b + j * ldb, and C(i, j) lands at
/// c[i * ldc + j]. Runs the same register-blocked micro-kernel with the
/// same kDotLanes accumulation order as GemmBt, so
/// c[i * ldc + j] == Dot(a + i * lda, b + j * ldb, k) bit-for-bit. This is
/// what lets per-head attention panels (head-strided slices of packed Q/K
/// matrices) go through the blocked kernel without materializing copies.
void GemmBtStrided(const float* a, size_t m, size_t lda, const float* b,
                   size_t n, size_t ldb, size_t k, float* c, size_t ldc);

/// out[j] = sum_i w[i] * rows[i * stride + j] for j in [0, n), with each
/// output element accumulated in strictly ascending-i order — the exact FP
/// operation sequence of the naive "zero out, then Axpy row by row" loop it
/// replaces (attention's softmax-weighted V aggregation), but with the
/// accumulators blocked into registers across the whole i sweep instead of
/// streaming out[] through memory once per row.
void WeightedSumRows(const float* w, const float* rows, size_t m,
                     size_t stride, size_t n, float* out);

/// out[i] = Dot(m.Row(i), x) for every row of m.
void Gemv(const Matrix& m, const float* x, float* out);

/// In-place softmax over x[0..n).
void SoftmaxInPlace(float* x, size_t n);

/// In-place tanh-approximation GELU: x = 0.5 x (1 + tanh(sqrt(2/pi) (x +
/// 0.044715 x^3))). The tanh goes through the same branch-free exp core as
/// SoftmaxInPlace, so the loop vectorizes; absolute error vs the libm
/// formulation is below 1e-6, far inside the regime the encoder cares about.
void GeluTanhInPlace(float* x, size_t n);

/// In-place layer norm (mean 0, variance 1, then gain/bias) over x[0..n).
void LayerNormInPlace(float* x, size_t n, const float* gain, const float* bias);

}  // namespace ember::la

#endif  // EMBER_LA_VECTOR_OPS_H_
