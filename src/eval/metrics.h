#ifndef EMBER_EVAL_METRICS_H_
#define EMBER_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace ember::eval {

/// Ground-truth duplicate pairs. Clean-Clean pairs relate a left-collection
/// index to a right-collection index; dirty pairs relate two record indices
/// of one collection (stored unordered).
class GroundTruth {
 public:
  void AddCleanCleanPair(uint32_t left, uint32_t right) {
    pairs_.emplace(left, right);
  }
  void AddDirtyPair(uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    pairs_.emplace(a, b);
  }

  bool ContainsCleanClean(uint32_t left, uint32_t right) const {
    return pairs_.count({left, right}) > 0;
  }
  bool ContainsDirty(uint32_t a, uint32_t b) const {
    if (a > b) std::swap(a, b);
    return pairs_.count({a, b}) > 0;
  }

  size_t size() const { return pairs_.size(); }

 private:
  std::set<std::pair<uint32_t, uint32_t>> pairs_;
};

struct PrfMetrics {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Precision / recall / F1 of a Clean-Clean candidate (or predicted match)
/// set against the ground truth. Duplicate candidate pairs count once.
PrfMetrics EvaluateCleanCleanCandidates(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    const GroundTruth& truth);

/// Alias with match semantics: a predicted match set is scored exactly like
/// a candidate set (set-level precision / recall / F1).
PrfMetrics EvaluateCleanCleanMatches(
    const std::vector<std::pair<uint32_t, uint32_t>>& predicted,
    const GroundTruth& truth);

/// Same for dirty-ER candidates: pairs within one collection, unordered,
/// self-pairs ignored.
PrfMetrics EvaluateDirtyCandidates(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    const GroundTruth& truth);

/// Per-column fractional ranking of the rows of `scores` (higher score ==
/// better == rank closer to 1; ties share the average rank). Returns one row
/// per input row holding the per-column ranks with the average rank appended
/// as the last element.
std::vector<std::vector<double>> RankMatrix(
    const std::vector<std::vector<double>>& scores);

/// Pearson correlation coefficient of two equally-sized series (0 when
/// either side is constant).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace ember::eval

#endif  // EMBER_EVAL_METRICS_H_
