#include "eval/report.h"

#include <cstdio>
#include <fstream>

#include "common/strings.h"

namespace ember::eval {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::Print() const {
  std::vector<size_t> widths;
  const auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::printf("%s\n", title_.c_str());
  const auto print_row = [&widths](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "  " : "  ",
                  static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 2;
    for (const size_t w : widths) total += w + 2;
    std::printf("  %s\n", std::string(total > 4 ? total - 4 : 0, '-').c_str());
  }
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
  std::fflush(stdout);
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  const auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return out ? Status::Ok() : Status::IoError("short write to " + path);
}

std::string Table::Num(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

}  // namespace ember::eval
