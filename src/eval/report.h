#ifndef EMBER_EVAL_REPORT_H_
#define EMBER_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ember::eval {

/// A titled text table: the single rendering primitive of the bench suite.
/// Print() writes an aligned ASCII table to stdout; WriteCsv() persists the
/// header + rows as a CSV artifact round-trippable by datagen::ParseCsv.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void Print() const;
  Status WriteCsv(const std::string& path) const;

  /// Fixed-precision numeric cell.
  static std::string Num(double value, int precision);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ember::eval

#endif  // EMBER_EVAL_REPORT_H_
