#ifndef EMBER_EVAL_ASCII_CHART_H_
#define EMBER_EVAL_ASCII_CHART_H_

#include <string>
#include <vector>

namespace ember::eval {

struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

/// Minimal multi-series line chart rendered with ASCII characters — enough
/// to eyeball the trend figures of the paper in a terminal.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::vector<std::string> x_labels)
      : title_(std::move(title)), x_labels_(std::move(x_labels)) {}

  void AddSeries(ChartSeries series) { series_.push_back(std::move(series)); }
  void set_log_y(bool log_y) { log_y_ = log_y; }

  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> x_labels_;
  std::vector<ChartSeries> series_;
  bool log_y_ = false;
};

}  // namespace ember::eval

#endif  // EMBER_EVAL_ASCII_CHART_H_
