#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ember::eval {

double BootstrapProbabilityBetter(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  size_t resamples) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.5;
  Rng rng(0xb0075ULL);
  size_t wins = 0;
  for (size_t r = 0; r < resamples; ++r) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t j = rng.Below(n);
      sum += a[j] - b[j];
    }
    wins += sum >= 0;
  }
  return static_cast<double>(wins) / static_cast<double>(resamples);
}

double WilcoxonSignedRankPValue(const std::vector<double>& a,
                                const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  std::vector<double> diffs;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  if (diffs.empty()) return 1.0;

  std::vector<size_t> order(diffs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return std::fabs(diffs[x]) < std::fabs(diffs[y]);
  });
  std::vector<double> ranks(diffs.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && std::fabs(diffs[order[j + 1]]) ==
                                       std::fabs(diffs[order[i]])) {
      ++j;
    }
    const double shared =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = shared;
    i = j + 1;
  }

  double w_plus = 0;
  for (size_t k = 0; k < diffs.size(); ++k) {
    if (diffs[k] > 0) w_plus += ranks[k];
  }
  const double m = static_cast<double>(diffs.size());
  const double mean = m * (m + 1.0) / 4.0;
  const double stddev = std::sqrt(m * (m + 1.0) * (2.0 * m + 1.0) / 24.0);
  if (stddev <= 0) return 1.0;
  // Continuity-corrected normal approximation, two-sided.
  const double z = (std::fabs(w_plus - mean) - 0.5) / stddev;
  const double p = std::erfc(std::max(0.0, z) / std::sqrt(2.0));
  return std::min(1.0, p);
}

}  // namespace ember::eval
