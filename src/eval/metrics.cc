#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace ember::eval {

namespace {

PrfMetrics FromCounts(size_t true_positives, size_t predicted, size_t actual) {
  PrfMetrics m;
  m.precision = predicted == 0 ? 0.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(predicted);
  m.recall = actual == 0 ? 0.0
                         : static_cast<double>(true_positives) /
                               static_cast<double>(actual);
  m.f1 = m.precision + m.recall == 0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace

PrfMetrics EvaluateCleanCleanCandidates(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    const GroundTruth& truth) {
  std::set<std::pair<uint32_t, uint32_t>> unique(candidates.begin(),
                                                 candidates.end());
  size_t hits = 0;
  for (const auto& [l, r] : unique) hits += truth.ContainsCleanClean(l, r);
  return FromCounts(hits, unique.size(), truth.size());
}

PrfMetrics EvaluateCleanCleanMatches(
    const std::vector<std::pair<uint32_t, uint32_t>>& predicted,
    const GroundTruth& truth) {
  return EvaluateCleanCleanCandidates(predicted, truth);
}

PrfMetrics EvaluateDirtyCandidates(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    const GroundTruth& truth) {
  std::set<std::pair<uint32_t, uint32_t>> unique;
  for (auto [a, b] : candidates) {
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    unique.emplace(a, b);
  }
  size_t hits = 0;
  for (const auto& [a, b] : unique) hits += truth.ContainsDirty(a, b);
  return FromCounts(hits, unique.size(), truth.size());
}

std::vector<std::vector<double>> RankMatrix(
    const std::vector<std::vector<double>>& scores) {
  std::vector<std::vector<double>> ranks(scores.size());
  if (scores.empty()) return ranks;
  // Ragged input: rank only the columns every row has, instead of reading
  // past the end of the short rows.
  size_t cols = scores[0].size();
  for (const auto& row : scores) cols = std::min(cols, row.size());
  for (auto& row : ranks) row.assign(cols + 1, 0.0);
  for (size_t c = 0; c < cols; ++c) {
    std::vector<size_t> order(scores.size());
    for (size_t r = 0; r < order.size(); ++r) order[r] = r;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a][c] > scores[b][c];
    });
    // Fractional ranks: tied scores share the average of their positions.
    size_t i = 0;
    while (i < order.size()) {
      size_t j = i;
      while (j + 1 < order.size() &&
             scores[order[j + 1]][c] == scores[order[i]][c]) {
        ++j;
      }
      const double shared = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 +
                            1.0;
      for (size_t k = i; k <= j; ++k) ranks[order[k]][c] = shared;
      i = j + 1;
    }
  }
  for (auto& row : ranks) {
    double sum = 0;
    for (size_t c = 0; c < cols; ++c) sum += row[c];
    row[cols] = cols == 0 ? 0.0 : sum / static_cast<double>(cols);
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double mean_a = 0, mean_b = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0, var_a = 0, var_b = 0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0 || var_b <= 0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace ember::eval
