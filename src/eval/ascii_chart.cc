#include "eval/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace ember::eval {

namespace {

constexpr size_t kHeight = 12;
constexpr size_t kColWidth = 9;
constexpr char kMarks[] = "*o+x#@%&";

}  // namespace

void AsciiChart::Print() const {
  std::printf("%s%s\n", title_.c_str(), log_y_ ? " (log y)" : "");
  if (series_.empty() || x_labels_.empty()) {
    std::printf("  (no data)\n\n");
    return;
  }

  const auto transform = [this](double v) {
    return log_y_ ? std::log10(std::max(v, 1e-9)) : v;
  };
  double lo = 1e300, hi = -1e300;
  for (const ChartSeries& s : series_) {
    for (const double v : s.values) {
      lo = std::min(lo, transform(v));
      hi = std::max(hi, transform(v));
    }
  }
  if (lo > hi) {
    std::printf("  (no data)\n\n");
    return;
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  const size_t width = x_labels_.size() * kColWidth;
  std::vector<std::string> canvas(kHeight, std::string(width, ' '));
  for (size_t s = 0; s < series_.size(); ++s) {
    const char mark = kMarks[s % (sizeof(kMarks) - 1)];
    for (size_t i = 0; i < series_[s].values.size() && i < x_labels_.size();
         ++i) {
      const double t = (transform(series_[s].values[i]) - lo) / (hi - lo);
      const size_t row =
          kHeight - 1 -
          std::min(kHeight - 1, static_cast<size_t>(t * (kHeight - 1) + 0.5));
      const size_t col = i * kColWidth + kColWidth / 2;
      canvas[row][col] = mark;
    }
  }

  const auto axis_value = [this, lo, hi](double t) {
    const double v = lo + t * (hi - lo);
    return log_y_ ? std::pow(10.0, v) : v;
  };
  for (size_t r = 0; r < kHeight; ++r) {
    const double t =
        1.0 - static_cast<double>(r) / static_cast<double>(kHeight - 1);
    std::printf("%10s |%s\n",
                r % 3 == 0 ? StrFormat("%.3g", axis_value(t)).c_str() : "",
                canvas[r].c_str());
  }
  std::printf("%10s +%s\n", "", std::string(width, '-').c_str());
  std::printf("%10s  ", "");
  for (const std::string& label : x_labels_) {
    std::printf("%-*s", static_cast<int>(kColWidth), label.c_str());
  }
  std::printf("\n  legend: ");
  for (size_t s = 0; s < series_.size(); ++s) {
    std::printf("%c=%s ", kMarks[s % (sizeof(kMarks) - 1)],
                series_[s].label.c_str());
  }
  std::printf("\n\n");
  std::fflush(stdout);
}

}  // namespace ember::eval
