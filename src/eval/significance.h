#ifndef EMBER_EVAL_SIGNIFICANCE_H_
#define EMBER_EVAL_SIGNIFICANCE_H_

#include <cstddef>
#include <vector>

namespace ember::eval {

/// Paired bootstrap over the (small) dataset sample: the probability that
/// the mean of `a` is >= the mean of `b` when datasets are resampled with
/// replacement. Deterministic (fixed internal seed).
double BootstrapProbabilityBetter(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  size_t resamples = 10000);

/// Two-sided Wilcoxon signed-rank test p-value for paired samples (normal
/// approximation with tie/zero handling; exact enough for n <= 10 sanity
/// checks).
double WilcoxonSignedRankPValue(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace ember::eval

#endif  // EMBER_EVAL_SIGNIFICANCE_H_
