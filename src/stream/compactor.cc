#include "stream/compactor.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace ember::stream {

Compactor::Compactor(StatsFn stats, CompactFn compact,
                     CompactorOptions options)
    : stats_(std::move(stats)),
      compact_(std::move(compact)),
      options_(options) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  std::lock_guard lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mu_);
  started_ = false;
}

void Compactor::Loop() {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(options_.interval_micros),
                   [this] { return stop_; });
      if (stop_) return;
    }
    const LiveStats stats = stats_();
    if (stats.delta_rows < options_.max_delta_rows &&
        stats.tombstones < options_.max_tombstones) {
      continue;
    }
    const Status status = compact_();
    runs_.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      EMBER_WARN("background compaction failed (serving continues): %s",
                 status.message().c_str());
    }
  }
}

}  // namespace ember::stream
