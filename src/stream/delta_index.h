#ifndef EMBER_STREAM_DELTA_INDEX_H_
#define EMBER_STREAM_DELTA_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "la/matrix.h"

namespace ember::stream {

/// The mutable tier of a live corpus (DESIGN.md §14): an append-only,
/// exactly-scanned buffer of rows upserted since the base snapshot froze.
/// Rows carry the global id and mutation sequence number the LiveCorpus
/// assigned them; compaction and HNSW absorption remove a PREFIX (appends
/// are in sequence order, so "everything up to seq S" is always a prefix).
///
/// Storage is a 64-byte-aligned owned matrix grown by doubling, and View()
/// exposes the live rows as a borrowed la::Matrix — the same zero-copy shape
/// the mmap'ed snapshot path uses — so index::BruteForceTopK scans the delta
/// with the identical scalar-order kernels that scan the base. That shared
/// accumulation order is what makes base+delta merges bit-identical to a
/// rebuilt exact index.
///
/// Not internally synchronized: LiveCorpus guards every call.
class DeltaIndex {
 public:
  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }

  /// Appends one row. The first append latches the dimensionality; ids and
  /// seqs must be strictly increasing across appends (LiveCorpus assigns
  /// them from monotone counters).
  void Append(const float* vec, size_t dim, uint64_t id, uint64_t seq);

  /// Drops the first `n` rows — the prefix a compaction or absorption just
  /// folded into the base.
  void TruncatePrefix(size_t n);

  /// Drops every row and resets the latched dimensionality — the resync
  /// path installs a fresh base that already contains everything.
  void Clear();

  bool Contains(uint64_t id) const { return id_index_.count(id) > 0; }

  /// Row index currently holding `id`, or kNotFound. The digest maintenance
  /// in LiveCorpus uses this to hash the row being deleted in O(1).
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t IndexOf(uint64_t id) const {
    const auto it = id_index_.find(id);
    return it == id_index_.end() ? kNotFound : it->second;
  }

  uint64_t id_at(size_t row) const { return ids_[row]; }
  uint64_t seq_at(size_t row) const { return seqs_[row]; }
  const std::vector<uint64_t>& ids() const { return ids_; }
  const float* Row(size_t row) const { return store_.Row(row); }

  /// Borrowed read-only matrix over the live rows (valid until the next
  /// Append/TruncatePrefix).
  la::Matrix View() const {
    return la::Matrix::View(rows_ > 0 ? store_.data() : nullptr, rows_, dim_);
  }

 private:
  la::Matrix store_;  // capacity_ x dim_; the first rows_ rows are live
  size_t rows_ = 0;
  size_t capacity_ = 0;
  size_t dim_ = 0;
  std::vector<uint64_t> ids_;
  std::vector<uint64_t> seqs_;
  std::unordered_map<uint64_t, size_t> id_index_;  // id -> live row index
};

}  // namespace ember::stream

#endif  // EMBER_STREAM_DELTA_INDEX_H_
