#ifndef EMBER_STREAM_COMPACTOR_H_
#define EMBER_STREAM_COMPACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "stream/live_corpus.h"

namespace ember::stream {

struct CompactorOptions {
  /// Compact once the delta tier holds this many rows.
  size_t max_delta_rows = 1024;
  /// Compact once this many tombstones have accumulated.
  size_t max_tombstones = 1024;
  /// How often the trigger is re-evaluated.
  uint64_t interval_micros = 50'000;
};

/// Background compaction driver. The Compactor owns only the policy loop —
/// WHAT a compaction does is injected by the owner (the serving engine wires
/// CompactFn to its write+validate+hot-swap pipeline), which keeps this class
/// free of any dependency on the engine and trivially testable.
///
/// The loop wakes every `interval_micros`, polls StatsFn, and invokes
/// CompactFn when the delta or tombstone count crosses its threshold. A
/// CompactFn failure is counted and retried on the next tick — the live
/// corpus keeps serving from the un-compacted tiers, so failure costs
/// nothing but memory.
class Compactor {
 public:
  using StatsFn = std::function<LiveStats()>;
  using CompactFn = std::function<Status()>;

  Compactor(StatsFn stats, CompactFn compact, CompactorOptions options);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void Start();
  /// Stops the loop; joins the thread. Idempotent.
  void Stop();

  uint64_t runs() const { return runs_.load(std::memory_order_relaxed); }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  StatsFn stats_;
  CompactFn compact_;
  CompactorOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::atomic<uint64_t> runs_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace ember::stream

#endif  // EMBER_STREAM_COMPACTOR_H_
