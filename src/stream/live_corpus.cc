#include "stream/live_corpus.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/failpoint.h"
#include "index/exact_index.h"

namespace ember::stream {

namespace {

/// Merges two CloserThan-sorted neighbor lists into the top-k. Both sides
/// carry global ids, so CloserThan is a total order and the merge is
/// deterministic.
std::vector<index::Neighbor> MergeTwo(const std::vector<index::Neighbor>& a,
                                      const std::vector<index::Neighbor>& b,
                                      size_t k) {
  std::vector<index::Neighbor> merged;
  merged.reserve(std::min(k, a.size() + b.size()));
  size_t i = 0, j = 0;
  while (merged.size() < k && (i < a.size() || j < b.size())) {
    if (j == b.size() ||
        (i < a.size() && index::CloserThan(a[i], b[j]))) {
      merged.push_back(a[i++]);
    } else {
      merged.push_back(b[j++]);
    }
  }
  return merged;
}

}  // namespace

LiveCorpus::LiveCorpus(std::shared_ptr<const serve::Snapshot> base)
    : base_(std::move(base)) {
  const uint64_t rows = base_->manifest().rows;
  auto ids = std::make_shared<std::vector<uint64_t>>(rows);
  std::iota(ids->begin(), ids->end(), uint64_t{0});
  base_ids_ = std::move(ids);
  next_id_ = rows;
  dim_ = base_->manifest().dim;
  RecomputeDigest();
}

Result<uint64_t> LiveCorpus::Upsert(const float* vec, size_t dim) {
  std::unique_lock lock(mu_);
  if (dim_ == 0) dim_ = dim;  // empty zero-dim base: first row decides
  if (dim != dim_) {
    return Status::InvalidArgument(
        "upsert dim " + std::to_string(dim) + " != corpus dim " +
        std::to_string(dim_));
  }
  // Fail-closed boundary: fires BEFORE any state changes, so a refused
  // upsert leaves the corpus untouched.
  EMBER_FAILPOINT("stream/delta_insert");
  const uint64_t id = next_id_++;
  delta_.Append(vec, dim, id, next_seq_++);
  digest_content_ += recover::RowHash(id, vec, dim);
  return id;
}

Status LiveCorpus::Delete(uint64_t global_id) {
  std::unique_lock lock(mu_);
  const bool in_base = std::binary_search(base_ids_->begin(),
                                          base_ids_->end(), global_id);
  const bool in_delta = !in_base && delta_.Contains(global_id);
  if (!in_base && !in_delta) {
    return Status::NotFound("id " + std::to_string(global_id) +
                            " is not in the live corpus");
  }
  if (tombstones_.count(global_id) > 0) {
    return Status::NotFound("id " + std::to_string(global_id) +
                            " is already deleted");
  }
  // Fail-closed boundary: a refused delete publishes nothing.
  EMBER_FAILPOINT("stream/tombstone");
  tombstones_.emplace(global_id, next_seq_++);
  const float* row;
  if (in_base) {
    ++base_dead_;
    const auto it = std::lower_bound(base_ids_->begin(), base_ids_->end(),
                                     global_id);
    row = base_->data().Row(static_cast<size_t>(it - base_ids_->begin()));
  } else {
    ++delta_dead_;
    row = delta_.Row(delta_.IndexOf(global_id));
  }
  digest_content_ -= recover::RowHash(global_id, row, dim_);
  return Status::Ok();
}

std::vector<std::vector<index::Neighbor>> LiveCorpus::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  return MergedQuery(queries, k, /*fallback_base=*/false);
}

std::vector<std::vector<index::Neighbor>> LiveCorpus::FallbackQueryBatch(
    const la::Matrix& queries, size_t k) const {
  return MergedQuery(queries, k, /*fallback_base=*/true);
}

std::vector<std::vector<index::Neighbor>> LiveCorpus::MergedQuery(
    const la::Matrix& queries, size_t k, bool fallback_base) const {
  const size_t nq = queries.rows();
  std::shared_ptr<const serve::Snapshot> base;
  std::shared_ptr<const std::vector<uint64_t>> ids;
  size_t base_dead = 0;
  std::unordered_set<uint64_t> dead;
  std::vector<std::vector<index::Neighbor>> delta_hits(nq);
  {
    // Phase 1, shared lock: pin the base tier and linearize the overlay —
    // the delta scan (cheap: the delta is small by construction) and the
    // tombstone copy happen inside the lock so one query batch sees one
    // coherent mutation prefix.
    std::shared_lock lock(mu_);
    base = base_;
    ids = base_ids_;
    base_dead = base_dead_;
    dead.reserve(tombstones_.size());
    for (const auto& [id, seq] : tombstones_) dead.insert(id);
    if (delta_.rows() > 0 && k > 0) {
      // Inflate k by the dead-row count so filtering can never starve the
      // merge below min(k, live delta rows) survivors.
      const size_t dk = std::min(delta_.rows(), k + delta_dead_);
      const auto raw = index::BruteForceTopK(delta_.View(), queries, dk);
      for (size_t q = 0; q < nq; ++q) {
        auto& out = delta_hits[q];
        for (const index::Neighbor& n : raw[q]) {
          const uint64_t gid = delta_.id_at(n.id);
          if (dead.count(gid) > 0) continue;
          out.push_back({static_cast<uint32_t>(gid), n.distance});
          if (out.size() == k) break;
        }
      }
    }
  }
  // Phase 2, no lock: the expensive base query runs on the pinned snapshot.
  // A concurrent swap (reload/compaction/absorb) retires the old base only
  // after this batch drops its pin (RCU).
  std::vector<std::vector<index::Neighbor>> base_hits(nq);
  if (base->size() > 0 && k > 0) {
    const size_t bk = std::min<size_t>(base->size(), k + base_dead);
    const auto raw = fallback_base ? base->FallbackQueryBatch(queries, bk)
                                   : base->QueryBatch(queries, bk);
    for (size_t q = 0; q < nq; ++q) {
      auto& out = base_hits[q];
      for (const index::Neighbor& n : raw[q]) {
        const uint64_t gid = (*ids)[n.id];
        if (dead.count(gid) > 0) continue;
        out.push_back({static_cast<uint32_t>(gid), n.distance});
        if (out.size() == k) break;
      }
    }
  }
  std::vector<std::vector<index::Neighbor>> results(nq);
  for (size_t q = 0; q < nq; ++q) {
    results[q] = MergeTwo(base_hits[q], delta_hits[q], k);
  }
  return results;
}

LiveStats LiveCorpus::Stats() const {
  std::shared_lock lock(mu_);
  LiveStats stats;
  stats.base_rows = base_->manifest().rows;
  stats.delta_rows = delta_.rows();
  stats.tombstones = tombstones_.size();
  stats.live_rows =
      stats.base_rows + stats.delta_rows - base_dead_ - delta_dead_;
  stats.next_id = next_id_;
  stats.base_generation = base_generation_;
  return stats;
}

std::shared_ptr<const serve::Snapshot> LiveCorpus::base() const {
  std::shared_lock lock(mu_);
  return base_;
}

CompactionPlan LiveCorpus::PlanCompaction() const {
  std::shared_lock lock(mu_);
  CompactionPlan plan;
  plan.upto_seq = next_seq_ - 1;
  plan.base_generation = base_generation_;
  plan.delta_prefix = delta_.rows();
  plan.next_id = next_id_;
  plan.manifest = base_->manifest();
  const la::Matrix& base_data = base_->data();
  const size_t dim = dim_ != 0 ? dim_ : base_data.cols();
  std::vector<const float*> rows;
  rows.reserve(base_ids_->size() + delta_.rows());
  for (size_t local = 0; local < base_ids_->size(); ++local) {
    const uint64_t gid = (*base_ids_)[local];
    if (tombstones_.count(gid) > 0) continue;
    plan.survivor_ids.push_back(gid);
    rows.push_back(base_data.Row(local));
  }
  for (size_t r = 0; r < delta_.rows(); ++r) {
    const uint64_t gid = delta_.id_at(r);
    if (tombstones_.count(gid) > 0) continue;
    plan.survivor_ids.push_back(gid);
    rows.push_back(delta_.Row(r));
  }
  plan.corpus = la::Matrix(rows.size(), dim);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(plan.corpus.Row(i), rows[i], dim * sizeof(float));
  }
  return plan;
}

Status LiveCorpus::InstallCompacted(
    std::shared_ptr<const serve::Snapshot> compacted,
    const CompactionPlan& plan) {
  std::unique_lock lock(mu_);
  if (plan.base_generation != base_generation_) {
    return Status::Unavailable(
        "compaction plan is stale: the base was swapped while it ran");
  }
  if (compacted->manifest().rows != plan.survivor_ids.size()) {
    return Status::Internal(
        "compacted snapshot holds " +
        std::to_string(compacted->manifest().rows) + " rows but the plan "
        "kept " + std::to_string(plan.survivor_ids.size()));
  }
  base_ = std::move(compacted);
  base_ids_ =
      std::make_shared<const std::vector<uint64_t>>(plan.survivor_ids);
  ++base_generation_;
  delta_.TruncatePrefix(plan.delta_prefix);
  for (auto it = tombstones_.begin(); it != tombstones_.end();) {
    it = it->second <= plan.upto_seq ? tombstones_.erase(it) : std::next(it);
  }
  RecountDead();
  return Status::Ok();
}

Status LiveCorpus::ReplaceBase(std::shared_ptr<const serve::Snapshot> fresh) {
  std::unique_lock lock(mu_);
  if (fresh->manifest().rows != base_->manifest().rows) {
    return Status::InvalidArgument(
        "live base replacement must preserve the row count (" +
        std::to_string(base_->manifest().rows) + " -> " +
        std::to_string(fresh->manifest().rows) +
        "); run a compaction instead");
  }
  if (fresh->manifest().rows > 0 &&
      fresh->manifest().dim != base_->manifest().dim) {
    return Status::InvalidArgument(
        "live base replacement changes the dimensionality");
  }
  base_ = std::move(fresh);
  ++base_generation_;
  RecomputeDigest();
  return Status::Ok();
}

Status LiveCorpus::AdoptBase(std::shared_ptr<const serve::Snapshot> fresh,
                             std::vector<uint64_t> ids, uint64_t next_id) {
  std::unique_lock lock(mu_);
  if (fresh->manifest().rows != ids.size()) {
    return Status::InvalidArgument(
        "adopted base holds " + std::to_string(fresh->manifest().rows) +
        " rows but the id map names " + std::to_string(ids.size()));
  }
  for (const uint64_t id : ids) {
    if (id >= next_id) {
      return Status::InvalidArgument(
          "adopted id counter " + std::to_string(next_id) +
          " does not cover adopted id " + std::to_string(id));
    }
  }
  base_ = std::move(fresh);
  base_ids_ = std::make_shared<const std::vector<uint64_t>>(std::move(ids));
  ++base_generation_;
  delta_.Clear();
  tombstones_.clear();
  next_id_ = next_id;
  if (base_->manifest().dim != 0) dim_ = base_->manifest().dim;
  RecountDead();
  RecomputeDigest();
  return Status::Ok();
}

recover::CorpusDigest LiveCorpus::Digest() const {
  std::shared_lock lock(mu_);
  recover::CorpusDigest digest;
  digest.rows = base_->manifest().rows + delta_.rows() - base_dead_ -
                delta_dead_;
  digest.tombstones = tombstones_.size();
  digest.content = digest_content_;
  return digest;
}

Status LiveCorpus::AbsorbDelta() {
  std::shared_ptr<const serve::Snapshot> base;
  uint64_t generation = 0;
  size_t absorb_rows = 0;
  la::Matrix rows;
  {
    std::shared_lock lock(mu_);
    if (base_->manifest().kind != serve::IndexKind::kHnsw) {
      return Status::InvalidArgument(
          "AbsorbDelta requires an HNSW base; exact/LSH bases compact "
          "instead");
    }
    if (delta_.rows() == 0) return Status::Ok();
    base = base_;
    generation = base_generation_;
    absorb_rows = delta_.rows();
    rows = la::Matrix(absorb_rows, delta_.dim());
    std::memcpy(rows.data(), delta_.Row(0),
                absorb_rows * delta_.dim() * sizeof(float));
  }
  // Copy-on-write: the clone is thawed and grown off-lock while readers
  // keep querying the frozen original.
  Result<index::HnswIndex> thawed = base->ThawedHnsw();
  if (!thawed.ok()) return thawed.status();
  thawed.value().AddBatch(rows);
  Result<serve::Snapshot> grown =
      serve::Snapshot::AdoptHnsw(base->manifest(), std::move(thawed).value());
  if (!grown.ok()) return grown.status();
  auto published =
      std::make_shared<const serve::Snapshot>(std::move(grown).value());
  std::unique_lock lock(mu_);
  if (generation != base_generation_) {
    return Status::Unavailable(
        "absorb raced a base swap; retry against the new base");
  }
  auto ids = std::make_shared<std::vector<uint64_t>>(*base_ids_);
  ids->insert(ids->end(), delta_.ids().begin(),
              delta_.ids().begin() + static_cast<ptrdiff_t>(absorb_rows));
  base_ids_ = std::move(ids);
  base_ = std::move(published);
  ++base_generation_;
  delta_.TruncatePrefix(absorb_rows);
  RecountDead();
  return Status::Ok();
}

void LiveCorpus::RecomputeDigest() {
  digest_content_ = 0;
  const la::Matrix& base_data = base_->data();
  const size_t dim = dim_ != 0 ? dim_ : base_data.cols();
  for (size_t local = 0; local < base_ids_->size(); ++local) {
    const uint64_t gid = (*base_ids_)[local];
    if (tombstones_.count(gid) > 0) continue;
    digest_content_ += recover::RowHash(gid, base_data.Row(local), dim);
  }
  for (size_t r = 0; r < delta_.rows(); ++r) {
    const uint64_t gid = delta_.id_at(r);
    if (tombstones_.count(gid) > 0) continue;
    digest_content_ += recover::RowHash(gid, delta_.Row(r), dim);
  }
}

void LiveCorpus::RecountDead() {
  base_dead_ = 0;
  delta_dead_ = 0;
  for (const auto& [id, seq] : tombstones_) {
    if (std::binary_search(base_ids_->begin(), base_ids_->end(), id)) {
      ++base_dead_;
    } else if (delta_.Contains(id)) {
      ++delta_dead_;
    }
  }
}

}  // namespace ember::stream
