#ifndef EMBER_STREAM_LIVE_CORPUS_H_
#define EMBER_STREAM_LIVE_CORPUS_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/neighbor.h"
#include "la/matrix.h"
#include "recover/digest.h"
#include "serve/snapshot.h"
#include "stream/delta_index.h"

namespace ember::stream {

/// Point-in-time shape of a live corpus, cheap enough for a compaction
/// trigger to poll.
struct LiveStats {
  uint64_t base_rows = 0;   // rows frozen in the base snapshot
  uint64_t delta_rows = 0;  // rows in the mutable delta tier
  uint64_t tombstones = 0;  // published deletes not yet compacted away
  uint64_t live_rows = 0;   // base + delta - tombstoned
  uint64_t next_id = 0;     // id the next upsert will receive
  uint64_t base_generation = 0;  // bumped on every base swap
};

/// Everything a compaction needs, captured atomically: the survivor set
/// (base + delta minus tombstones, ascending global ids), their vectors in
/// that order, and the coordinates for the later install — the sequence
/// cutoff, the delta prefix it covers, and the base generation the plan was
/// computed against (InstallCompacted rejects a plan whose base has since
/// been swapped by an absorb or reload).
struct CompactionPlan {
  uint64_t upto_seq = 0;
  uint64_t base_generation = 0;
  size_t delta_prefix = 0;
  uint64_t next_id = 0;  // id counter at plan time (resync hand-off)
  std::vector<uint64_t> survivor_ids;
  la::Matrix corpus;
  serve::SnapshotManifest manifest;
};

/// A frozen serve::Snapshot turned into a mutable corpus (DESIGN.md §14):
/// the immutable base is overlaid by a DeltaIndex of upserted rows and a
/// tombstone set of deleted ids. Reads merge base and delta results with
/// tombstone filtering; for exact bases the merged answer is bit-identical
/// to a freshly rebuilt exact index over the surviving rows, because both
/// tiers score with the same scalar-order kernels and the local-to-global
/// id maps are strictly increasing (they preserve the CloserThan
/// tie-break).
///
/// Id and ordering model: every row ever admitted has a unique, monotone
/// global id (base rows of a fresh corpus are 0..B-1; upserts continue from
/// there; compaction preserves survivor ids). Every mutation gets a
/// monotone sequence number, so "all mutations up to seq S" is always a
/// delta prefix plus a tombstone subset — the unit compaction folds into a
/// new base.
///
/// Concurrency: one shared_mutex guards the overlay. Mutations take it
/// exclusively for O(row) work; queries pin the base (shared_ptr) and scan
/// the delta under a shared lock, then run the expensive base query
/// lock-free on the pinned snapshot — a base swap (reload, compaction
/// install, absorb) never tears an in-flight query (RCU).
class LiveCorpus {
 public:
  /// Wraps `base` (already validated by the engine). An empty base with a
  /// zero-dim manifest latches its dimensionality from the first upsert.
  explicit LiveCorpus(std::shared_ptr<const serve::Snapshot> base);

  /// Appends one embedded row to the delta tier and returns its global id.
  /// Fail-closed: the "stream/delta_insert" failpoint fires before any
  /// state changes.
  Result<uint64_t> Upsert(const float* vec, size_t dim);

  /// Publishes a tombstone for `global_id`. NotFound when the id was never
  /// admitted or is already dead; the "stream/tombstone" failpoint fires
  /// before the tombstone becomes visible.
  Status Delete(uint64_t global_id);

  /// Merged top-k over base + delta with tombstone filtering. Neighbor ids
  /// are global. Thread-safe against concurrent mutations and base swaps.
  std::vector<std::vector<index::Neighbor>> QueryBatch(
      const la::Matrix& queries, size_t k) const;

  /// Degraded-mode merged top-k: brute-force scan of the base corpus matrix
  /// instead of its index (the serving engine's fallback path), plus the
  /// same delta/tombstone overlay.
  std::vector<std::vector<index::Neighbor>> FallbackQueryBatch(
      const la::Matrix& queries, size_t k) const;

  LiveStats Stats() const;

  /// The current base, pinned (stays valid while the caller holds it).
  std::shared_ptr<const serve::Snapshot> base() const;

  /// Captures a compaction plan under a shared lock (serving continues).
  CompactionPlan PlanCompaction() const;

  /// Atomically installs a compacted base: swaps the snapshot, truncates
  /// the covered delta prefix, and drops the folded tombstones — all under
  /// one exclusive lock, so no query ever sees a row twice or loses one.
  /// Rejects (Unavailable) a plan computed against a base generation that a
  /// concurrent absorb or reload has since replaced, and rejects
  /// (Internal) a snapshot whose row count contradicts the plan.
  Status InstallCompacted(std::shared_ptr<const serve::Snapshot> compacted,
                          const CompactionPlan& plan);

  /// Replaces the base wholesale (hot reload on a live corpus). The overlay
  /// keeps its meaning only when the replacement has exactly the current
  /// base's row count and dimensionality; anything else is refused with
  /// InvalidArgument ("compact instead").
  Status ReplaceBase(std::shared_ptr<const serve::Snapshot> fresh);

  /// Wholesale state adoption — the snapshot-resync path (DESIGN.md §15).
  /// Installs `fresh` (already validated through the engine trust pipeline)
  /// as the new base with `ids` as its ascending global-id map, clears the
  /// delta tier and every tombstone (the donor's compaction already folded
  /// them), and sets the id counter to the donor's `next_id` — even
  /// backwards, since a diverged replica's inflated counter is precisely
  /// the state being thrown away — so replayed upserts reproduce the
  /// donor's id assignments exactly.
  Status AdoptBase(std::shared_ptr<const serve::Snapshot> fresh,
                   std::vector<uint64_t> ids, uint64_t next_id);

  /// Order-independent anti-entropy digest over the LIVE rows (base + delta
  /// minus tombstoned), maintained incrementally — O(1) here, no scan.
  recover::CorpusDigest Digest() const;

  /// HNSW online insert (kHnsw bases only): clones the base graph, thaws
  /// the clone (copy-on-write adjacency guard), inserts the current delta
  /// rows with the deterministic level stream, and RCU-publishes the grown
  /// snapshot, truncating the absorbed prefix. Tombstones are untouched —
  /// the graph cannot unlink, so deleted rows stay filtered at query time
  /// until a full compaction. Ok with no effect on an empty delta.
  Status AbsorbDelta();

 private:
  /// Shared tail of QueryBatch/FallbackQueryBatch; `exact_base` selects the
  /// brute-force scan over the base index.
  std::vector<std::vector<index::Neighbor>> MergedQuery(
      const la::Matrix& queries, size_t k, bool fallback_base) const;

  /// Recounts base/delta tombstone membership after a base swap changed the
  /// partition. Caller holds the exclusive lock.
  void RecountDead();

  /// Full digest rescan — only for base swaps that may change row BYTES
  /// (ReplaceBase, AdoptBase). Compaction/absorb keep the logical live set
  /// and leave the incremental digest untouched. Caller holds the lock.
  void RecomputeDigest();

  mutable std::shared_mutex mu_;
  std::shared_ptr<const serve::Snapshot> base_;
  /// Ascending global id of each base row (shared so queries can pin it
  /// across a swap). Strictly increasing — the order-preserving map.
  std::shared_ptr<const std::vector<uint64_t>> base_ids_;
  uint64_t base_generation_ = 1;
  DeltaIndex delta_;
  std::unordered_map<uint64_t, uint64_t> tombstones_;  // id -> seq
  size_t base_dead_ = 0;   // tombstoned ids living in the base
  size_t delta_dead_ = 0;  // tombstoned ids living in the delta
  uint64_t next_id_ = 0;
  uint64_t next_seq_ = 1;
  size_t dim_ = 0;
  /// Commutative fold of RowHash over the live rows; see Digest().
  uint64_t digest_content_ = 0;
};

}  // namespace ember::stream

#endif  // EMBER_STREAM_LIVE_CORPUS_H_
