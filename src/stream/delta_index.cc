#include "stream/delta_index.h"

#include <cstring>
#include <utility>

#include "common/logging.h"

namespace ember::stream {

void DeltaIndex::Append(const float* vec, size_t dim, uint64_t id,
                        uint64_t seq) {
  if (rows_ == 0 && dim_ == 0) dim_ = dim;
  EMBER_CHECK_MSG(dim == dim_, "delta row dim %zu != tier dim %zu", dim,
                  dim_);
  EMBER_CHECK(ids_.empty() || (id > ids_.back() && seq > seqs_.back()));
  if (rows_ == capacity_) {
    const size_t grown = capacity_ == 0 ? 16 : capacity_ * 2;
    la::Matrix next(grown, dim_);
    if (rows_ > 0) {
      std::memcpy(next.data(), store_.data(), rows_ * dim_ * sizeof(float));
    }
    store_ = std::move(next);
    capacity_ = grown;
  }
  std::memcpy(store_.Row(rows_), vec, dim_ * sizeof(float));
  ids_.push_back(id);
  seqs_.push_back(seq);
  id_index_.emplace(id, rows_);
  ++rows_;
}

void DeltaIndex::TruncatePrefix(size_t n) {
  if (n == 0) return;
  EMBER_CHECK(n <= rows_);
  const size_t kept = rows_ - n;
  if (kept > 0) {
    std::memmove(store_.Row(0), store_.Row(n), kept * dim_ * sizeof(float));
  }
  for (size_t i = 0; i < n; ++i) id_index_.erase(ids_[i]);
  ids_.erase(ids_.begin(), ids_.begin() + static_cast<ptrdiff_t>(n));
  seqs_.erase(seqs_.begin(), seqs_.begin() + static_cast<ptrdiff_t>(n));
  rows_ = kept;
  for (size_t i = 0; i < rows_; ++i) id_index_[ids_[i]] = i;
}

void DeltaIndex::Clear() {
  store_ = la::Matrix();
  rows_ = 0;
  capacity_ = 0;
  dim_ = 0;
  ids_.clear();
  seqs_.clear();
  id_index_.clear();
}

}  // namespace ember::stream
