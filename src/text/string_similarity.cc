#include "text/string_similarity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "text/tokenizer.h"

namespace ember::text {

double LevenshteinSimilarity(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  const double dist = static_cast<double>(prev[m]);
  return 1.0 - dist / static_cast<double>(std::max(n, m));
}

double JaroSimilarity(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window = std::max<size_t>(1, std::max(n, m) / 2) - 1;
  std::vector<bool> matched_a(n, false), matched_b(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0, j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(const std::string& a, const std::string& b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t cap = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < cap && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

std::set<std::string> TokenSet(const std::string& s) {
  const auto tokens = Tokenize(s);
  return std::set<std::string>(tokens.begin(), tokens.end());
}

double JaccardOfSets(const std::set<std::string>& sa,
                     const std::set<std::string>& sb) {
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double TokenJaccard(const std::string& a, const std::string& b) {
  return JaccardOfSets(TokenSet(a), TokenSet(b));
}

double NgramJaccard(const std::string& a, const std::string& b, size_t n) {
  std::set<std::string> sa, sb;
  for (const auto& tok : Tokenize(a)) {
    for (auto& g : CharNgrams(tok, n)) sa.insert(std::move(g));
  }
  for (const auto& tok : Tokenize(b)) {
    for (auto& g : CharNgrams(tok, n)) sb.insert(std::move(g));
  }
  return JaccardOfSets(sa, sb);
}

double OverlapCoefficient(const std::string& a, const std::string& b) {
  const auto sa = TokenSet(a), sb = TokenSet(b);
  if (sa.empty() || sb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

double MongeElkanSimilarity(const std::string& a, const std::string& b) {
  const auto ta = Tokenize(a), tb = Tokenize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  double total = 0.0;
  for (const auto& x : ta) {
    double best = 0.0;
    for (const auto& y : tb) best = std::max(best, JaroWinklerSimilarity(x, y));
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

double CosineOverTf(const std::string& a, const std::string& b) {
  std::map<std::string, double> ta, tb;
  for (const auto& t : Tokenize(a)) ta[t] += 1.0;
  for (const auto& t : Tokenize(b)) tb[t] += 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [t, f] : ta) {
    na += f * f;
    const auto it = tb.find(t);
    if (it != tb.end()) dot += f * it->second;
  }
  for (const auto& [t, f] : tb) nb += f * f;
  return dot / std::sqrt(na * nb);
}

}  // namespace ember::text
