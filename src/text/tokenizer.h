#ifndef EMBER_TEXT_TOKENIZER_H_
#define EMBER_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

namespace ember::text {

/// Lowercases and splits on non-alphanumeric runs. "Unicode-light": bytes
/// outside ASCII letters/digits act as separators.
std::vector<std::string> Tokenize(const std::string& sentence);

/// Character n-grams of a word (no padding); empty when the word is shorter
/// than n.
std::vector<std::string> CharNgrams(const std::string& word, size_t n);

/// ember's synthetic vocabulary encodes synonym surface forms as
/// "s<digit><base>" (generated words are purely alphabetic, so the prefix is
/// unambiguous). MakeSynonymSurface produces such a form; CanonicalWordForm
/// strips it, recovering the canonical sense shared by datagen's perturber
/// and the embedding models' lexicons.
std::string MakeSynonymSurface(const std::string& base, int variant);
std::string CanonicalWordForm(const std::string& token);

}  // namespace ember::text

#endif  // EMBER_TEXT_TOKENIZER_H_
