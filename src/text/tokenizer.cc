#include "text/tokenizer.h"

#include <cctype>

namespace ember::text {

std::vector<std::string> Tokenize(const std::string& sentence) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char ch : sentence) {
    const unsigned char u = static_cast<unsigned char>(ch);
    if (std::isalnum(u)) {
      current.push_back(static_cast<char>(std::tolower(u)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> CharNgrams(const std::string& word, size_t n) {
  std::vector<std::string> grams;
  if (word.size() < n) return grams;
  grams.reserve(word.size() - n + 1);
  for (size_t i = 0; i + n <= word.size(); ++i) grams.push_back(word.substr(i, n));
  return grams;
}

std::string MakeSynonymSurface(const std::string& base, int variant) {
  return "s" + std::to_string(1 + (variant % 9)) + base;
}

std::string CanonicalWordForm(const std::string& token) {
  if (token.size() > 3 && token[0] == 's' && token[1] >= '1' &&
      token[1] <= '9') {
    bool alpha_tail = true;
    for (size_t i = 2; i < token.size(); ++i) {
      if (token[i] < 'a' || token[i] > 'z') {
        alpha_tail = false;
        break;
      }
    }
    if (alpha_tail) return token.substr(2);
  }
  return token;
}

}  // namespace ember::text
