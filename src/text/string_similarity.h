#ifndef EMBER_TEXT_STRING_SIMILARITY_H_
#define EMBER_TEXT_STRING_SIMILARITY_H_

#include <string>
#include <vector>

namespace ember::text {

/// 1 - edit_distance / max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(const std::string& a, const std::string& b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(const std::string& a, const std::string& b);

/// Jaro-Winkler with the standard 0.1 prefix scale, 4-char prefix cap.
double JaroWinklerSimilarity(const std::string& a, const std::string& b);

/// |A ∩ B| / |A ∪ B| over whitespace/punct tokens.
double TokenJaccard(const std::string& a, const std::string& b);

/// Jaccard over character n-grams.
double NgramJaccard(const std::string& a, const std::string& b, size_t n);

/// |A ∩ B| / min(|A|, |B|) over tokens; 0 when either side is empty.
double OverlapCoefficient(const std::string& a, const std::string& b);

/// Monge-Elkan: mean over tokens of a of the best Jaro-Winkler match in b.
double MongeElkanSimilarity(const std::string& a, const std::string& b);

/// Cosine over term-frequency vectors of the two token multisets.
double CosineOverTf(const std::string& a, const std::string& b);

}  // namespace ember::text

#endif  // EMBER_TEXT_STRING_SIMILARITY_H_
