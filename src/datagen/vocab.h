#ifndef EMBER_DATAGEN_VOCAB_H_
#define EMBER_DATAGEN_VOCAB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ember::datagen {

/// Deterministic pseudo-word from a 64-bit seed: 2-4 lowercase syllables,
/// purely alphabetic so the synonym surface encoding of text/tokenizer.h
/// stays unambiguous.
std::string MakeWord(uint64_t seed);

/// A domain vocabulary: `size` deterministic words on a per-domain stream.
/// Sampling is Zipf-biased (low indices are frequent) to mimic natural
/// token-frequency skew — frequent words end up in many entities, creating
/// the non-trivial non-match similarity real datasets have.
class Vocabulary {
 public:
  Vocabulary(uint64_t seed, size_t size);

  size_t size() const { return words_.size(); }
  const std::string& WordAt(size_t i) const { return words_[i]; }

  /// Zipf-biased draw (u^2-warped uniform index).
  const std::string& Sample(Rng& rng) const;
  /// Uniform draw over the rare half — used for discriminative tokens.
  const std::string& SampleRare(Rng& rng) const;

 private:
  std::vector<std::string> words_;
};

/// Per-dataset noise profile, applied independently to each side of a
/// duplicate pair. Rates are per-token (edit/drop/synonym/insert) or
/// per-attribute (missing/misplace).
struct NoiseProfile {
  double char_edit_rate = 0;
  double token_drop_rate = 0;
  double token_insert_rate = 0;
  double synonym_rate = 0;
  double missing_rate = 0;
  double misplace_rate = 0;
};

/// Applies a NoiseProfile to entities. Synonym replacement uses
/// text::MakeSynonymSurface, the surface form the embedding models' lexicons
/// can (coverage permitting) map back to the canonical sense — the axis that
/// separates semantic from lexical matchers.
class Perturber {
 public:
  Perturber(const NoiseProfile& profile, const Vocabulary* vocab)
      : profile_(profile), vocab_(vocab) {}

  /// Perturbs one attribute-value vector in place.
  void PerturbEntity(std::vector<std::string>& values, Rng& rng) const;

  /// Perturbs one whitespace-joined value.
  std::string PerturbValue(const std::string& value, Rng& rng) const;

  /// Applies a single random character edit (insert / delete / replace).
  static std::string CharEdit(const std::string& word, Rng& rng);

 private:
  NoiseProfile profile_;
  const Vocabulary* vocab_;
};

}  // namespace ember::datagen

#endif  // EMBER_DATAGEN_VOCAB_H_
