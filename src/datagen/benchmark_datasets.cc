#include "datagen/benchmark_datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace ember::datagen {

std::string EntityCollection::SentenceOf(size_t entity) const {
  std::string out;
  for (const std::string& value : rows_[entity]) {
    if (value.empty()) continue;
    if (!out.empty()) out += ' ';
    out += value;
  }
  return out;
}

std::vector<std::string> EntityCollection::AllSentences() const {
  std::vector<std::string> sentences;
  sentences.reserve(size());
  for (size_t i = 0; i < size(); ++i) sentences.push_back(SentenceOf(i));
  return sentences;
}

double AverageSentenceLength(const EntityCollection& collection) {
  if (collection.size() == 0) return 0.0;
  size_t tokens = 0;
  for (size_t i = 0; i < collection.size(); ++i) {
    const std::string sentence = collection.SentenceOf(i);
    bool in_token = false;
    for (const char c : sentence) {
      if (c == ' ') {
        in_token = false;
      } else if (!in_token) {
        in_token = true;
        ++tokens;
      }
    }
  }
  return static_cast<double>(tokens) / static_cast<double>(collection.size());
}

namespace {

NoiseProfile MakeNoise(double char_edit, double drop, double insert,
                       double synonym, double missing, double misplace) {
  NoiseProfile n;
  n.char_edit_rate = char_edit;
  n.token_drop_rate = drop;
  n.token_insert_rate = insert;
  n.synonym_rate = synonym;
  n.missing_rate = missing;
  n.misplace_rate = misplace;
  return n;
}

std::vector<CleanCleanSpec> BuildSpecs() {
  // Table 2(a) analogues. Counts follow the paper's datasets; the noise
  // profile encodes each dataset's documented character (DESIGN.md §1):
  // D1 misplaced values, D2/D3 paraphrase-heavy product text, D4/D9 clean
  // bibliographic data, D5-D7 short movie attributes, D8 misspelling-heavy
  // products, D10 extremely noisy and sparse.
  std::vector<CleanCleanSpec> specs(10);

  specs[0] = {"D1",  "Rest1-Rest2", 339,  2256, 7, 89, 12.0, 1200,
              MakeNoise(0.02, 0.03, 0.02, 0.05, 0.04, 0.22), 0xd101ULL};
  specs[1] = {"D2",  "Abt-Buy", 1076, 1076, 3, 1076, 33.0, 2600,
              MakeNoise(0.04, 0.14, 0.08, 0.30, 0.08, 0.02), 0xd202ULL};
  specs[2] = {"D3",  "Amazon-GP", 1354, 3039, 4, 1104, 42.0, 3200,
              MakeNoise(0.05, 0.18, 0.10, 0.22, 0.10, 0.02), 0xd303ULL};
  specs[3] = {"D4",  "DBLP-ACM", 2616, 2294, 4, 2224, 16.0, 2400,
              MakeNoise(0.015, 0.02, 0.01, 0.02, 0.01, 0.0), 0xd404ULL};
  specs[4] = {"D5",  "IMDB-TMDB", 5118, 6056, 5, 1968, 9.0, 2800,
              MakeNoise(0.06, 0.08, 0.04, 0.10, 0.12, 0.02), 0xd505ULL};
  specs[5] = {"D6",  "IMDB-TVDB", 5118, 7810, 5, 1072, 9.0, 2800,
              MakeNoise(0.08, 0.10, 0.05, 0.12, 0.15, 0.03), 0xd606ULL};
  specs[6] = {"D7",  "TMDB-TVDB", 6056, 7810, 5, 1095, 9.0, 2800,
              MakeNoise(0.07, 0.09, 0.05, 0.11, 0.13, 0.02), 0xd707ULL};
  specs[7] = {"D8",  "Walmart-Amazon", 2554, 22074, 5, 853, 24.0, 3600,
              MakeNoise(0.24, 0.10, 0.06, 0.08, 0.10, 0.02), 0xd808ULL};
  specs[8] = {"D9",  "DBLP-Scholar", 2516, 30000, 4, 2308, 15.0, 2600,
              MakeNoise(0.05, 0.10, 0.04, 0.06, 0.06, 0.01), 0xd909ULL};
  specs[9] = {"D10", "Movies", 27615, 23182, 9, 22863, 18.0, 5200,
              MakeNoise(0.12, 0.24, 0.10, 0.24, 0.30, 0.06), 0xd00aULL};
  return specs;
}

const char* const kAttributeNames[] = {"name",  "description", "brand",
                                       "category", "year",     "price",
                                       "location", "phone",    "extra"};

/// Words per attribute: the first attribute (name) is short, the second
/// (description) absorbs most of the length, the rest are short fields.
std::vector<size_t> AttributeLengths(const CleanCleanSpec& spec, Rng& rng) {
  const size_t attrs = spec.attrs;
  std::vector<double> weights(attrs, 1.0);
  if (attrs > 1) weights[1] = 4.0;
  double total = 0;
  for (const double w : weights) total += w;
  std::vector<size_t> lengths(attrs, 1);
  for (size_t a = 0; a < attrs; ++a) {
    const double target = spec.avg_words * weights[a] / total;
    const double jitter = 0.7 + 0.6 * rng.Uniform();
    lengths[a] = std::max<size_t>(
        1, static_cast<size_t>(std::lround(target * jitter)));
  }
  return lengths;
}

std::vector<std::string> MakeBaseEntity(const CleanCleanSpec& spec,
                                        const Vocabulary& vocab, Rng& rng) {
  const std::vector<size_t> lengths = AttributeLengths(spec, rng);
  std::vector<std::string> values(spec.attrs);
  std::vector<std::string> name_words;
  for (size_t a = 0; a < spec.attrs; ++a) {
    std::string value;
    for (size_t w = 0; w < lengths[a]; ++w) {
      std::string word;
      if (a == 0) {
        // Names carry discriminative rare tokens.
        word = w == 0 ? vocab.Sample(rng) : vocab.SampleRare(rng);
        name_words.push_back(word);
      } else if (a == 1 && w < name_words.size() && rng.Chance(0.6)) {
        // Descriptions restate name words (real product text does).
        word = name_words[w];
      } else if (spec.attrs > 4 && a == 4 && w == 0) {
        word = std::to_string(1950 + rng.Below(74));  // year-like field
      } else {
        word = vocab.Sample(rng);
      }
      if (!value.empty()) value += ' ';
      value += word;
    }
    values[a] = value;
  }
  return values;
}

}  // namespace

const std::vector<CleanCleanSpec>& AllCleanCleanSpecs() {
  static const std::vector<CleanCleanSpec>* const kSpecs =
      new std::vector<CleanCleanSpec>(BuildSpecs());
  return *kSpecs;
}

Result<CleanCleanSpec> CleanCleanSpecById(const std::string& id) {
  for (const CleanCleanSpec& spec : AllCleanCleanSpecs()) {
    if (spec.id == id) return spec;
  }
  return Status::NotFound("no Clean-Clean spec " + id);
}

CleanCleanDataset GenerateCleanClean(const CleanCleanSpec& spec, double scale,
                                     uint64_t seed) {
  CleanCleanDataset dataset;
  dataset.id = spec.id;
  dataset.name = spec.name;

  const auto scaled = [scale](size_t n) {
    return std::max<size_t>(20, static_cast<size_t>(
                                    static_cast<double>(n) * scale + 0.5));
  };
  const size_t n_left = scaled(spec.left_count);
  const size_t n_right = scaled(spec.right_count);
  const size_t n_dups =
      std::min({scaled(spec.duplicates), n_left, n_right});

  for (size_t a = 0; a < spec.attrs; ++a) {
    const std::string attr =
        a < sizeof(kAttributeNames) / sizeof(kAttributeNames[0])
            ? kAttributeNames[a]
            : "attr" + std::to_string(a);
    dataset.left.schema.push_back(attr);
    dataset.right.schema.push_back(attr);
  }

  const Vocabulary vocab(SplitMix64(spec.salt), spec.vocab_size);
  Rng rng(SplitMix64(seed ^ spec.salt));

  // Each side of a duplicate receives an independent half-strength pass of
  // the spec's noise, so the *relative* noise between the two copies matches
  // the profile.
  NoiseProfile half = spec.noise;
  half.char_edit_rate /= 2;
  half.token_drop_rate /= 2;
  half.token_insert_rate /= 2;
  half.synonym_rate /= 2;
  half.missing_rate /= 2;
  half.misplace_rate /= 2;
  const Perturber perturber(half, &vocab);

  // Shared bases for the duplicate pairs; then side-only entities.
  std::vector<std::vector<std::string>> left_rows, right_rows;
  left_rows.reserve(n_left);
  right_rows.reserve(n_right);
  for (size_t i = 0; i < n_dups; ++i) {
    const std::vector<std::string> base = MakeBaseEntity(spec, vocab, rng);
    std::vector<std::string> l = base, r = base;
    perturber.PerturbEntity(l, rng);
    perturber.PerturbEntity(r, rng);
    left_rows.push_back(std::move(l));
    right_rows.push_back(std::move(r));
  }
  for (size_t i = n_dups; i < n_left; ++i) {
    left_rows.push_back(MakeBaseEntity(spec, vocab, rng));
  }
  for (size_t i = n_dups; i < n_right; ++i) {
    right_rows.push_back(MakeBaseEntity(spec, vocab, rng));
  }

  // Deterministic shuffles decouple entity order from match structure.
  std::vector<uint32_t> left_perm(n_left), right_perm(n_right);
  for (uint32_t i = 0; i < n_left; ++i) left_perm[i] = i;
  for (uint32_t i = 0; i < n_right; ++i) right_perm[i] = i;
  for (size_t i = n_left; i > 1; --i) {
    std::swap(left_perm[i - 1], left_perm[rng.Below(i)]);
  }
  for (size_t i = n_right; i > 1; --i) {
    std::swap(right_perm[i - 1], right_perm[rng.Below(i)]);
  }
  std::vector<uint32_t> left_pos(n_left), right_pos(n_right);
  for (uint32_t i = 0; i < n_left; ++i) left_pos[left_perm[i]] = i;
  for (uint32_t i = 0; i < n_right; ++i) right_pos[right_perm[i]] = i;

  for (uint32_t i = 0; i < n_left; ++i) {
    dataset.left.Add(std::move(left_rows[left_perm[i]]));
  }
  for (uint32_t i = 0; i < n_right; ++i) {
    dataset.right.Add(std::move(right_rows[right_perm[i]]));
  }
  for (uint32_t i = 0; i < n_dups; ++i) {
    dataset.matches.emplace_back(left_pos[i], right_pos[i]);
  }
  return dataset;
}

}  // namespace ember::datagen
