#include "datagen/vocab.h"

#include <algorithm>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace ember::datagen {

namespace {

constexpr const char* kOnsets[] = {"b", "c",  "d",  "f",  "g",  "h",  "k",
                                   "l", "m",  "n",  "p",  "r",  "s",  "t",
                                   "v", "br", "cr", "st", "tr", "pl", "gr"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
constexpr const char* kCodas[] = {"",  "",  "n", "r", "s",
                                  "l", "t", "m", "x", "nd"};

}  // namespace

std::string MakeWord(uint64_t seed) {
  uint64_t h = SplitMix64(seed);
  const size_t syllables = 2 + (h & 1) + ((h >> 1) & 1);
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    h = SplitMix64(h);
    word += kOnsets[h % (sizeof(kOnsets) / sizeof(kOnsets[0]))];
    word += kVowels[(h >> 8) % (sizeof(kVowels) / sizeof(kVowels[0]))];
    if (s + 1 == syllables) {
      word += kCodas[(h >> 16) % (sizeof(kCodas) / sizeof(kCodas[0]))];
    }
  }
  return word;
}

Vocabulary::Vocabulary(uint64_t seed, size_t size) {
  EMBER_CHECK(size > 0);
  words_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    words_.push_back(MakeWord(seed ^ (0x10001ULL * (i + 1))));
  }
}

const std::string& Vocabulary::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  const size_t i = static_cast<size_t>(u * u * static_cast<double>(size()));
  return words_[std::min(i, size() - 1)];
}

const std::string& Vocabulary::SampleRare(Rng& rng) const {
  const size_t half = size() / 2;
  return words_[half + rng.Below(size() - half)];
}

std::string Perturber::CharEdit(const std::string& word, Rng& rng) {
  if (word.empty()) return word;
  std::string out = word;
  const char random_char = static_cast<char>('a' + rng.Below(26));
  switch (rng.Below(3)) {
    case 0:  // insert
      out.insert(out.begin() + rng.Below(out.size() + 1), random_char);
      break;
    case 1:  // delete
      if (out.size() > 1) out.erase(out.begin() + rng.Below(out.size()));
      break;
    default:  // replace
      out[rng.Below(out.size())] = random_char;
      break;
  }
  return out;
}

std::string Perturber::PerturbValue(const std::string& value, Rng& rng) const {
  std::vector<std::string> tokens = text::Tokenize(value);
  std::vector<std::string> kept;
  kept.reserve(tokens.size() + 1);
  for (std::string& token : tokens) {
    if (tokens.size() > 1 && rng.Chance(profile_.token_drop_rate)) continue;
    const bool alphabetic =
        !token.empty() && token[0] >= 'a' && token[0] <= 'z';
    if (alphabetic && rng.Chance(profile_.synonym_rate)) {
      token = text::MakeSynonymSurface(text::CanonicalWordForm(token),
                                       static_cast<int>(rng.Below(9)));
    } else if (rng.Chance(profile_.char_edit_rate)) {
      token = CharEdit(token, rng);
    }
    kept.push_back(std::move(token));
  }
  if (vocab_ != nullptr && rng.Chance(profile_.token_insert_rate)) {
    kept.insert(kept.begin() + rng.Below(kept.size() + 1),
                vocab_->Sample(rng));
  }
  std::string out;
  for (size_t i = 0; i < kept.size(); ++i) {
    if (i > 0) out += ' ';
    out += kept[i];
  }
  return out;
}

void Perturber::PerturbEntity(std::vector<std::string>& values,
                              Rng& rng) const {
  for (std::string& value : values) {
    if (value.empty()) continue;
    if (rng.Chance(profile_.missing_rate)) {
      value.clear();
      continue;
    }
    value = PerturbValue(value, rng);
  }
  if (values.size() > 1 && rng.Chance(profile_.misplace_rate)) {
    const size_t a = rng.Below(values.size());
    const size_t b = rng.Below(values.size());
    if (a != b) std::swap(values[a], values[b]);
  }
}

}  // namespace ember::datagen
