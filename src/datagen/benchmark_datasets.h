#ifndef EMBER_DATAGEN_BENCHMARK_DATASETS_H_
#define EMBER_DATAGEN_BENCHMARK_DATASETS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "datagen/vocab.h"

namespace ember::datagen {

/// A collection of entities sharing one schema. Values are stored per
/// attribute; the schema-agnostic "sentence" of an entity is the space-join
/// of its non-empty attribute values (Section 3 of the paper).
class EntityCollection {
 public:
  std::vector<std::string> schema;

  size_t size() const { return rows_.size(); }

  void Add(std::vector<std::string> values) { rows_.push_back(std::move(values)); }

  const std::vector<std::string>& ValuesOf(size_t entity) const {
    return rows_[entity];
  }

  std::string SentenceOf(size_t entity) const;
  std::vector<std::string> AllSentences() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Average schema-agnostic sentence length in tokens.
double AverageSentenceLength(const EntityCollection& collection);

/// Spec of one Clean-Clean ER dataset analogue (Table 2(a) profile).
struct CleanCleanSpec {
  std::string id;
  std::string name;
  size_t left_count = 0;
  size_t right_count = 0;
  size_t attrs = 0;
  size_t duplicates = 0;
  /// Target schema-agnostic sentence length in tokens.
  double avg_words = 10;
  size_t vocab_size = 2000;
  /// Per-side noise applied to the two copies of each duplicate.
  NoiseProfile noise;
  /// Per-dataset vocabulary stream.
  uint64_t salt = 0;
};

/// All ten specs in Table 2(a) order (D1..D10).
const std::vector<CleanCleanSpec>& AllCleanCleanSpecs();

/// Spec lookup by id ("D1".."D10").
Result<CleanCleanSpec> CleanCleanSpecById(const std::string& id);

/// A generated Clean-Clean dataset: two duplicate-free collections plus the
/// ground-truth match pairs (left index, right index).
struct CleanCleanDataset {
  std::string id;
  std::string name;
  EntityCollection left;
  EntityCollection right;
  std::vector<std::pair<uint32_t, uint32_t>> matches;
};

/// Generates the dataset at `scale` (entity and duplicate counts multiplied;
/// floors keep tiny scales usable). Fully deterministic in (spec, scale,
/// seed).
CleanCleanDataset GenerateCleanClean(const CleanCleanSpec& spec, double scale,
                                     uint64_t seed);

}  // namespace ember::datagen

#endif  // EMBER_DATAGEN_BENCHMARK_DATASETS_H_
