#ifndef EMBER_DATAGEN_FEBRL_H_
#define EMBER_DATAGEN_FEBRL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "datagen/benchmark_datasets.h"

namespace ember::datagen {

/// Options of the Febrl-style dirty-ER generator (Section 4.1 of the paper):
/// frequency-table person records, 40% duplicate records, at most 9
/// duplicates per original, at most 3 modifications per attribute and 10 per
/// record.
struct FebrlOptions {
  size_t n_records = 10000;
  double duplicate_fraction = 0.4;
  size_t max_duplicates_per_record = 9;
  size_t max_modifications_per_attribute = 3;
  size_t max_modifications_per_record = 10;
  uint64_t seed = 1;
};

/// A single dirty collection with ground-truth duplicate pairs (unordered
/// record-index pairs within the collection).
struct DirtyDataset {
  std::string id;
  EntityCollection records;
  std::vector<std::pair<uint32_t, uint32_t>> matches;
};

DirtyDataset GenerateFebrl(const FebrlOptions& options);

/// The seven scalability sizes of Table 2(b): 10K .. 2M records.
const std::vector<size_t>& FebrlScalabilitySizes();

}  // namespace ember::datagen

#endif  // EMBER_DATAGEN_FEBRL_H_
