#include "datagen/csv.h"

namespace ember::datagen {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  // Set between a field's closing quote and the next separator: the only
  // legal followers are ',', '\n', '\r\n', or end of input.
  bool after_quote = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
    after_quote = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  const auto malformed = [&](size_t offset, const std::string& what) {
    return Status::InvalidArgument("csv: " + what + " at byte " +
                                   std::to_string(offset));
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        field += c;  // commas, newlines, and \r are all data inside quotes
      }
      continue;
    }
    switch (c) {
      case '"':
        if (after_quote) {
          return malformed(i, "quote after closing quote");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        // Outside quotes \r is only valid as the first half of \r\n; a
        // bare one is a truncation/corruption tell, not a line ending.
        if (i + 1 >= text.size() || text[i + 1] != '\n') {
          return malformed(i, "bare carriage return");
        }
        end_row();
        ++i;  // consume the \n
        break;
      case '\n':
        end_row();
        break;
      default:
        if (after_quote) {
          return malformed(i, std::string("character '") + c +
                                  "' after closing quote");
        }
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return malformed(text.size(), "unterminated quoted field at end of input");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

namespace {

bool NeedsQuoting(const std::string& field) {
  for (const char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const std::vector<std::string>& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      if (NeedsQuoting(row[i])) {
        out += '"';
        for (const char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace ember::datagen
