#include "datagen/febrl.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace ember::datagen {

namespace {

/// Frequency tables: small deterministic name pools on fixed streams, shared
/// by every Febrl collection (the original tool ships fixed lookup files).
const Vocabulary& GivenNames() {
  static const Vocabulary* const kPool = new Vocabulary(0xfeb1ULL, 400);
  return *kPool;
}
const Vocabulary& Surnames() {
  static const Vocabulary* const kPool = new Vocabulary(0xfeb2ULL, 800);
  return *kPool;
}
const Vocabulary& StreetNames() {
  static const Vocabulary* const kPool = new Vocabulary(0xfeb3ULL, 1000);
  return *kPool;
}
const Vocabulary& Suburbs() {
  static const Vocabulary* const kPool = new Vocabulary(0xfeb4ULL, 600);
  return *kPool;
}
const Vocabulary& States() {
  static const Vocabulary* const kPool = new Vocabulary(0xfeb5ULL, 8);
  return *kPool;
}

std::vector<std::string> MakeRecord(Rng& rng) {
  std::vector<std::string> values(7);
  values[0] = GivenNames().Sample(rng);
  values[1] = Surnames().Sample(rng);
  values[2] = std::to_string(1 + rng.Below(399));            // street number
  values[3] = StreetNames().Sample(rng) + " " +
              (rng.Chance(0.5) ? "street" : "road");          // address_1
  values[4] = Suburbs().Sample(rng);                          // suburb
  values[5] = std::to_string(1000 + rng.Below(8999));         // postcode
  values[6] = States().Sample(rng);                           // state
  return values;
}

/// Applies Febrl-style modifications: char edits within values plus
/// occasional word swaps, capped per attribute and per record.
void ModifyRecord(std::vector<std::string>& values, size_t max_per_attribute,
                  size_t max_per_record, Rng& rng) {
  size_t record_mods = 0;
  for (std::string& value : values) {
    if (record_mods >= max_per_record) break;
    const size_t mods = rng.Below(max_per_attribute + 1);
    for (size_t m = 0; m < mods && record_mods < max_per_record; ++m) {
      if (value.empty()) break;
      if (rng.Chance(0.15)) {
        // Swap two words when the value has them.
        const size_t space = value.find(' ');
        if (space != std::string::npos) {
          value = value.substr(space + 1) + " " + value.substr(0, space);
          ++record_mods;
          continue;
        }
      }
      value = Perturber::CharEdit(value, rng);
      ++record_mods;
    }
  }
}

}  // namespace

DirtyDataset GenerateFebrl(const FebrlOptions& options) {
  EMBER_CHECK(options.n_records > 0);
  DirtyDataset dataset;
  dataset.id = "Febrl-" + std::to_string(options.n_records);
  dataset.records.schema = {"given_name", "surname",  "street_number",
                            "address_1",  "suburb",   "postcode",
                            "state"};

  Rng rng(SplitMix64(options.seed ^ 0xfeb0ULL));
  const size_t n_duplicates = static_cast<size_t>(
      static_cast<double>(options.n_records) * options.duplicate_fraction);
  const size_t n_originals = options.n_records - n_duplicates;

  std::vector<std::vector<std::string>> rows;
  rows.reserve(options.n_records);
  for (size_t i = 0; i < n_originals; ++i) rows.push_back(MakeRecord(rng));

  // Duplicates attach to random originals, capped per original. Cluster
  // membership (original + its duplicates) defines the ground truth: every
  // within-cluster pair is a match.
  std::vector<std::vector<uint32_t>> clusters(n_originals);
  std::vector<size_t> dup_count(n_originals, 0);
  for (size_t d = 0; d < n_duplicates; ++d) {
    size_t original = rng.Below(n_originals);
    for (size_t attempts = 0;
         dup_count[original] >= options.max_duplicates_per_record &&
         attempts < 16;
         ++attempts) {
      original = rng.Below(n_originals);
    }
    ++dup_count[original];
    std::vector<std::string> copy = rows[original];
    ModifyRecord(copy, options.max_modifications_per_attribute,
                 options.max_modifications_per_record, rng);
    clusters[original].push_back(static_cast<uint32_t>(rows.size()));
    rows.push_back(std::move(copy));
  }

  for (uint32_t original = 0; original < n_originals; ++original) {
    std::vector<uint32_t> members = {original};
    members.insert(members.end(), clusters[original].begin(),
                   clusters[original].end());
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        dataset.matches.emplace_back(members[a], members[b]);
      }
    }
  }

  // Shuffle record order so duplicates are not adjacent to their originals.
  std::vector<uint32_t> perm(rows.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  std::vector<uint32_t> pos(rows.size());
  for (uint32_t i = 0; i < perm.size(); ++i) pos[perm[i]] = i;
  for (uint32_t i = 0; i < perm.size(); ++i) {
    dataset.records.Add(std::move(rows[perm[i]]));
  }
  for (auto& [a, b] : dataset.matches) {
    a = pos[a];
    b = pos[b];
  }
  return dataset;
}

const std::vector<size_t>& FebrlScalabilitySizes() {
  static const std::vector<size_t>* const kSizes = new std::vector<size_t>{
      10000, 50000, 100000, 200000, 300000, 1000000, 2000000};
  return *kSizes;
}

}  // namespace ember::datagen
