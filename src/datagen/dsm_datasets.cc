#include "datagen/dsm_datasets.h"

#include <algorithm>

#include "common/logging.h"
#include "datagen/benchmark_datasets.h"

namespace ember::datagen {

namespace {

NoiseProfile DsmNoise(double char_edit, double drop, double synonym,
                      double missing) {
  NoiseProfile n;
  n.char_edit_rate = char_edit;
  n.token_drop_rate = drop;
  n.token_insert_rate = drop / 2;
  n.synonym_rate = synonym;
  n.missing_rate = missing;
  return n;
}

std::vector<DsmSpec> BuildSpecs() {
  // DSM3/DSM4 are the easy bibliographic sets; DSM1/DSM2/DSM5 the noisy
  // product sets (Section 4.3 / Figure 11 calibration).
  std::vector<DsmSpec> specs(5);
  specs[0] = {"DSM1", "Abt-Buy (pairs)", 3, 9575, 0.107, 30.0, 2600,
              DsmNoise(0.05, 0.16, 0.28, 0.08), 0x5d01ULL};
  specs[1] = {"DSM2", "Amazon-Google (pairs)", 4, 11460, 0.102, 24.0, 3200,
              DsmNoise(0.06, 0.16, 0.24, 0.10), 0x5d02ULL};
  specs[2] = {"DSM3", "DBLP-ACM (pairs)", 4, 12363, 0.180, 16.0, 2400,
              DsmNoise(0.015, 0.03, 0.02, 0.01), 0x5d03ULL};
  specs[3] = {"DSM4", "DBLP-Scholar (pairs)", 4, 28707, 0.187, 15.0, 2600,
              DsmNoise(0.04, 0.08, 0.05, 0.04), 0x5d04ULL};
  specs[4] = {"DSM5", "Walmart-Amazon (pairs)", 5, 10242, 0.094, 22.0, 3600,
              DsmNoise(0.20, 0.10, 0.08, 0.10), 0x5d05ULL};
  return specs;
}

}  // namespace

const std::vector<DsmSpec>& AllDsmSpecs() {
  static const std::vector<DsmSpec>* const kSpecs =
      new std::vector<DsmSpec>(BuildSpecs());
  return *kSpecs;
}

Result<DsmSpec> DsmSpecById(const std::string& id) {
  for (const DsmSpec& spec : AllDsmSpecs()) {
    if (spec.id == id) return spec;
  }
  return Status::NotFound("no DSM spec " + id);
}

DsmDataset GenerateDsm(const DsmSpec& spec, double scale, uint64_t seed) {
  DsmDataset dataset;
  dataset.id = spec.id;
  dataset.name = spec.name;

  const size_t n_pairs = std::max<size_t>(
      200, static_cast<size_t>(static_cast<double>(spec.total_pairs) * scale +
                               0.5));
  const size_t n_positives = std::max<size_t>(
      20, static_cast<size_t>(static_cast<double>(n_pairs) *
                              spec.positive_fraction));

  // Reuse the Clean-Clean machinery: a pool of base entities on the spec's
  // own vocabulary stream; positives are two noisy copies of one base,
  // negatives mix distinct bases (half of them "hard": sharing name words).
  CleanCleanSpec base_spec;
  base_spec.attrs = spec.attrs;
  base_spec.avg_words = spec.avg_words;
  base_spec.vocab_size = spec.vocab_size;
  const Vocabulary vocab(SplitMix64(spec.salt), spec.vocab_size);
  Rng rng(SplitMix64(seed ^ spec.salt));

  NoiseProfile half = spec.noise;
  half.char_edit_rate /= 2;
  half.token_drop_rate /= 2;
  half.token_insert_rate /= 2;
  half.synonym_rate /= 2;
  half.missing_rate /= 2;
  const Perturber perturber(half, &vocab);

  const size_t pool_size = std::max<size_t>(64, n_pairs / 3);
  std::vector<std::string> sentences;
  sentences.reserve(pool_size);
  {
    CleanCleanSpec gen = base_spec;
    gen.left_count = pool_size;
    gen.right_count = 20;
    gen.duplicates = 0;
    gen.salt = spec.salt;
    const CleanCleanDataset generated =
        GenerateCleanClean(gen, 1.0, seed ^ spec.salt);
    for (size_t i = 0; i < generated.left.size(); ++i) {
      sentences.push_back(generated.left.SentenceOf(i));
    }
  }

  const auto perturb_sentence = [&](const std::string& sentence) {
    return perturber.PerturbValue(sentence, rng);
  };

  std::vector<DsmPair> pairs;
  pairs.reserve(n_pairs);
  for (size_t i = 0; i < n_positives; ++i) {
    const std::string& base = sentences[rng.Below(sentences.size())];
    DsmPair pair;
    pair.left = perturb_sentence(base);
    pair.right = perturb_sentence(base);
    pair.label = 1;
    pairs.push_back(std::move(pair));
  }
  for (size_t i = n_positives; i < n_pairs; ++i) {
    const size_t a = rng.Below(sentences.size());
    size_t b = rng.Below(sentences.size());
    if (b == a) b = (b + 1) % sentences.size();
    DsmPair pair;
    pair.left = sentences[a];
    if (rng.Chance(0.5)) {
      // Hard negative: splice the head of a onto the tail of b, so token
      // overlap alone cannot separate the classes.
      const std::string& other = sentences[b];
      const size_t cut_a = pair.left.find(' ');
      const size_t cut_b = other.find(' ');
      pair.right = cut_a != std::string::npos && cut_b != std::string::npos
                       ? pair.left.substr(0, cut_a) + other.substr(cut_b)
                       : other;
    } else {
      pair.right = sentences[b];
    }
    pair.label = 0;
    pairs.push_back(std::move(pair));
  }

  // Deterministic shuffle, then 60/20/20 split.
  for (size_t i = pairs.size(); i > 1; --i) {
    std::swap(pairs[i - 1], pairs[rng.Below(i)]);
  }
  const size_t n_train = pairs.size() * 3 / 5;
  const size_t n_valid = pairs.size() / 5;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i < n_train) {
      dataset.train.push_back(std::move(pairs[i]));
    } else if (i < n_train + n_valid) {
      dataset.valid.push_back(std::move(pairs[i]));
    } else {
      dataset.test.push_back(std::move(pairs[i]));
    }
  }
  return dataset;
}

}  // namespace ember::datagen
