#ifndef EMBER_DATAGEN_DSM_DATASETS_H_
#define EMBER_DATAGEN_DSM_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/vocab.h"

namespace ember::datagen {

/// Spec of one DeepMatcher-style supervised matching dataset (Table 3
/// analogue): labelled entity pairs split 60/20/20.
struct DsmSpec {
  std::string id;
  std::string name;
  size_t attrs = 4;
  size_t total_pairs = 10000;
  double positive_fraction = 0.12;
  double avg_words = 14;
  size_t vocab_size = 2600;
  NoiseProfile noise;
  uint64_t salt = 0;
};

const std::vector<DsmSpec>& AllDsmSpecs();
Result<DsmSpec> DsmSpecById(const std::string& id);

/// One labelled pair: schema-agnostic sentences plus the match label.
struct DsmPair {
  std::string left;
  std::string right;
  int label = 0;
};

struct DsmDataset {
  std::string id;
  std::string name;
  std::vector<DsmPair> train;
  std::vector<DsmPair> valid;
  std::vector<DsmPair> test;
};

/// Generates the dataset at `scale` (pair count multiplied, floor 200).
/// Deterministic in (spec, scale, seed).
DsmDataset GenerateDsm(const DsmSpec& spec, double scale, uint64_t seed);

}  // namespace ember::datagen

#endif  // EMBER_DATAGEN_DSM_DATASETS_H_
