#ifndef EMBER_DATAGEN_CSV_H_
#define EMBER_DATAGEN_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ember::datagen {

/// Parses RFC-4180-style CSV text: comma separated, double quotes guard
/// embedded commas/newlines (including \r), `""` escapes a quote. Handles
/// both \n and \r\n line endings; a trailing newline does not produce an
/// empty record.
///
/// Fails closed (InvalidArgument, with the offending byte offset) instead
/// of guessing on malformed input: an unterminated quoted field at EOF, a
/// bare \r outside quotes that is not part of \r\n, or any character other
/// than a separator after a closing quote. A truncated or corrupted file
/// therefore surfaces as an error, never as a silently shortened table.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Serializes rows back to CSV, quoting only when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

}  // namespace ember::datagen

#endif  // EMBER_DATAGEN_CSV_H_
