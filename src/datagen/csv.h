#ifndef EMBER_DATAGEN_CSV_H_
#define EMBER_DATAGEN_CSV_H_

#include <string>
#include <vector>

namespace ember::datagen {

/// Parses RFC-4180-style CSV text: comma separated, double quotes guard
/// embedded commas/newlines, `""` escapes a quote. Handles both \n and \r\n
/// line endings; a trailing newline does not produce an empty record.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text);

/// Serializes rows back to CSV, quoting only when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

}  // namespace ember::datagen

#endif  // EMBER_DATAGEN_CSV_H_
