#include "core/pipeline.h"

#include <algorithm>
#include <array>
#include <map>

#include "cluster/bipartite_clustering.h"
#include "common/timer.h"
#include "embed/embedding_model.h"
#include "la/vector_ops.h"

namespace ember::core {

namespace {

/// Otsu's method over a fixed 64-bin histogram of the similarities: the
/// threshold maximizing between-class variance of the two sides.
float OtsuThreshold(const std::vector<cluster::ScoredPair>& pairs) {
  constexpr size_t kBins = 64;
  std::array<double, kBins> histogram{};
  for (const cluster::ScoredPair& pair : pairs) {
    const size_t bin = std::min<size_t>(
        static_cast<size_t>(std::max(0.f, pair.sim) * kBins), kBins - 1);
    histogram[bin] += 1;
  }
  const double total = static_cast<double>(pairs.size());
  double sum_all = 0;
  for (size_t b = 0; b < kBins; ++b) sum_all += (b + 0.5) * histogram[b];

  double best_variance = -1, best_threshold = 0.5;
  double weight_lo = 0, sum_lo = 0;
  for (size_t b = 0; b + 1 < kBins; ++b) {
    weight_lo += histogram[b];
    sum_lo += (b + 0.5) * histogram[b];
    const double weight_hi = total - weight_lo;
    if (weight_lo == 0 || weight_hi == 0) continue;
    const double mean_lo = sum_lo / weight_lo;
    const double mean_hi = (sum_all - sum_lo) / weight_hi;
    const double variance =
        weight_lo * weight_hi * (mean_lo - mean_hi) * (mean_lo - mean_hi);
    if (variance > best_variance) {
      best_variance = variance;
      best_threshold = static_cast<double>(b + 1) / kBins;
    }
  }
  return static_cast<float>(best_threshold);
}

}  // namespace

PipelineResult ErPipeline::RunOnVectors(const la::Matrix& left,
                                        const la::Matrix& right) const {
  PipelineResult result;
  const BlockingResult blocked =
      BlockCleanClean(left, right, options_.blocking);
  result.blocking_seconds = blocked.total_seconds();

  WallTimer timer;
  std::vector<cluster::ScoredPair> pairs;
  pairs.reserve(blocked.candidates.size());
  for (const auto& [l, r] : blocked.candidates) {
    const float cos = la::Dot(left.Row(l), right.Row(r), left.cols());
    pairs.push_back({l, r, 0.5f * (1.f + cos)});
  }
  result.threshold_used =
      options_.auto_threshold ? OtsuThreshold(pairs) : options_.delta;

  cluster::SortPairsDescending(pairs);
  std::map<std::pair<uint32_t, uint32_t>, float> sims;
  for (const cluster::ScoredPair& pair : pairs) sims[{pair.left, pair.right}] = pair.sim;
  const auto matched = cluster::UniqueMappingClustering(
      pairs, left.rows(), right.rows(), result.threshold_used);
  result.matches.reserve(matched.size());
  for (const auto& [l, r] : matched) {
    result.matches.push_back({l, r, sims.at({l, r})});
  }
  result.matching_seconds = timer.Seconds();
  return result;
}

PipelineResult ErPipeline::Run(
    const std::vector<std::string>& left_sentences,
    const std::vector<std::string>& right_sentences) const {
  auto model = embed::CreateModel(embed::ModelId::kSGtrT5);
  model->Initialize();
  const la::Matrix left = model->VectorizeAll(left_sentences);
  const la::Matrix right = model->VectorizeAll(right_sentences);
  return RunOnVectors(left, right);
}

}  // namespace ember::core
