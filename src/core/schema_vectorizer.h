#ifndef EMBER_CORE_SCHEMA_VECTORIZER_H_
#define EMBER_CORE_SCHEMA_VECTORIZER_H_

#include "datagen/benchmark_datasets.h"
#include "embed/embedding_model.h"
#include "la/matrix.h"

namespace ember::core {

/// Schema-based vectorization (Section 6 application): each attribute value
/// is embedded separately and the entity vector is the L2-normalized mean of
/// its non-empty attribute embeddings. Parallelized over entities.
la::Matrix SchemaBasedVectorize(embed::EmbeddingModel& model,
                                const datagen::EntityCollection& collection);

}  // namespace ember::core

#endif  // EMBER_CORE_SCHEMA_VECTORIZER_H_
