#include "core/vector_cache.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/matrix_io.h"

namespace ember::core {

namespace {

/// 0003 added the checksummed container (trailing length + FNV-1a) and the
/// temp-file + rename publish. 0002 files — and any torn, truncated, or
/// bit-flipped file — simply miss and are recomputed.
constexpr char kMagic[8] = {'E', 'M', 'B', 'V', '0', '0', '0', '3'};

bool LoadMatrix(const std::string& path, la::Matrix& out) {
  if (!fail::Check("cache/load").ok()) return false;  // injected miss
  Result<std::string> payload = ReadFileVerified(path, kMagic);
  if (!payload.ok()) return false;
  BinaryReader reader(payload.value());
  return la::ReadMatrix(reader, out) && reader.ok() &&
         reader.remaining() == 0;
}

Status SaveMatrix(const std::string& path, const la::Matrix& m) {
  EMBER_FAILPOINT("cache/store");
  BinaryWriter writer;
  la::WriteMatrix(writer, m);
  // Atomic publish: a crashed or concurrent writer never leaves a torn
  // file at the final path. A failed write only costs a future recompute.
  return WriteFileAtomic(path, kMagic, writer.buffer());
}

}  // namespace

VectorCache& VectorCache::Default() {
  static VectorCache* const kInstance = [] {
    const char* env = std::getenv("EMBER_CACHE");
    return new VectorCache(env != nullptr && *env != '\0' ? env
                                                          : "ember_cache");
  }();
  return *kInstance;
}

std::string VectorCache::path_for(const std::string& code,
                                  const std::string& key) const {
  return dir_ + "/" + code + "_" + key + ".vec";
}

la::Matrix VectorCache::GetOrCompute(embed::EmbeddingModel& model,
                                     const std::string& key,
                                     const std::vector<std::string>& sentences,
                                     double* fresh_seconds) {
  const std::string path = path_for(model.info().code, key);
  la::Matrix cached;
  if (enabled_ && LoadMatrix(path, cached) &&
      cached.rows() == sentences.size() && cached.cols() == model.info().dim) {
    if (fresh_seconds != nullptr) *fresh_seconds = -1.0;
    return cached;
  }
  model.Initialize();  // weight building stays out of the reported time
  WallTimer timer;
  la::Matrix fresh = model.VectorizeAll(sentences);
  const double seconds = timer.Seconds();
  if (fresh_seconds != nullptr) *fresh_seconds = seconds;
  if (enabled_) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // Stores ride the retry policy: a transient write failure (full disk
    // blip, injected fault) gets another chance; a persistent one is
    // reported once per storm thanks to the rate-limited warn, and the
    // caller still gets its freshly computed matrix either way.
    const Status stored = RetryStatus(
        store_retry_, HashBytes(path.data(), path.size()),
        [&] { return SaveMatrix(path, fresh); });
    if (!stored.ok()) {
      EMBER_WARN("vector cache store failed after %zu attempts: %s",
                 store_retry_.max_attempts, stored.ToString().c_str());
    }
  }
  return fresh;
}

}  // namespace ember::core
