#include "core/vector_cache.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/timer.h"

namespace ember::core {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'B', 'V', '0', '0', '0', '2'};

bool LoadMatrix(const std::string& path, la::Matrix& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  uint64_t rows = 0, cols = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  if (rows > (1ull << 32) || cols > (1ull << 20)) return false;
  out = la::Matrix(rows, cols);
  in.read(reinterpret_cast<char*>(out.Row(0)),
          static_cast<std::streamsize>(rows * cols * sizeof(float)));
  return static_cast<bool>(in);
}

void SaveMatrix(const std::string& path, const la::Matrix& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return;
  const uint64_t rows = m.rows(), cols = m.cols();
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.Row(0)),
            static_cast<std::streamsize>(rows * cols * sizeof(float)));
}

}  // namespace

VectorCache& VectorCache::Default() {
  static VectorCache* const kInstance = [] {
    const char* env = std::getenv("EMBER_CACHE");
    return new VectorCache(env != nullptr && *env != '\0' ? env
                                                          : "ember_cache");
  }();
  return *kInstance;
}

std::string VectorCache::path_for(const std::string& code,
                                  const std::string& key) const {
  return dir_ + "/" + code + "_" + key + ".vec";
}

la::Matrix VectorCache::GetOrCompute(embed::EmbeddingModel& model,
                                     const std::string& key,
                                     const std::vector<std::string>& sentences,
                                     double* fresh_seconds) {
  const std::string path = path_for(model.info().code, key);
  la::Matrix cached;
  if (enabled_ && LoadMatrix(path, cached) &&
      cached.rows() == sentences.size() && cached.cols() == model.info().dim) {
    if (fresh_seconds != nullptr) *fresh_seconds = -1.0;
    return cached;
  }
  model.Initialize();  // weight building stays out of the reported time
  WallTimer timer;
  la::Matrix fresh = model.VectorizeAll(sentences);
  const double seconds = timer.Seconds();
  if (fresh_seconds != nullptr) *fresh_seconds = seconds;
  if (enabled_) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    SaveMatrix(path, fresh);
  }
  return fresh;
}

}  // namespace ember::core
