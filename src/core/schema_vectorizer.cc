#include "core/schema_vectorizer.h"

#include <vector>

#include "common/parallel.h"
#include "la/vector_ops.h"

namespace ember::core {

la::Matrix SchemaBasedVectorize(embed::EmbeddingModel& model,
                                const datagen::EntityCollection& collection) {
  model.Initialize();
  const size_t dim = model.info().dim;
  la::Matrix out(collection.size(), dim);
  ParallelForEach(0, collection.size(), 0, [&](size_t entity) {
    std::vector<float> attribute(dim);
    float* row = out.Row(entity);
    size_t used = 0;
    for (const std::string& value : collection.ValuesOf(entity)) {
      if (value.empty()) continue;
      model.EncodeInto(value, attribute.data());
      la::Axpy(1.f, attribute.data(), row, dim);
      ++used;
    }
    if (used > 0) la::Scale(1.f / static_cast<float>(used), row, dim);
    la::NormalizeInPlace(row, dim);
  });
  return out;
}

}  // namespace ember::core
