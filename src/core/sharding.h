#ifndef EMBER_CORE_SHARDING_H_
#define EMBER_CORE_SHARDING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace ember::core {

/// Deterministic round-robin shard plan over a row-indexed corpus
/// (DESIGN.md §13): global row g lives in shard g % shard_count at local
/// index g / shard_count. Round-robin (rather than contiguous ranges) keeps
/// shard sizes balanced to within one row for ANY corpus size, and makes
/// the local -> global mapping a pure stride — global = shard + local *
/// shard_count — so per-shard neighbor ids remap to global space with one
/// multiply-add and no lookup table.
struct ShardPlan {
  uint32_t shard_count = 1;
  uint64_t total_rows = 0;

  uint32_t ShardOfRow(uint64_t global) const {
    return static_cast<uint32_t>(global % shard_count);
  }
  uint64_t LocalIndex(uint64_t global) const { return global / shard_count; }
  uint64_t GlobalId(uint32_t shard, uint64_t local) const {
    return shard + local * shard_count;
  }
  /// Rows landing in `shard`: ceil((total_rows - shard) / shard_count).
  uint64_t RowsInShard(uint32_t shard) const {
    return shard < total_rows
               ? (total_rows - shard + shard_count - 1) / shard_count
               : 0;
  }
};

/// Splits `corpus` into `shard_count` row-major matrices under ShardPlan
/// (shard s owns global rows s, s+N, s+2N, ...). Rows are copied; the
/// result is independent of the input's storage mode. shard_count must be
/// >= 1; shards beyond the corpus size come back empty (0 x cols).
std::vector<la::Matrix> PartitionRoundRobin(const la::Matrix& corpus,
                                            uint32_t shard_count);

/// The same plan over raw records, for partitioning sentences before
/// embedding shard-locally.
std::vector<std::vector<std::string>> PartitionRoundRobin(
    const std::vector<std::string>& rows, uint32_t shard_count);

}  // namespace ember::core

#endif  // EMBER_CORE_SHARDING_H_
