#include "core/sharding.h"

#include <cstring>

#include "common/logging.h"

namespace ember::core {

std::vector<la::Matrix> PartitionRoundRobin(const la::Matrix& corpus,
                                            uint32_t shard_count) {
  EMBER_CHECK(shard_count >= 1);
  const ShardPlan plan{shard_count, corpus.rows()};
  std::vector<la::Matrix> shards;
  shards.reserve(shard_count);
  for (uint32_t s = 0; s < shard_count; ++s) {
    shards.emplace_back(plan.RowsInShard(s), corpus.cols());
  }
  for (uint64_t g = 0; g < corpus.rows(); ++g) {
    la::Matrix& shard = shards[plan.ShardOfRow(g)];
    std::memcpy(shard.Row(plan.LocalIndex(g)), corpus.Row(g),
                corpus.cols() * sizeof(float));
  }
  return shards;
}

std::vector<std::vector<std::string>> PartitionRoundRobin(
    const std::vector<std::string>& rows, uint32_t shard_count) {
  EMBER_CHECK(shard_count >= 1);
  const ShardPlan plan{shard_count, rows.size()};
  std::vector<std::vector<std::string>> shards(shard_count);
  for (uint32_t s = 0; s < shard_count; ++s) {
    shards[s].reserve(plan.RowsInShard(s));
  }
  for (uint64_t g = 0; g < rows.size(); ++g) {
    shards[plan.ShardOfRow(g)].push_back(rows[g]);
  }
  return shards;
}

}  // namespace ember::core
