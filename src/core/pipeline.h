#ifndef EMBER_CORE_PIPELINE_H_
#define EMBER_CORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "la/matrix.h"

namespace ember::core {

struct PipelineOptions {
  BlockingOptions blocking;  // k = 10, exact index
  /// Fixed similarity threshold in [0, 1] (sim = (1 + cos) / 2).
  float delta = 0.5f;
  /// Replace `delta` with Otsu's threshold over the candidate similarity
  /// histogram (Section 7's data-driven alternative).
  bool auto_threshold = false;
};

struct PipelineMatch {
  uint32_t left = 0;
  uint32_t right = 0;
  float sim = 0;
};

struct PipelineResult {
  std::vector<PipelineMatch> matches;
  double blocking_seconds = 0;
  double matching_seconds = 0;
  float threshold_used = 0;
};

/// The end-to-end ER pipeline of Section 6: top-k blocking over pre-computed
/// vectors, candidate scoring, thresholding, and Unique Mapping Clustering.
class ErPipeline {
 public:
  explicit ErPipeline(const PipelineOptions& options) : options_(options) {}

  PipelineResult RunOnVectors(const la::Matrix& left,
                              const la::Matrix& right) const;

  /// Convenience entry point mirroring the paper's Figure 1 recommendation:
  /// embeds both collections with S-GTR-T5 (batch transform is parallelised
  /// over entities) and runs the vector pipeline. Model build time is NOT
  /// charged to the reported phase timings.
  PipelineResult Run(const std::vector<std::string>& left_sentences,
                     const std::vector<std::string>& right_sentences) const;

 private:
  PipelineOptions options_;
};

}  // namespace ember::core

#endif  // EMBER_CORE_PIPELINE_H_
