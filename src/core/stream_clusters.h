#ifndef EMBER_CORE_STREAM_CLUSTERS_H_
#define EMBER_CORE_STREAM_CLUSTERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eval/metrics.h"

namespace ember::core {

/// Incremental cluster bookkeeping for streaming ER (the stream-dedup
/// scenario): records arrive one at a time, each keyed by the live corpus's
/// global id, and a resolved match merges two clusters. Pairwise
/// precision/recall are maintained INCREMENTALLY — a merge of clusters A
/// and B adds exactly the new cross pairs (A.left x B.right plus
/// A.right x B.left) to the predicted count and checks only those against
/// the ground truth — so Metrics() is O(1) at any point in the stream
/// instead of O(pairs) per probe.
///
/// Clean-Clean semantics: every record belongs to the left or the right
/// collection, and only left-right pairs are scorable (same-side co-cluster
/// members predict nothing, matching EvaluateCleanCleanMatches).
class StreamClusters {
 public:
  /// `truth` must outlive this object.
  explicit StreamClusters(const eval::GroundTruth& truth) : truth_(&truth) {}

  /// Registers a newly streamed record as its own singleton cluster.
  /// `handle` is any unique key (the stream-dedup CLI uses the live
  /// corpus's global id); `index` is the record's index within its side's
  /// collection.
  void Add(uint64_t handle, bool left, uint32_t index);

  /// Merges the clusters containing `a` and `b` (no-op when already
  /// co-clustered). Both handles must have been Add'ed.
  void Merge(uint64_t a, uint64_t b);

  /// Pairwise precision/recall/F1 of the clustering so far.
  eval::PrfMetrics Metrics() const;

  uint64_t predicted_pairs() const { return predicted_; }
  uint64_t true_pairs() const { return tp_; }
  size_t records() const { return nodes_.size(); }

 private:
  struct Node {
    uint64_t parent = 0;
    uint64_t rank = 0;
    /// Member record indices per side; populated only on roots.
    std::vector<uint32_t> left;
    std::vector<uint32_t> right;
  };

  uint64_t Find(uint64_t handle);

  const eval::GroundTruth* truth_;
  std::unordered_map<uint64_t, Node> nodes_;
  uint64_t predicted_ = 0;  // cross-side pairs predicted by merges
  uint64_t tp_ = 0;         // of those, pairs present in the truth
};

}  // namespace ember::core

#endif  // EMBER_CORE_STREAM_CLUSTERS_H_
