#include "core/stream_clusters.h"

#include <utility>

#include "common/logging.h"

namespace ember::core {

void StreamClusters::Add(uint64_t handle, bool left, uint32_t index) {
  EMBER_CHECK_MSG(nodes_.count(handle) == 0,
                  "stream cluster handle %llu added twice",
                  static_cast<unsigned long long>(handle));
  Node node;
  node.parent = handle;
  (left ? node.left : node.right).push_back(index);
  nodes_.emplace(handle, std::move(node));
}

uint64_t StreamClusters::Find(uint64_t handle) {
  uint64_t root = handle;
  while (nodes_.at(root).parent != root) root = nodes_.at(root).parent;
  // Path compression keeps the amortized cost near-constant.
  while (nodes_.at(handle).parent != root) {
    uint64_t next = nodes_.at(handle).parent;
    nodes_.at(handle).parent = root;
    handle = next;
  }
  return root;
}

void StreamClusters::Merge(uint64_t a, uint64_t b) {
  uint64_t ra = Find(a);
  uint64_t rb = Find(b);
  if (ra == rb) return;
  Node& na = nodes_.at(ra);
  Node& nb = nodes_.at(rb);
  // Score exactly the pairs this merge creates: cross-side members across
  // the two clusters. Same-side pairs predict nothing in Clean-Clean ER.
  for (uint32_t l : na.left) {
    for (uint32_t r : nb.right) {
      ++predicted_;
      if (truth_->ContainsCleanClean(l, r)) ++tp_;
    }
  }
  for (uint32_t l : nb.left) {
    for (uint32_t r : na.right) {
      ++predicted_;
      if (truth_->ContainsCleanClean(l, r)) ++tp_;
    }
  }
  // Union by rank; the absorbed root's member lists move to the winner.
  uint64_t winner = ra;
  uint64_t loser = rb;
  if (nodes_.at(ra).rank < nodes_.at(rb).rank) std::swap(winner, loser);
  Node& w = nodes_.at(winner);
  Node& l = nodes_.at(loser);
  if (w.rank == l.rank) ++w.rank;
  l.parent = winner;
  w.left.insert(w.left.end(), l.left.begin(), l.left.end());
  w.right.insert(w.right.end(), l.right.begin(), l.right.end());
  l.left.clear();
  l.left.shrink_to_fit();
  l.right.clear();
  l.right.shrink_to_fit();
}

eval::PrfMetrics StreamClusters::Metrics() const {
  eval::PrfMetrics metrics;
  if (predicted_ > 0) {
    metrics.precision =
        static_cast<double>(tp_) / static_cast<double>(predicted_);
  }
  if (truth_->size() > 0) {
    metrics.recall =
        static_cast<double>(tp_) / static_cast<double>(truth_->size());
  }
  if (metrics.precision + metrics.recall > 0) {
    metrics.f1 = 2 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace ember::core
