#ifndef EMBER_CORE_BLOCKING_H_
#define EMBER_CORE_BLOCKING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "index/hnsw_index.h"
#include "index/lsh_index.h"
#include "la/matrix.h"

namespace ember::core {

struct BlockingOptions {
  size_t k = 10;
  bool use_hnsw = false;
  index::HnswOptions hnsw;
  bool use_lsh = false;
  index::LshOptions lsh;
};

struct BlockingResult {
  /// Clean-Clean: (left index, right index). Dirty: (query, neighbor).
  /// Per query: exactly min(k, collection size) pairs, ascending distance.
  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  double index_seconds = 0;
  double query_seconds = 0;
  double total_seconds() const { return index_seconds + query_seconds; }
};

/// Blocking via top-k nearest-neighbor search (Section 4.2): indexes the
/// right collection and batch-queries every left entity through the global
/// thread pool.
BlockingResult BlockCleanClean(const la::Matrix& left, const la::Matrix& right,
                               const BlockingOptions& options);

/// Move-in overload for callers done with `right`: the matrix is moved into
/// the index instead of copied, halving peak vector memory on large builds.
BlockingResult BlockCleanClean(const la::Matrix& left, la::Matrix&& right,
                               const BlockingOptions& options);

/// Dirty-ER blocking: the collection is indexed against itself; each record
/// retrieves k + 1 neighbors and drops itself.
BlockingResult BlockDirty(const la::Matrix& vectors,
                          const BlockingOptions& options);

/// Move-in overload for callers done with `vectors`; the self-join queries
/// run against the index's own (moved-in) copy.
BlockingResult BlockDirty(la::Matrix&& vectors, const BlockingOptions& options);

}  // namespace ember::core

#endif  // EMBER_CORE_BLOCKING_H_
