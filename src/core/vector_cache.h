#ifndef EMBER_CORE_VECTOR_CACHE_H_
#define EMBER_CORE_VECTOR_CACHE_H_

#include <string>
#include <vector>

#include "common/retry.h"
#include "embed/embedding_model.h"
#include "la/matrix.h"

namespace ember::core {

/// On-disk cache of batch-vectorized sentence matrices, keyed by model code
/// and a caller-chosen key. Files are little-endian dumps in the
/// checksummed "EMBV0003" container (common/binary_io.h), published
/// atomically via temp file + rename; stale-format, truncated, or
/// corrupted files fail closed — they miss and are recomputed.
class VectorCache {
 public:
  /// Process-wide instance rooted at $EMBER_CACHE or ./ember_cache.
  static VectorCache& Default();

  explicit VectorCache(std::string dir) : dir_(std::move(dir)) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  const std::string& dir() const { return dir_; }

  /// Backoff policy for transient store failures (a failed store only costs
  /// a future recompute, so attempts stay small). Loads are never retried:
  /// a corrupt entry misses deterministically and is recomputed.
  void set_store_retry(const RetryPolicy& policy) { store_retry_ = policy; }
  const RetryPolicy& store_retry() const { return store_retry_; }

  /// Returns the cached matrix for (model code, key) or vectorizes
  /// `sentences` and caches the result. When `fresh_seconds` is non-null it
  /// receives the vectorization time, or -1 on a cache hit.
  la::Matrix GetOrCompute(embed::EmbeddingModel& model, const std::string& key,
                          const std::vector<std::string>& sentences,
                          double* fresh_seconds = nullptr);

 private:
  std::string path_for(const std::string& code, const std::string& key) const;

  std::string dir_;
  bool enabled_ = true;
  RetryPolicy store_retry_;
};

}  // namespace ember::core

#endif  // EMBER_CORE_VECTOR_CACHE_H_
