#include "core/blocking.h"

#include <utility>

#include "common/timer.h"
#include "index/exact_index.h"
#include "obs/trace.h"

namespace ember::core {

namespace {

/// Builds the chosen index over `data` (moved in, never copied again) and
/// batch-queries `queries`. A null `queries` means self-join: the queries
/// are the index's own stored vectors, which is how the dirty path avoids
/// keeping a second copy of the collection alive.
std::vector<std::vector<index::Neighbor>> BuildAndQuery(
    la::Matrix data, const la::Matrix* queries, size_t k,
    const BlockingOptions& options, BlockingResult& result) {
  obs::Span span("core/block_build_query");
  span.AddCount("corpus_rows", data.rows());
  WallTimer timer;
  std::vector<std::vector<index::Neighbor>> neighbors;
  if (options.use_hnsw) {
    index::HnswIndex idx(options.hnsw);
    idx.Build(std::move(data));
    result.index_seconds = timer.Restart();
    neighbors = idx.QueryBatch(queries != nullptr ? *queries : idx.data(), k);
  } else if (options.use_lsh) {
    index::LshIndex idx(options.lsh);
    idx.Build(std::move(data));
    result.index_seconds = timer.Restart();
    neighbors = idx.QueryBatch(queries != nullptr ? *queries : idx.data(), k);
  } else {
    index::ExactIndex idx;
    idx.Build(std::move(data));
    result.index_seconds = timer.Restart();
    neighbors = idx.QueryBatch(queries != nullptr ? *queries : idx.data(), k);
  }
  result.query_seconds = timer.Restart();
  return neighbors;
}

BlockingResult CleanCleanFromNeighbors(
    const std::vector<std::vector<index::Neighbor>>& neighbors,
    BlockingResult result, size_t k) {
  result.candidates.reserve(neighbors.size() * k);
  for (size_t q = 0; q < neighbors.size(); ++q) {
    for (const index::Neighbor& n : neighbors[q]) {
      result.candidates.emplace_back(static_cast<uint32_t>(q), n.id);
    }
  }
  return result;
}

BlockingResult DirtyFromNeighbors(
    const std::vector<std::vector<index::Neighbor>>& neighbors,
    BlockingResult result, size_t k) {
  result.candidates.reserve(neighbors.size() * k);
  for (size_t q = 0; q < neighbors.size(); ++q) {
    size_t kept = 0;
    for (const index::Neighbor& n : neighbors[q]) {
      if (n.id == q) continue;
      if (kept++ == k) break;
      result.candidates.emplace_back(static_cast<uint32_t>(q), n.id);
    }
  }
  return result;
}

}  // namespace

BlockingResult BlockCleanClean(const la::Matrix& left, const la::Matrix& right,
                               const BlockingOptions& options) {
  BlockingResult result;
  const auto neighbors =
      BuildAndQuery(right, &left, options.k, options, result);
  return CleanCleanFromNeighbors(neighbors, std::move(result), options.k);
}

BlockingResult BlockCleanClean(const la::Matrix& left, la::Matrix&& right,
                               const BlockingOptions& options) {
  BlockingResult result;
  const auto neighbors =
      BuildAndQuery(std::move(right), &left, options.k, options, result);
  return CleanCleanFromNeighbors(neighbors, std::move(result), options.k);
}

BlockingResult BlockDirty(const la::Matrix& vectors,
                          const BlockingOptions& options) {
  BlockingResult result;
  const auto neighbors =
      BuildAndQuery(vectors, nullptr, options.k + 1, options, result);
  return DirtyFromNeighbors(neighbors, std::move(result), options.k);
}

BlockingResult BlockDirty(la::Matrix&& vectors,
                          const BlockingOptions& options) {
  BlockingResult result;
  const auto neighbors =
      BuildAndQuery(std::move(vectors), nullptr, options.k + 1, options, result);
  return DirtyFromNeighbors(neighbors, std::move(result), options.k);
}

}  // namespace ember::core
