#include "core/blocking.h"

#include "common/timer.h"
#include "index/exact_index.h"

namespace ember::core {

namespace {

/// Builds the chosen index over `data` and batch-queries `queries`.
std::vector<std::vector<index::Neighbor>> BuildAndQuery(
    const la::Matrix& data, const la::Matrix& queries, size_t k,
    const BlockingOptions& options, BlockingResult& result) {
  WallTimer timer;
  std::vector<std::vector<index::Neighbor>> neighbors;
  if (options.use_hnsw) {
    index::HnswIndex idx(options.hnsw);
    idx.Build(data);
    result.index_seconds = timer.Restart();
    neighbors = idx.QueryBatch(queries, k);
  } else if (options.use_lsh) {
    index::LshIndex idx(options.lsh);
    idx.Build(data);
    result.index_seconds = timer.Restart();
    neighbors = idx.QueryBatch(queries, k);
  } else {
    index::ExactIndex idx;
    idx.Build(data);
    result.index_seconds = timer.Restart();
    neighbors = idx.QueryBatch(queries, k);
  }
  result.query_seconds = timer.Restart();
  return neighbors;
}

}  // namespace

BlockingResult BlockCleanClean(const la::Matrix& left, const la::Matrix& right,
                               const BlockingOptions& options) {
  BlockingResult result;
  const auto neighbors =
      BuildAndQuery(right, left, options.k, options, result);
  result.candidates.reserve(neighbors.size() * options.k);
  for (size_t q = 0; q < neighbors.size(); ++q) {
    for (const index::Neighbor& n : neighbors[q]) {
      result.candidates.emplace_back(static_cast<uint32_t>(q), n.id);
    }
  }
  return result;
}

BlockingResult BlockDirty(const la::Matrix& vectors,
                          const BlockingOptions& options) {
  BlockingResult result;
  const auto neighbors =
      BuildAndQuery(vectors, vectors, options.k + 1, options, result);
  result.candidates.reserve(neighbors.size() * options.k);
  for (size_t q = 0; q < neighbors.size(); ++q) {
    size_t kept = 0;
    for (const index::Neighbor& n : neighbors[q]) {
      if (n.id == q) continue;
      if (kept++ == options.k) break;
      result.candidates.emplace_back(static_cast<uint32_t>(q), n.id);
    }
  }
  return result;
}

}  // namespace ember::core
