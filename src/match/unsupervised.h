#ifndef EMBER_MATCH_UNSUPERVISED_H_
#define EMBER_MATCH_UNSUPERVISED_H_

#include <vector>

#include "cluster/bipartite_clustering.h"
#include "eval/metrics.h"
#include "la/matrix.h"

namespace ember::match {

enum class ClusteringAlgorithm { kUmc, kExact, kKiraly };

const char* ClusteringAlgorithmName(ClusteringAlgorithm algorithm);

/// One evaluated threshold of a sweep.
struct SweepPoint {
  double threshold = 0;
  eval::PrfMetrics metrics;
  /// Clustering time at this threshold (similarities precomputed).
  double match_seconds = 0;
};

struct SweepResult {
  SweepPoint best;
  /// The largest threshold whose F1 stays within 95% of the best — the
  /// right edge of the F1 plateau (Figure 15's termination criterion).
  double termination_threshold = 0;
  double total_sweep_seconds = 0;
  std::vector<SweepPoint> points;
};

/// Unsupervised matching (Section 4.3): cosine similarities mapped to
/// sim = (1 + cos) / 2 in [0, 1], a bipartite clustering algorithm, and a
/// threshold sweep over delta in {0.05, 0.10, ..., 0.95}.
class UnsupervisedMatcher {
 public:
  /// Scored pairs between every left and right entity, computed through the
  /// blocked GemmBt kernel panel by panel. To bound memory on the largest
  /// datasets, when |left| x |right| exceeds an internal cap only the top
  /// 64 pairs per left entity are kept (a superset of anything the greedy
  /// bipartite algorithms can accept at any threshold of the sweep grid).
  static std::vector<cluster::ScoredPair> AllPairSimilarities(
      const la::Matrix& left, const la::Matrix& right);

  /// Sorts `pairs` descending in place, then sweeps the threshold grid.
  static SweepResult Sweep(
      std::vector<cluster::ScoredPair>& pairs, size_t n_left, size_t n_right,
      const eval::GroundTruth& truth,
      ClusteringAlgorithm algorithm = ClusteringAlgorithm::kUmc);
};

}  // namespace ember::match

#endif  // EMBER_MATCH_UNSUPERVISED_H_
