#ifndef EMBER_MATCH_SUPERVISED_H_
#define EMBER_MATCH_SUPERVISED_H_

#include <cstdint>

#include "datagen/dsm_datasets.h"
#include "embed/embedding_model.h"
#include "embed/model_registry.h"
#include "eval/metrics.h"
#include "nn/mlp.h"

namespace ember::match {

struct SupervisedOptions {
  nn::MlpClassifier::Options mlp;
  size_t epochs = 12;
  float decision_threshold = 0.5f;
};

struct SupervisedReport {
  eval::PrfMetrics test_metrics;
  /// Vectorization of the train split + MLP epochs (Table 6 t_t).
  double train_seconds = 0;
  /// Vectorization of the test split + prediction (Table 6 t_e).
  double test_seconds = 0;
  float final_train_loss = 0;
};

/// Supervised matching (Section 4.4): each labelled pair (l, r) becomes the
/// feature vector [|l - r| ; l * r ; cos(l, r)] over the model's embeddings,
/// classified by a small MLP.
class SupervisedMatcher {
 public:
  SupervisedMatcher(embed::EmbeddingModel& model,
                    const SupervisedOptions& options);

  /// Options sized for `info` (mlp.input_dim = 2 * dim + 1).
  static SupervisedOptions DefaultOptionsFor(const embed::ModelInfo& info);

  SupervisedReport TrainAndEvaluate(const datagen::DsmDataset& data);

 private:
  embed::EmbeddingModel& model_;
  SupervisedOptions options_;
};

}  // namespace ember::match

#endif  // EMBER_MATCH_SUPERVISED_H_
