#include "match/supervised.h"

#include <cmath>
#include <vector>

#include "common/timer.h"
#include "la/vector_ops.h"

namespace ember::match {

namespace {

/// [|l - r| ; l * r ; cos(l, r)] for one pair of embedding rows.
void PairFeatures(const float* l, const float* r, size_t dim, float* out) {
  for (size_t d = 0; d < dim; ++d) out[d] = std::fabs(l[d] - r[d]);
  for (size_t d = 0; d < dim; ++d) out[dim + d] = l[d] * r[d];
  out[2 * dim] = la::Dot(l, r, dim);  // rows are L2-normalized
}

/// Vectorizes a split (left column then right column, one batch each so the
/// parallel fan-out sees large batches) and emits the pair feature matrix.
la::Matrix FeaturizeSplit(embed::EmbeddingModel& model,
                          const std::vector<datagen::DsmPair>& split) {
  const size_t dim = model.info().dim;
  std::vector<std::string> lefts, rights;
  lefts.reserve(split.size());
  rights.reserve(split.size());
  for (const datagen::DsmPair& pair : split) {
    lefts.push_back(pair.left);
    rights.push_back(pair.right);
  }
  const la::Matrix lvec = model.VectorizeAll(lefts);
  const la::Matrix rvec = model.VectorizeAll(rights);
  la::Matrix features(split.size(), 2 * dim + 1);
  for (size_t i = 0; i < split.size(); ++i) {
    PairFeatures(lvec.Row(i), rvec.Row(i), dim, features.Row(i));
  }
  return features;
}

std::vector<int> Labels(const std::vector<datagen::DsmPair>& split) {
  std::vector<int> labels(split.size());
  for (size_t i = 0; i < split.size(); ++i) labels[i] = split[i].label ? 1 : 0;
  return labels;
}

}  // namespace

SupervisedMatcher::SupervisedMatcher(embed::EmbeddingModel& model,
                                     const SupervisedOptions& options)
    : model_(model), options_(options) {}

SupervisedOptions SupervisedMatcher::DefaultOptionsFor(
    const embed::ModelInfo& info) {
  SupervisedOptions options;
  options.mlp.input_dim = 2 * info.dim + 1;
  return options;
}

SupervisedReport SupervisedMatcher::TrainAndEvaluate(
    const datagen::DsmDataset& data) {
  model_.Initialize();
  SupervisedReport report;

  WallTimer train_timer;
  const la::Matrix train_features = FeaturizeSplit(model_, data.train);
  const std::vector<int> train_labels = Labels(data.train);
  nn::MlpClassifier classifier(options_.mlp);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    report.final_train_loss =
        classifier.TrainEpoch(train_features, train_labels);
  }
  report.train_seconds = train_timer.Seconds();

  WallTimer test_timer;
  const la::Matrix test_features = FeaturizeSplit(model_, data.test);
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < data.test.size(); ++i) {
    const bool predicted =
        classifier.Predict(test_features.Row(i)) >= options_.decision_threshold;
    const bool actual = data.test[i].label;
    tp += predicted && actual;
    fp += predicted && !actual;
    fn += !predicted && actual;
  }
  report.test_seconds = test_timer.Seconds();
  report.test_metrics.precision = tp + fp ? double(tp) / double(tp + fp) : 0;
  report.test_metrics.recall = tp + fn ? double(tp) / double(tp + fn) : 0;
  const double pr = report.test_metrics.precision + report.test_metrics.recall;
  report.test_metrics.f1 =
      pr > 0 ? 2 * report.test_metrics.precision * report.test_metrics.recall /
                   pr
             : 0;
  return report;
}

}  // namespace ember::match
