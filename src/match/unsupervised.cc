#include "match/unsupervised.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/timer.h"
#include "la/vector_ops.h"

namespace ember::match {

namespace {

/// Above this many total pairs, keep only the per-left top candidates.
constexpr size_t kDensePairCap = 4u << 20;
constexpr size_t kTopPerLeft = 64;
/// Left rows per GemmBt panel.
constexpr size_t kPanelRows = 128;

}  // namespace

const char* ClusteringAlgorithmName(ClusteringAlgorithm algorithm) {
  switch (algorithm) {
    case ClusteringAlgorithm::kUmc:
      return "UMC";
    case ClusteringAlgorithm::kExact:
      return "EXC";
    case ClusteringAlgorithm::kKiraly:
      return "KRC";
  }
  return "?";
}

std::vector<cluster::ScoredPair> UnsupervisedMatcher::AllPairSimilarities(
    const la::Matrix& left, const la::Matrix& right) {
  const size_t n_left = left.rows(), n_right = right.rows();
  const bool dense = n_left * n_right <= kDensePairCap;
  const size_t per_left = dense ? n_right : std::min(kTopPerLeft, n_right);

  std::vector<cluster::ScoredPair> pairs(n_left * per_left);
  // Panel the left side through GemmBt; each panel writes its own disjoint
  // slice of `pairs`, so the parallel fan-out is bit-deterministic.
  ParallelFor(0, n_left, kPanelRows, [&](size_t begin, size_t end) {
    for (size_t p0 = begin; p0 < end; p0 += kPanelRows) {
      const size_t p1 = std::min(p0 + kPanelRows, end);
      la::Matrix panel(p1 - p0, left.cols());
      for (size_t r = p0; r < p1; ++r) {
        const float* src = left.Row(r);
        std::copy(src, src + left.cols(), panel.Row(r - p0));
      }
      const la::Matrix scores = la::GemmBt(panel, right);
      for (size_t r = p0; r < p1; ++r) {
        const float* row = scores.Row(r - p0);
        cluster::ScoredPair* out = pairs.data() + r * per_left;
        if (dense) {
          for (size_t c = 0; c < n_right; ++c) {
            out[c] = {static_cast<uint32_t>(r), static_cast<uint32_t>(c),
                      0.5f * (1.f + row[c])};
          }
        } else {
          // Deterministic partial selection of the per-left top candidates.
          std::vector<cluster::ScoredPair> ranked(n_right);
          for (size_t c = 0; c < n_right; ++c) {
            ranked[c] = {static_cast<uint32_t>(r), static_cast<uint32_t>(c),
                         0.5f * (1.f + row[c])};
          }
          std::partial_sort(ranked.begin(), ranked.begin() + per_left,
                            ranked.end(),
                            [](const cluster::ScoredPair& a,
                               const cluster::ScoredPair& b) {
                              return a.sim > b.sim ||
                                     (a.sim == b.sim && a.right < b.right);
                            });
          std::copy(ranked.begin(), ranked.begin() + per_left, out);
        }
      }
    }
  });
  return pairs;
}

SweepResult UnsupervisedMatcher::Sweep(std::vector<cluster::ScoredPair>& pairs,
                                       size_t n_left, size_t n_right,
                                       const eval::GroundTruth& truth,
                                       ClusteringAlgorithm algorithm) {
  WallTimer sweep_timer;
  cluster::SortPairsDescending(pairs);

  SweepResult result;
  result.best.metrics = eval::PrfMetrics{};
  bool have_best = false;
  for (int step = 1; step <= 19; ++step) {
    const float threshold = static_cast<float>(step) * 0.05f;
    WallTimer timer;
    std::vector<std::pair<uint32_t, uint32_t>> matches;
    switch (algorithm) {
      case ClusteringAlgorithm::kUmc:
        matches =
            cluster::UniqueMappingClustering(pairs, n_left, n_right,
                                             threshold);
        break;
      case ClusteringAlgorithm::kExact:
        matches = cluster::ExactClustering(pairs, n_left, n_right, threshold);
        break;
      case ClusteringAlgorithm::kKiraly:
        matches = cluster::KiralyClustering(pairs, n_left, n_right,
                                            threshold);
        break;
    }
    SweepPoint point;
    point.threshold = threshold;
    point.match_seconds = timer.Seconds();
    point.metrics = eval::EvaluateCleanCleanMatches(matches, truth);
    if (!have_best || point.metrics.f1 > result.best.metrics.f1) {
      result.best = point;
      have_best = true;
    }
    result.points.push_back(point);
  }
  for (const SweepPoint& point : result.points) {
    if (point.metrics.f1 >= 0.95 * result.best.metrics.f1) {
      result.termination_threshold =
          std::max(result.termination_threshold, point.threshold);
    }
  }
  result.total_sweep_seconds = sweep_timer.Seconds();
  return result;
}

}  // namespace ember::match
