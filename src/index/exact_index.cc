#include "index/exact_index.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "la/matrix_io.h"
#include "la/vector_ops.h"
#include "obs/trace.h"

namespace ember::index {

namespace {

/// Data rows per scoring block: 256 rows x 768 floats ≈ 768 KB streamed
/// against a query tile that stays L1/L2-resident.
constexpr size_t kDataBlock = 256;
/// Queries per GemmBt tile in QueryBatch.
constexpr size_t kQueryBlock = 16;

/// Fixed-capacity top-k tracker: max-heap on the CloserThan order, so the
/// root is the current worst kept neighbor.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(uint32_t id, float distance) {
    const Neighbor candidate{id, distance};
    if (heap_.size() < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), CloserThan);
    } else if (CloserThan(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), CloserThan);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), CloserThan);
    }
  }

  std::vector<Neighbor> Sorted() && {
    std::sort(heap_.begin(), heap_.end(), CloserThan);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;
};

/// Candidates kept from the int8 scan before float rescoring. Wide enough
/// that a code-level tie or sub-scale score swap cannot push a true top-k
/// member out of the rescore set in practice (recall@10 >= 0.99 is enforced
/// by test and experiment).
size_t RescoreWidth(size_t k, size_t rows) {
  return std::min(rows, std::max(4 * k, static_cast<size_t>(32)));
}

/// Re-scores `approx` candidates with exact float dots and keeps the best
/// k. The final order is the usual total (distance, id) order, so the
/// result is independent of the candidate order coming in.
std::vector<Neighbor> RescoreWithFloat(const la::Matrix& data,
                                       const float* query,
                                       std::vector<Neighbor> approx,
                                       size_t k) {
  for (Neighbor& n : approx) {
    n.distance = 1.f - la::Dot(query, data.Row(n.id), data.cols());
  }
  std::sort(approx.begin(), approx.end(), CloserThan);
  if (approx.size() > k) approx.resize(k);
  return approx;
}

}  // namespace

void ExactIndex::Build(la::Matrix data) {
  obs::Span span("index/exact_build");
  span.AddCount("rows", data.rows());
  data_ = std::move(data);
  quantized_ = la::QuantizedMatrix();
}

void ExactIndex::Quantize() {
  obs::Span span("index/exact_quantize");
  span.AddCount("rows", data_.rows());
  quantized_ = la::QuantizedMatrix::Quantize(data_);
}

void ExactIndex::AttachQuantized(la::QuantizedMatrix quantized) {
  EMBER_CHECK(quantized.rows() == data_.rows() &&
              quantized.cols() == data_.cols());
  quantized_ = std::move(quantized);
}

std::vector<Neighbor> ExactIndex::Query(const float* query, size_t k) const {
  const size_t kept = std::min(k, data_.rows());
  if (quantized()) {
    // Int8 scan tier: quantize the query once, score every row through the
    // exact-integer kernel, keep a wide top-W by approximate distance, then
    // rescore W candidates with float dots. Scan order and kernels match
    // the batch path exactly, so single and batched queries agree
    // bit-for-bit.
    std::vector<int8_t> codes(data_.cols());
    la::QuantParams qp;
    la::QuantizeRow(query, data_.cols(), codes.data(), &qp);
    TopK top(RescoreWidth(kept, data_.rows()));
    for (size_t start = 0; start < data_.rows(); start += kDataBlock) {
      const size_t end = std::min(start + kDataBlock, data_.rows());
      for (size_t r = start; r < end; ++r) {
        const int32_t d =
            la::DotI8(codes.data(), quantized_.Row(r), data_.cols());
        top.Offer(static_cast<uint32_t>(r),
                  1.f - la::ApproxDot(qp, quantized_.Params(r), d,
                                      data_.cols()));
      }
    }
    return RescoreWithFloat(data_, query, std::move(top).Sorted(), kept);
  }
  TopK top(kept);
  // Blocked scan: the same row order as the tiled batch path, so results
  // match bit-for-bit.
  for (size_t start = 0; start < data_.rows(); start += kDataBlock) {
    const size_t end = std::min(start + kDataBlock, data_.rows());
    for (size_t r = start; r < end; ++r) {
      top.Offer(static_cast<uint32_t>(r),
                1.f - la::Dot(query, data_.Row(r), data_.cols()));
    }
  }
  return std::move(top).Sorted();
}

std::vector<std::vector<Neighbor>> ExactIndex::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  if (quantized()) return QueryBatchQuantized(queries, k);
  return BruteForceTopK(data_, queries, k);
}

std::vector<std::vector<Neighbor>> ExactIndex::QueryBatchQuantized(
    const la::Matrix& queries, size_t k) const {
  EMBER_CHECK(queries.cols() == data_.cols() || data_.rows() == 0);
  obs::Span span("index/exact_query_batch_i8");
  span.AddCount("queries", queries.rows());
  span.AddCount("corpus_rows", data_.rows());
  const obs::SpanContext parent = span.context();
  std::vector<std::vector<Neighbor>> results(queries.rows());
  if (data_.rows() == 0) return results;
  const size_t kept = std::min(k, data_.rows());
  const size_t width = RescoreWidth(kept, data_.rows());
  const size_t cols = data_.cols();

  // Same tiling as the float path, but the inner panes run GemmBtI8Strided
  // straight over the (possibly mmap'ed) code rows — no block copies, a
  // quarter of the memory traffic. Integer scores expand to approximate
  // float dots via the per-row QuantParams; the top `width` per query are
  // then rescored against the float rows.
  ParallelFor(0, queries.rows(), kQueryBlock, [&](size_t qb, size_t qe) {
    obs::Span chunk("index/exact_score_chunk_i8", parent, qb);
    chunk.AddCount("queries", qe - qb);
    for (size_t q0 = qb; q0 < qe; q0 += kQueryBlock) {
      const size_t q1 = std::min(q0 + kQueryBlock, qe);
      const size_t tile_rows = q1 - q0;
      std::vector<int8_t> tile(tile_rows * cols);
      std::vector<la::QuantParams> tile_params(tile_rows);
      for (size_t q = q0; q < q1; ++q) {
        la::QuantizeRow(queries.Row(q), cols, tile.data() + (q - q0) * cols,
                        &tile_params[q - q0]);
      }
      std::vector<TopK> tops;
      tops.reserve(tile_rows);
      for (size_t q = q0; q < q1; ++q) tops.emplace_back(width);

      std::vector<int32_t> scores;
      for (size_t start = 0; start < data_.rows(); start += kDataBlock) {
        const size_t end = std::min(start + kDataBlock, data_.rows());
        const size_t block_rows = end - start;
        scores.assign(tile_rows * block_rows, 0);
        la::GemmBtI8Strided(tile.data(), tile_rows, cols,
                            quantized_.codes() + start * cols, block_rows,
                            cols, cols, scores.data(), block_rows);
        for (size_t q = q0; q < q1; ++q) {
          const int32_t* row = scores.data() + (q - q0) * block_rows;
          const la::QuantParams& qp = tile_params[q - q0];
          TopK& top = tops[q - q0];
          for (size_t r = start; r < end; ++r) {
            top.Offer(static_cast<uint32_t>(r),
                      1.f - la::ApproxDot(qp, quantized_.Params(r),
                                          row[r - start], cols));
          }
        }
      }
      for (size_t q = q0; q < q1; ++q) {
        results[q] = RescoreWithFloat(data_, queries.Row(q),
                                      std::move(tops[q - q0]).Sorted(), kept);
      }
    }
  });
  return results;
}

std::vector<std::vector<Neighbor>> BruteForceTopK(const la::Matrix& data,
                                                  const la::Matrix& queries,
                                                  size_t k) {
  EMBER_CHECK(queries.cols() == data.cols() || data.rows() == 0);
  obs::Span span("index/exact_query_batch");
  span.AddCount("queries", queries.rows());
  span.AddCount("corpus_rows", data.rows());
  const obs::SpanContext parent = span.context();
  std::vector<std::vector<Neighbor>> results(queries.rows());
  if (data.rows() == 0) return results;
  const size_t kept = std::min(k, data.rows());

  // Parallel over query tiles; each tile writes only its own result slots.
  // Within a tile, scores come from GemmBt over (tile x data-block) panes —
  // bit-identical to Dot() per pair — consumed in ascending data order.
  ParallelFor(0, queries.rows(), kQueryBlock, [&](size_t qb, size_t qe) {
    obs::Span chunk("index/exact_score_chunk", parent, qb);
    chunk.AddCount("queries", qe - qb);
    for (size_t q0 = qb; q0 < qe; q0 += kQueryBlock) {
      const size_t q1 = std::min(q0 + kQueryBlock, qe);
      la::Matrix tile(q1 - q0, queries.cols());
      for (size_t q = q0; q < q1; ++q) {
        const float* src = queries.Row(q);
        std::copy(src, src + queries.cols(), tile.Row(q - q0));
      }
      std::vector<TopK> tops;
      tops.reserve(q1 - q0);
      for (size_t q = q0; q < q1; ++q) tops.emplace_back(kept);

      for (size_t start = 0; start < data.rows(); start += kDataBlock) {
        const size_t end = std::min(start + kDataBlock, data.rows());
        la::Matrix block(end - start, data.cols());
        for (size_t r = start; r < end; ++r) {
          const float* src = data.Row(r);
          std::copy(src, src + data.cols(), block.Row(r - start));
        }
        const la::Matrix scores = la::GemmBt(tile, block);
        for (size_t q = q0; q < q1; ++q) {
          const float* row = scores.Row(q - q0);
          TopK& top = tops[q - q0];
          for (size_t r = start; r < end; ++r) {
            top.Offer(static_cast<uint32_t>(r), 1.f - row[r - start]);
          }
        }
      }
      for (size_t q = q0; q < q1; ++q) {
        results[q] = std::move(tops[q - q0]).Sorted();
      }
    }
  });
  return results;
}

namespace {
constexpr uint32_t kExactFormatVersion = 1;
}  // namespace

void ExactIndex::Save(BinaryWriter& writer) const {
  writer.WriteU32(kExactFormatVersion);
  la::WriteMatrix(writer, data_);
}

bool ExactIndex::Load(BinaryReader& reader) {
  *this = ExactIndex();
  if (!fail::Check("index/load").ok()) {
    reader.Fail();
    return false;
  }
  if (reader.ReadU32() != kExactFormatVersion) {
    reader.Fail();
    return false;
  }
  la::Matrix data;
  if (!la::ReadMatrix(reader, data)) return false;
  data_ = std::move(data);
  return true;
}

}  // namespace ember::index
