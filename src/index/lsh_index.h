#ifndef EMBER_INDEX_LSH_INDEX_H_
#define EMBER_INDEX_LSH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/neighbor.h"
#include "la/matrix.h"

namespace ember {
class BinaryReader;
class BinaryWriter;
}  // namespace ember

namespace ember::index {

struct LshOptions {
  size_t tables = 8;
  size_t bits = 12;
  uint64_t seed = 1;
};

/// Random-hyperplane (SimHash) LSH for cosine similarity. Candidates are
/// gathered from the query's bucket in every table and re-ranked exactly;
/// when the buckets yield fewer than k candidates the query falls back to
/// an exact scan, so callers always receive min(k, size()) results.
class LshIndex {
 public:
  LshIndex() = default;
  explicit LshIndex(const LshOptions& options) : options_(options) {}

  /// Takes the data by value: pass an lvalue to copy, or std::move the
  /// matrix in to avoid doubling peak memory.
  void Build(la::Matrix data);

  size_t size() const { return data_.rows(); }

  /// Build parameters. The hyperplanes derive deterministically from
  /// options_.seed, so a rebuild with these options over the same data
  /// reproduces the tables bit-identically (what compaction relies on).
  const LshOptions& options() const { return options_; }

  /// The indexed vectors (e.g. for self-join querying after a move-in
  /// Build).
  const la::Matrix& data() const { return data_; }

  std::vector<Neighbor> Query(const float* query, size_t k) const;

  std::vector<std::vector<Neighbor>> QueryBatch(const la::Matrix& queries,
                                                size_t k) const;

  /// Appends a versioned binary image (options, vectors, hyperplanes,
  /// buckets); a Load() of those bytes answers queries bit-identically.
  void Save(BinaryWriter& writer) const;

  /// Restores an index saved by Save(). Fail-closed: returns false and
  /// leaves the index empty on truncated/corrupt payloads.
  bool Load(BinaryReader& reader);

  const la::Matrix& planes() const { return planes_; }

  /// The v1 image minus the two matrices: options + buckets. The EMBS0002
  /// container stores data and hyperplanes as aligned mmap-able sections
  /// and keeps only this residue as an opaque aux blob (the bucket maps are
  /// pointer-heavy and rebuild as heap structures either way).
  void SaveAux(BinaryWriter& writer) const;

  /// Counterpart of SaveAux: adopts externally-provided data/planes
  /// matrices (typically zero-copy views over an mmap'ed snapshot) and
  /// reads options + buckets from the aux blob. Fail-closed with the same
  /// guarantees as Load(), plus cross-shape checks between the matrices
  /// and the options.
  bool LoadAux(BinaryReader& reader, la::Matrix data, la::Matrix planes);

 private:
  uint32_t HashOf(const float* vector, size_t table) const;

  LshOptions options_;
  la::Matrix data_;
  la::Matrix planes_;  // (tables * bits) x dim
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> buckets_;
};

}  // namespace ember::index

#endif  // EMBER_INDEX_LSH_INDEX_H_
