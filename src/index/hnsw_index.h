#ifndef EMBER_INDEX_HNSW_INDEX_H_
#define EMBER_INDEX_HNSW_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/neighbor.h"
#include "la/matrix.h"

namespace ember {
class BinaryReader;
class BinaryWriter;
}  // namespace ember

namespace ember::index {

/// HNSW build/search parameters (Malkov & Yashunin defaults scaled to
/// ember's dataset sizes).
struct HnswOptions {
  size_t m = 16;               // neighbors kept per node above level 0
  size_t ef_construction = 100;
  size_t ef_search = 64;
  uint64_t seed = 1;
};

/// Work counters for one HNSW search, filled when the caller asks (the
/// traced QueryBatch path attaches them as span counters). Counting is
/// opt-in: a null stats pointer keeps the hot loop increment-free.
struct SearchStats {
  uint64_t hops = 0;            // nodes expanded (greedy steps + beam pops)
  uint64_t distance_evals = 0;  // la::Dot calls against the corpus
};

/// Epoch-stamped visited set (the hnswlib VisitedList trick): clearing
/// between searches is one epoch increment instead of an O(n) allocation +
/// memset, so the buffer is reused across every SearchLayer of a query and
/// across queries on the same thread.
class VisitedSet {
 public:
  /// Makes ids [0, n) unvisited. Allocates only when growing past the
  /// largest n seen; otherwise O(1) except on (u32) epoch wraparound.
  void Clear(size_t n) {
    if (stamps_.size() < n) stamps_.assign(n, 0);
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Marks id visited; returns whether it already was.
  bool TestAndSet(uint32_t id) {
    if (stamps_[id] == epoch_) return true;
    stamps_[id] = epoch_;
    return false;
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

/// Hierarchical Navigable Small World graph over normalized vectors.
/// Build is sequential and deterministic in (data, options). Search is
/// const and thread-safe; QueryBatch parallelizes over queries and is
/// bit-identical at every thread count (per-query results depend only on
/// the graph and the query; visited buffers are per-thread scratch that
/// never influences values).
class HnswIndex {
 public:
  HnswIndex() = default;
  explicit HnswIndex(const HnswOptions& options) : options_(options) {}

  /// Takes the data by value: pass an lvalue to copy (the index always owns
  /// its vectors), or std::move the matrix in to avoid doubling peak memory
  /// on large builds.
  void Build(la::Matrix data);

  size_t size() const { return data_.rows(); }

  /// The indexed vectors (e.g. for self-join querying after a move-in
  /// Build).
  const la::Matrix& data() const { return data_; }

  const HnswOptions& options() const { return options_; }
  uint32_t entry() const { return entry_; }
  size_t max_level() const { return max_level_; }

  /// The graph re-laid-out as one flat CSR: `levels[n]` level-lists per
  /// node, `entry_base` the exclusive prefix sum of those counts (rows + 1
  /// entries), `starts[entry_base[n] + l]` the adjacency offset of node n's
  /// level-l list (entry_base[rows] + 1 entries total), and `adj` the
  /// concatenated neighbor ids. This is the shape the EMBS0002 container
  /// stores, because four aligned POD arrays can be mmap'ed and searched in
  /// place where nested vectors cannot.
  struct FlatGraph {
    std::vector<uint32_t> levels;
    std::vector<uint64_t> entry_base;
    std::vector<uint64_t> starts;
    std::vector<uint32_t> adj;
  };
  FlatGraph Flatten() const;

  /// Adopts a flat CSR graph over externally-owned arrays (the mmap'ed
  /// snapshot path; the caller keeps the arrays alive). Revalidates every
  /// structural invariant Load() would — prefix-sum consistency, offsets
  /// monotone and in bounds, every link target in bounds with a list on
  /// that level, entry point on max_level — and fails closed: on any
  /// violation the index is left empty and false is returned.
  bool AttachFlat(la::Matrix data, const HnswOptions& options, uint32_t entry,
                  size_t max_level, const uint32_t* levels,
                  const uint64_t* entry_base, const uint64_t* starts,
                  uint64_t starts_count, const uint32_t* adj,
                  uint64_t adj_count);

  /// Converts the index to mutable owned storage: a flat-attached (mmap'ed)
  /// graph is materialized into nested heap links and view-backed vectors
  /// are copied into an owned matrix — the copy-on-write guard in front of
  /// every online insert. No-op when the index already owns nested storage.
  /// The streaming tier clones a serving snapshot's graph, thaws the clone,
  /// and mutates only the clone while readers keep the frozen original
  /// (RCU; DESIGN.md §14).
  void Thaw();

  /// Online insert: appends `rows` vectors and links each into the graph.
  /// Levels continue the exact seeded stream Build draws from, so
  /// Build(A) + AddBatch(B) produces a graph bit-identical to
  /// Build(A concat B) — incremental insertion is testable against the
  /// batch rebuild oracle. Thaws the index first; NOT thread-safe against
  /// concurrent queries on the same object (mutate a private copy).
  void AddBatch(const la::Matrix& rows);

  /// `stats`, when non-null, accumulates the search's hop/distance-eval
  /// counts (it is not reset: callers aggregate across queries).
  std::vector<Neighbor> Query(const float* query, size_t k,
                              SearchStats* stats = nullptr) const;

  std::vector<std::vector<Neighbor>> QueryBatch(const la::Matrix& queries,
                                                size_t k) const;

  /// Appends a versioned binary image (options, vectors, graph, entry
  /// point); a Load() of those bytes answers queries bit-identically to
  /// this index — no rebuild, no RNG.
  void Save(BinaryWriter& writer) const;

  /// Restores an index saved by Save(). Fail-closed: validates every link
  /// target and the entry point before accepting, returns false and leaves
  /// the index empty on any corruption.
  bool Load(BinaryReader& reader);

  /// Re-checks the graph invariants the search paths rely on (entry point
  /// and every link target in bounds, adjacency lists present on every
  /// level they are referenced from). Load() already enforces these; the
  /// serving layer re-runs them before trusting a hot-reloaded snapshot.
  bool ValidateGraph() const;

 private:
  /// Bounds-known view of one node's level-l adjacency list, independent of
  /// which storage backs it. All const search/save/validate paths read the
  /// graph only through Links()/LevelCount(), which is what lets one search
  /// implementation serve both heap-built and mmap-attached indexes.
  struct LinkView {
    const uint32_t* data = nullptr;
    size_t count = 0;
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + count; }
  };
  LinkView Links(uint32_t node, size_t level) const {
    if (flat_.active) {
      const uint64_t base = flat_.entry_base[node] + level;
      return {flat_.adj + flat_.starts[base],
              static_cast<size_t>(flat_.starts[base + 1] -
                                  flat_.starts[base])};
    }
    const std::vector<uint32_t>& v = links_[node][level];
    return {v.data(), v.size()};
  }
  size_t LevelCount(uint32_t node) const {
    return flat_.active ? flat_.levels[node] : links_[node].size();
  }

  float DistanceTo(const float* query, uint32_t node) const;
  /// Beam search on one level starting from `entry`; returns up to `ef`
  /// closest nodes, ascending. `visited` is caller-provided scratch.
  std::vector<Neighbor> SearchLayer(const float* query, Neighbor entry,
                                    size_t ef, size_t level,
                                    VisitedSet& visited,
                                    SearchStats* stats = nullptr) const;
  void Insert(uint32_t node, size_t node_level);
  /// Draws levels for and links nodes [first, rows) — the shared tail of
  /// Build and AddBatch. Skips the first `first` draws of the seeded level
  /// stream, which is what makes incremental insertion bit-identical to a
  /// batch rebuild.
  void LinkRows(size_t first);
  std::vector<uint32_t>& NeighborsOf(uint32_t node, size_t level);
  const std::vector<uint32_t>& NeighborsOf(uint32_t node, size_t level) const;

  HnswOptions options_;
  la::Matrix data_;
  /// links_[node][level] -> neighbor ids; node exists on [0, levels(node)].
  /// Mutable nested storage used by Build/Insert and the v1 Load path;
  /// empty when the graph is flat-attached.
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  /// Read-only CSR pointers when the graph was AttachFlat'ed (EMBS0002
  /// mmap path); the snapshot owns the backing arrays.
  struct FlatLinks {
    bool active = false;
    const uint32_t* levels = nullptr;
    const uint64_t* entry_base = nullptr;
    const uint64_t* starts = nullptr;
    const uint32_t* adj = nullptr;
  };
  FlatLinks flat_;
  uint32_t entry_ = 0;
  size_t max_level_ = 0;
  /// Scratch for the sequential Build/Insert path (queries use a
  /// per-thread set instead).
  VisitedSet build_visited_;
};

}  // namespace ember::index

#endif  // EMBER_INDEX_HNSW_INDEX_H_
