#ifndef EMBER_INDEX_HNSW_INDEX_H_
#define EMBER_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/neighbor.h"
#include "la/matrix.h"

namespace ember::index {

/// HNSW build/search parameters (Malkov & Yashunin defaults scaled to
/// ember's dataset sizes).
struct HnswOptions {
  size_t m = 16;               // neighbors kept per node above level 0
  size_t ef_construction = 100;
  size_t ef_search = 64;
  uint64_t seed = 1;
};

/// Hierarchical Navigable Small World graph over normalized vectors.
/// Build is sequential and deterministic in (data, options). Search is
/// const and thread-safe; QueryBatch parallelizes over queries and is
/// bit-identical at every thread count (per-query results depend only on
/// the graph and the query).
class HnswIndex {
 public:
  HnswIndex() = default;
  explicit HnswIndex(const HnswOptions& options) : options_(options) {}

  void Build(const la::Matrix& data);

  size_t size() const { return data_.rows(); }

  std::vector<Neighbor> Query(const float* query, size_t k) const;

  std::vector<std::vector<Neighbor>> QueryBatch(const la::Matrix& queries,
                                                size_t k) const;

 private:
  float DistanceTo(const float* query, uint32_t node) const;
  /// Beam search on one level starting from `entry`; returns up to `ef`
  /// closest nodes, ascending.
  std::vector<Neighbor> SearchLayer(const float* query, Neighbor entry,
                                    size_t ef, size_t level) const;
  void Insert(uint32_t node, size_t node_level);
  std::vector<uint32_t>& NeighborsOf(uint32_t node, size_t level);
  const std::vector<uint32_t>& NeighborsOf(uint32_t node, size_t level) const;

  HnswOptions options_;
  la::Matrix data_;
  /// links_[node][level] -> neighbor ids; node exists on [0, levels(node)].
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  uint32_t entry_ = 0;
  size_t max_level_ = 0;
};

}  // namespace ember::index

#endif  // EMBER_INDEX_HNSW_INDEX_H_
