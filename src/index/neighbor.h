#ifndef EMBER_INDEX_NEIGHBOR_H_
#define EMBER_INDEX_NEIGHBOR_H_

#include <cstdint>
#include <vector>

namespace ember::index {

/// One nearest-neighbor result. Distance is cosine distance (1 - dot) over
/// the normalized vectors all ember indexes store.
struct Neighbor {
  uint32_t id = 0;
  float distance = 0.f;
};

/// Strict-weak order used everywhere results are ranked: ascending
/// distance, ties broken by ascending id — total and deterministic.
inline bool CloserThan(const Neighbor& a, const Neighbor& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.id < b.id);
}

}  // namespace ember::index

#endif  // EMBER_INDEX_NEIGHBOR_H_
