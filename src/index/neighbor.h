#ifndef EMBER_INDEX_NEIGHBOR_H_
#define EMBER_INDEX_NEIGHBOR_H_

#include <cstdint>
#include <vector>

namespace ember::index {

/// One nearest-neighbor result. Distance is cosine distance (1 - dot) over
/// the normalized vectors all ember indexes store.
struct Neighbor {
  uint32_t id = 0;
  float distance = 0.f;
};

/// Strict-weak order used everywhere results are ranked: ascending
/// distance, ties broken by ascending id — total and deterministic.
inline bool CloserThan(const Neighbor& a, const Neighbor& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.id < b.id);
}

/// Remaps shard-local neighbor ids into the global id space of a
/// round-robin shard plan (core/sharding.h, DESIGN.md §13):
/// global = row_offset + local * shard_count. The offset/stride form makes
/// the unsharded case (offset 0, count 1) an identity, and because the map
/// is strictly increasing in the local id, it preserves the CloserThan
/// tie-break order within one shard's result list.
inline void RemapToGlobal(std::vector<Neighbor>& neighbors,
                          uint64_t row_offset, uint32_t shard_count) {
  for (Neighbor& n : neighbors) {
    n.id = static_cast<uint32_t>(row_offset +
                                 static_cast<uint64_t>(n.id) * shard_count);
  }
}

}  // namespace ember::index

#endif  // EMBER_INDEX_NEIGHBOR_H_
