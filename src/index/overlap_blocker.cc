#include "index/overlap_blocker.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "text/tokenizer.h"

namespace ember::index {

void OverlapBlocker::Build(const std::vector<std::string>& sentences) {
  postings_.clear();
  size_ = sentences.size();
  for (uint32_t i = 0; i < sentences.size(); ++i) {
    std::vector<std::string> tokens = text::Tokenize(sentences[i]);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const std::string& token : tokens) {
      postings_[token].push_back(i);
    }
  }
}

std::vector<uint32_t> OverlapBlocker::Query(const std::string& sentence,
                                            size_t max_per_query) const {
  std::vector<std::string> tokens = text::Tokenize(sentence);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());

  std::unordered_map<uint32_t, double> scores;
  for (const std::string& token : tokens) {
    const auto it = postings_.find(token);
    if (it == postings_.end()) continue;
    // Rare shared tokens are the informative ones.
    const double idf =
        std::log(1.0 + static_cast<double>(size_) /
                           static_cast<double>(it->second.size()));
    for (const uint32_t id : it->second) scores[id] += idf;
  }

  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(scores.size());
  for (const auto& [id, score] : scores) ranked.push_back({score, id});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  if (ranked.size() > max_per_query) ranked.resize(max_per_query);

  std::vector<uint32_t> out;
  out.reserve(ranked.size());
  for (const auto& [score, id] : ranked) out.push_back(id);
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> OverlapBlocker::CandidatesAgainst(
    const std::vector<std::string>& queries, size_t max_per_query) const {
  std::vector<std::vector<uint32_t>> per_query(queries.size());
  ParallelForEach(0, queries.size(), 0, [&](size_t q) {
    per_query[q] = Query(queries[q], max_per_query);
  });
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (uint32_t q = 0; q < queries.size(); ++q) {
    for (const uint32_t id : per_query[q]) out.emplace_back(q, id);
  }
  return out;
}

}  // namespace ember::index
