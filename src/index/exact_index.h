#ifndef EMBER_INDEX_EXACT_INDEX_H_
#define EMBER_INDEX_EXACT_INDEX_H_

#include <vector>

#include "index/neighbor.h"
#include "la/matrix.h"
#include "la/quantize.h"

namespace ember {
class BinaryReader;
class BinaryWriter;
}  // namespace ember

namespace ember::index {

/// Brute-force top-k of every `queries` row against the rows of `data`
/// (ascending cosine distance, ties by ascending id), parallelized over
/// query tiles. This is ExactIndex::QueryBatch without the ownership — the
/// serving layer's degraded mode scans another index's corpus matrix with
/// it, bit-identically to a real ExactIndex over the same data.
std::vector<std::vector<Neighbor>> BruteForceTopK(const la::Matrix& data,
                                                  const la::Matrix& queries,
                                                  size_t k);

/// Brute-force cosine index. Scoring is cache-blocked: batched queries tile
/// (query block x data block) through the GemmBt micro-kernel, which
/// accumulates every score in exactly the scalar Dot() order — so the
/// blocked path returns bit-identical results to the naive per-pair scan,
/// and QueryBatch is bit-identical at every thread count (each query owns
/// its result slot; the data scan order never changes).
class ExactIndex {
 public:
  /// Takes the data by value: pass an lvalue to copy, or std::move the
  /// matrix in to avoid doubling peak memory.
  void Build(la::Matrix data);

  size_t size() const { return data_.rows(); }
  size_t dim() const { return data_.cols(); }

  /// The indexed vectors (e.g. for self-join querying after a move-in
  /// Build).
  const la::Matrix& data() const { return data_; }

  /// Builds the int8 scan tier from the indexed float vectors. Queries then
  /// run the scan over 4x-smaller codes and rescore the top candidates with
  /// the float rows, keeping recall@k effectively lossless (see DESIGN.md
  /// §12 for the error model).
  void Quantize();

  /// Attaches a prebuilt quantized scan tier (the mmap'ed EMBS0002 path).
  /// Shape must match the indexed data; the caller keeps view storage alive.
  void AttachQuantized(la::QuantizedMatrix quantized);

  bool quantized() const { return !quantized_.empty(); }
  const la::QuantizedMatrix& quantized_matrix() const { return quantized_; }

  /// Top-k by ascending cosine distance, ties by ascending id. Returns
  /// min(k, size()) neighbors.
  std::vector<Neighbor> Query(const float* query, size_t k) const;

  /// Batched queries, parallelized over per-query chunks of the global
  /// thread pool with one top-k heap per query.
  std::vector<std::vector<Neighbor>> QueryBatch(const la::Matrix& queries,
                                                size_t k) const;

  /// Appends a versioned binary image of the index (vectors included);
  /// a Load() of those bytes answers queries bit-identically.
  void Save(BinaryWriter& writer) const;

  /// Restores an index saved by Save(). Fail-closed: on truncated or
  /// corrupt input returns false, fails the reader, and leaves the index
  /// empty — it never throws or reads out of bounds.
  bool Load(BinaryReader& reader);

 private:
  std::vector<std::vector<Neighbor>> QueryBatchQuantized(
      const la::Matrix& queries, size_t k) const;

  la::Matrix data_;
  la::QuantizedMatrix quantized_;
};

}  // namespace ember::index

#endif  // EMBER_INDEX_EXACT_INDEX_H_
