#ifndef EMBER_INDEX_OVERLAP_BLOCKER_H_
#define EMBER_INDEX_OVERLAP_BLOCKER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ember::index {

/// Token-overlap blocker (the classic symbolic baseline, used by the ZeroER
/// reproduction for candidate generation): an inverted index over tokens,
/// candidates ranked by idf-weighted shared-token count.
class OverlapBlocker {
 public:
  void Build(const std::vector<std::string>& sentences);

  size_t size() const { return size_; }

  /// Up to max_per_query candidate ids per query sentence, best overlap
  /// first, ties by ascending id. Queries with no shared token return
  /// nothing.
  std::vector<uint32_t> Query(const std::string& sentence,
                              size_t max_per_query) const;

  /// (query_index, candidate_id) pairs over a whole query collection,
  /// parallelized over queries.
  std::vector<std::pair<uint32_t, uint32_t>> CandidatesAgainst(
      const std::vector<std::string>& queries, size_t max_per_query) const;

 private:
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  size_t size_ = 0;
};

}  // namespace ember::index

#endif  // EMBER_INDEX_OVERLAP_BLOCKER_H_
