#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include <cstring>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "la/matrix_io.h"
#include "la/vector_ops.h"
#include "obs/trace.h"

namespace ember::index {

namespace {

/// Max-heap comparator (worst on top) for the result set.
bool WorseOnTop(const Neighbor& a, const Neighbor& b) {
  return CloserThan(a, b);
}

/// Min-heap comparator (best on top) for the expansion frontier.
bool BestOnTop(const Neighbor& a, const Neighbor& b) {
  return CloserThan(b, a);
}

/// Per-thread visited scratch for the const query path. Shared across
/// HnswIndex instances (Clear resizes on demand); safe because queries
/// never nest on one thread, and value-irrelevant because the set is
/// cleared before every search.
VisitedSet& QueryVisited() {
  thread_local VisitedSet visited;
  return visited;
}

}  // namespace

float HnswIndex::DistanceTo(const float* query, uint32_t node) const {
  return 1.f - la::Dot(query, data_.Row(node), data_.cols());
}

std::vector<uint32_t>& HnswIndex::NeighborsOf(uint32_t node, size_t level) {
  return links_[node][level];
}

const std::vector<uint32_t>& HnswIndex::NeighborsOf(uint32_t node,
                                                    size_t level) const {
  return links_[node][level];
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query,
                                             Neighbor entry, size_t ef,
                                             size_t level,
                                             VisitedSet& visited,
                                             SearchStats* stats) const {
  visited.Clear(data_.rows());
  visited.TestAndSet(entry.id);
  std::vector<Neighbor> frontier = {entry};  // min-heap
  std::vector<Neighbor> best = {entry};      // max-heap, capped at ef
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), BestOnTop);
    const Neighbor current = frontier.back();
    frontier.pop_back();
    if (best.size() >= ef && CloserThan(best.front(), current)) break;
    if (stats != nullptr) ++stats->hops;
    for (const uint32_t next : Links(current.id, level)) {
      if (visited.TestAndSet(next)) continue;
      if (stats != nullptr) ++stats->distance_evals;
      const Neighbor candidate{next, DistanceTo(query, next)};
      if (best.size() < ef || CloserThan(candidate, best.front())) {
        frontier.push_back(candidate);
        std::push_heap(frontier.begin(), frontier.end(), BestOnTop);
        best.push_back(candidate);
        std::push_heap(best.begin(), best.end(), WorseOnTop);
        if (best.size() > ef) {
          std::pop_heap(best.begin(), best.end(), WorseOnTop);
          best.pop_back();
        }
      }
    }
  }
  std::sort(best.begin(), best.end(), CloserThan);
  return best;
}

void HnswIndex::Insert(uint32_t node, size_t node_level) {
  const float* vec = data_.Row(node);
  Neighbor entry{entry_, DistanceTo(vec, entry_)};

  // Greedy descent through levels above the node's top level.
  for (size_t level = max_level_; level > node_level; --level) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (const uint32_t next : Links(entry.id, level)) {
        const float d = DistanceTo(vec, next);
        if (d < entry.distance) {
          entry = {next, d};
          improved = true;
        }
      }
    }
  }

  // Connect on [min(node_level, max_level_) .. 0].
  for (size_t level = std::min(node_level, max_level_) + 1; level-- > 0;) {
    const std::vector<Neighbor> found =
        SearchLayer(vec, entry, options_.ef_construction, level,
                    build_visited_);
    const size_t cap = level == 0 ? 2 * options_.m : options_.m;
    std::vector<uint32_t>& mine = NeighborsOf(node, level);
    for (const Neighbor& n : found) {
      if (mine.size() >= cap) break;
      mine.push_back(n.id);
      std::vector<uint32_t>& theirs = NeighborsOf(n.id, level);
      theirs.push_back(node);
      if (theirs.size() > cap) {
        // Keep the cap closest links of the overfull node (simple pruning).
        std::vector<Neighbor> ranked;
        ranked.reserve(theirs.size());
        for (const uint32_t t : theirs) {
          ranked.push_back({t, DistanceTo(data_.Row(n.id), t)});
        }
        std::sort(ranked.begin(), ranked.end(), CloserThan);
        theirs.clear();
        for (size_t i = 0; i < cap; ++i) theirs.push_back(ranked[i].id);
      }
    }
    entry = found.front();
  }

  if (node_level > max_level_) {
    max_level_ = node_level;
    entry_ = node;
  }
}

void HnswIndex::LinkRows(size_t first) {
  const double level_mult = 1.0 / std::log(static_cast<double>(options_.m));
  Rng rng(SplitMix64(options_.seed ^ 0x6a57ULL));
  // One Uniform() per already-linked node: fast-forwarding the stream makes
  // node n draw the same level whether it arrived in the original Build or
  // in a later AddBatch.
  for (size_t i = 0; i < first; ++i) rng.Uniform();
  for (uint32_t node = first; node < data_.rows(); ++node) {
    double u = rng.Uniform();
    if (u <= 1e-12) u = 1e-12;
    const size_t node_level = static_cast<size_t>(-std::log(u) * level_mult);
    links_[node].assign(node_level + 1, {});
    if (node == 0) {
      max_level_ = node_level;
      continue;
    }
    Insert(node, node_level);
  }
}

void HnswIndex::Build(la::Matrix data) {
  obs::Span span("index/hnsw_build");
  span.AddCount("rows", data.rows());
  data_ = std::move(data);
  links_.assign(data_.rows(), {});
  flat_ = FlatLinks();
  if (data_.rows() == 0) return;
  entry_ = 0;
  max_level_ = 0;
  LinkRows(0);
}

void HnswIndex::Thaw() {
  if (flat_.active) {
    const size_t rows = data_.rows();
    std::vector<std::vector<std::vector<uint32_t>>> links(rows);
    for (uint32_t node = 0; node < rows; ++node) {
      links[node].resize(flat_.levels[node]);
      for (size_t level = 0; level < flat_.levels[node]; ++level) {
        const LinkView view = Links(node, level);
        links[node][level].assign(view.begin(), view.end());
      }
    }
    links_ = std::move(links);
    flat_ = FlatLinks();
  }
  if (data_.is_view()) {
    la::Matrix owned(data_.rows(), data_.cols());
    std::memcpy(owned.data(), data_.data(),
                data_.rows() * data_.cols() * sizeof(float));
    data_ = std::move(owned);
  }
}

void HnswIndex::AddBatch(const la::Matrix& rows) {
  Thaw();
  if (rows.rows() == 0) return;
  const size_t old_rows = data_.rows();
  const size_t cols = old_rows > 0 ? data_.cols() : rows.cols();
  EMBER_CHECK(rows.cols() == cols);
  la::Matrix grown(old_rows + rows.rows(), cols);
  if (old_rows > 0) {
    std::memcpy(grown.data(), data_.data(), old_rows * cols * sizeof(float));
  }
  std::memcpy(grown.Row(old_rows), rows.data(),
              rows.rows() * cols * sizeof(float));
  data_ = std::move(grown);
  links_.resize(data_.rows());
  if (old_rows == 0) {
    entry_ = 0;
    max_level_ = 0;
  }
  LinkRows(old_rows);
}

std::vector<Neighbor> HnswIndex::Query(const float* query, size_t k,
                                       SearchStats* stats) const {
  if (data_.rows() == 0) return {};
  Neighbor entry{entry_, DistanceTo(query, entry_)};
  if (stats != nullptr) ++stats->distance_evals;
  for (size_t level = max_level_; level > 0; --level) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (stats != nullptr) ++stats->hops;
      for (const uint32_t next : Links(entry.id, level)) {
        const float d = DistanceTo(query, next);
        if (stats != nullptr) ++stats->distance_evals;
        if (d < entry.distance) {
          entry = {next, d};
          improved = true;
        }
      }
    }
  }
  std::vector<Neighbor> best =
      SearchLayer(query, entry, std::max(k, options_.ef_search), 0,
                  QueryVisited(), stats);
  if (best.size() > k) best.resize(k);
  return best;
}

std::vector<std::vector<Neighbor>> HnswIndex::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  obs::Span span("index/hnsw_query_batch");
  span.AddCount("queries", queries.rows());
  const obs::SpanContext parent = span.context();
  std::vector<std::vector<Neighbor>> results(queries.rows());
  ParallelForEach(0, queries.rows(), 0, [&](size_t q) {
    // Per-query spans are keyed by the query index, and the search-work
    // counters ride on the span; with tracing off the stats pointer is
    // null and Query's counting branches never fire.
    if (obs::Tracer::Enabled()) {
      obs::Span query_span("index/hnsw_query", parent, q);
      SearchStats stats;
      results[q] = Query(queries.Row(q), k, &stats);
      query_span.AddCount("hops", stats.hops);
      query_span.AddCount("distance_evals", stats.distance_evals);
    } else {
      results[q] = Query(queries.Row(q), k);
    }
  });
  return results;
}

namespace {
constexpr uint32_t kHnswFormatVersion = 1;
/// Level-count ceiling on load: with level_mult = 1/ln(2) the chance of a
/// node drawing level 64 is ~2^-64, so anything above it is corruption.
constexpr uint64_t kMaxLevels = 64;
}  // namespace

void HnswIndex::Save(BinaryWriter& writer) const {
  writer.WriteU32(kHnswFormatVersion);
  writer.WriteU64(options_.m);
  writer.WriteU64(options_.ef_construction);
  writer.WriteU64(options_.ef_search);
  writer.WriteU64(options_.seed);
  la::WriteMatrix(writer, data_);
  writer.WriteU32(entry_);
  writer.WriteU64(max_level_);
  // Written through the storage-neutral accessors, so a flat-attached
  // (mmap'ed) index saves the exact bytes a heap-built one would — the v1
  // format stays the conversion oracle in both directions.
  for (uint32_t node = 0; node < data_.rows(); ++node) {
    const size_t levels = LevelCount(node);
    writer.WriteU64(levels);
    for (size_t level = 0; level < levels; ++level) {
      const LinkView view = Links(node, level);
      writer.WriteU64(view.count);
      writer.WriteRaw(view.data, view.count * sizeof(uint32_t));
    }
  }
}

bool HnswIndex::Load(BinaryReader& reader) {
  *this = HnswIndex();
  if (!fail::Check("index/load").ok()) {
    reader.Fail();
    return false;
  }
  if (reader.ReadU32() != kHnswFormatVersion) {
    reader.Fail();
    return false;
  }
  options_.m = reader.ReadU64();
  options_.ef_construction = reader.ReadU64();
  options_.ef_search = reader.ReadU64();
  options_.seed = reader.ReadU64();
  la::Matrix data;
  if (!la::ReadMatrix(reader, data)) return false;
  const uint32_t entry = reader.ReadU32();
  const uint64_t max_level = reader.ReadU64();
  const size_t rows = data.rows();
  std::vector<std::vector<std::vector<uint32_t>>> links(rows);
  for (size_t node = 0; node < rows; ++node) {
    const uint64_t levels = reader.ReadU64();
    if (!reader.ok() || levels == 0 || levels > kMaxLevels) {
      reader.Fail();
      return false;
    }
    links[node].resize(levels);
    for (uint64_t level = 0; level < levels; ++level) {
      links[node][level] = reader.ReadPodVector<uint32_t>();
      for (const uint32_t target : links[node][level]) {
        if (target >= rows) {
          reader.Fail();
          return false;
        }
      }
    }
  }
  // Graph invariants the search paths rely on: a valid entry point that
  // actually exists on every level up to max_level_, and every level-l link
  // pointing at a node that has a level-l adjacency list of its own.
  if (!reader.ok() ||
      (rows > 0 && (entry >= rows || max_level >= links[entry].size()))) {
    reader.Fail();
    return false;
  }
  for (size_t node = 0; node < rows; ++node) {
    for (size_t level = 0; level < links[node].size(); ++level) {
      for (const uint32_t target : links[node][level]) {
        if (links[target].size() <= level) {
          reader.Fail();
          return false;
        }
      }
    }
  }
  data_ = std::move(data);
  links_ = std::move(links);
  entry_ = entry;
  max_level_ = max_level;
  return true;
}

bool HnswIndex::ValidateGraph() const {
  const size_t rows = data_.rows();
  if (!flat_.active && links_.size() != rows) return false;
  if (rows == 0) return true;
  if (entry_ >= rows || LevelCount(entry_) == 0 ||
      max_level_ >= LevelCount(entry_)) {
    return false;
  }
  for (uint32_t node = 0; node < rows; ++node) {
    const size_t levels = LevelCount(node);
    if (levels == 0) return false;
    for (size_t level = 0; level < levels; ++level) {
      for (const uint32_t target : Links(node, level)) {
        if (target >= rows || LevelCount(target) <= level) return false;
      }
    }
  }
  return true;
}

HnswIndex::FlatGraph HnswIndex::Flatten() const {
  FlatGraph flat;
  const size_t rows = data_.rows();
  flat.levels.reserve(rows);
  flat.entry_base.reserve(rows + 1);
  flat.entry_base.push_back(0);
  for (uint32_t node = 0; node < rows; ++node) {
    const size_t levels = LevelCount(node);
    flat.levels.push_back(static_cast<uint32_t>(levels));
    flat.entry_base.push_back(flat.entry_base.back() + levels);
  }
  flat.starts.reserve(flat.entry_base.back() + 1);
  flat.starts.push_back(0);
  for (uint32_t node = 0; node < rows; ++node) {
    for (size_t level = 0; level < LevelCount(node); ++level) {
      const LinkView view = Links(node, level);
      flat.adj.insert(flat.adj.end(), view.begin(), view.end());
      flat.starts.push_back(flat.adj.size());
    }
  }
  return flat;
}

bool HnswIndex::AttachFlat(la::Matrix data, const HnswOptions& options,
                           uint32_t entry, size_t max_level,
                           const uint32_t* levels, const uint64_t* entry_base,
                           const uint64_t* starts, uint64_t starts_count,
                           const uint32_t* adj, uint64_t adj_count) {
  *this = HnswIndex();
  const size_t rows = data.rows();
  // Structural validation before a single pointer is trusted: the CSR
  // arrays come straight out of an mmap'ed file, so every invariant the
  // nested-vector Load() enforces is re-checked here against the flat
  // encoding. Anything off leaves the index empty (fail closed).
  if (entry_base[0] != 0) return false;
  for (size_t node = 0; node < rows; ++node) {
    const uint32_t count = levels[node];
    if (count == 0 || count > kMaxLevels) return false;
    if (entry_base[node + 1] != entry_base[node] + count) return false;
  }
  if (starts_count != entry_base[rows] + 1) return false;
  if (starts[0] != 0 || starts[starts_count - 1] != adj_count) return false;
  for (uint64_t i = 0; i + 1 < starts_count; ++i) {
    if (starts[i] > starts[i + 1]) return false;
  }
  for (uint64_t i = 0; i < adj_count; ++i) {
    if (adj[i] >= rows) return false;
  }
  if (rows > 0 && (entry >= rows || max_level >= levels[entry])) return false;
  // Cross-level check (level-l links target nodes that exist on level l)
  // runs through the accessors, so activate the flat view first; on failure
  // the index is reset to empty below.
  data_ = std::move(data);
  options_ = options;
  entry_ = entry;
  max_level_ = max_level;
  flat_ = FlatLinks{true, levels, entry_base, starts, adj};
  for (uint32_t node = 0; node < rows; ++node) {
    for (size_t level = 0; level < levels[node]; ++level) {
      for (const uint32_t target : Links(node, level)) {
        if (levels[target] <= level) {
          *this = HnswIndex();
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace ember::index
