#include "index/lsh_index.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "la/matrix_io.h"
#include "la/vector_ops.h"
#include "obs/trace.h"

namespace ember::index {

uint32_t LshIndex::HashOf(const float* vector, size_t table) const {
  uint32_t code = 0;
  for (size_t b = 0; b < options_.bits; ++b) {
    const float* plane = planes_.Row(table * options_.bits + b);
    code = (code << 1) |
           (la::Dot(vector, plane, data_.cols()) >= 0.f ? 1u : 0u);
  }
  return code;
}

void LshIndex::Build(la::Matrix data) {
  obs::Span span("index/lsh_build");
  span.AddCount("rows", data.rows());
  data_ = std::move(data);
  buckets_.assign(options_.tables, {});
  if (data_.rows() == 0) return;
  planes_ = la::Matrix(options_.tables * options_.bits, data_.cols());
  Rng rng(SplitMix64(options_.seed ^ 0x15aULL));
  planes_.FillGaussian(rng, 1.f);
  for (uint32_t r = 0; r < data_.rows(); ++r) {
    for (size_t t = 0; t < options_.tables; ++t) {
      buckets_[t][HashOf(data_.Row(r), t)].push_back(r);
    }
  }
}

std::vector<Neighbor> LshIndex::Query(const float* query, size_t k) const {
  if (data_.rows() == 0) return {};
  const size_t kept = std::min(k, data_.rows());
  std::vector<uint32_t> candidates;
  for (size_t t = 0; t < options_.tables; ++t) {
    const auto it = buckets_[t].find(HashOf(query, t));
    if (it == buckets_[t].end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() < kept) {
    // Bucket miss: exact fallback keeps the k-per-query contract.
    candidates.resize(data_.rows());
    for (uint32_t r = 0; r < data_.rows(); ++r) candidates[r] = r;
  }
  std::vector<Neighbor> ranked;
  ranked.reserve(candidates.size());
  for (const uint32_t r : candidates) {
    ranked.push_back({r, 1.f - la::Dot(query, data_.Row(r), data_.cols())});
  }
  std::sort(ranked.begin(), ranked.end(), CloserThan);
  ranked.resize(kept);
  return ranked;
}

std::vector<std::vector<Neighbor>> LshIndex::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  obs::Span span("index/lsh_query_batch");
  span.AddCount("queries", queries.rows());
  const obs::SpanContext parent = span.context();
  std::vector<std::vector<Neighbor>> results(queries.rows());
  ParallelFor(0, queries.rows(), 0, [&](size_t lo, size_t hi) {
    obs::Span chunk("index/lsh_query_chunk", parent, lo);
    chunk.AddCount("queries", hi - lo);
    for (size_t q = lo; q < hi; ++q) {
      results[q] = Query(queries.Row(q), k);
    }
  });
  return results;
}

namespace {

constexpr uint32_t kLshFormatVersion = 1;

using BucketTables =
    std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>>;

void WriteBuckets(BinaryWriter& writer, const BucketTables& buckets) {
  writer.WriteU64(buckets.size());
  for (const auto& table : buckets) {
    // Sorted by hash so the byte image is deterministic regardless of the
    // unordered_map's iteration order (snapshots of equal indexes are
    // byte-equal, which the round-trip tests exploit).
    std::vector<uint32_t> hashes;
    hashes.reserve(table.size());
    for (const auto& [hash, ids] : table) hashes.push_back(hash);
    std::sort(hashes.begin(), hashes.end());
    writer.WriteU64(hashes.size());
    for (const uint32_t hash : hashes) {
      writer.WriteU32(hash);
      writer.WritePodVector(table.at(hash));
    }
  }
}

bool ReadBuckets(BinaryReader& reader, size_t expected_tables, size_t rows,
                 BucketTables* out) {
  const uint64_t tables = reader.ReadU64();
  if (!reader.ok() || tables != expected_tables ||
      tables > reader.remaining()) {  // each table costs >= 1 byte
    reader.Fail();
    return false;
  }
  BucketTables buckets(tables);
  for (auto& table : buckets) {
    const uint64_t entries = reader.ReadU64();
    if (!reader.ok() || entries > reader.remaining() / sizeof(uint32_t)) {
      reader.Fail();
      return false;
    }
    table.reserve(entries);
    for (uint64_t e = 0; e < entries; ++e) {
      const uint32_t hash = reader.ReadU32();
      std::vector<uint32_t> ids = reader.ReadPodVector<uint32_t>();
      for (const uint32_t id : ids) {
        if (id >= rows) {
          reader.Fail();
          return false;
        }
      }
      if (!table.emplace(hash, std::move(ids)).second) {
        reader.Fail();  // duplicate bucket hash
        return false;
      }
    }
  }
  if (!reader.ok()) return false;
  *out = std::move(buckets);
  return true;
}

}  // namespace

void LshIndex::Save(BinaryWriter& writer) const {
  writer.WriteU32(kLshFormatVersion);
  writer.WriteU64(options_.tables);
  writer.WriteU64(options_.bits);
  writer.WriteU64(options_.seed);
  la::WriteMatrix(writer, data_);
  la::WriteMatrix(writer, planes_);
  WriteBuckets(writer, buckets_);
}

bool LshIndex::Load(BinaryReader& reader) {
  *this = LshIndex();
  if (!fail::Check("index/load").ok()) {
    reader.Fail();
    return false;
  }
  if (reader.ReadU32() != kLshFormatVersion) {
    reader.Fail();
    return false;
  }
  LshOptions options;
  options.tables = reader.ReadU64();
  options.bits = reader.ReadU64();
  options.seed = reader.ReadU64();
  la::Matrix data, planes;
  if (!la::ReadMatrix(reader, data) || !la::ReadMatrix(reader, planes)) {
    return false;
  }
  BucketTables buckets;
  if (!ReadBuckets(reader, options.tables, data.rows(), &buckets)) {
    return false;
  }
  options_ = options;
  data_ = std::move(data);
  planes_ = std::move(planes);
  buckets_ = std::move(buckets);
  return true;
}

void LshIndex::SaveAux(BinaryWriter& writer) const {
  writer.WriteU32(kLshFormatVersion);
  writer.WriteU64(options_.tables);
  writer.WriteU64(options_.bits);
  writer.WriteU64(options_.seed);
  WriteBuckets(writer, buckets_);
}

bool LshIndex::LoadAux(BinaryReader& reader, la::Matrix data,
                       la::Matrix planes) {
  *this = LshIndex();
  if (!fail::Check("index/load").ok()) {
    reader.Fail();
    return false;
  }
  if (reader.ReadU32() != kLshFormatVersion) {
    reader.Fail();
    return false;
  }
  LshOptions options;
  options.tables = reader.ReadU64();
  options.bits = reader.ReadU64();
  options.seed = reader.ReadU64();
  if (!reader.ok()) return false;
  // Shape cross-checks the v1 path gets implicitly from its own writer:
  // the plane matrix must cover tables * bits hyperplanes of the data's
  // dimensionality whenever the index is non-empty.
  if (data.rows() > 0 && (planes.rows() != options.tables * options.bits ||
                          planes.cols() != data.cols())) {
    reader.Fail();
    return false;
  }
  BucketTables buckets;
  if (!ReadBuckets(reader, options.tables, data.rows(), &buckets)) {
    return false;
  }
  options_ = options;
  data_ = std::move(data);
  planes_ = std::move(planes);
  buckets_ = std::move(buckets);
  return true;
}

}  // namespace ember::index
