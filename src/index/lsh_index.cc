#include "index/lsh_index.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/vector_ops.h"

namespace ember::index {

uint32_t LshIndex::HashOf(const float* vector, size_t table) const {
  uint32_t code = 0;
  for (size_t b = 0; b < options_.bits; ++b) {
    const float* plane = planes_.Row(table * options_.bits + b);
    code = (code << 1) |
           (la::Dot(vector, plane, data_.cols()) >= 0.f ? 1u : 0u);
  }
  return code;
}

void LshIndex::Build(la::Matrix data) {
  data_ = std::move(data);
  buckets_.assign(options_.tables, {});
  if (data_.rows() == 0) return;
  planes_ = la::Matrix(options_.tables * options_.bits, data_.cols());
  Rng rng(SplitMix64(options_.seed ^ 0x15aULL));
  planes_.FillGaussian(rng, 1.f);
  for (uint32_t r = 0; r < data_.rows(); ++r) {
    for (size_t t = 0; t < options_.tables; ++t) {
      buckets_[t][HashOf(data_.Row(r), t)].push_back(r);
    }
  }
}

std::vector<Neighbor> LshIndex::Query(const float* query, size_t k) const {
  if (data_.rows() == 0) return {};
  const size_t kept = std::min(k, data_.rows());
  std::vector<uint32_t> candidates;
  for (size_t t = 0; t < options_.tables; ++t) {
    const auto it = buckets_[t].find(HashOf(query, t));
    if (it == buckets_[t].end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() < kept) {
    // Bucket miss: exact fallback keeps the k-per-query contract.
    candidates.resize(data_.rows());
    for (uint32_t r = 0; r < data_.rows(); ++r) candidates[r] = r;
  }
  std::vector<Neighbor> ranked;
  ranked.reserve(candidates.size());
  for (const uint32_t r : candidates) {
    ranked.push_back({r, 1.f - la::Dot(query, data_.Row(r), data_.cols())});
  }
  std::sort(ranked.begin(), ranked.end(), CloserThan);
  ranked.resize(kept);
  return ranked;
}

std::vector<std::vector<Neighbor>> LshIndex::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  std::vector<std::vector<Neighbor>> results(queries.rows());
  ParallelForEach(0, queries.rows(), 0, [&](size_t q) {
    results[q] = Query(queries.Row(q), k);
  });
  return results;
}

}  // namespace ember::index
