#ifndef EMBER_EMBED_EMBEDDING_MODEL_H_
#define EMBER_EMBED_EMBEDDING_MODEL_H_

#include <string>
#include <vector>

#include "embed/model_registry.h"
#include "la/matrix.h"

namespace ember::embed {

/// Base class of every embedding model. The contract that makes batch
/// vectorization parallel AND deterministic:
///
///   - Initialize() builds all weights once (idempotent, NOT thread-safe);
///   - EncodeInto() is const and thread-safe — all scratch is call-local —
///     and each output row depends only on its own sentence;
///   - VectorizeAll() therefore fans rows out over the global thread pool
///     (common/parallel.h) into disjoint preallocated rows, producing
///     bit-identical matrices at every thread count.
class EmbeddingModel {
 public:
  explicit EmbeddingModel(const ModelInfo& info) : info_(info) {}
  virtual ~EmbeddingModel() = default;

  const ModelInfo& info() const { return info_; }

  /// Builds the model weights on first call; later calls are no-ops.
  /// Returns the build time in seconds of the first call (Table 4's Init
  /// row).
  double Initialize();

  /// Embeds one sentence into out[0..info().dim), L2-normalized (zero for
  /// an empty/fully-OOV sentence). Requires Initialize(); const and
  /// thread-safe.
  virtual void EncodeInto(const std::string& sentence, float* out) const = 0;

  /// Embeds a batch: one row per sentence, parallelized over sentences.
  la::Matrix VectorizeAll(const std::vector<std::string>& sentences);

 protected:
  /// One-time weight construction.
  virtual void BuildWeights() = 0;

 private:
  ModelInfo info_;
  bool initialized_ = false;
  double init_seconds_ = 0;
};

}  // namespace ember::embed

#endif  // EMBER_EMBED_EMBEDDING_MODEL_H_
