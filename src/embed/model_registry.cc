#include "embed/model_registry.h"

#include "common/logging.h"
#include "embed/static_model.h"
#include "embed/transformer_model.h"

namespace ember::embed {

namespace {

std::vector<ModelInfo> BuildInfos() {
  // Table 1. Dim/seq/params follow the real models; the family drives the
  // implementation regime.
  std::vector<ModelInfo> infos;
  const auto add = [&infos](ModelId id, const char* code, const char* name,
                            ModelFamily family, size_t dim, size_t seq,
                            int params) {
    ModelInfo info;
    info.id = id;
    info.code = code;
    info.name = name;
    info.family = family;
    info.dim = dim;
    info.max_seq_tokens = seq;
    info.param_millions = params;
    infos.push_back(std::move(info));
  };
  add(ModelId::kWord2Vec, "WC", "Word2Vec", ModelFamily::kStatic, 300, 0, -1);
  add(ModelId::kFastText, "FT", "FastText", ModelFamily::kStatic, 300, 0, -1);
  add(ModelId::kGloVe, "GE", "GloVe", ModelFamily::kStatic, 300, 0, -1);
  add(ModelId::kBert, "BT", "BERT", ModelFamily::kBertLike, 768, 512, 110);
  add(ModelId::kAlbert, "AT", "ALBERT", ModelFamily::kBertLike, 768, 512, 12);
  add(ModelId::kRoberta, "RA", "RoBERTa", ModelFamily::kBertLike, 768, 514,
      125);
  add(ModelId::kDistilBert, "DT", "DistilBERT", ModelFamily::kBertLike, 768,
      512, 66);
  add(ModelId::kXlnet, "XT", "XLNet", ModelFamily::kBertLike, 768, 0, 110);
  add(ModelId::kSMpnet, "ST", "S-MPNet", ModelFamily::kSentence, 768, 384,
      110);
  add(ModelId::kSGtrT5, "S5", "S-GTR-T5", ModelFamily::kSentence, 768, 512,
      335);
  add(ModelId::kSDistilRoberta, "SA", "S-DistilRoBERTa",
      ModelFamily::kSentence, 768, 512, 82);
  add(ModelId::kSMiniLm, "SM", "S-MiniLM", ModelFamily::kSentence, 384, 256,
      22);
  return infos;
}

const std::vector<ModelInfo>& AllInfos() {
  static const std::vector<ModelInfo>* const kInfos =
      new std::vector<ModelInfo>(BuildInfos());
  return *kInfos;
}

}  // namespace

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kStatic:
      return "static";
    case ModelFamily::kBertLike:
      return "BERT-like";
    case ModelFamily::kSentence:
      return "SentenceBERT";
  }
  return "?";
}

const std::vector<ModelId>& AllModels() {
  static const std::vector<ModelId>* const kIds = [] {
    auto* ids = new std::vector<ModelId>();
    for (const ModelInfo& info : AllInfos()) ids->push_back(info.id);
    return ids;
  }();
  return *kIds;
}

const ModelInfo& GetModelInfo(ModelId id) {
  const size_t index = static_cast<size_t>(id);
  EMBER_CHECK(index < AllInfos().size());
  return AllInfos()[index];
}

Result<ModelId> ModelIdFromString(const std::string& text) {
  for (const ModelInfo& info : AllInfos()) {
    if (info.code == text || info.name == text) return info.id;
  }
  return Status::NotFound("no model named " + text);
}

std::unique_ptr<EmbeddingModel> CreateModel(ModelId id) {
  switch (GetModelInfo(id).family) {
    case ModelFamily::kStatic:
      return std::make_unique<StaticEmbeddingModel>(id);
    case ModelFamily::kBertLike:
    case ModelFamily::kSentence:
      return std::make_unique<TransformerEmbeddingModel>(
          GetModelInfo(id), TransformerConfigFor(id));
  }
  EMBER_CHECK(false);
  return nullptr;
}

}  // namespace ember::embed
