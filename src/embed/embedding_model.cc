#include "embed/embedding_model.h"

#include "common/parallel.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace ember::embed {

double EmbeddingModel::Initialize() {
  if (!initialized_) {
    WallTimer timer;
    BuildWeights();
    init_seconds_ = timer.Seconds();
    initialized_ = true;
  }
  return init_seconds_;
}

la::Matrix EmbeddingModel::VectorizeAll(
    const std::vector<std::string>& sentences) {
  Initialize();
  la::Matrix out(sentences.size(), info_.dim);
  obs::Span span("embed/vectorize_all");
  span.AddCount("sentences", sentences.size());
  const obs::SpanContext parent = span.context();
  // Deterministic data parallelism: each sentence writes only its own
  // preallocated row, and the chunking never depends on the thread count.
  // Chunk spans take the chunk offset as ordinal, so the span tree is
  // identical at every thread count.
  ParallelFor(0, sentences.size(), 0, [&](size_t lo, size_t hi) {
    obs::Span chunk("embed/encode_chunk", parent, lo);
    chunk.AddCount("rows", hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      EncodeInto(sentences[i], out.Row(i));
    }
  });
  return out;
}

}  // namespace ember::embed
