#include "embed/embedding_model.h"

#include "common/parallel.h"
#include "common/timer.h"

namespace ember::embed {

double EmbeddingModel::Initialize() {
  if (!initialized_) {
    WallTimer timer;
    BuildWeights();
    init_seconds_ = timer.Seconds();
    initialized_ = true;
  }
  return init_seconds_;
}

la::Matrix EmbeddingModel::VectorizeAll(
    const std::vector<std::string>& sentences) {
  Initialize();
  la::Matrix out(sentences.size(), info_.dim);
  // Deterministic data parallelism: each sentence writes only its own
  // preallocated row, and the chunking never depends on the thread count.
  ParallelForEach(0, sentences.size(), 0, [&](size_t i) {
    EncodeInto(sentences[i], out.Row(i));
  });
  return out;
}

}  // namespace ember::embed
