#include "embed/static_model.h"

#include <vector>

#include "common/logging.h"
#include "la/vector_ops.h"
#include "text/tokenizer.h"

namespace ember::embed {

namespace {

/// Per-model lexicon streams: FastText's must match exp21's ablation
/// (0x57a71c + 0x9e37), so all three share the 0x57a71c base.
TokenEncoderParams StaticParams(ModelId id) {
  TokenEncoderParams p;
  p.dim = 300;
  p.surface_weight = 0.20f;
  switch (id) {
    case ModelId::kWord2Vec:
      p.seed = 0x57a71cULL;
      p.vocab_coverage = 0.85;
      p.synonym_coverage = 0.15;
      break;
    case ModelId::kFastText:
      p.seed = 0x57a71cULL + 0x9e37ULL;
      p.vocab_coverage = 0.90;
      p.synonym_coverage = 0.30;
      p.ngram_weight = 0.55f;
      p.ngram_min = 3;
      p.ngram_max = 5;
      break;
    case ModelId::kGloVe:
      p.seed = 0x57a71cULL + 2 * 0x9e37ULL;
      p.vocab_coverage = 0.92;
      p.synonym_coverage = 0.22;
      break;
    default:
      EMBER_CHECK_MSG(false, "not a static model id");
  }
  return p;
}

}  // namespace

StaticEmbeddingModel::StaticEmbeddingModel(ModelId id, bool idf_weighting)
    : EmbeddingModel(GetModelInfo(id)),
      params_(StaticParams(id)),
      idf_weighting_(idf_weighting) {}

void StaticEmbeddingModel::BuildWeights() {
  // The lexicon is hash-defined; warming a handful of vectors stands in for
  // the (fast) mmap of a real embedding table.
  const TokenEncoder encoder(params_);
  std::vector<float> scratch(params_.dim);
  encoder.Encode("warmup", scratch.data());
}

void StaticEmbeddingModel::EncodeInto(const std::string& sentence,
                                      float* out) const {
  const TokenEncoder encoder(params_);
  std::vector<float> token_vec(params_.dim);
  for (size_t d = 0; d < params_.dim; ++d) out[d] = 0.f;
  float total = 0.f;
  for (const std::string& token : text::Tokenize(sentence)) {
    if (!encoder.Encode(token, token_vec.data())) continue;
    const float w = idf_weighting_ ? encoder.Idf(token) : 1.f;
    la::Axpy(w, token_vec.data(), out, params_.dim);
    total += w;
  }
  if (total > 0.f) la::Scale(1.f / total, out, params_.dim);
  la::NormalizeInPlace(out, params_.dim);
}

}  // namespace ember::embed
