#ifndef EMBER_EMBED_TOKEN_ENCODER_H_
#define EMBER_EMBED_TOKEN_ENCODER_H_

#include <cstdint>
#include <string>

namespace ember::embed {

/// Knobs of the deterministic token-level "pre-trained lexicon". Every
/// vector is a pure hash of (seed, key), so two encoders with the same
/// params agree exactly and no table has to be materialized.
struct TokenEncoderParams {
  size_t dim = 300;
  uint64_t seed = 1;
  /// Fraction of canonical words the model "knows" (in-vocabulary).
  double vocab_coverage = 0.9;
  /// Fraction of synonym surface forms the model maps back to their
  /// canonical sense (the semantic axis separating sentence encoders from
  /// lexical models).
  double synonym_coverage = 0.3;
  /// Weight of the surface-form-specific component mixed into a resolved
  /// synonym (distinct surfaces of one sense stay close, not identical).
  float surface_weight = 0.2f;
  /// Weight of the character-n-gram component (fastText-style subwords;
  /// 0 disables it). Grants robustness to misspellings and OOV words.
  float ngram_weight = 0.0f;
  size_t ngram_min = 3;
  size_t ngram_max = 5;
};

/// Stateless deterministic token embedder shared by all embedding models.
/// Thread-safe: Encode/Idf only read params and hash.
class TokenEncoder {
 public:
  explicit TokenEncoder(const TokenEncoderParams& params) : params_(params) {}

  const TokenEncoderParams& params() const { return params_; }

  /// Writes the token's vector (length params().dim, NOT normalized) into
  /// `out`. Returns false — leaving `out` zeroed — when the token is fully
  /// out of vocabulary and no n-gram component is enabled.
  bool Encode(const std::string& token, float* out) const;

  /// Deterministic pseudo-idf weight in [0.2, 1.0] of the token's canonical
  /// sense; shared across encoders so pooling weights agree between models.
  float Idf(const std::string& token) const;

 private:
  TokenEncoderParams params_;
};

}  // namespace ember::embed

#endif  // EMBER_EMBED_TOKEN_ENCODER_H_
