#ifndef EMBER_EMBED_MODEL_REGISTRY_H_
#define EMBER_EMBED_MODEL_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace ember::embed {

class EmbeddingModel;

/// The 12 language models of Table 1, in the paper's canonical order.
enum class ModelId {
  kWord2Vec = 0,     // WC
  kFastText,         // FT
  kGloVe,            // GE
  kBert,             // BT
  kAlbert,           // AT
  kRoberta,          // RA
  kDistilBert,       // DT
  kXlnet,            // XT
  kSMpnet,           // ST
  kSGtrT5,           // S5
  kSDistilRoberta,   // SA
  kSMiniLm,          // SM
};

enum class ModelFamily {
  kStatic = 0,   // frozen word vectors, mean-pooled
  kBertLike,     // transformer encoders, CLS-pooled, not fine-tuned
  kSentence,     // SentenceBERT-style calibrated encoders
};

const char* ModelFamilyName(ModelFamily family);

struct ModelInfo {
  ModelId id = ModelId::kWord2Vec;
  std::string code;   // two-letter code used across the paper's figures
  std::string name;   // display name
  ModelFamily family = ModelFamily::kStatic;
  size_t dim = 300;
  /// Maximum input length in tokens; 0 means unbounded (rendered as "-").
  size_t max_seq_tokens = 0;
  /// Parameter count in millions; negative means not applicable.
  int param_millions = -1;
};

/// All model ids in canonical order (WC, FT, GE, BT, AT, RA, DT, XT, ST,
/// S5, SA, SM).
const std::vector<ModelId>& AllModels();

const ModelInfo& GetModelInfo(ModelId id);

/// Accepts either the two-letter code ("S5") or the display name
/// ("S-GTR-T5").
Result<ModelId> ModelIdFromString(const std::string& text);

/// Instantiates a model. The instance is cheap until Initialize() (or the
/// first VectorizeAll) builds its weights.
std::unique_ptr<EmbeddingModel> CreateModel(ModelId id);

}  // namespace ember::embed

#endif  // EMBER_EMBED_MODEL_REGISTRY_H_
