#ifndef EMBER_EMBED_STATIC_MODEL_H_
#define EMBER_EMBED_STATIC_MODEL_H_

#include <string>

#include "embed/embedding_model.h"
#include "embed/token_encoder.h"

namespace ember::embed {

/// Frozen word-vector models (Word2Vec, FastText, GloVe): a sentence embeds
/// as the (optionally idf-weighted) mean of its token vectors, normalized.
/// FastText adds the character-n-gram component that buys robustness to
/// misspellings; the others drop OOV tokens.
class StaticEmbeddingModel : public EmbeddingModel {
 public:
  /// `idf_weighting` is false for the registry models (real static
  /// embeddings are plain means); exp21 flips it as an ablation.
  explicit StaticEmbeddingModel(ModelId id, bool idf_weighting = false);

  void EncodeInto(const std::string& sentence, float* out) const override;

 protected:
  void BuildWeights() override;

 private:
  TokenEncoderParams params_;
  bool idf_weighting_;
};

}  // namespace ember::embed

#endif  // EMBER_EMBED_STATIC_MODEL_H_
