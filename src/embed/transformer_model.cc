#include "embed/transformer_model.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "la/vector_ops.h"
#include "text/tokenizer.h"

namespace ember::embed {

namespace {

/// Per-thread reusable scratch for EncodeInto: the transformer workspace
/// plus the token-embedding and pooling buffers. Thread-local storage keeps
/// EncodeInto const and thread-safe under VectorizeAll's parallel encode
/// (each pool worker owns one scratch), while amortizing all per-sentence
/// heap allocations away after the first call at peak shape. Values never
/// leak between calls: every buffer is fully overwritten before being read,
/// so outputs stay bit-identical regardless of scratch history or thread
/// assignment.
struct EncodeScratch {
  nn::TransformerEncoder::Workspace workspace;
  la::Matrix embeds;
  std::vector<float> pooled;
};

EncodeScratch& LocalScratch() {
  thread_local EncodeScratch scratch;
  return scratch;
}

}  // namespace

TransformerEmbeddingModel::TransformerEmbeddingModel(const ModelInfo& info,
                                                     const Config& config)
    : EmbeddingModel(info), config_(config) {
  EMBER_CHECK(config_.token.dim == config_.encoder.dim);
  // The encoder never sees more than max_tokens inputs (plus CLS), so the
  // precomputed positional table only needs that many rows.
  config_.encoder.max_positions =
      std::min(config_.encoder.max_positions, config_.max_tokens + 1);
}

void TransformerEmbeddingModel::BuildWeights() {
  token_encoder_ = std::make_unique<TokenEncoder>(config_.token);
  encoder_ = std::make_unique<nn::TransformerEncoder>(config_.encoder);
  projection_ = la::Matrix(info().dim, config_.encoder.dim);
  Rng rng(SplitMix64(config_.encoder.seed ^ 0x9c07ULL));
  projection_.FillGaussian(rng, 1.f);
}

void TransformerEmbeddingModel::EncodeInto(const std::string& sentence,
                                           float* out) const {
  const size_t dim = config_.encoder.dim;
  std::vector<std::string> tokens = text::Tokenize(sentence);
  if (tokens.size() > config_.max_tokens) tokens.resize(config_.max_tokens);
  for (size_t d = 0; d < info().dim; ++d) out[d] = 0.f;
  if (tokens.empty()) return;

  EncodeScratch& scratch = LocalScratch();
  scratch.embeds.Resize(tokens.size(), dim);
  for (size_t t = 0; t < tokens.size(); ++t) {
    // Subword tokenization leaves nothing OOV: when the lexicon misses a
    // token, its n-gram/surface hash vector still fills the slot (Encode
    // zeroes the row first, so reusing scratch memory is safe).
    token_encoder_->Encode(tokens[t], scratch.embeds.Row(t));
  }
  const la::Matrix* states_out = nullptr;
  {
    obs::Span forward_span("embed/transformer_forward");
    forward_span.AddCount("tokens", tokens.size());
    states_out = &encoder_->Forward(scratch.embeds, scratch.workspace);
  }
  const la::Matrix& states = *states_out;

  scratch.pooled.assign(dim, 0.f);
  float* pooled = scratch.pooled.data();
  if (config_.cls_pooling) {
    const float* cls = states.Row(0);
    for (size_t d = 0; d < dim; ++d) pooled[d] = cls[d];
  } else {
    float total = 0.f;
    for (size_t t = 0; t < tokens.size(); ++t) {
      const float w = token_encoder_->Idf(tokens[t]);
      la::Axpy(w, states.Row(t + 1), pooled, dim);
      total += w;
    }
    if (total > 0.f) la::Scale(1.f / total, pooled, dim);
  }

  la::Gemv(projection_, pooled, out);
  la::NormalizeInPlace(out, info().dim);
}

TransformerEmbeddingModel::Config TransformerConfigFor(ModelId id) {
  TransformerEmbeddingModel::Config c;
  // BERT regime by default: Xavier-scale weights and strong positional
  // signal make CLS states anisotropic (Section 5 of the paper's analysis).
  c.token.dim = 64;
  c.token.vocab_coverage = 0.97;
  c.token.synonym_coverage = 0.45;
  c.token.surface_weight = 0.18f;
  c.token.ngram_weight = 0.25f;
  c.token.ngram_min = 4;
  c.token.ngram_max = 5;
  c.encoder.dim = 64;
  c.encoder.num_heads = 4;
  c.encoder.ffn_dim = 128;
  c.encoder.num_layers = 4;
  c.encoder.weight_gain = 1.05f;
  c.encoder.pos_scale = 0.10f;
  c.cls_pooling = true;

  const auto sentence_regime = [&c] {
    // Calibrated SentenceBERT regime: tiny gain + weak positions, richer
    // synonym lexicon, idf-mean pooling.
    c.token.dim = 80;
    c.token.vocab_coverage = 0.97;
    c.token.synonym_coverage = 0.88;
    c.token.ngram_weight = 0.30f;
    c.encoder.dim = 80;
    c.encoder.ffn_dim = 160;
    c.encoder.weight_gain = 0.06f;
    c.encoder.pos_scale = 0.015f;
    c.cls_pooling = false;
  };

  switch (id) {
    case ModelId::kBert:
      c.encoder.seed = 0xbe27ULL;
      break;
    case ModelId::kAlbert:
      // Cross-layer parameter sharing, modeled as a shallower stack.
      c.encoder.num_layers = 2;
      c.encoder.seed = 0xa1beULL;
      break;
    case ModelId::kRoberta:
      c.encoder.seed = 0x20beULL;
      c.token.vocab_coverage = 0.98;
      c.token.synonym_coverage = 0.50;
      break;
    case ModelId::kDistilBert:
      c.encoder.num_layers = 2;
      c.encoder.seed = 0xd157ULL;
      break;
    case ModelId::kXlnet:
      c.encoder.seed = 0x817eULL;
      c.encoder.pos_scale = 0.08f;
      c.token.synonym_coverage = 0.40;
      break;
    case ModelId::kSMpnet:
      sentence_regime();
      c.encoder.seed = 0x5b3a7ULL ^ 0x5e2cULL;
      break;
    case ModelId::kSGtrT5:
      sentence_regime();
      c.encoder.seed = 0x575ULL;
      // The paper's overall winner: the widest synonym lexicon.
      c.token.synonym_coverage = 0.94;
      c.encoder.num_layers = 6;
      break;
    case ModelId::kSDistilRoberta:
      sentence_regime();
      c.encoder.seed = 0x5d20ULL;
      c.encoder.num_layers = 3;
      c.token.synonym_coverage = 0.82;
      break;
    case ModelId::kSMiniLm:
      sentence_regime();
      c.encoder.seed = 0x5717ULL;
      c.encoder.num_layers = 3;
      c.token.dim = 64;
      c.encoder.dim = 64;
      c.encoder.ffn_dim = 128;
      c.token.synonym_coverage = 0.80;
      break;
    default:
      EMBER_CHECK_MSG(false, "not a transformer model id");
  }
  c.token.seed = SplitMix64(c.encoder.seed ^ 0x70ceULL);
  return c;
}

}  // namespace ember::embed
