#ifndef EMBER_EMBED_TRANSFORMER_MODEL_H_
#define EMBER_EMBED_TRANSFORMER_MODEL_H_

#include <memory>
#include <string>

#include "embed/embedding_model.h"
#include "embed/token_encoder.h"
#include "la/matrix.h"
#include "nn/transformer.h"

namespace ember::embed {

/// Transformer-based models. The encoder runs an honest quadratic
/// self-attention forward over a small internal width, then a fixed random
/// projection lifts the pooled state to the model's nominal dimension
/// (cosine geometry is what the experiments measure, and random projection
/// preserves it).
///
/// Two pooling regimes reproduce the paper's central contrast:
///   - kBertLike: CLS pooling with BERT-scale weight gain and positional
///     amplitude — anisotropic, weakly discriminative embeddings;
///   - kSentence: idf-weighted mean over token states with calibrated
///     small gain — the SentenceBERT regime.
class TransformerEmbeddingModel : public EmbeddingModel {
 public:
  struct Config {
    TokenEncoderParams token;
    nn::TransformerConfig encoder;
    bool cls_pooling = true;
    /// Input truncation (the analogue of the 512-token window).
    size_t max_tokens = 48;
  };

  TransformerEmbeddingModel(const ModelInfo& info, const Config& config);

  /// Const and thread-safe: the transformer workspace and pooling buffers
  /// live in thread-local scratch (one per pool worker under VectorizeAll),
  /// fully overwritten each call, so repeated encodes are allocation-free
  /// after warmup and bit-identical at any thread count.
  void EncodeInto(const std::string& sentence, float* out) const override;

 protected:
  void BuildWeights() override;

 private:
  Config config_;
  std::unique_ptr<TokenEncoder> token_encoder_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  la::Matrix projection_;  // info().dim x encoder.dim
};

/// Registry configs for the BERT family (BT, AT, RA, DT, XT) and the
/// sentence encoders (ST, S5, SA, SM).
TransformerEmbeddingModel::Config TransformerConfigFor(ModelId id);

}  // namespace ember::embed

#endif  // EMBER_EMBED_TRANSFORMER_MODEL_H_
