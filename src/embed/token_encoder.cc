#include "embed/token_encoder.h"

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "text/tokenizer.h"

namespace ember::embed {

namespace {

constexpr uint64_t kVocabSalt = 0x70cab1eULL;
constexpr uint64_t kSynonymSalt = 0x5e4fULL;
constexpr uint64_t kIdfSalt = 0x1dfULL;

uint64_t KeyHash(const std::string& key, uint64_t seed) {
  return HashBytes(key.data(), key.size(), SplitMix64(seed));
}

/// Deterministic coverage coin: the same word is in/out of vocabulary for
/// every encoder sharing (seed, salt), independent of call order.
bool Covered(const std::string& key, uint64_t seed, uint64_t salt,
             double coverage) {
  const uint64_t h = SplitMix64(KeyHash(key, seed ^ salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < coverage;
}

/// Adds `weight` times the hash-vector of `key` into out[0..dim).
/// Components are cheap deterministic pseudo-gaussians (sum of two uniforms,
/// centered), good enough for near-orthogonal high-dim codes.
void AddHashVector(const std::string& key, uint64_t seed, float weight,
                   float* out, size_t dim) {
  uint64_t state = KeyHash(key, seed);
  for (size_t d = 0; d < dim; ++d) {
    state = SplitMix64(state);
    const double u1 = static_cast<double>(state >> 42) / 4194304.0;  // [0,1)
    const double u2 =
        static_cast<double>((state >> 20) & 0x3fffff) / 4194304.0;
    out[d] += weight * static_cast<float>(u1 + u2 - 1.0);
  }
}

}  // namespace

bool TokenEncoder::Encode(const std::string& token, float* out) const {
  std::memset(out, 0, params_.dim * sizeof(float));
  const std::string canonical = text::CanonicalWordForm(token);
  const bool is_synonym_surface = canonical != token;

  // Resolve the sense key this encoder attributes to the token.
  bool have_sense = false;
  std::string sense;
  if (!is_synonym_surface) {
    if (Covered(canonical, params_.seed, kVocabSalt, params_.vocab_coverage)) {
      have_sense = true;
      sense = canonical;
    }
  } else if (Covered(token, params_.seed, kSynonymSalt,
                     params_.synonym_coverage) &&
             Covered(canonical, params_.seed, kVocabSalt,
                     params_.vocab_coverage)) {
    // The lexicon maps this surface form back to its canonical sense.
    have_sense = true;
    sense = canonical;
  } else if (Covered(token, params_.seed, kVocabSalt,
                     params_.vocab_coverage)) {
    // Unresolved surface form, but the literal token itself is known: it
    // embeds as an unrelated word (the lexical-model failure mode).
    have_sense = true;
    sense = token;
  }

  bool any = false;
  if (have_sense) {
    AddHashVector(sense, params_.seed, 1.0f - params_.surface_weight, out,
                  params_.dim);
    if (sense != token) {
      AddHashVector(token, params_.seed, params_.surface_weight, out,
                    params_.dim);
    }
    any = true;
  }

  if (params_.ngram_weight > 0.f && token.size() >= params_.ngram_min) {
    size_t count = 0;
    for (size_t n = params_.ngram_min; n <= params_.ngram_max; ++n) {
      if (token.size() < n) break;
      count += token.size() - n + 1;
    }
    if (count > 0) {
      const float w =
          params_.ngram_weight / static_cast<float>(std::sqrt(count));
      for (size_t n = params_.ngram_min; n <= params_.ngram_max; ++n) {
        if (token.size() < n) break;
        for (const std::string& gram : text::CharNgrams(token, n)) {
          AddHashVector(gram, params_.seed ^ 0x96a3ULL, w, out, params_.dim);
        }
      }
      any = true;
    }
  }
  return any;
}

float TokenEncoder::Idf(const std::string& token) const {
  const std::string canonical = text::CanonicalWordForm(token);
  // Idf is a property of the sense, not the encoder: use a fixed stream so
  // every model weights tokens identically.
  const uint64_t h = SplitMix64(KeyHash(canonical, kIdfSalt));
  return 0.2f + 0.8f * static_cast<float>(
                           static_cast<double>(h >> 11) * 0x1.0p-53);
}

}  // namespace ember::embed
