#ifndef EMBER_CLUSTER_BIPARTITE_CLUSTERING_H_
#define EMBER_CLUSTER_BIPARTITE_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ember::cluster {

/// One candidate match with its similarity in [0, 1].
struct ScoredPair {
  uint32_t left = 0;
  uint32_t right = 0;
  float sim = 0.f;
};

/// Descending similarity, ties by ascending (left, right) — the total order
/// every greedy clustering below consumes.
void SortPairsDescending(std::vector<ScoredPair>& pairs);

/// Unique Mapping Clustering (the paper's best bipartite algorithm):
/// consume pairs best-first, accept a pair when sim >= threshold and both
/// sides are unmatched. `pairs` must already be sorted descending.
std::vector<std::pair<uint32_t, uint32_t>> UniqueMappingClustering(
    const std::vector<ScoredPair>& pairs, size_t n_left, size_t n_right,
    float threshold);

/// Exact Clustering: accept only reciprocal best pairs (each side is the
/// other's single best candidate) with sim >= threshold.
std::vector<std::pair<uint32_t, uint32_t>> ExactClustering(
    const std::vector<ScoredPair>& pairs, size_t n_left, size_t n_right,
    float threshold);

/// Kiraly Clustering: Kiraly's linear-time 3/2-approximate maximum stable
/// marriage, restricted to pairs with sim >= threshold. `pairs` must be
/// sorted descending.
std::vector<std::pair<uint32_t, uint32_t>> KiralyClustering(
    const std::vector<ScoredPair>& pairs, size_t n_left, size_t n_right,
    float threshold);

}  // namespace ember::cluster

#endif  // EMBER_CLUSTER_BIPARTITE_CLUSTERING_H_
