#include "cluster/bipartite_clustering.h"

#include <algorithm>

#include "obs/trace.h"

namespace ember::cluster {

void SortPairsDescending(std::vector<ScoredPair>& pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
}

std::vector<std::pair<uint32_t, uint32_t>> UniqueMappingClustering(
    const std::vector<ScoredPair>& pairs, size_t n_left, size_t n_right,
    float threshold) {
  obs::Span span("cluster/unique_mapping");
  span.AddCount("pairs", pairs.size());
  std::vector<char> left_used(n_left, 0), right_used(n_right, 0);
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  for (const ScoredPair& pair : pairs) {
    if (pair.sim < threshold) break;  // sorted descending
    if (left_used[pair.left] || right_used[pair.right]) continue;
    left_used[pair.left] = 1;
    right_used[pair.right] = 1;
    matches.emplace_back(pair.left, pair.right);
  }
  return matches;
}

std::vector<std::pair<uint32_t, uint32_t>> ExactClustering(
    const std::vector<ScoredPair>& pairs, size_t n_left, size_t n_right,
    float threshold) {
  obs::Span span("cluster/exact");
  span.AddCount("pairs", pairs.size());
  constexpr uint32_t kNone = 0xffffffffu;
  std::vector<uint32_t> best_left(n_left, kNone), best_right(n_right, kNone);
  std::vector<float> best_left_sim(n_left, -1.f), best_right_sim(n_right,
                                                                 -1.f);
  for (const ScoredPair& pair : pairs) {
    if (pair.sim < threshold) continue;
    // Strict > keeps the first (lowest-index after sorting) of tied bests,
    // deterministically.
    if (pair.sim > best_left_sim[pair.left]) {
      best_left_sim[pair.left] = pair.sim;
      best_left[pair.left] = pair.right;
    }
    if (pair.sim > best_right_sim[pair.right]) {
      best_right_sim[pair.right] = pair.sim;
      best_right[pair.right] = pair.left;
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  for (uint32_t l = 0; l < n_left; ++l) {
    const uint32_t r = best_left[l];
    if (r != kNone && best_right[r] == l) matches.emplace_back(l, r);
  }
  return matches;
}

std::vector<std::pair<uint32_t, uint32_t>> KiralyClustering(
    const std::vector<ScoredPair>& pairs, size_t n_left, size_t n_right,
    float threshold) {
  obs::Span span("cluster/kiraly");
  span.AddCount("pairs", pairs.size());
  // Preference lists from the globally sorted pair stream: each left entity
  // proposes down its own list; right entities accept their best proposal
  // so far, freeing any previous fiancé (who resumes proposing).
  std::vector<std::vector<std::pair<uint32_t, float>>> prefs(n_left);
  for (const ScoredPair& pair : pairs) {
    if (pair.sim < threshold) break;  // sorted descending
    prefs[pair.left].push_back({pair.right, pair.sim});
  }

  constexpr uint32_t kNone = 0xffffffffu;
  std::vector<size_t> next(n_left, 0);
  std::vector<uint32_t> fiance(n_right, kNone);
  std::vector<float> fiance_sim(n_right, -1.f);
  std::vector<uint32_t> queue;
  for (uint32_t l = 0; l < n_left; ++l) {
    if (!prefs[l].empty()) queue.push_back(l);
  }
  size_t head = 0;
  while (head < queue.size()) {
    const uint32_t l = queue[head++];
    while (next[l] < prefs[l].size()) {
      const auto [r, sim] = prefs[l][next[l]++];
      if (fiance[r] == kNone) {
        fiance[r] = l;
        fiance_sim[r] = sim;
        break;
      }
      if (sim > fiance_sim[r] ||
          (sim == fiance_sim[r] && l < fiance[r])) {
        queue.push_back(fiance[r]);
        fiance[r] = l;
        fiance_sim[r] = sim;
        break;
      }
    }
  }

  std::vector<std::pair<uint32_t, uint32_t>> matches;
  for (uint32_t r = 0; r < n_right; ++r) {
    if (fiance[r] != kNone) matches.emplace_back(fiance[r], r);
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace ember::cluster
