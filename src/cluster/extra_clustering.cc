#include "cluster/extra_clustering.h"

#include <algorithm>
#include <numeric>

namespace ember::cluster {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<uint32_t> parent_;
};

std::vector<std::pair<uint32_t, uint32_t>> PairsOfClusters(
    const std::vector<std::vector<uint32_t>>& clusters) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (const auto& members : clusters) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        out.emplace_back(std::min(members[a], members[b]),
                         std::max(members[a], members[b]));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<uint32_t>> GroupByRoot(UnionFind& uf, size_t n) {
  std::vector<std::vector<uint32_t>> groups(n);
  for (uint32_t i = 0; i < n; ++i) groups[uf.Find(i)].push_back(i);
  return groups;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> ConnectedComponentsClustering(
    const std::vector<ScoredPair>& pairs, size_t n, float threshold) {
  UnionFind uf(n);
  for (const ScoredPair& pair : pairs) {
    if (pair.sim >= threshold) uf.Union(pair.left, pair.right);
  }
  return PairsOfClusters(GroupByRoot(uf, n));
}

std::vector<std::pair<uint32_t, uint32_t>> CenterClustering(
    const std::vector<ScoredPair>& pairs, size_t n, float threshold) {
  enum : char { kFree = 0, kCenter = 1, kAttached = 2 };
  std::vector<char> state(n, kFree);
  std::vector<std::vector<uint32_t>> clusters;
  std::vector<uint32_t> cluster_of(n, 0);
  for (const ScoredPair& pair : pairs) {
    if (pair.sim < threshold) break;  // sorted descending
    const uint32_t a = pair.left, b = pair.right;
    if (a == b) continue;
    if (state[a] == kFree && state[b] == kFree) {
      state[a] = kCenter;
      state[b] = kAttached;
      cluster_of[a] = cluster_of[b] = static_cast<uint32_t>(clusters.size());
      clusters.push_back({a, b});
    } else if (state[a] == kCenter && state[b] == kFree) {
      state[b] = kAttached;
      cluster_of[b] = cluster_of[a];
      clusters[cluster_of[a]].push_back(b);
    } else if (state[b] == kCenter && state[a] == kFree) {
      state[a] = kAttached;
      cluster_of[a] = cluster_of[b];
      clusters[cluster_of[b]].push_back(a);
    }
  }
  return PairsOfClusters(clusters);
}

}  // namespace ember::cluster
