#ifndef EMBER_CLUSTER_EXTRA_CLUSTERING_H_
#define EMBER_CLUSTER_EXTRA_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/bipartite_clustering.h"

namespace ember::cluster {

/// Dirty-ER clustering (DESIGN.md §5 extension): entities live in ONE
/// collection and clusters may exceed size two. Both algorithms consume
/// unordered scored pairs over record ids.

/// Connected components over the similarity graph thresholded at
/// `threshold`; returns every within-cluster pair (a < b).
std::vector<std::pair<uint32_t, uint32_t>> ConnectedComponentsClustering(
    const std::vector<ScoredPair>& pairs, size_t n, float threshold);

/// Center clustering: pairs best-first; the first endpoint of an accepted
/// pair becomes a cluster center, later records attach to at most one
/// center and never become centers themselves. `pairs` must be sorted
/// descending. Returns within-cluster pairs (a < b).
std::vector<std::pair<uint32_t, uint32_t>> CenterClustering(
    const std::vector<ScoredPair>& pairs, size_t n, float threshold);

}  // namespace ember::cluster

#endif  // EMBER_CLUSTER_EXTRA_CLUSTERING_H_
